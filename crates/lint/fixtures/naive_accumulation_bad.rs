//@ path: crates/core/src/kernel.rs
pub fn total(xs: &[f64]) -> f64 {
    let mut sum = 0.0;
    for &x in xs {
        sum += x; //~ naive-accumulation
    }
    sum
}
pub fn iterator_sum(xs: &[f64]) -> f64 {
    xs.iter().sum() //~ naive-accumulation
}
pub fn folded(xs: &[f64]) -> f64 {
    xs.iter().fold(0.0, |a, b| a + b) //~ naive-accumulation
}
