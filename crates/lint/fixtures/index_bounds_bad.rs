//@ path: crates/core/src/sim_sparse.rs
//! CSR reads with arithmetic indices and no validating constructor or
//! in-function length guard.

pub struct RowTable {
    offs: Vec<u32>,
    cols: Vec<u32>,
}

impl RowTable {
    fn row_span(&self, r: usize) -> (usize, usize) {
        let lo = self.offs[r] as usize;
        let hi = self.offs[r + 1] as usize; //~ index-bounds
        (lo, hi)
    }

    fn first_col(&self, r: usize) -> u32 {
        self.cols[self.offs[r] as usize] //~ index-bounds
    }
}

fn kth_col(cols: &[u32], off: u32) -> u32 {
    cols[off as usize] //~ index-bounds
}
