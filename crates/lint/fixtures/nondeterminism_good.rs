//@ path: crates/depgraph/src/graph2.rs
use std::collections::{BTreeMap, HashMap};
pub fn weights(pairs: &[(u32, f64)]) -> Vec<f64> {
    let mut m: BTreeMap<u32, f64> = BTreeMap::new();
    for &(k, v) in pairs {
        m.insert(k, v);
    }
    m.into_values().collect()
}
pub fn count_only(pairs: &[(u32, f64)]) -> usize {
    // Lookup-only use of a hash map never observes iteration order.
    let mut seen: HashMap<u32, f64> = HashMap::new();
    for &(k, v) in pairs {
        seen.insert(k, v);
    }
    seen.len()
}
