//@ path: crates/core/src/engine.rs
//! The pool protocol done right: guards dropped before the rendezvous,
//! one global acquisition order, panics absorbed by `catch_unwind`, and
//! non-blocking `try_lock` everywhere else.

pub struct PoolState {
    pub epoch: u64,
}

pub struct PoolSlot {
    pub delta: f64,
}

fn rendezvous_clean(state: &RwLock<PoolState>, barrier: &Barrier) {
    let st = state.write().unwrap_or_else(|e| e.into_inner());
    drop(st);
    barrier.wait();
}

fn consistent_order(slots: &[Mutex<PoolSlot>], state: &RwLock<PoolState>) {
    let slot = slots[0].lock().unwrap_or_else(|e| e.into_inner());
    let st = state.read().unwrap_or_else(|e| e.into_inner());
    drop(st);
    drop(slot);
}

fn consistent_order_again(slots: &[Mutex<PoolSlot>], state: &RwLock<PoolState>) {
    let slot = slots[1].lock().unwrap_or_else(|e| e.into_inner());
    let st = state.write().unwrap_or_else(|e| e.into_inner());
    drop(st);
    drop(slot);
}

/// The pool's panic protocol: the loop body runs under `catch_unwind`,
/// so a panic with the guard held is absorbed, recovered, and re-armed.
fn guarded_apply(state: &RwLock<PoolState>, ready: bool) {
    let mut main_loop = || {
        let st = state.write().unwrap_or_else(|e| e.into_inner());
        if !ready {
            // ems-lint: allow(panic-surface, pool protocol: absorbed by the catch_unwind below and converted to a poison reset)
            panic!("apply failed");
        }
        drop(st);
    };
    let out = catch_unwind(AssertUnwindSafe(&mut main_loop));
    let _ = out;
}

/// Spawned workers start with no inherited guards; their own waits are
/// clean by construction.
fn spawn_workers(scope: &Scope, state: &RwLock<PoolState>, barrier: &Barrier) {
    let st = state.write().unwrap_or_else(|e| e.into_inner());
    scope.spawn(move || {
        barrier.wait();
    });
    drop(st);
}

/// Non-blocking probes are outside the discipline.
fn scratch_probe(m: &Mutex<PoolSlot>, barrier: &Barrier) {
    if let Ok(g) = m.try_lock() {
        drop(g);
    }
    barrier.wait();
}
