//@ path: crates/events/src/lib.rs
pub fn first(v: &[u32]) -> u32 {
    *v.first().unwrap() //~ panic-surface
}
pub fn must(x: Option<u32>) -> u32 {
    x.expect("present") //~ panic-surface
}
pub fn boom() {
    panic!("boom"); //~ panic-surface
}
pub fn later() {
    todo!() //~ panic-surface
}
pub fn dead_end(x: u32) -> u32 {
    match x {
        0 => 1,
        _ => unreachable!(), //~ panic-surface
    }
}
