//@ path: crates/events/src/lib.rs
pub fn first(v: &[u32]) -> u32 { //~ panic-reachability
    *v.first().unwrap() //~ panic-surface
}
pub fn must(x: Option<u32>) -> u32 { //~ panic-reachability
    x.expect("present") //~ panic-surface
}
pub fn boom() { //~ panic-reachability
    panic!("boom"); //~ panic-surface
}
pub fn later() { //~ panic-reachability
    todo!() //~ panic-surface
}
pub fn dead_end(x: u32) -> u32 { //~ panic-reachability
    match x {
        0 => 1,
        _ => unreachable!(), //~ panic-surface
    }
}
