//@ path: crates/eval/src/report.rs
// Outside the watched hot paths (kernel/engine/sim) bare accumulation is
// allowed: report aggregation is not similarity arithmetic.
pub fn total(xs: &[f64]) -> f64 {
    let mut sum = 0.0;
    for &x in xs {
        sum += x;
    }
    sum
}
