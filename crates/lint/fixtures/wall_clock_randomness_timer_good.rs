//@ path: crates/eval/src/timer.rs
// eval::timer is the blessed measurement module; clock reads belong here.
pub fn measure<F: FnOnce()>(f: F) -> f64 {
    let t = std::time::Instant::now();
    f();
    t.elapsed().as_secs_f64()
}
