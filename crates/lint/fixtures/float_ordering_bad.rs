//@ path: crates/core/src/bounds.rs
pub fn clamp01(x: f64) -> f64 {
    x.min(1.0) //~ float-ordering
}
pub fn biggest(x: f64, y: f64) -> f64 {
    f64::max(x, y) //~ float-ordering
}
pub fn order(a: f64, b: f64) -> Option<std::cmp::Ordering> {
    a.partial_cmp(&b) //~ float-ordering
}
