//@ path: crates/core/src/profile.rs
pub fn measure() -> f64 {
    let t = std::time::Instant::now(); //~ wall-clock-randomness
    t.elapsed().as_secs_f64()
}
pub fn stamp() -> std::time::SystemTime {
    std::time::SystemTime::now() //~ wall-clock-randomness
}
pub fn entropy() -> u64 {
    let mut rng = thread_rng(); //~ wall-clock-randomness
    rng.next_u64()
}
