//@ path: crates/cli/src/main.rs
// Binaries own their process: a panic at the CLI surface is an exit with a
// message, not an aborted library caller.
pub fn main() {
    let args: Vec<String> = std::env::args().collect();
    let first = args.first().unwrap();
    println!("{first}");
}
