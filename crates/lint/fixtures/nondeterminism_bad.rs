//@ path: crates/depgraph/src/graph2.rs
use std::collections::HashMap;
pub fn weights(pairs: &[(u32, f64)]) -> Vec<f64> {
    let mut m: HashMap<u32, f64> = HashMap::new();
    for &(k, v) in pairs {
        m.insert(k, v);
    }
    let mut out = Vec::new();
    for (_k, v) in m.iter() { //~ nondeterminism
        out.push(*v);
    }
    out
}
pub fn expose() -> HashMap<u32, f64> { //~ nondeterminism
    HashMap::new()
}
