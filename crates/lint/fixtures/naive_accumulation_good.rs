//@ path: crates/core/src/kernel.rs
use crate::numeric::NeumaierSum;
pub fn total(xs: &[f64]) -> f64 {
    let mut acc = NeumaierSum::new();
    for &x in xs {
        acc.add(x);
    }
    acc.value()
}
pub fn count(xs: &[u32]) -> u32 {
    xs.iter().copied().sum::<u32>()
}
