//@ path: crates/core/src/kernel.rs

pub struct Scores {
    pub total: f64,
}

pub fn mean(xs: &[f64]) -> f64 {
    let mut sum = 0.0;
    for &x in xs {
        sum += x; //~ float-taint
    }
    sum / xs.len() as f64
}

pub fn rebuilt_sum(xs: &[f64]) -> Scores {
    let mut acc = 0.0;
    for &x in xs {
        acc = acc + x; //~ float-taint
    }
    Scores { total: acc }
}

pub fn through_block_into_store(rows: &[f64], out: &mut f64) {
    for chunk in rows.chunks(4) {
        let s = {
            let mut sum = 0.0;
            for &x in chunk {
                sum += x; //~ float-taint
            }
            sum / 4.0
        };
        let value = s * 0.5;
        *out = value;
    }
}

pub fn carried_slot(xs: &[f64]) -> Vec<f64> {
    let mut acc = vec![0.0f64; 4];
    for &x in xs {
        acc[0] += x; //~ float-taint
    }
    acc
}

pub fn iterator_sum(xs: &[f64]) -> f64 {
    xs.iter().sum() //~ float-taint
}

pub fn folded(xs: &[f64]) -> f64 {
    let t = xs.iter().fold(0.0, |a, b| a + b); //~ float-taint
    t * 2.0
}
