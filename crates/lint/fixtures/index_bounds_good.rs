//@ path: crates/core/src/sim_sparse.rs
//! The same CSR reads, dominated: a validating `from_parts` constructor
//! covers every self-field index, and the free function guards with an
//! explicit `len()` comparison.

pub struct RowTable {
    offs: Vec<u32>,
    cols: Vec<u32>,
}

pub enum CsrError {
    NonMonotone,
    ColumnOutOfRange,
}

impl RowTable {
    /// Rejects non-monotone offsets and out-of-range columns, so the
    /// arithmetic reads below hold by construction.
    pub fn from_parts(offs: Vec<u32>, cols: Vec<u32>) -> Result<Self, CsrError> {
        if offs.windows(2).any(|w| w[1] < w[0]) {
            return Err(CsrError::NonMonotone);
        }
        if cols.iter().any(|&c| c as usize >= offs.len()) {
            return Err(CsrError::ColumnOutOfRange);
        }
        Ok(RowTable { offs, cols })
    }

    fn row_span(&self, r: usize) -> (usize, usize) {
        let lo = self.offs[r] as usize;
        let hi = self.offs[r + 1] as usize;
        (lo, hi)
    }
}

/// Param indexing passes under an explicit length guard.
fn kth_col(cols: &[u32], off: u32) -> u32 {
    assert!((off as usize) < cols.len());
    cols[off as usize]
}

/// Plain single-binding indices are outside the rule.
fn head(cols: &[u32], k: usize) -> u32 {
    cols[k]
}
