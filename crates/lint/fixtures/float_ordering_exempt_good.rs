//@ path: crates/core/src/numeric.rs
// numeric.rs is the one blessed home for raw float ordering: the helpers
// that the rest of the workspace is steered towards live here.
pub fn raw_max(a: f64, b: f64) -> f64 {
    f64::max(a, b)
}
pub fn raw_order(a: f64, b: f64) -> Option<std::cmp::Ordering> {
    a.partial_cmp(&b)
}
