//@ path: crates/events/src/reach.rs
//! An unaudited panic site deep in a private helper surfaces at every
//! public entry point that can reach it.

fn read_header(bytes: &[u8]) -> u8 {
    bytes.first().copied().unwrap() //~ panic-surface
}

pub fn parse(bytes: &[u8]) -> u8 { //~ panic-reachability
    read_header(bytes)
}

pub fn parse_twice(bytes: &[u8]) -> u8 { //~ panic-reachability
    parse(bytes).wrapping_add(parse(bytes))
}
