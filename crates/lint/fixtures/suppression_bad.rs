//@ path: crates/events/src/lib.rs
//~v suppression
// ems-lint: allow(panic-surface)
pub fn missing_reason() {}
//~v suppression
// ems-lint: allow(panic-surface, )
pub fn empty_reason() {}
//~v suppression
// ems-lint: allow(no-such-rule, reason here)
pub fn unknown_rule() {}
//~v suppression
// ems-lint: allow(panic-surface, nothing panics below)
pub fn unused_directive() {}
