//@ path: crates/events/src/lib.rs
pub fn f(v: &[u32]) -> u32 {
    // ems-lint: allow(panic-surface, slice is checked non-empty by all callers)
    *v.first().unwrap()
}
pub fn g(v: &[u32]) -> u32 {
    v[0].checked_mul(2).unwrap() // ems-lint: allow(panic-surface, product bounded by construction)
}
