//@ path: crates/xes/src/reader2.rs
pub fn reinterpret(x: &[u8]) -> u32 {
    unsafe { std::ptr::read_unaligned(x.as_ptr() as *const u32) } //~ unsafe-audit
}
