//@ path: crates/synth/src/jitter.rs
// synth is generator territory: seeded randomness is its whole point and
// the crate is excluded from the clock/randomness watch list.
pub fn jitter(seed: u64) -> u64 {
    let mut rng = StdRng::seed_from_u64(seed);
    rng.next_u64()
}
