//@ path: crates/xes/src/reader2.rs
pub fn reinterpret(x: &[u8]) -> u32 {
    assert!(x.len() >= 4);
    // SAFETY: length checked above; read_unaligned has no alignment requirement.
    unsafe { std::ptr::read_unaligned(x.as_ptr() as *const u32) }
}
