//@ path: crates/events/src/lib.rs
pub fn first(v: &[u32]) -> Option<u32> {
    v.first().copied()
}
#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap_freely() {
        let v = vec![1u32];
        assert_eq!(*v.first().unwrap(), 1);
        let r: Result<u32, ()> = Ok(2);
        assert_eq!(r.expect("ok"), 2);
    }
}
