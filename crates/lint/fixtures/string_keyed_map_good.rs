//@ path: crates/depgraph/src/index.rs
//! Fixture: the symbol-keyed shapes the rule wants, plus the audited
//! escape hatch at a parse edge. String *values* are fine — only keys
//! (and set elements) pay the per-probe hashing cost.

use std::collections::{BTreeMap, HashMap};

pub struct LabelSym(pub u32);

pub struct SymIndex {
    by_sym: BTreeMap<u32, usize>,
    names: BTreeMap<u32, String>,
}

pub struct ParseEdge {
    // ems-lint: allow(string-keyed-map, this is the parse edge: one string lookup per unique label at intern time; everything downstream keys by id)
    index: HashMap<String, u32>,
}

pub fn resolve(index: &SymIndex, sym: u32) -> Option<usize> {
    index.by_sym.get(&sym).copied()
}
