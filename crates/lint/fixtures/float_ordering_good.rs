//@ path: crates/core/src/bounds.rs
pub fn order(a: f64, b: f64) -> std::cmp::Ordering {
    a.total_cmp(&b)
}
pub fn bigger_int(x: u32, y: u32) -> u32 {
    x.max(y)
}
pub fn clamp01(x: f64) -> f64 {
    if x > 1.0 {
        1.0
    } else {
        x
    }
}
