//@ path: crates/events/src/reach.rs
//! Audited or absorbed sites do not propagate: auditing the site audits
//! every path to it, and `catch_unwind` is an absorbing boundary.

fn read_header(bytes: &[u8]) -> u8 {
    // ems-lint: allow(panic-surface, callers validate non-empty input at the parse edge)
    bytes.first().copied().unwrap()
}

pub fn parse(bytes: &[u8]) -> u8 {
    read_header(bytes)
}

/// Absorbed inline: the panic cannot escape this function.
pub fn parse_or_zero(bytes: &[u8]) -> u8 {
    catch_unwind(AssertUnwindSafe(|| {
        // ems-lint: allow(panic-surface, absorbed by the surrounding catch_unwind)
        bytes.first().copied().unwrap()
    }))
    .unwrap_or(0)
}
