//@ path: crates/core/src/kernel.rs
//! Raw accumulation that never escapes, compensated routes, integer
//! sums, and per-element stores — all outside the rule.

pub struct NeumaierSum {
    sum: f64,
    comp: f64,
}

impl NeumaierSum {
    pub fn new() -> Self {
        NeumaierSum { sum: 0.0, comp: 0.0 }
    }
    pub fn add(&mut self, _x: f64) {}
    pub fn value(&self) -> f64 {
        self.sum + self.comp
    }
}

/// The accumulator only gates a branch — its precision is never exported.
pub fn converged(xs: &[f64], threshold: f64) -> bool {
    let mut upper_sum = 0.0;
    for &x in xs {
        upper_sum += x;
    }
    let upper_avg = upper_sum / xs.len() as f64;
    upper_avg < threshold
}

/// The sanctioned route: compensated accumulation.
pub fn compensated_mean(xs: &[f64]) -> f64 {
    let mut ns = NeumaierSum::new();
    for &x in xs {
        ns.add(x);
    }
    ns.value() / xs.len() as f64
}

/// Integer accumulation is exact.
pub fn count_nonzero(xs: &[u32]) -> u64 {
    let mut n = 0u64;
    for &x in xs {
        if x != 0 {
            n += 1;
        }
    }
    n
}

/// Per-element add into the iterated slot is not loop-carried.
pub fn add_assign_lanes(acc: &mut [f64], src: &[f64]) {
    for (x, y) in acc.iter_mut().zip(src) {
        *x += y;
    }
}

/// Integer turbofish sums are exact.
pub fn total_width(widths: &[usize]) -> usize {
    widths.iter().sum::<usize>()
}
