//@ path: crates/core/src/candidates.rs
//! Fixture: string-keyed collections in a hot-path crate. Every probe of
//! these re-hashes or re-compares the full label text; the interned data
//! model keys by `LabelSym`/`EventId` instead.

use std::collections::{BTreeMap, BTreeSet, HashMap};

pub struct NameIndex {
    by_name: HashMap<String, usize>, //~ string-keyed-map
    ranked: BTreeMap<String, f64>,   //~ string-keyed-map
    seen: BTreeSet<String>,          //~ string-keyed-map
}

pub struct BorrowedIndex<'a> {
    by_name: HashMap<&'a str, usize>, //~ string-keyed-map
}

pub fn lookup(index: &NameIndex, name: &str) -> Option<usize> {
    index.by_name.get(name).copied()
}
