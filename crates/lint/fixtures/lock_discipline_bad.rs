//@ path: crates/core/src/engine.rs
//! Seeded pool-protocol mutations modeled on the PR 7 worker pool:
//! a guard held across the rendezvous, both nesting orders of the
//! state/slot locks, and a panic under a held guard outside
//! `catch_unwind`.

pub struct PoolState {
    pub epoch: u64,
}

pub struct PoolSlot {
    pub delta: f64,
}

/// The seeded mutation: the shard publishes while still holding the
/// state guard across the barrier — a panicking peer never arrives and
/// this thread parks forever with the lock.
fn run_shard_holding_guard(state: &RwLock<PoolState>, barrier: &Barrier) {
    let st = state.write().unwrap_or_else(|e| e.into_inner());
    barrier.wait(); //~ lock-discipline
    drop(st);
}

fn shard_then_state(slots: &[Mutex<PoolSlot>], state: &RwLock<PoolState>) {
    let slot = slots[0].lock().unwrap_or_else(|e| e.into_inner());
    let st = state.read().unwrap_or_else(|e| e.into_inner()); //~ lock-discipline
    drop(st);
    drop(slot);
}

fn state_then_shard(slots: &[Mutex<PoolSlot>], state: &RwLock<PoolState>) {
    let st = state.write().unwrap_or_else(|e| e.into_inner());
    let slot = slots[0].lock().unwrap_or_else(|e| e.into_inner()); //~ lock-discipline
    drop(slot);
    drop(st);
}

fn publish_or_die(slots: &[Mutex<PoolSlot>], ready: bool) {
    let slot = slots[0].lock().unwrap_or_else(|e| e.into_inner());
    if !ready {
        // the next line panics while the slot guard is held //~v lock-discipline
        panic!("publish outside protocol"); //~ panic-surface
    }
    drop(slot);
}
