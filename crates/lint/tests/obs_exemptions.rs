//! PR4 scoping audit: the `ems-obs` crate is the *only* result-adjacent
//! place allowed to read the wall clock, and only through audited
//! suppressions. These tests pin that contract:
//!
//! 1. `obs` is watched by both the wall-clock and nondeterminism rules
//!    (so its clock reads cannot go unreviewed);
//! 2. the suppressions in `crates/obs/src/record.rs` are load-bearing —
//!    stripping them makes the lint fire, so they cover real clock
//!    reads rather than decorating dead lines (the lint's own
//!    unused-suppression rule covers the converse);
//! 3. no similarity-producing crate reads the clock at all, with or
//!    without a suppression — timing must stay quarantined in `obs`
//!    (span `dur_us` only) and the `eval` timer module.

use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels below the workspace root")
        .to_path_buf()
}

#[test]
fn obs_is_watched_by_clock_and_nondeterminism_rules() {
    assert!(
        ems_lint::config::CLOCK_CRATES.contains(&"obs"),
        "obs must stay in CLOCK_CRATES so span timing needs audited suppressions"
    );
    assert!(
        ems_lint::config::NONDET_CRATES.contains(&"obs"),
        "obs must stay in NONDET_CRATES: trace/metrics exports feed golden tests"
    );
    assert!(
        !ems_lint::config::CLOCK_EXEMPT
            .iter()
            .any(|p| p.starts_with("crates/obs/")),
        "obs files must not be blanket-exempt; each clock read carries its own reason"
    );
}

#[test]
fn obs_clock_suppressions_are_load_bearing() {
    let path = workspace_root().join("crates/obs/src/record.rs");
    let source = std::fs::read_to_string(&path).expect("crates/obs/src/record.rs exists");

    assert!(
        source.contains("ems-lint: allow(wall-clock-randomness,"),
        "record.rs must justify its span-timing clock reads with a reasoned suppression"
    );

    // With the suppressions present the file lints clean.
    let with = ems_lint::lint_source("crates/obs/src/record.rs", &source);
    assert!(
        with.is_empty(),
        "crates/obs/src/record.rs should lint clean as committed: {with:#?}"
    );

    // With them stripped the wall-clock rule must fire: the directives
    // cover genuine clock reads, not dead lines.
    let stripped: String = source
        .lines()
        .filter(|l| !l.contains("ems-lint: allow(wall-clock-randomness,"))
        .collect::<Vec<_>>()
        .join("\n");
    let without = ems_lint::lint_source("crates/obs/src/record.rs", &stripped);
    assert!(
        without.iter().any(|d| d.rule == "wall-clock-randomness"),
        "stripping the suppressions must expose wall-clock findings, got: {without:#?}"
    );
}

/// Similarity-producing crates may not grow new clock reads: the audited
/// timing sites among them are the solve-phase measurement in
/// `crates/core/src/engine.rs`, the substrate build timer in
/// `crates/core/src/substrate.rs` and the session stage timers in
/// `crates/core/src/session.rs` (all of which feed `RunStats`/
/// `SessionStats`/obs spans only), and their suppression reasons must say
/// the timing stays telemetry-only. Any new suppression elsewhere fails
/// this test and forces a review.
#[test]
fn similarity_crates_never_read_the_clock() {
    let root = workspace_root();
    let similarity_crates = ["core", "depgraph", "labels", "assignment", "baselines"];
    let mut suppressing_files = Vec::new();
    for file in ems_lint::workspace_files(&root).expect("workspace is readable") {
        let rel = file
            .strip_prefix(&root)
            .expect("workspace file under root")
            .to_string_lossy()
            .replace('\\', "/");
        let class = ems_lint::config::classify(&rel);
        if class.kind != ems_lint::config::FileKind::Library
            || !similarity_crates.contains(&class.crate_name.as_str())
        {
            continue;
        }
        let source = std::fs::read_to_string(&file).expect("readable workspace file");
        let directives: Vec<&str> = source
            .lines()
            .filter(|l| l.contains("ems-lint: allow(wall-clock-randomness"))
            .collect();
        if directives.is_empty() {
            continue;
        }
        for d in &directives {
            assert!(
                d.contains("never similarity values"),
                "{rel}: wall-clock suppression must state that timing never \
                 feeds similarity values: {d}"
            );
        }
        suppressing_files.push(rel);
    }
    suppressing_files.sort();
    assert_eq!(
        suppressing_files,
        vec![
            "crates/core/src/engine.rs".to_string(),
            "crates/core/src/session.rs".to_string(),
            "crates/core/src/substrate.rs".to_string(),
        ],
        "only the engine/substrate/session phase timing may suppress the \
         wall-clock rule in similarity-producing crates; route any new \
         timing through ems-obs spans"
    );
}
