//! PR5 scoping audit for `string-keyed-map`: the two interners in
//! `ems-events` are the *only* sanctioned string→id edges in the watched
//! hot-path crates. Any new `String`/`str`-keyed map elsewhere must either
//! be converted to `LabelSym`/`EventId` keys or grow an entry here after
//! review.

use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels below the workspace root")
        .to_path_buf()
}

#[test]
fn hot_path_crates_are_watched_for_string_keys() {
    for c in ["core", "depgraph", "events"] {
        assert!(
            ems_lint::config::STRING_KEY_CRATES.contains(&c),
            "{c} must stay in STRING_KEY_CRATES: its maps sit on the match hot path"
        );
    }
}

/// Every `string-keyed-map` suppression in the workspace lives at a parse
/// edge in `ems-events`, and each one says so.
#[test]
fn only_the_interners_may_keep_string_keys() {
    let root = workspace_root();
    let mut suppressing_files = Vec::new();
    for file in ems_lint::workspace_files(&root).expect("workspace is readable") {
        let rel = file
            .strip_prefix(&root)
            .expect("workspace file under root")
            .to_string_lossy()
            .replace('\\', "/");
        let source = std::fs::read_to_string(&file).expect("readable workspace file");
        // Built in two pieces so this test's own source never matches.
        let needle = format!("ems-lint: allow({}", "string-keyed-map");
        let directives: Vec<&str> = source.lines().filter(|l| l.contains(&needle)).collect();
        if directives.is_empty() {
            continue;
        }
        for d in &directives {
            assert!(
                d.contains("parse edge"),
                "{rel}: a string-keyed-map suppression must identify its parse/report \
                 edge: {d}"
            );
        }
        suppressing_files.push(rel);
    }
    suppressing_files.sort();
    assert_eq!(
        suppressing_files,
        vec![
            "crates/events/src/interner.rs".to_string(),
            "crates/events/src/sym.rs".to_string(),
        ],
        "only the two interners may suppress string-keyed-map; convert new maps \
         to LabelSym/EventId keys instead"
    );
}
