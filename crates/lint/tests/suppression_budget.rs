//! PR8 suppression budget: the semantic `float-taint` rule replaced the
//! lexical `naive-accumulation` scan precisely so that comparison-only and
//! per-element accumulators stop needing audits. The workspace carried 7
//! lexical suppressions; the dataflow rule needs only 5. This test pins
//! that budget so new escaping accumulators are either routed through
//! `NeumaierSum` or consciously audited here.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels below the workspace root")
        .to_path_buf()
}

fn count_directives(rule: &str) -> BTreeMap<String, usize> {
    let root = workspace_root();
    // Built in two pieces so this test's own source never matches.
    let needle = format!("ems-lint: allow({rule}");
    let mut per_file = BTreeMap::new();
    for file in ems_lint::workspace_files(&root).expect("workspace is readable") {
        let rel = file
            .strip_prefix(&root)
            .expect("workspace file under root")
            .to_string_lossy()
            .replace('\\', "/");
        let source = std::fs::read_to_string(&file).expect("readable workspace file");
        let n = source.lines().filter(|l| l.contains(&needle)).count();
        if n > 0 {
            per_file.insert(rel, n);
        }
    }
    per_file
}

/// The semantic rule strictly shrinks the audit surface: 5 suppressions,
/// down from the 7 the lexical `naive-accumulation` rule required.
#[test]
fn float_taint_suppressions_stay_within_budget() {
    let per_file = count_directives("float-taint");
    let expected: BTreeMap<String, usize> = [
        ("crates/core/src/engine.rs".to_string(), 1),
        ("crates/core/src/kernel.rs".to_string(), 4),
    ]
    .into_iter()
    .collect();
    assert_eq!(
        per_file, expected,
        "float-taint suppressions are budgeted at 5 (engine.rs: 1, kernel.rs: 4); \
         route new loop-carried accumulators through NeumaierSum instead of widening \
         the audit, and shrink this table when one is compensated away"
    );
    let total: usize = per_file.values().sum();
    assert!(
        total < 7,
        "the semantic float-taint rule must need strictly fewer audits than the \
         7 the lexical naive-accumulation scan carried (found {total})"
    );
}

/// The lexical rule is gone for good: no stale directives may linger, since
/// unknown-rule suppressions are themselves findings.
#[test]
fn no_stale_naive_accumulation_directives_remain() {
    let per_file = count_directives("naive-accumulation");
    assert!(
        per_file.is_empty(),
        "stale naive-accumulation suppressions linger in {per_file:?}; the rule \
         was replaced by float-taint in PR8"
    );
}

/// Lock-discipline audits are confined to the pool, whose barrier-separated
/// phases make the two nesting orders provably non-concurrent.
#[test]
fn lock_discipline_suppressions_stay_in_the_pool() {
    let per_file = count_directives("lock-discipline");
    let expected: BTreeMap<String, usize> = [("crates/core/src/engine.rs".to_string(), 2)]
        .into_iter()
        .collect();
    assert_eq!(
        per_file, expected,
        "only the pool's two phase-separated nesting sites may suppress \
         lock-discipline; new nested acquisitions need a global lock order instead"
    );
}
