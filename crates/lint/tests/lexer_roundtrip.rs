//! Workspace-wide lexer span property test.
//!
//! For every `.rs` file the linter walks, the token + comment byte spans
//! must exactly reconstruct the source: spans ascending, non-overlapping,
//! in-bounds, and every byte outside a span is whitespace. Splicing the
//! spanned slices back together with the gap bytes reproduces the file
//! byte-for-byte. This pins the raw-string / nested-block-comment /
//! byte-char / raw-identifier corner cases on the real corpus, not just
//! hand-written samples.

use std::fs;
use std::path::Path;

use ems_lint::lexer::lex;
use ems_lint::workspace_files;

fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("lint crate lives two levels below the workspace root")
}

#[test]
fn token_spans_reconstruct_every_workspace_file() {
    let root = workspace_root();
    let files = workspace_files(root).unwrap();
    assert!(
        files.len() > 40,
        "workspace walk looks broken: only {} files",
        files.len()
    );
    for path in files {
        let src = fs::read_to_string(&path).unwrap();
        let lexed = lex(&src);

        let mut spans: Vec<(u32, u32, &'static str)> = lexed
            .tokens
            .iter()
            .map(|t| (t.start, t.end, "token"))
            .chain(lexed.comments.iter().map(|c| (c.start, c.end, "comment")))
            .collect();
        spans.sort();

        // Rebuild the file from the spans and the whitespace gaps.
        let mut rebuilt = String::with_capacity(src.len());
        let mut cursor = 0usize;
        for &(start, end, what) in &spans {
            let (start, end) = (start as usize, end as usize);
            assert!(
                start >= cursor && end > start && end <= src.len(),
                "{}: bad {} span {}..{} (cursor {})",
                path.display(),
                what,
                start,
                end,
                cursor
            );
            let gap = &src[cursor..start];
            assert!(
                gap.chars().all(char::is_whitespace),
                "{}: non-whitespace {:?} outside any span before byte {}",
                path.display(),
                gap,
                start
            );
            rebuilt.push_str(gap);
            rebuilt.push_str(&src[start..end]);
            cursor = end;
        }
        let tail = &src[cursor..];
        assert!(
            tail.chars().all(char::is_whitespace),
            "{}: non-whitespace tail {:?}",
            path.display(),
            tail
        );
        rebuilt.push_str(tail);
        assert_eq!(rebuilt, src, "{}: reconstruction mismatch", path.display());

        // Spans of text-carrying tokens must match their slice, so rule
        // code can trust `text` to be the literal source spelling.
        for t in &lexed.tokens {
            let slice = &src[t.start as usize..t.end as usize];
            match t.kind {
                ems_lint::lexer::TokKind::Punct | ems_lint::lexer::TokKind::Num { .. } => {
                    assert_eq!(slice, t.text, "{}: span/text mismatch", path.display());
                }
                ems_lint::lexer::TokKind::Ident => {
                    // Raw identifiers keep the `r#` in the span but not
                    // the text (the token *is* the suffixed name).
                    assert!(
                        slice == t.text || slice == format!("r#{}", t.text),
                        "{}: ident span {:?} vs text {:?}",
                        path.display(),
                        slice,
                        t.text
                    );
                }
                _ => {}
            }
        }
    }
}
