//! Self-test harness: every rule ships a positive ("_bad") and negative
//! ("_good") fixture, and the harness asserts the *exact* diagnostics.
//!
//! Expectations live inline in the fixtures:
//! - `//~ <rule>` trailing on a line expects a finding of `<rule>` there;
//! - `//~v <rule>` on its own line expects the finding on the next line
//!   (used where the diagnostic lands on a comment, e.g. directives);
//! - the `//@ path: <virtual path>` header tells the harness which
//!   workspace location the fixture impersonates, since rule scoping is
//!   path-driven.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

fn fixtures_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels below the workspace root")
        .to_path_buf()
}

/// The `//@ path:` header of a fixture.
fn virtual_path(source: &str, file: &Path) -> String {
    let header = source.lines().next().unwrap_or_default();
    header
        .strip_prefix("//@ path:")
        .unwrap_or_else(|| {
            panic!(
                "{} must start with `//@ path: <virtual path>`",
                file.display()
            )
        })
        .trim()
        .to_string()
}

/// Extracts `(line, rule)` expectations from the marker comments.
fn expectations(source: &str) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    for (idx, line) in source.lines().enumerate() {
        let lineno = idx as u32 + 1;
        if let Some(rest) = line.split("//~v").nth(1) {
            out.push((lineno + 1, rest.trim().to_string()));
        } else if let Some(rest) = line.split("//~").nth(1) {
            out.push((lineno, rest.trim().to_string()));
        }
    }
    out.sort();
    out
}

fn fixture_files() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(fixtures_dir())
        .expect("fixtures directory exists")
        .map(|e| e.expect("readable fixture entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "no fixtures found");
    files
}

#[test]
fn bad_fixtures_produce_exactly_the_marked_findings() {
    for file in fixture_files() {
        let name = file.file_name().unwrap().to_string_lossy().to_string();
        if !name.ends_with("_bad.rs") {
            continue;
        }
        let source = std::fs::read_to_string(&file).unwrap();
        let expected = expectations(&source);
        assert!(
            !expected.is_empty(),
            "{name}: a _bad fixture needs `//~` markers"
        );
        let mut got: Vec<(u32, String)> =
            ems_lint::lint_source(&virtual_path(&source, &file), &source)
                .into_iter()
                .map(|d| (d.line, d.rule.to_string()))
                .collect();
        got.sort();
        assert_eq!(got, expected, "{name}: diagnostics diverge from markers");
    }
}

#[test]
fn good_fixtures_are_clean() {
    for file in fixture_files() {
        let name = file.file_name().unwrap().to_string_lossy().to_string();
        if !name.ends_with("_good.rs") {
            continue;
        }
        let source = std::fs::read_to_string(&file).unwrap();
        assert!(
            expectations(&source).is_empty(),
            "{name}: a _good fixture must carry no `//~` markers"
        );
        let diags = ems_lint::lint_source(&virtual_path(&source, &file), &source);
        assert!(diags.is_empty(), "{name}: expected clean, got {diags:#?}");
    }
}

#[test]
fn every_rule_has_a_positive_and_a_negative_fixture() {
    let names: Vec<String> = fixture_files()
        .iter()
        .map(|p| p.file_name().unwrap().to_string_lossy().to_string())
        .collect();
    let mut missing = BTreeSet::new();
    for rule in ems_lint::rules::rule_ids() {
        let stem = rule.replace('-', "_");
        for suffix in ["_bad.rs", "_good.rs"] {
            if !names
                .iter()
                .any(|n| n.starts_with(&stem) && n.ends_with(suffix))
            {
                missing.insert(format!("{rule}{suffix}"));
            }
        }
    }
    assert!(
        missing.is_empty(),
        "rules without fixture coverage: {missing:?}"
    );
}

#[test]
fn every_fixture_maps_to_a_known_rule() {
    let stems: Vec<String> = ems_lint::rules::rule_ids()
        .iter()
        .map(|r| r.replace('-', "_"))
        .collect();
    for file in fixture_files() {
        let name = file.file_name().unwrap().to_string_lossy().to_string();
        assert!(
            stems.iter().any(|s| name.starts_with(s.as_str())),
            "{name}: fixture name must start with a rule id"
        );
    }
}

/// Dogfood: the workspace itself must lint clean — every legacy violation
/// is either fixed or carries an audited suppression.
#[test]
fn workspace_lints_clean() {
    let diags = ems_lint::lint_workspace(&workspace_root()).expect("workspace is readable");
    assert!(
        diags.is_empty(),
        "workspace has unresolved lint findings:\n{}",
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
