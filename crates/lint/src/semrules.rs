//! Semantic rules over the AST + dataflow layers: lock discipline in the
//! worker pool, escaping float taint in the kernel hot paths, and
//! unchecked arithmetic indexing in the CSR code.
//!
//! These rules are scoped by [`crate::config`] watch lists exactly like
//! their lexical siblings, report through the same [`Diagnostic`] shape,
//! and honor the same suppression syntax.

use crate::ast::{self, Expr};
use crate::config;
use crate::dataflow::{self, LockOp, TaintKind};
use crate::diag::Diagnostic;
use crate::resolve::LockKind;
use crate::rules::FileCtx;
use std::collections::{BTreeMap, BTreeSet};

/// `lock-discipline`: guard lifetimes around the pool's rendezvous
/// protocol. Three findings:
/// 1. `Barrier::wait` while holding a guard — a panicking peer never
///    reaches the barrier and the holder deadlocks the pool;
/// 2. lock-order inversion — two lock classes acquired in both nesting
///    orders within the file;
/// 3. a panic site while holding a guard outside `catch_unwind` — the
///    unwind poisons the lock outside the pool's recovery protocol.
pub fn lock_discipline(ctx: &FileCtx<'_>) -> Vec<Diagnostic> {
    if !config::path_matches(&ctx.class.rel_path, config::LOCK_WATCHED) {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut events = Vec::new();
    for (fd, self_ty) in ast::all_fns(ctx.ast) {
        if ctx.in_test(fd.tok) {
            continue;
        }
        events.extend(dataflow::scan_locks(fd, self_ty, ctx.info));
    }

    // Acquisition-order edges: (held class → acquired class), with the
    // first site per (fn, pair) and each class's lock kind.
    let mut edges: BTreeSet<(String, String)> = BTreeSet::new();
    let mut sites: BTreeMap<(String, String, String), usize> = BTreeMap::new();
    let mut kinds: BTreeMap<String, LockKind> = BTreeMap::new();

    for ev in &events {
        match &ev.op {
            LockOp::Acquire { kind, class } => {
                kinds.entry(class.clone()).or_insert(*kind);
                for (_, held_class) in &ev.held {
                    if held_class != class {
                        edges.insert((held_class.clone(), class.clone()));
                        sites
                            .entry((ev.fn_name.clone(), held_class.clone(), class.clone()))
                            .or_insert(ev.tok);
                    }
                }
            }
            LockOp::Wait => {
                if !ev.held.is_empty() {
                    out.push(ctx.diag_at(
                        "lock-discipline",
                        ev.tok,
                        format!(
                            "`Barrier::wait` in `{}` while holding {} — a peer that \
                             panics before the rendezvous leaves this thread parked with \
                             the guard forever; drop guards before waiting",
                            ev.fn_name,
                            held_list(&ev.held)
                        ),
                    ));
                }
            }
            LockOp::PanicSite { what } => {
                if !ev.held.is_empty() && !ev.absorbed {
                    out.push(ctx.diag_at(
                        "lock-discipline",
                        ev.tok,
                        format!(
                            "`{}` in `{}` can panic while holding {} — the unwind \
                             poisons the lock outside the pool's catch_unwind protocol; \
                             drop the guard first or absorb the panic",
                            what,
                            ev.fn_name,
                            held_list(&ev.held)
                        ),
                    ));
                }
            }
        }
    }

    // One inversion diagnostic per (fn, ordered pair) that participates
    // in a cycle.
    for ((fn_name, a, b), tok) in &sites {
        if edges.contains(&(b.clone(), a.clone())) {
            let ka = kinds.get(a).map(|k| k.name()).unwrap_or("lock");
            let kb = kinds.get(b).map(|k| k.name()).unwrap_or("lock");
            out.push(ctx.diag_at(
                "lock-discipline",
                *tok,
                format!(
                    "`{fn_name}` acquires {kb}<{b}> while holding {ka}<{a}>, but the \
                     opposite nesting also occurs in this file — a lock-order cycle \
                     can deadlock the pool; enforce one global acquisition order"
                ),
            ));
        }
    }
    out
}

fn held_list(held: &[(LockKind, String)]) -> String {
    held.iter()
        .map(|(k, c)| format!("{}<{c}>", k.name()))
        .collect::<Vec<_>>()
        .join(", ")
}

/// `float-taint`: loop-carried f64 accumulations and iterator reductions
/// in the watched hot paths whose value escapes into an exported result
/// without passing through a compensated accumulator.
pub fn float_taint(ctx: &FileCtx<'_>) -> Vec<Diagnostic> {
    if !config::path_matches(&ctx.class.rel_path, config::ACCUMULATION_WATCHED) {
        return Vec::new();
    }
    let toks = &ctx.lexed.tokens;
    // The parser drops turbofish, so `.sum::<u32>()` (exact integer sum)
    // is re-checked against the raw tokens after the method name.
    let is_integer_sum = |tok: usize| {
        toks.get(tok + 1).is_some_and(|t| t.is_punct("::"))
            && toks.get(tok + 2).is_some_and(|t| t.is_punct("<"))
            && toks.get(tok + 3).is_some_and(|t| {
                t.kind == crate::lexer::TokKind::Ident && t.text != "f64" && t.text != "f32"
            })
    };
    let mut out = Vec::new();
    for (fd, self_ty) in ast::all_fns(ctx.ast) {
        if ctx.in_test(fd.tok) {
            continue;
        }
        for f in dataflow::scan_float_taint(fd, self_ty, ctx.info, &is_integer_sum) {
            let msg = match f.kind {
                TaintKind::CompoundAssign | TaintKind::SelfAssign => format!(
                    "loop-carried f64 accumulation on `{}` escapes `{}` into an exported \
                     result — drift is O(n·ulp); accumulate through `NeumaierSum` \
                     (crates/core/src/numeric.rs) or justify bitwise seed reproduction \
                     with a suppression",
                    f.name, fd.name
                ),
                TaintKind::IterSum => format!(
                    "iterator `.sum()` in `{}` feeds an exported result uncompensated — \
                     use `compensated_sum` (crates/core/src/numeric.rs)",
                    fd.name
                ),
                TaintKind::IterFold => format!(
                    "float `.fold(...)` reduction in `{}` feeds an exported result \
                     uncompensated — use `NeumaierSum`",
                    fd.name
                ),
            };
            out.push(ctx.diag_at("float-taint", f.tok, msg));
        }
    }
    out
}

/// `index-bounds`: unchecked arithmetic indexing (`a[i + 1]`,
/// `cols[off as usize]`) into params or self fields in the CSR hot
/// paths. A read passes when the file has a validating
/// `from_parts`-style constructor (self fields) or the fn compares the
/// indexed binding's `len()` somewhere (params).
pub fn index_bounds(ctx: &FileCtx<'_>) -> Vec<Diagnostic> {
    if !config::path_matches(&ctx.class.rel_path, config::INDEX_BOUNDS_WATCHED) {
        return Vec::new();
    }
    // A constructor that can reject malformed parts dominates every
    // self-field read in the file: the invariants hold post-construction.
    let validated_ctor = ast::all_fns(ctx.ast).iter().any(|(fd, _)| {
        fd.name.contains("from_parts")
            && fd
                .ret
                .as_deref()
                .is_some_and(|r| r.contains("Result") || r.contains("Option"))
    });

    let mut out = Vec::new();
    for (fd, _) in ast::all_fns(ctx.ast) {
        if ctx.in_test(fd.tok) {
            continue;
        }
        let Some(body) = &fd.body else { continue };
        let params: BTreeSet<&str> = fd.params.iter().map(|p| p.name.as_str()).collect();

        // Bindings whose length is compared somewhere in this fn: every
        // name appearing in a comparison that also mentions `.len()`.
        let mut guarded: BTreeSet<String> = BTreeSet::new();
        ast::walk_block(body, &mut |e| {
            if let Expr::Binary { op, .. } = e {
                if matches!(op.as_str(), "<" | "<=" | ">" | ">=" | "==" | "!=") && mentions_len(e) {
                    collect_names(e, &mut guarded);
                }
            }
            true
        });

        ast::walk_block(body, &mut |e| {
            if let Expr::Index { base, index, tok } = e {
                if let Some((key, via_self)) = index_base_key(base) {
                    let relevant = via_self || params.contains(key);
                    let dominated = (via_self && validated_ctor) || guarded.contains(key);
                    if relevant && !dominated && arithmetic_index(index) {
                        out.push(ctx.diag_at(
                            "index-bounds",
                            *tok,
                            format!(
                                "unchecked arithmetic index into `{key}` in `{}` — a \
                                 malformed offsets table panics the row scan; dominate \
                                 the read with a validating `from_parts` constructor or \
                                 an explicit `len()` check, or use `get`",
                                fd.name
                            ),
                        ));
                    }
                }
            }
            true
        });
    }
    out
}

/// Whether the subtree contains a `.len()` call.
fn mentions_len(e: &Expr) -> bool {
    let mut found = false;
    ast::walk_expr(e, &mut |e| {
        if matches!(e, Expr::MethodCall { method, .. } if method == "len") {
            found = true;
        }
        !found
    });
    found
}

/// Collects all path/field names in a subtree.
fn collect_names(e: &Expr, out: &mut BTreeSet<String>) {
    ast::walk_expr(e, &mut |e| {
        match e {
            Expr::Path { segs, .. } => {
                if let Some(n) = segs.last() {
                    out.insert(n.clone());
                }
            }
            Expr::Field { name, .. } => {
                out.insert(name.clone());
            }
            _ => {}
        }
        true
    });
}

/// The name an index base reads from: `xs[..]` → (`xs`, false),
/// `self.offs[..]` → (`offs`, true). Locals and complex bases yield
/// `None` (out of scope for this rule).
fn index_base_key(base: &Expr) -> Option<(&str, bool)> {
    match base {
        Expr::Path { segs, .. } => {
            let n = segs.last()?;
            (n != "self").then_some((n.as_str(), false))
        }
        Expr::Field {
            base: inner, name, ..
        } => match &**inner {
            Expr::Path { segs, .. } if segs.last().map(String::as_str) == Some("self") => {
                Some((name.as_str(), true))
            }
            _ => index_base_key(inner),
        },
        Expr::Unary { expr, .. } => index_base_key(expr),
        _ => None,
    }
}

/// Whether an index expression is arithmetic (as opposed to a plain
/// binding, literal, or range — ranges slice, they don't read one slot).
fn arithmetic_index(e: &Expr) -> bool {
    matches!(
        e,
        Expr::Binary { .. }
            | Expr::Cast { .. }
            | Expr::Index { .. }
            | Expr::Call { .. }
            | Expr::MethodCall { .. }
    )
}
