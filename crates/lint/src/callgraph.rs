//! `panic-reachability`: a workspace rule over a name-based call graph.
//!
//! A *panic site* is an unwrap/expect call or panic-family macro in
//! library code outside tests. A site is neutralized when it sits inside
//! a `catch_unwind` argument (the pool's absorption protocol) or carries
//! an audited `panic-surface` suppression — auditing the site audits
//! every path to it. Remaining sites make their function *panicky*;
//! panickiness propagates backwards over calls (free-fn names and method
//! names alike — the graph is name-based, so a shared name merges nodes,
//! which over-approximates reachability and never hides a path). Every
//! `pub` library function that can reach an unneutralized site is
//! reported at its declaration.

use crate::allow;
use crate::ast;
use crate::config::FileKind;
use crate::dataflow::{self, LockOp};
use crate::diag::Diagnostic;
use crate::FileAnalysis;
use std::collections::{BTreeMap, BTreeSet};

/// Rule id (also valid in suppressions).
pub const RULE: &str = "panic-reachability";
/// One-line summary for `ems-lint rules`.
pub const SUMMARY: &str =
    "pub library fn can reach an unaudited unwrap/expect/panic! through the call graph";

#[derive(Default)]
struct Node {
    /// First unneutralized panic site among same-named fns:
    /// (construct, path, line).
    site: Option<(String, String, u32)>,
    /// Names this fn calls (free fns and methods).
    calls: BTreeSet<String>,
}

/// Runs the rule over all analyzed files.
pub fn panic_reachability(files: &[FileAnalysis]) -> Vec<Diagnostic> {
    let mut graph: BTreeMap<String, Node> = BTreeMap::new();
    // (name, is_pub, tok, file index, calls) per definition, for reporting.
    let mut defs: Vec<(String, bool, usize, usize, BTreeSet<String>)> = Vec::new();

    for (fi, fa) in files.iter().enumerate() {
        if fa.class.kind != FileKind::Library {
            continue;
        }
        // Lines with an audited panic-surface suppression: those sites
        // are deliberately reviewed and do not propagate.
        let (sups, _) = allow::parse_suppressions(&fa.lexed, &fa.class.rel_path);
        let audited: BTreeSet<u32> = sups
            .iter()
            .filter(|s| s.rule == "panic-surface")
            .map(|s| s.effective_line)
            .collect();

        for (fd, self_ty) in ast::all_fns(&fa.ast) {
            if fa.in_test(fd.tok) {
                continue;
            }
            let mut calls = BTreeSet::new();
            if let Some(body) = &fd.body {
                ast::walk_block(body, &mut |e| {
                    match e {
                        ast::Expr::Call { callee, .. } => {
                            if let Some(n) = callee.as_path_name() {
                                calls.insert(n.to_string());
                            }
                        }
                        ast::Expr::MethodCall { method, .. } => {
                            calls.insert(method.clone());
                        }
                        _ => {}
                    }
                    true
                });
            }
            let site = dataflow::scan_locks(fd, self_ty, &fa.info)
                .into_iter()
                .find_map(|ev| match ev.op {
                    LockOp::PanicSite { what } if !ev.absorbed => {
                        let line = fa.lexed.tokens[ev.tok].line;
                        (!audited.contains(&line)).then(|| (what, fa.class.rel_path.clone(), line))
                    }
                    _ => None,
                });

            let node = graph.entry(fd.name.clone()).or_default();
            if node.site.is_none() {
                node.site = site;
            }
            node.calls.extend(calls.iter().cloned());
            defs.push((fd.name.clone(), fd.is_pub, fd.tok, fi, calls));
        }
    }

    // Backward fixpoint: a name is panicky if it has a site or calls a
    // panicky name.
    let mut panicky: BTreeSet<String> = graph
        .iter()
        .filter(|(_, n)| n.site.is_some())
        .map(|(k, _)| k.clone())
        .collect();
    loop {
        let mut grew = false;
        for (name, node) in &graph {
            if !panicky.contains(name) && node.calls.iter().any(|c| panicky.contains(c)) {
                panicky.insert(name.clone());
                grew = true;
            }
        }
        if !grew {
            break;
        }
    }

    let mut out = Vec::new();
    for (name, is_pub, tok, fi, calls) in &defs {
        if !is_pub {
            continue;
        }
        let fa = &files[*fi];
        let own = graph.get(name).and_then(|n| n.site.clone());
        let reason = if let Some((what, path, line)) = own {
            format!("contains `{what}` at {path}:{line}")
        } else if let Some(callee) = calls.iter().find(|c| panicky.contains(*c)) {
            format!("calls panicky `{callee}`")
        } else {
            continue;
        };
        let t = &fa.lexed.tokens[*tok];
        out.push(Diagnostic {
            rule: RULE,
            path: fa.class.rel_path.clone(),
            line: t.line,
            col: t.col,
            message: format!(
                "pub fn `{name}` can reach an unaudited panic ({reason}) — absorb it \
                 with catch_unwind, return an error, or audit the site with a \
                 `panic-surface` suppression"
            ),
        });
    }
    out
}
