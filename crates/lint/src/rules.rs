//! The rule set. Each rule is a pure function over one file's analysis
//! (token stream + AST + resolver tables); findings carry the rule id, a
//! span, and the required fix.
//!
//! The lexical rules here are deliberately conservative where types are
//! invisible: `float-ordering` flags `.max(...)`/`.min(...)` only when the
//! argument list carries float evidence (a float literal or an `f64::`
//! path). The semantic rules ([`crate::semrules`], [`crate::callgraph`])
//! consume the AST and dataflow layers instead. Either way, misses are
//! possible; false findings are not supposed to happen, and when one does
//! the audited suppression in [`crate::allow`] is the out.

use crate::config::{self, FileClass, FileKind};
use crate::diag::Diagnostic;
use crate::lexer::{Lexed, TokKind, Token};

/// Everything a rule needs about one file.
pub struct FileCtx<'a> {
    /// Path-derived classification.
    pub class: &'a FileClass,
    /// Token stream + comments.
    pub lexed: &'a Lexed,
    /// Parsed AST of the file.
    pub ast: &'a crate::ast::File,
    /// Resolver tables (struct fields) for the file.
    pub info: &'a crate::resolve::FileInfo,
    /// Token-index ranges covered by `#[cfg(test)]` / `#[test]` items.
    pub test_regions: &'a [(usize, usize)],
}

impl FileCtx<'_> {
    /// Whether token `i` sits inside a test-only item.
    pub fn in_test(&self, i: usize) -> bool {
        self.class.kind == FileKind::Test
            || self.test_regions.iter().any(|&(lo, hi)| i >= lo && i < hi)
    }

    fn diag(&self, rule: &'static str, tok: &Token, message: String) -> Diagnostic {
        Diagnostic {
            rule,
            path: self.class.rel_path.clone(),
            line: tok.line,
            col: tok.col,
            message,
        }
    }

    /// `diag` anchored by token index (AST anchors carry indexes).
    pub(crate) fn diag_at(&self, rule: &'static str, tok: usize, message: String) -> Diagnostic {
        self.diag(rule, &self.lexed.tokens[tok], message)
    }
}

/// One registered rule.
pub struct Rule {
    /// Stable identifier used in diagnostics and suppressions.
    pub id: &'static str,
    /// One-line description for `ems-lint rules`.
    pub summary: &'static str,
    /// The check itself.
    pub check: fn(&FileCtx<'_>) -> Vec<Diagnostic>,
}

/// The registry, in reporting order.
pub const RULES: &[Rule] = &[
    Rule {
        id: "float-ordering",
        summary: "NaN-unsafe f64 ordering (partial_cmp, float max/min) outside numeric.rs — use total_cmp",
        check: float_ordering,
    },
    Rule {
        id: "float-taint",
        summary: "raw f64 accumulation in kernel/engine/sim hot paths escaping to an exported result — use NeumaierSum/compensated_sum",
        check: crate::semrules::float_taint,
    },
    Rule {
        id: "lock-discipline",
        summary: "guard held across Barrier::wait, lock-order cycles, or panics under a guard in the worker pool",
        check: crate::semrules::lock_discipline,
    },
    Rule {
        id: "index-bounds",
        summary: "unchecked arithmetic indexing in CSR hot paths without a validating constructor or len() check",
        check: crate::semrules::index_bounds,
    },
    Rule {
        id: "panic-surface",
        summary: "unwrap/expect/panic-family macros in library code outside tests",
        check: panic_surface,
    },
    Rule {
        id: "nondeterminism",
        summary: "iteration over HashMap/HashSet in result-producing crates — use BTreeMap/BTreeSet or sort",
        check: nondeterminism,
    },
    Rule {
        id: "wall-clock-randomness",
        summary: "clock reads or RNG in result-producing paths",
        check: wall_clock_randomness,
    },
    Rule {
        id: "string-keyed-map",
        summary: "String/str-keyed map or set in a hot-path crate — key by interned LabelSym/EventId",
        check: string_keyed_map,
    },
    Rule {
        id: "unsafe-audit",
        summary: "`unsafe` without an adjacent `// SAFETY:` audit comment",
        check: unsafe_audit,
    },
];

/// All valid rule ids, including the workspace-level call-graph rule and
/// the directive-hygiene pseudo-rule.
pub fn rule_ids() -> Vec<&'static str> {
    let mut ids: Vec<&'static str> = RULES.iter().map(|r| r.id).collect();
    ids.push(crate::callgraph::RULE);
    ids.push(crate::allow::SUPPRESSION_RULE);
    ids
}

/// Finds token ranges of items gated on test builds: an attribute whose
/// tokens include `cfg`+`test` (or bare `#[test]`), covering the item
/// that follows through its closing brace or semicolon.
pub fn find_test_regions(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !(tokens[i].is_punct("#") && tokens.get(i + 1).is_some_and(|t| t.is_punct("["))) {
            i += 1;
            continue;
        }
        // Scan the attribute body to its matching `]`.
        let mut j = i + 2;
        let mut depth = 1usize;
        let mut has_cfg_test = false;
        let is_bare_test = tokens.get(j).is_some_and(|t| t.is_ident("test"))
            && tokens.get(j + 1).is_some_and(|t| t.is_punct("]"));
        let mut saw_cfg = false;
        while j < tokens.len() && depth > 0 {
            let t = &tokens[j];
            if t.is_punct("[") {
                depth += 1;
            } else if t.is_punct("]") {
                depth -= 1;
            } else if t.is_ident("cfg") || t.is_ident("cfg_attr") {
                saw_cfg = true;
            } else if t.is_ident("test") && saw_cfg {
                has_cfg_test = true;
            }
            j += 1;
        }
        if !(has_cfg_test || is_bare_test) {
            i = j;
            continue;
        }
        // Skip any further attributes between the cfg and the item.
        let mut k = j;
        while k < tokens.len()
            && tokens[k].is_punct("#")
            && tokens.get(k + 1).is_some_and(|t| t.is_punct("["))
        {
            let mut d = 1usize;
            k += 2;
            while k < tokens.len() && d > 0 {
                if tokens[k].is_punct("[") {
                    d += 1;
                } else if tokens[k].is_punct("]") {
                    d -= 1;
                }
                k += 1;
            }
        }
        // The item runs to its matching close brace, or to `;` for
        // brace-less items (`mod tests;`, `use ...;`).
        let mut end = k;
        let mut brace_depth = 0usize;
        let mut entered = false;
        while end < tokens.len() {
            let t = &tokens[end];
            if t.is_punct("{") {
                brace_depth += 1;
                entered = true;
            } else if t.is_punct("}") {
                brace_depth = brace_depth.saturating_sub(1);
                if entered && brace_depth == 0 {
                    end += 1;
                    break;
                }
            } else if t.is_punct(";") && !entered {
                end += 1;
                break;
            }
            end += 1;
        }
        regions.push((i, end));
        i = end;
    }
    regions
}

/// Whether the argument tokens of a call carry float evidence: a float
/// literal, an `f64::`/`f32::` path, or a float special constant.
fn args_have_float_evidence(tokens: &[Token], open_paren: usize) -> bool {
    let mut depth = 0usize;
    let mut j = open_paren;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.is_punct("(") {
            depth += 1;
        } else if t.is_punct(")") {
            depth -= 1;
            if depth == 0 {
                return false;
            }
        } else {
            let float_path = (t.is_ident("f64") || t.is_ident("f32"))
                && tokens.get(j + 1).is_some_and(|n| n.is_punct("::"));
            let float_const =
                t.is_ident("NAN") || t.is_ident("INFINITY") || t.is_ident("NEG_INFINITY");
            if matches!(t.kind, TokKind::Num { float: true }) || float_path || float_const {
                return true;
            }
        }
        j += 1;
    }
    false
}

fn float_ordering(ctx: &FileCtx<'_>) -> Vec<Diagnostic> {
    if config::path_matches(&ctx.class.rel_path, config::FLOAT_ORDERING_EXEMPT) {
        return Vec::new();
    }
    let toks = &ctx.lexed.tokens;
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if ctx.in_test(i) || t.kind != TokKind::Ident {
            continue;
        }
        if t.text == "partial_cmp" {
            out.push(
                ctx.diag(
                    "float-ordering",
                    t,
                    "`partial_cmp` is NaN-unsafe (Theorem 1's monotone convergence breaks under \
                 unordered comparisons) — use `total_cmp`"
                        .to_string(),
                ),
            );
            continue;
        }
        if (t.text == "max" || t.text == "min")
            && i > 0
            && (toks[i - 1].is_punct(".")
                || (toks[i - 1].is_punct("::") && i >= 2 && toks[i - 2].is_ident("f64")))
            && toks.get(i + 1).is_some_and(|n| n.is_punct("("))
            && (toks[i - 1].is_punct("::") || args_have_float_evidence(toks, i + 1))
        {
            out.push(ctx.diag(
                "float-ordering",
                t,
                format!(
                    "float `{}` silently drops NaN operands — fold with `total_cmp` (or justify \
                     NaN-freedom with a suppression)",
                    t.text
                ),
            ));
        }
    }
    out
}

fn panic_surface(ctx: &FileCtx<'_>) -> Vec<Diagnostic> {
    if ctx.class.kind != FileKind::Library {
        return Vec::new();
    }
    let toks = &ctx.lexed.tokens;
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if ctx.in_test(i) || t.kind != TokKind::Ident {
            continue;
        }
        let method_call =
            i > 0 && toks[i - 1].is_punct(".") && toks.get(i + 1).is_some_and(|n| n.is_punct("("));
        if method_call
            && matches!(
                t.text.as_str(),
                "unwrap" | "expect" | "unwrap_err" | "expect_err"
            )
        {
            out.push(ctx.diag(
                "panic-surface",
                t,
                format!(
                    "`.{}()` can panic in library code — return the crate's error type (PR 1 \
                     taxonomy) or justify the invariant with a suppression",
                    t.text
                ),
            ));
            continue;
        }
        if matches!(
            t.text.as_str(),
            "panic" | "unreachable" | "todo" | "unimplemented"
        ) && toks.get(i + 1).is_some_and(|n| n.is_punct("!"))
        {
            out.push(ctx.diag(
                "panic-surface",
                t,
                format!(
                    "`{}!` in library code aborts the caller — return an error or justify with \
                     a suppression",
                    t.text
                ),
            ));
        }
    }
    out
}

/// Hash-collection iteration methods whose visit order is seeded per
/// process by `RandomState`.
const HASH_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
];

fn nondeterminism(ctx: &FileCtx<'_>) -> Vec<Diagnostic> {
    if !config::NONDET_CRATES.contains(&ctx.class.crate_name.as_str())
        || ctx.class.kind != FileKind::Library
    {
        return Vec::new();
    }
    let toks = &ctx.lexed.tokens;
    // Pass 1: identifiers bound to a hash collection, from `name: HashMap`
    // (let/field/param) or `name = HashMap::...` declarations. The type
    // path may be qualified (`std::collections::HashMap`).
    let mut hash_idents: Vec<&str> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !(t.is_ident("HashMap") || t.is_ident("HashSet")) {
            continue;
        }
        // Walk back over a leading path (`std :: collections ::`).
        let mut head = i;
        while head >= 2 && toks[head - 1].is_punct("::") && toks[head - 2].kind == TokKind::Ident {
            head -= 2;
        }
        if head == 0 {
            continue;
        }
        let before = &toks[head - 1];
        let binder = if (before.is_punct(":") || before.is_punct("=")) && head >= 2 {
            Some(&toks[head - 2])
        } else if before.is_punct("&") && head >= 3 && toks[head - 2].is_punct(":") {
            Some(&toks[head - 3])
        } else {
            None
        };
        if let Some(b) = binder {
            if b.kind == TokKind::Ident {
                hash_idents.push(&b.text);
            }
        }
    }
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if ctx.in_test(i) || t.kind != TokKind::Ident {
            continue;
        }
        let tracked = hash_idents.contains(&t.text.as_str());
        // `map.iter()` / `map.values()` / ... on a tracked binding.
        if tracked
            && toks.get(i + 1).is_some_and(|n| n.is_punct("."))
            && toks
                .get(i + 2)
                .is_some_and(|m| HASH_ITER_METHODS.contains(&m.text.as_str()))
            && toks.get(i + 3).is_some_and(|n| n.is_punct("("))
        {
            out.push(ctx.diag(
                "nondeterminism",
                t,
                format!(
                    "iterating hash collection `{}`: visit order is randomized per process — \
                     use BTreeMap/BTreeSet, or sort before consuming and justify with a \
                     suppression",
                    t.text
                ),
            ));
            continue;
        }
        // `for ... in [&][mut] map`.
        if tracked && i > 0 {
            let mut j = i;
            while j > 0 && (toks[j - 1].is_punct("&") || toks[j - 1].is_ident("mut")) {
                j -= 1;
            }
            if j > 0 && toks[j - 1].is_ident("in") {
                out.push(ctx.diag(
                    "nondeterminism",
                    t,
                    format!(
                        "`for` over hash collection `{}`: visit order is randomized per \
                         process — use BTreeMap/BTreeSet",
                        t.text
                    ),
                ));
                continue;
            }
        }
        // `pub fn ... -> ... HashMap/HashSet`: callers inherit the
        // randomized order. (`pub(crate)` visibility qualifiers included.)
        if t.is_ident("pub") {
            let mut j = i + 1;
            if toks.get(j).is_some_and(|n| n.is_punct("(")) {
                while j < toks.len() && !toks[j].is_punct(")") {
                    j += 1;
                }
                j += 1;
            }
            if !toks.get(j).is_some_and(|n| n.is_ident("fn")) {
                continue;
            }
            let fn_name = j + 1;
            let mut j = fn_name;
            let mut arrow = false;
            while j < toks.len() && !toks[j].is_punct("{") && !toks[j].is_punct(";") {
                if toks[j].is_punct("->") {
                    arrow = true;
                }
                if arrow && (toks[j].is_ident("HashMap") || toks[j].is_ident("HashSet")) {
                    out.push(
                        ctx.diag(
                            "nondeterminism",
                            &toks[fn_name],
                            "public fn returns a hash collection: callers inherit randomized \
                         iteration order — return BTreeMap/BTreeSet or a sorted Vec"
                                .to_string(),
                        ),
                    );
                    break;
                }
                j += 1;
            }
        }
    }
    out
}

fn wall_clock_randomness(ctx: &FileCtx<'_>) -> Vec<Diagnostic> {
    if !config::CLOCK_CRATES.contains(&ctx.class.crate_name.as_str())
        || ctx.class.kind != FileKind::Library
        || config::path_matches(&ctx.class.rel_path, config::CLOCK_EXEMPT)
    {
        return Vec::new();
    }
    let toks = &ctx.lexed.tokens;
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if ctx.in_test(i) || t.kind != TokKind::Ident {
            continue;
        }
        if (t.is_ident("Instant") || t.is_ident("SystemTime"))
            && toks.get(i + 1).is_some_and(|n| n.is_punct("::"))
            && toks.get(i + 2).is_some_and(|n| n.is_ident("now"))
        {
            out.push(ctx.diag(
                "wall-clock-randomness",
                t,
                format!(
                    "`{}::now()` in a result-producing path makes output depend on the host \
                     clock — confine timing to RunStats/eval::timer and justify with a \
                     suppression",
                    t.text
                ),
            ));
            continue;
        }
        if t.is_ident("StdRng") || t.is_ident("ems_rng") || t.is_ident("thread_rng") {
            out.push(ctx.diag(
                "wall-clock-randomness",
                t,
                format!(
                    "`{}` in a result-producing crate: randomness must enter only through \
                     seeded generators in `synth`/`rng`",
                    t.text
                ),
            ));
        }
    }
    out
}

/// Keyed collections whose first generic argument is the key (for sets,
/// the element — probing one still hashes/compares the full string).
const KEYED_COLLECTIONS: &[&str] = &["HashMap", "BTreeMap", "HashSet", "BTreeSet"];

fn string_keyed_map(ctx: &FileCtx<'_>) -> Vec<Diagnostic> {
    if !config::STRING_KEY_CRATES.contains(&ctx.class.crate_name.as_str())
        || ctx.class.kind != FileKind::Library
    {
        return Vec::new();
    }
    let toks = &ctx.lexed.tokens;
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if ctx.in_test(i)
            || t.kind != TokKind::Ident
            || !KEYED_COLLECTIONS.contains(&t.text.as_str())
            || !toks.get(i + 1).is_some_and(|n| n.is_punct("<"))
        {
            continue;
        }
        // The key type, skipping reference sigils and lifetimes
        // (`HashMap<&'a str, _>` is still a string-keyed probe).
        let mut j = i + 2;
        while toks
            .get(j)
            .is_some_and(|n| n.is_punct("&") || n.kind == TokKind::Lifetime)
        {
            j += 1;
        }
        let Some(key) = toks.get(j) else {
            continue;
        };
        if key.is_ident("String") || key.is_ident("str") {
            out.push(ctx.diag(
                "string-keyed-map",
                t,
                format!(
                    "`{}` keyed by `{}` hashes/compares label text on every probe — key by \
                     interned `LabelSym`/`EventId` (crates/events/src/sym.rs) and resolve \
                     strings only at the parse/report edges",
                    t.text, key.text
                ),
            ));
        }
    }
    out
}

fn unsafe_audit(ctx: &FileCtx<'_>) -> Vec<Diagnostic> {
    let toks = &ctx.lexed.tokens;
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if ctx.in_test(i) || !t.is_ident("unsafe") {
            continue;
        }
        let audited = ctx.lexed.comments.iter().any(|c| {
            c.text.trim().starts_with("SAFETY:")
                && c.line <= t.line
                && t.line.saturating_sub(c.line) <= 3
        });
        if !audited {
            out.push(
                ctx.diag(
                    "unsafe-audit",
                    t,
                    "`unsafe` without an adjacent `// SAFETY:` comment — document the invariant \
                 that makes this sound (and keep `#![forbid(unsafe_code)]` wherever possible)"
                        .to_string(),
                ),
            );
        }
    }
    out
}
