//! Suppression directives — the audited escape hatch.
//!
//! A finding is suppressed by a comment of the form
//! `ems-lint: allow(<rule>, <reason>)` placed either on the offending line
//! (trailing) or on the line directly above it. The reason is mandatory;
//! a suppression that names an unknown rule, omits its reason, or matches
//! no finding is itself reported under the `suppression` rule — there is
//! no way to turn a rule off silently.

use crate::diag::Diagnostic;
use crate::lexer::Lexed;
use crate::rules::rule_ids;

/// The rule id under which directive problems are reported.
pub const SUPPRESSION_RULE: &str = "suppression";

/// One parsed, well-formed suppression.
#[derive(Debug)]
pub struct Suppression {
    /// Rule this suppression targets.
    pub rule: String,
    /// Code line the suppression covers.
    pub effective_line: u32,
    /// Source line of the directive (for unused reporting).
    pub directive_line: u32,
    /// Whether any finding consumed it.
    pub used: bool,
}

/// Extracts suppressions from comments. Malformed directives are returned
/// as diagnostics immediately.
pub fn parse_suppressions(lexed: &Lexed, path: &str) -> (Vec<Suppression>, Vec<Diagnostic>) {
    let mut sups = Vec::new();
    let mut diags = Vec::new();
    for c in &lexed.comments {
        let body = c
            .text
            .trim()
            .trim_start_matches('!')
            .trim_start_matches('/');
        let trimmed = body.trim();
        let Some(rest) = trimmed.strip_prefix("ems-lint:") else {
            continue;
        };
        let rest = rest.trim();
        let mut fail = |msg: &str| {
            diags.push(Diagnostic {
                rule: SUPPRESSION_RULE,
                path: path.to_string(),
                line: c.line,
                col: 1,
                message: msg.to_string(),
            });
        };
        let Some(inner) = rest
            .strip_prefix("allow(")
            .and_then(|r| r.strip_suffix(')'))
        else {
            fail("malformed directive: expected `ems-lint: allow(<rule>, <reason>)`");
            continue;
        };
        let Some((rule, reason)) = inner.split_once(',') else {
            fail("suppression without a reason: `allow(<rule>, <reason>)` requires both");
            continue;
        };
        let rule = rule.trim();
        let reason = reason.trim();
        if reason.is_empty() {
            fail("suppression without a reason: the reason may not be empty");
            continue;
        }
        if !rule_ids().contains(&rule) {
            diags.push(Diagnostic {
                rule: SUPPRESSION_RULE,
                path: path.to_string(),
                line: c.line,
                col: 1,
                message: format!("unknown rule `{rule}` in suppression"),
            });
            continue;
        }
        // A trailing directive covers its own line; a standalone one covers
        // the next line that holds any code token.
        let effective_line = if c.trailing {
            c.line
        } else {
            lexed
                .tokens
                .iter()
                .map(|t| t.line)
                .find(|&l| l > c.line)
                .unwrap_or(c.line)
        };
        sups.push(Suppression {
            rule: rule.to_string(),
            effective_line,
            directive_line: c.line,
            used: false,
        });
    }
    (sups, diags)
}

/// Applies suppressions to `diags`: matching findings are dropped and the
/// suppression marked used; afterwards every unused suppression becomes a
/// finding of its own.
pub fn apply_suppressions(
    mut diags: Vec<Diagnostic>,
    sups: &mut [Suppression],
    path: &str,
) -> Vec<Diagnostic> {
    diags.retain(|d| {
        for s in sups.iter_mut() {
            if s.rule == d.rule && s.effective_line == d.line {
                s.used = true;
                return false;
            }
        }
        true
    });
    for s in sups.iter().filter(|s| !s.used) {
        diags.push(Diagnostic {
            rule: SUPPRESSION_RULE,
            path: path.to_string(),
            line: s.directive_line,
            col: 1,
            message: format!(
                "unused suppression for `{}`: no finding on the covered line — remove it",
                s.rule
            ),
        });
    }
    diags
}
