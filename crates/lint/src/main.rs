//! CLI for the workspace lint: `cargo run -p ems-lint -- check`.
//!
//! Exit codes: 0 clean, 1 findings, 2 usage or IO error.

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: ems-lint <command>\n\
         \n\
         commands:\n\
         \x20 check [--root <dir>] [--format text|json|sarif]\n\
         \x20                        lint every .rs file under <dir> (default: workspace root);\n\
         \x20                        json/sarif always exit with the finding-derived code and\n\
         \x20                        print the report to stdout (schema: src/emit.rs)\n\
         \x20 rules                  list rule ids and what they enforce\n\
         \n\
         Suppress a finding with `ems-lint: allow(<rule>, <reason>)` on or above the line."
    );
    ExitCode::from(2)
}

/// The workspace root: `--root` if given, else two levels above this
/// crate's manifest (crates/lint -> workspace).
fn default_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(|p| p.to_path_buf())
        .unwrap_or(manifest)
}

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Text,
    Json,
    Sarif,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("rules") => {
            for rule in ems_lint::rules::RULES {
                println!("{:<24} {}", rule.id, rule.summary);
            }
            println!(
                "{:<24} {}",
                ems_lint::callgraph::RULE,
                ems_lint::callgraph::SUMMARY
            );
            println!(
                "{:<24} malformed, reason-less, unknown-rule, or unused suppression directives",
                ems_lint::allow::SUPPRESSION_RULE
            );
            ExitCode::SUCCESS
        }
        Some("check") => {
            let mut root = default_root();
            let mut format = Format::Text;
            let mut i = 1;
            while i < args.len() {
                match args[i].as_str() {
                    "--root" => match args.get(i + 1) {
                        Some(dir) => {
                            root = PathBuf::from(dir);
                            i += 2;
                        }
                        None => return usage(),
                    },
                    "--format" => match args.get(i + 1).map(String::as_str) {
                        Some("text") => {
                            format = Format::Text;
                            i += 2;
                        }
                        Some("json") => {
                            format = Format::Json;
                            i += 2;
                        }
                        Some("sarif") => {
                            format = Format::Sarif;
                            i += 2;
                        }
                        _ => return usage(),
                    },
                    _ => return usage(),
                }
            }
            let diags = match ems_lint::lint_workspace(&root) {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("ems-lint: cannot read workspace at {}: {e}", root.display());
                    return ExitCode::from(2);
                }
            };
            match format {
                Format::Json => print!("{}", ems_lint::emit::to_json(&diags)),
                Format::Sarif => print!("{}", ems_lint::emit::to_sarif(&diags)),
                Format::Text => {
                    if diags.is_empty() {
                        println!("ems-lint: clean ({})", root.display());
                    } else {
                        for d in &diags {
                            println!("{d}\n");
                        }
                    }
                }
            }
            if diags.is_empty() {
                ExitCode::SUCCESS
            } else {
                if format == Format::Text {
                    eprintln!("ems-lint: {} finding(s)", diags.len());
                }
                ExitCode::FAILURE
            }
        }
        _ => usage(),
    }
}
