//! CLI for the workspace lint: `cargo run -p ems-lint -- check`.
//!
//! Exit codes: 0 clean, 1 findings, 2 usage or IO error.

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: ems-lint <command>\n\
         \n\
         commands:\n\
         \x20 check [--root <dir>]   lint every .rs file under <dir> (default: workspace root)\n\
         \x20 rules                  list rule ids and what they enforce\n\
         \n\
         Suppress a finding with `ems-lint: allow(<rule>, <reason>)` on or above the line."
    );
    ExitCode::from(2)
}

/// The workspace root: `--root` if given, else two levels above this
/// crate's manifest (crates/lint -> workspace).
fn default_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(|p| p.to_path_buf())
        .unwrap_or(manifest)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("rules") => {
            for rule in ems_lint::rules::RULES {
                println!("{:<24} {}", rule.id, rule.summary);
            }
            println!(
                "{:<24} malformed, reason-less, unknown-rule, or unused suppression directives",
                ems_lint::allow::SUPPRESSION_RULE
            );
            ExitCode::SUCCESS
        }
        Some("check") => {
            let root = match args.get(1).map(String::as_str) {
                Some("--root") => match args.get(2) {
                    Some(dir) => PathBuf::from(dir),
                    None => return usage(),
                },
                Some(_) => return usage(),
                None => default_root(),
            };
            let diags = match ems_lint::lint_workspace(&root) {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("ems-lint: cannot read workspace at {}: {e}", root.display());
                    return ExitCode::from(2);
                }
            };
            if diags.is_empty() {
                println!("ems-lint: clean ({})", root.display());
                ExitCode::SUCCESS
            } else {
                for d in &diags {
                    println!("{d}\n");
                }
                eprintln!("ems-lint: {} finding(s)", diags.len());
                ExitCode::FAILURE
            }
        }
        _ => usage(),
    }
}
