//! Tolerant recursive-descent parser producing the [`crate::ast`] tree.
//!
//! Design constraints, in order:
//!
//! 1. **Never fail, never loop.** Every construct the parser does not
//!    recognize degrades to an `Opaque` node; every loop has an explicit
//!    progress guard that force-advances the cursor. A garbled file
//!    yields a garbled-but-finite AST, not a hang.
//! 2. **Shape over fidelity.** Types are captured as raw text for the
//!    resolver to pattern-match; generics, lifetimes, and `where` clauses
//!    are skipped; patterns contribute their identifier set rather than a
//!    pattern tree. The semantic rules only need calls, assignments,
//!    guards, and control flow.
//! 3. **Statement-position blocks end expressions.** `if`/`match`/`loop`/
//!    `while`/`for`/`{}` parsed at statement position do not accept
//!    postfix or binary continuations, matching Rust's statement grammar
//!    closely enough to avoid gluing two statements into one expression.

use crate::ast::{Arm, Block, Expr, File, FnDef, ImplDef, Item, ModDef, Param, Stmt, StructDef};
use crate::lexer::{Lexed, TokKind, Token};

/// Parses a lexed file into the lightweight AST.
pub fn parse_file(lexed: &Lexed) -> File {
    let mut p = Parser {
        toks: &lexed.tokens,
        pos: 0,
    };
    File {
        items: p.parse_items(true),
    }
}

struct Parser<'a> {
    toks: &'a [Token],
    pos: usize,
}

/// Identifiers that never name a binding inside a pattern.
const PAT_NOISE: &[&str] = &["_", "ref", "mut", "box", "if"];

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&'a Token> {
        self.toks.get(self.pos)
    }

    fn peek_at(&self, off: usize) -> Option<&'a Token> {
        self.toks.get(self.pos + off)
    }

    fn bump(&mut self) -> usize {
        let i = self.pos;
        if self.pos < self.toks.len() {
            self.pos += 1;
        }
        i
    }

    fn at_punct(&self, p: &str) -> bool {
        self.peek().is_some_and(|t| t.is_punct(p))
    }

    fn at_ident(&self, name: &str) -> bool {
        self.peek().is_some_and(|t| t.is_ident(name))
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if self.at_punct(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_ident(&mut self, name: &str) -> bool {
        if self.at_ident(name) {
            self.bump();
            true
        } else {
            false
        }
    }

    /// Two adjacent `<` (or `>`) tokens form a shift operator; spans tell
    /// adjacency apart from `Vec< <T>::X >`-style spacing.
    fn shift_op(&self, ch: &str) -> bool {
        match (self.peek(), self.peek_at(1)) {
            (Some(a), Some(b)) => a.is_punct(ch) && b.is_punct(ch) && a.end == b.start,
            _ => false,
        }
    }

    /// Skips one balanced group starting at the current open delimiter.
    fn skip_balanced(&mut self) {
        let (open, close) = match self.peek() {
            Some(t) if t.is_punct("(") => ("(", ")"),
            Some(t) if t.is_punct("[") => ("[", "]"),
            Some(t) if t.is_punct("{") => ("{", "}"),
            _ => {
                self.bump();
                return;
            }
        };
        let mut depth = 0usize;
        while let Some(t) = self.peek() {
            if t.is_punct(open) {
                depth += 1;
            } else if t.is_punct(close) {
                depth -= 1;
                if depth == 0 {
                    self.bump();
                    return;
                }
            }
            self.bump();
        }
    }

    /// Skips `<...>` generics starting at `<`. `>=` closes an angle (the
    /// `=` half is swallowed — only reachable in unspaced `>>=`-free
    /// type position, where losing it is harmless).
    fn skip_angles(&mut self) {
        let mut depth = 0usize;
        while let Some(t) = self.peek() {
            if t.is_punct("<") {
                depth += 1;
            } else if t.is_punct(">") || t.is_punct(">=") {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    self.bump();
                    return;
                }
            } else if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                self.skip_balanced();
                continue;
            } else if t.is_punct(";") {
                // Runaway guard: a `;` can never occur inside generics.
                return;
            }
            self.bump();
        }
    }

    /// Skips `#[...]` / `#![...]` attributes at the cursor.
    fn skip_attrs(&mut self) {
        while self.at_punct("#") {
            self.bump();
            self.eat_punct("!");
            if self.at_punct("[") {
                self.skip_balanced();
            }
        }
    }

    /// Consumes type tokens until a `stop` punct or the ident `where` at
    /// delimiter depth 0, rendering them as normalized text.
    fn parse_type_text(&mut self, stops: &[&str]) -> String {
        let start = self.pos;
        let mut out = String::new();
        let mut prev_wordy = false;
        let mut angle = 0usize;
        while let Some(t) = self.peek() {
            if angle == 0
                && ((t.kind == TokKind::Punct && stops.contains(&t.text.as_str()))
                    || t.is_ident("where"))
            {
                break;
            }
            if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                // Render the group opaquely but keep depth balanced.
                let from = self.pos;
                self.skip_balanced();
                for tk in &self.toks[from..self.pos] {
                    push_tok_text(&mut out, tk, &mut prev_wordy);
                }
                continue;
            }
            if t.is_punct("<") {
                angle += 1;
            } else if t.is_punct(">") || t.is_punct(">=") {
                angle = angle.saturating_sub(1);
            }
            push_tok_text(&mut out, t, &mut prev_wordy);
            self.bump();
        }
        if self.pos == start {
            String::new()
        } else {
            out
        }
    }

    /// Parses items until `}` (or EOF when `top`).
    fn parse_items(&mut self, top: bool) -> Vec<Item> {
        let mut items = Vec::new();
        loop {
            self.skip_attrs();
            match self.peek() {
                None => break,
                Some(t) if t.is_punct("}") => {
                    if !top {
                        break;
                    }
                    self.bump(); // stray close at top level: skip
                    continue;
                }
                _ => {}
            }
            let before = self.pos;
            if let Some(item) = self.parse_item() {
                items.push(item);
            }
            if self.pos == before {
                self.bump(); // progress guard
            }
        }
        items
    }

    /// Parses one item at the cursor; `None` for skipped/unknown items.
    fn parse_item(&mut self) -> Option<Item> {
        let mut is_pub = false;
        if self.at_ident("pub") {
            is_pub = true;
            self.bump();
            if self.at_punct("(") {
                self.skip_balanced();
            }
        }
        // fn modifiers.
        let mut probe = 0usize;
        while self
            .peek_at(probe)
            .is_some_and(|t| matches!(t.text.as_str(), "const" | "unsafe" | "async" | "extern"))
        {
            probe += 1;
            // `extern "C"` string.
            if self.peek_at(probe).is_some_and(|t| t.kind == TokKind::Str) {
                probe += 1;
            }
        }
        if self.peek_at(probe).is_some_and(|t| t.is_ident("fn")) {
            for _ in 0..probe {
                self.bump();
            }
            return Some(Item::Fn(self.parse_fn(is_pub)));
        }
        match self.peek() {
            Some(t) if t.is_ident("struct") => Some(Item::Struct(self.parse_struct())),
            Some(t) if t.is_ident("impl") => Some(self.parse_impl()),
            Some(t) if t.is_ident("mod") => {
                self.bump();
                let name = self
                    .peek()
                    .filter(|t| t.kind == TokKind::Ident)
                    .map(|t| t.text.clone())
                    .unwrap_or_default();
                if !name.is_empty() {
                    self.bump();
                }
                if self.eat_punct("{") {
                    let items = self.parse_items(false);
                    self.eat_punct("}");
                    Some(Item::Mod(ModDef { name, items }))
                } else {
                    self.eat_punct(";");
                    Some(Item::Other)
                }
            }
            Some(t)
                if matches!(
                    t.text.as_str(),
                    "use"
                        | "const"
                        | "static"
                        | "type"
                        | "enum"
                        | "trait"
                        | "union"
                        | "macro_rules"
                ) && t.kind == TokKind::Ident =>
            {
                self.skip_item_like();
                Some(Item::Other)
            }
            _ => None,
        }
    }

    /// Skips a non-modeled item: to `;` at depth 0, or through its body
    /// braces — whichever comes first.
    fn skip_item_like(&mut self) {
        while let Some(t) = self.peek() {
            if t.is_punct(";") {
                self.bump();
                return;
            }
            if t.is_punct("{") {
                self.skip_balanced();
                return;
            }
            if t.is_punct("(") || t.is_punct("[") {
                self.skip_balanced();
                continue;
            }
            if t.is_punct("<") {
                self.skip_angles();
                continue;
            }
            if t.is_punct("}") {
                return; // enclosing block closes: malformed, bail
            }
            self.bump();
        }
    }

    fn parse_fn(&mut self, is_pub: bool) -> FnDef {
        self.eat_ident("fn");
        let tok = self.pos.min(self.toks.len().saturating_sub(1));
        let name = self
            .peek()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone())
            .unwrap_or_default();
        if !name.is_empty() {
            self.bump();
        }
        if self.at_punct("<") {
            self.skip_angles();
        }
        let mut params = Vec::new();
        if self.eat_punct("(") {
            loop {
                self.skip_attrs();
                match self.peek() {
                    None => break,
                    Some(t) if t.is_punct(")") => {
                        self.bump();
                        break;
                    }
                    _ => {}
                }
                let before = self.pos;
                if let Some(p) = self.parse_param() {
                    params.push(p);
                }
                if !self.eat_punct(",") && self.pos == before {
                    self.bump();
                }
            }
        }
        let ret = if self.eat_punct("->") {
            let t = self.parse_type_text(&["{", ";", ","]);
            if t.is_empty() {
                None
            } else {
                Some(t)
            }
        } else {
            None
        };
        if self.at_ident("where") {
            // Skip the clause up to the body/semicolon.
            while let Some(t) = self.peek() {
                if t.is_punct("{") || t.is_punct(";") {
                    break;
                }
                if t.is_punct("(") || t.is_punct("[") {
                    self.skip_balanced();
                    continue;
                }
                if t.is_punct("<") {
                    self.skip_angles();
                    continue;
                }
                self.bump();
            }
        }
        let body = if self.at_punct("{") {
            Some(self.parse_block())
        } else {
            self.eat_punct(";");
            None
        };
        FnDef {
            name,
            is_pub,
            params,
            ret,
            body,
            tok,
        }
    }

    /// One fn parameter: `self` receivers, plain `name: Ty`, and
    /// destructuring patterns (first binding wins).
    fn parse_param(&mut self) -> Option<Param> {
        // `self`, `&self`, `&'a mut self`, `mut self`.
        let mut probe = 0usize;
        while self
            .peek_at(probe)
            .is_some_and(|t| t.is_punct("&") || t.kind == TokKind::Lifetime || t.is_ident("mut"))
        {
            probe += 1;
        }
        if self.peek_at(probe).is_some_and(|t| t.is_ident("self")) {
            let mut ty = String::new();
            for _ in 0..=probe {
                if let Some(t) = self.peek() {
                    let mut wordy = ty.ends_with(|c: char| c == '_' || c.is_alphanumeric());
                    push_tok_text(&mut ty, t, &mut wordy);
                }
                self.bump();
            }
            // `self: Ty` explicit form.
            if self.eat_punct(":") {
                ty = self.parse_type_text(&[",", ")"]);
            }
            return Some(Param {
                name: "self".to_string(),
                ty,
            });
        }
        // Pattern up to `:`.
        let mut name = String::new();
        let mut depth = 0usize;
        while let Some(t) = self.peek() {
            if depth == 0 && (t.is_punct(":") || t.is_punct(",") || t.is_punct(")")) {
                break;
            }
            if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                depth += 1;
            } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
                depth = depth.saturating_sub(1);
            } else if t.kind == TokKind::Ident
                && name.is_empty()
                && !PAT_NOISE.contains(&t.text.as_str())
            {
                name = t.text.clone();
            }
            self.bump();
        }
        if !self.eat_punct(":") {
            return None;
        }
        let ty = self.parse_type_text(&[",", ")"]);
        Some(Param { name, ty })
    }

    fn parse_struct(&mut self) -> StructDef {
        self.eat_ident("struct");
        let tok = self.pos.min(self.toks.len().saturating_sub(1));
        let name = self
            .peek()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone())
            .unwrap_or_default();
        if !name.is_empty() {
            self.bump();
        }
        if self.at_punct("<") {
            self.skip_angles();
        }
        let mut fields = Vec::new();
        if self.at_punct("(") {
            // Tuple struct: positional field names.
            self.bump();
            let mut idx = 0usize;
            loop {
                match self.peek() {
                    None => break,
                    Some(t) if t.is_punct(")") => {
                        self.bump();
                        break;
                    }
                    _ => {}
                }
                self.skip_attrs();
                if self.at_ident("pub") {
                    self.bump();
                    if self.at_punct("(") {
                        self.skip_balanced();
                    }
                }
                let ty = self.parse_type_text(&[",", ")"]);
                if ty.is_empty() && !self.at_punct(")") {
                    self.bump();
                    continue;
                }
                fields.push(Param {
                    name: idx.to_string(),
                    ty,
                });
                idx += 1;
                self.eat_punct(",");
            }
            self.eat_punct(";");
        } else {
            if self.at_ident("where") {
                while let Some(t) = self.peek() {
                    if t.is_punct("{") || t.is_punct(";") {
                        break;
                    }
                    self.bump();
                }
            }
            if self.eat_punct("{") {
                loop {
                    self.skip_attrs();
                    match self.peek() {
                        None => break,
                        Some(t) if t.is_punct("}") => {
                            self.bump();
                            break;
                        }
                        _ => {}
                    }
                    if self.at_ident("pub") {
                        self.bump();
                        if self.at_punct("(") {
                            self.skip_balanced();
                        }
                    }
                    let before = self.pos;
                    let fname = self
                        .peek()
                        .filter(|t| t.kind == TokKind::Ident)
                        .map(|t| t.text.clone())
                        .unwrap_or_default();
                    if !fname.is_empty() {
                        self.bump();
                    }
                    if self.eat_punct(":") {
                        let ty = self.parse_type_text(&[",", "}"]);
                        fields.push(Param { name: fname, ty });
                    }
                    self.eat_punct(",");
                    if self.pos == before {
                        self.bump();
                    }
                }
            } else {
                self.eat_punct(";");
            }
        }
        StructDef { name, fields, tok }
    }

    fn parse_impl(&mut self) -> Item {
        self.eat_ident("impl");
        if self.at_punct("<") {
            self.skip_angles();
        }
        let first = self.parse_type_head();
        let self_ty = if self.eat_ident("for") {
            self.parse_type_head()
        } else {
            first
        };
        if self.at_ident("where") {
            while let Some(t) = self.peek() {
                if t.is_punct("{") {
                    break;
                }
                if t.is_punct("<") {
                    self.skip_angles();
                    continue;
                }
                if t.is_punct("(") {
                    self.skip_balanced();
                    continue;
                }
                self.bump();
            }
        }
        let items = if self.eat_punct("{") {
            let items = self.parse_items(false);
            self.eat_punct("}");
            items
        } else {
            Vec::new()
        };
        Item::Impl(ImplDef { self_ty, items })
    }

    /// A type head's base name: `a::b::C<T>` → `C`, `&mut X` → `X`.
    fn parse_type_head(&mut self) -> String {
        while self.peek().is_some_and(|t| {
            t.is_punct("&") || t.kind == TokKind::Lifetime || t.is_ident("mut") || t.is_ident("dyn")
        }) {
            self.bump();
        }
        let mut last = String::new();
        loop {
            match self.peek() {
                Some(t)
                    if t.kind == TokKind::Ident && !t.is_ident("for") && !t.is_ident("where") =>
                {
                    last = t.text.clone();
                    self.bump();
                }
                _ => break,
            }
            if self.at_punct("<") {
                self.skip_angles();
            }
            if !self.eat_punct("::") {
                break;
            }
        }
        last
    }

    /// Parses `{ stmts }`; the cursor must be at `{`.
    fn parse_block(&mut self) -> Block {
        let mut block = Block::default();
        if !self.eat_punct("{") {
            return block;
        }
        loop {
            self.skip_attrs();
            match self.peek() {
                None => break,
                Some(t) if t.is_punct("}") => {
                    self.bump();
                    break;
                }
                _ => {}
            }
            let before = self.pos;
            let stmt = self.parse_stmt();
            block.stmts.push(stmt);
            if self.pos == before {
                self.bump();
                if let Some(last) = block.stmts.last_mut() {
                    *last = Stmt::Opaque;
                }
            }
        }
        block
    }

    fn parse_stmt(&mut self) -> Stmt {
        if self.eat_punct(";") {
            return Stmt::Opaque;
        }
        if self.at_ident("let") {
            return self.parse_let();
        }
        // Nested items.
        if self.peek().is_some_and(|t| {
            t.kind == TokKind::Ident
                && matches!(
                    t.text.as_str(),
                    "fn" | "struct" | "impl" | "use" | "mod" | "static" | "trait" | "enum"
                )
        }) || (self.at_ident("pub"))
            || (self.at_ident("const") && self.peek_at(1).is_some_and(|t| !t.is_punct("{")))
        {
            let before = self.pos;
            if let Some(item) = self.parse_item() {
                return Stmt::Item(Box::new(item));
            }
            if self.pos == before {
                self.bump();
                return Stmt::Opaque;
            }
            return Stmt::Opaque;
        }
        // Statement-position block-likes take no continuation.
        if self.peek().is_some_and(|t| {
            t.is_punct("{")
                || (t.kind == TokKind::Ident
                    && matches!(
                        t.text.as_str(),
                        "if" | "match" | "loop" | "while" | "for" | "unsafe"
                    ))
        }) || self.peek().is_some_and(|t| t.kind == TokKind::Lifetime)
        {
            let expr = self.parse_prefix(false);
            let has_semi = self.eat_punct(";");
            return Stmt::Expr { expr, has_semi };
        }
        let expr = self.parse_expr(0, false);
        let has_semi = self.eat_punct(";");
        Stmt::Expr { expr, has_semi }
    }

    fn parse_let(&mut self) -> Stmt {
        let tok = self.bump(); // `let`
        let mutable = self.eat_ident("mut");
        let (primary, pat_names) = self.parse_pattern(&[":", "=", ";"]);
        let ty = if self.eat_punct(":") {
            let t = self.parse_type_text(&["=", ";"]);
            if t.is_empty() {
                None
            } else {
                Some(t)
            }
        } else {
            None
        };
        let init = if self.eat_punct("=") {
            Some(self.parse_expr(0, false))
        } else {
            None
        };
        let else_block = if self.eat_ident("else") {
            Some(self.parse_block())
        } else {
            None
        };
        self.eat_punct(";");
        Stmt::Let {
            primary,
            pat_names,
            mutable,
            ty,
            init,
            else_block,
            tok,
        }
    }

    /// Consumes a pattern until one of `stops` (punct text) or the ident
    /// `in` at depth 0. Returns (single-ident binding, all idents).
    fn parse_pattern(&mut self, stops: &[&str]) -> (Option<String>, Vec<String>) {
        let mut names = Vec::new();
        let mut depth = 0usize;
        let mut token_count = 0usize;
        let mut only_ident = true;
        while let Some(t) = self.peek() {
            if depth == 0
                && ((t.kind == TokKind::Punct && stops.contains(&t.text.as_str()))
                    || t.is_ident("in")
                    || t.is_ident("else"))
            {
                break;
            }
            if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                depth += 1;
                only_ident = false;
            } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
                if depth == 0 {
                    break; // enclosing delimiter: malformed pattern, bail
                }
                depth -= 1;
            } else if t.kind == TokKind::Ident {
                if !PAT_NOISE.contains(&t.text.as_str()) {
                    names.push(t.text.clone());
                } else if t.text != "mut" && t.text != "ref" {
                    only_ident = false;
                }
            } else {
                only_ident = false;
            }
            token_count += 1;
            self.bump();
        }
        let primary = if only_ident && names.len() == 1 && token_count <= 2 {
            Some(names[0].clone())
        } else {
            None
        };
        (primary, names)
    }

    /// Pratt-style expression parser.
    fn parse_expr(&mut self, min_bp: u8, no_struct: bool) -> Expr {
        let mut lhs = self.parse_prefix(no_struct);
        loop {
            // `as` cast binds tightest of the binary forms.
            if self.at_ident("as") {
                if 25 < min_bp {
                    break;
                }
                self.bump();
                let ty = self.parse_type_text(&[
                    ";", ",", ")", "]", "}", "=", "+", "-", "*", "/", "%", "<", ">", "<=", ">=",
                    "==", "!=", "&&", "||", "..", "..=", "?", ".", "&", "|", "^",
                ]);
                lhs = Expr::Cast {
                    expr: Box::new(lhs),
                    ty,
                };
                continue;
            }
            let Some(t) = self.peek() else { break };
            if t.kind != TokKind::Punct {
                break;
            }
            // Adjacent-`<`/`>` shifts.
            let (op, l_bp, r_bp, extra) = if self.shift_op("<") {
                ("<<".to_string(), 17, 18, 1)
            } else if self.shift_op(">") {
                (">>".to_string(), 17, 18, 1)
            } else {
                let (l, r) = match t.text.as_str() {
                    "=" | "+=" | "-=" | "*=" | "/=" | "%=" => (2, 1),
                    ".." | "..=" => (3, 4),
                    "||" => (5, 6),
                    "&&" => (7, 8),
                    "==" | "!=" | "<" | ">" | "<=" | ">=" => (9, 10),
                    "|" => (11, 12),
                    "^" => (13, 14),
                    "&" => (15, 16),
                    "+" | "-" => (19, 20),
                    "*" | "/" | "%" => (21, 22),
                    _ => break,
                };
                (t.text.clone(), l, r, 0)
            };
            if l_bp < min_bp {
                break;
            }
            let tok = self.bump();
            for _ in 0..extra {
                self.bump();
            }
            if op == ".." || op == "..=" {
                let hi = if self.range_end_follows() {
                    Some(Box::new(self.parse_expr(4, no_struct)))
                } else {
                    None
                };
                lhs = Expr::Range {
                    lo: Some(Box::new(lhs)),
                    hi,
                    tok,
                };
                continue;
            }
            let rhs = self.parse_expr(r_bp, no_struct);
            lhs = if matches!(op.as_str(), "=" | "+=" | "-=" | "*=" | "/=" | "%=") {
                Expr::Assign {
                    op,
                    target: Box::new(lhs),
                    value: Box::new(rhs),
                    tok,
                }
            } else {
                Expr::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                    tok,
                }
            };
        }
        lhs
    }

    /// Whether a range upper bound can start at the cursor.
    fn range_end_follows(&self) -> bool {
        match self.peek() {
            None => false,
            Some(t) => {
                !(t.is_punct(")")
                    || t.is_punct("]")
                    || t.is_punct("}")
                    || t.is_punct(",")
                    || t.is_punct(";")
                    || t.is_punct("=>"))
                    && !(t.kind == TokKind::Ident && t.text == "else")
            }
        }
    }

    /// Prefix/atom parsing plus the postfix chain.
    fn parse_prefix(&mut self, no_struct: bool) -> Expr {
        let Some(t) = self.peek() else {
            return Expr::Opaque { tok: self.pos };
        };
        let atom: Expr = match t.kind {
            TokKind::Num { float } => {
                let tok = self.bump();
                Expr::Lit { float, tok }
            }
            TokKind::Str | TokKind::Char => {
                let tok = self.bump();
                Expr::Lit { float: false, tok }
            }
            TokKind::Lifetime => {
                // Loop label: `'outer: loop { ... }`.
                self.bump();
                self.eat_punct(":");
                return self.parse_prefix(no_struct);
            }
            TokKind::Punct => match t.text.as_str() {
                "&" => {
                    self.bump();
                    self.eat_ident("mut");
                    return Expr::Unary {
                        op: '&',
                        expr: Box::new(self.parse_expr(23, no_struct)),
                    };
                }
                "*" | "!" | "-" => {
                    let op = t.text.chars().next().unwrap_or('*');
                    self.bump();
                    return Expr::Unary {
                        op,
                        expr: Box::new(self.parse_expr(23, no_struct)),
                    };
                }
                "(" => {
                    self.bump();
                    let mut elems = Vec::new();
                    let mut trailing_comma = false;
                    loop {
                        match self.peek() {
                            None => break,
                            Some(t) if t.is_punct(")") => {
                                self.bump();
                                break;
                            }
                            _ => {}
                        }
                        let before = self.pos;
                        elems.push(self.parse_expr(0, false));
                        trailing_comma = self.eat_punct(",");
                        if self.pos == before {
                            self.bump();
                        }
                    }
                    match (elems.len(), trailing_comma) {
                        (1, false) => elems.pop().unwrap_or(Expr::Tuple { elems: Vec::new() }),
                        _ => Expr::Tuple { elems },
                    }
                }
                "[" => {
                    self.bump();
                    let mut elems = Vec::new();
                    loop {
                        match self.peek() {
                            None => break,
                            Some(t) if t.is_punct("]") => {
                                self.bump();
                                break;
                            }
                            _ => {}
                        }
                        let before = self.pos;
                        elems.push(self.parse_expr(0, false));
                        if !self.eat_punct(",") {
                            self.eat_punct(";");
                        }
                        if self.pos == before {
                            self.bump();
                        }
                    }
                    Expr::Array { elems }
                }
                "{" => Expr::Block(self.parse_block()),
                "|" | "||" => self.parse_closure(),
                ".." | "..=" => {
                    let tok = self.bump();
                    let hi = if self.range_end_follows() {
                        Some(Box::new(self.parse_expr(4, no_struct)))
                    } else {
                        None
                    };
                    Expr::Range { lo: None, hi, tok }
                }
                "<" => {
                    // Qualified path `<T as Trait>::method(...)`.
                    let tok = self.pos;
                    self.skip_angles();
                    if self.eat_punct("::") {
                        let mut segs = vec![String::new()];
                        while let Some(t) = self.peek() {
                            if t.kind != TokKind::Ident {
                                break;
                            }
                            segs.push(t.text.clone());
                            self.bump();
                            if !self.eat_punct("::") {
                                break;
                            }
                        }
                        Expr::Path { segs, tok }
                    } else {
                        Expr::Opaque { tok }
                    }
                }
                "#" => {
                    self.skip_attrs();
                    return self.parse_prefix(no_struct);
                }
                // Never consume a closing delimiter or separator: the
                // enclosing construct owns it. Callers' progress guards
                // handle the stuck cursor.
                ")" | "]" | "}" | "," | ";" | "=>" => Expr::Opaque { tok: self.pos },
                _ => {
                    let tok = self.bump();
                    Expr::Opaque { tok }
                }
            },
            TokKind::Ident => match t.text.as_str() {
                "if" => return self.parse_if(),
                "while" => {
                    self.bump();
                    let cond = self.parse_cond();
                    let body = self.parse_block();
                    return Expr::While {
                        cond: Box::new(cond),
                        body,
                    };
                }
                "loop" => {
                    self.bump();
                    return Expr::Loop {
                        body: self.parse_block(),
                    };
                }
                "for" => {
                    let tok = self.bump();
                    let (_, pat_names) = self.parse_pattern(&["="]);
                    self.eat_ident("in");
                    let iter = self.parse_expr(0, true);
                    let body = self.parse_block();
                    return Expr::For {
                        pat_names,
                        iter: Box::new(iter),
                        body,
                        tok,
                    };
                }
                "match" => {
                    self.bump();
                    let scrutinee = self.parse_expr(0, true);
                    let arms = self.parse_arms();
                    return Expr::Match {
                        scrutinee: Box::new(scrutinee),
                        arms,
                    };
                }
                "return" => {
                    let tok = self.bump();
                    let value = if self.range_end_follows() && !self.at_punct("{") {
                        Some(Box::new(self.parse_expr(0, no_struct)))
                    } else {
                        None
                    };
                    return Expr::Return { value, tok };
                }
                "break" | "continue" => {
                    self.bump();
                    if self.peek().is_some_and(|t| t.kind == TokKind::Lifetime) {
                        self.bump();
                    }
                    if self.at_ident("break") || self.range_end_follows() && !self.at_punct("{") {
                        // break-with-value: parse and drop the value.
                        if self.range_end_follows() && !self.at_punct("{") {
                            let _ = self.parse_expr(0, no_struct);
                        }
                    }
                    return Expr::Jump;
                }
                "move" => {
                    self.bump();
                    if self.at_punct("|") || self.at_punct("||") {
                        self.parse_closure()
                    } else {
                        Expr::Opaque { tok: self.pos }
                    }
                }
                "unsafe" => {
                    self.bump();
                    if self.at_punct("{") {
                        Expr::Block(self.parse_block())
                    } else {
                        Expr::Opaque { tok: self.pos }
                    }
                }
                "let" => {
                    // `let PAT = expr` outside a condition: tolerate.
                    self.bump();
                    let (_, pat_names) = self.parse_pattern(&["="]);
                    self.eat_punct("=");
                    let expr = self.parse_expr(7, true);
                    Expr::LetCond {
                        pat_names,
                        expr: Box::new(expr),
                    }
                }
                "true" | "false" => {
                    let tok = self.bump();
                    Expr::Lit { float: false, tok }
                }
                _ => self.parse_path_like(no_struct),
            },
        };
        self.parse_postfix(atom)
    }

    fn parse_if(&mut self) -> Expr {
        self.eat_ident("if");
        let cond = self.parse_cond();
        let then = self.parse_block();
        let else_ = if self.eat_ident("else") {
            if self.at_ident("if") {
                Some(Box::new(self.parse_if()))
            } else {
                Some(Box::new(Expr::Block(self.parse_block())))
            }
        } else {
            None
        };
        Expr::If {
            cond: Box::new(cond),
            then,
            else_,
        }
    }

    /// An `if`/`while` condition: struct literals off, `let` patterns on.
    fn parse_cond(&mut self) -> Expr {
        if self.at_ident("let") {
            self.bump();
            let (_, pat_names) = self.parse_pattern(&["="]);
            self.eat_punct("=");
            let expr = self.parse_expr(7, true);
            return Expr::LetCond {
                pat_names,
                expr: Box::new(expr),
            };
        }
        self.parse_expr(0, true)
    }

    fn parse_arms(&mut self) -> Vec<Arm> {
        let mut arms = Vec::new();
        if !self.eat_punct("{") {
            return arms;
        }
        loop {
            self.skip_attrs();
            match self.peek() {
                None => break,
                Some(t) if t.is_punct("}") => {
                    self.bump();
                    break;
                }
                _ => {}
            }
            let before = self.pos;
            let pat_names = self.parse_arm_pattern();
            self.eat_punct("=>");
            let body = self.parse_expr(0, false);
            arms.push(Arm { pat_names, body });
            self.eat_punct(",");
            if self.pos == before {
                self.bump();
            }
        }
        arms
    }

    /// Collects pattern + guard identifiers until `=>` at depth 0.
    fn parse_arm_pattern(&mut self) -> Vec<String> {
        let mut names = Vec::new();
        let mut depth = 0usize;
        while let Some(t) = self.peek() {
            if depth == 0 && (t.is_punct("=>") || t.is_punct("}")) {
                break;
            }
            if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                depth += 1;
            } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
                depth = depth.saturating_sub(1);
            } else if t.kind == TokKind::Ident && !PAT_NOISE.contains(&t.text.as_str()) {
                names.push(t.text.clone());
            }
            self.bump();
        }
        names
    }

    fn parse_closure(&mut self) -> Expr {
        let tok = self.pos;
        let mut params = Vec::new();
        if self.eat_punct("||") {
            // No parameters.
        } else {
            self.eat_punct("|");
            loop {
                match self.peek() {
                    None => break,
                    Some(t) if t.is_punct("|") => {
                        self.bump();
                        break;
                    }
                    _ => {}
                }
                let before = self.pos;
                let (first, names) = self.parse_pattern(&[":", ",", "|"]);
                if let Some(n) = first.or_else(|| names.first().cloned()) {
                    params.push(n);
                }
                if self.eat_punct(":") {
                    self.parse_type_text(&[",", "|"]);
                }
                self.eat_punct(",");
                if self.pos == before {
                    self.bump();
                }
            }
        }
        if self.eat_punct("->") {
            self.parse_type_text(&["{"]);
        }
        let body = self.parse_expr(0, false);
        Expr::Closure {
            params,
            body: Box::new(body),
            tok,
        }
    }

    /// Path atom: plain paths, macro calls, struct literals.
    fn parse_path_like(&mut self, no_struct: bool) -> Expr {
        let tok = self.pos;
        let mut segs = Vec::new();
        loop {
            match self.peek() {
                Some(t) if t.kind == TokKind::Ident => {
                    segs.push(t.text.clone());
                    self.bump();
                }
                _ => break,
            }
            if self.at_punct("::") {
                if self.peek_at(1).is_some_and(|t| t.is_punct("<")) {
                    // Turbofish: `::<T>`.
                    self.bump();
                    self.skip_angles();
                    if !self.eat_punct("::") {
                        break;
                    }
                    continue;
                }
                self.bump();
            } else {
                break;
            }
        }
        if segs.is_empty() {
            let tok = self.bump();
            return Expr::Opaque { tok };
        }
        // Macro call.
        if self.at_punct("!")
            && self
                .peek_at(1)
                .is_some_and(|t| t.is_punct("(") || t.is_punct("[") || t.is_punct("{"))
        {
            self.bump(); // !
            let name = segs.last().cloned().unwrap_or_default();
            let close = match self.peek().map(|t| t.text.as_str()) {
                Some("(") => ")",
                Some("[") => "]",
                _ => "}",
            };
            self.bump(); // open delim
            let mut args = Vec::new();
            loop {
                match self.peek() {
                    None => break,
                    Some(t) if t.is_punct(close) => {
                        self.bump();
                        break;
                    }
                    _ => {}
                }
                let before = self.pos;
                args.push(self.parse_expr(0, false));
                if !self.eat_punct(",") {
                    self.eat_punct(";");
                }
                if self.pos == before {
                    // Non-expression macro interior: skip to the close.
                    let mut depth = 1usize;
                    let open = match close {
                        ")" => "(",
                        "]" => "[",
                        _ => "{",
                    };
                    while let Some(t) = self.peek() {
                        if t.is_punct(open) {
                            depth += 1;
                        } else if t.is_punct(close) {
                            depth -= 1;
                            if depth == 0 {
                                self.bump();
                                break;
                            }
                        }
                        self.bump();
                    }
                    break;
                }
            }
            return Expr::MacroCall { name, args, tok };
        }
        // Struct literal.
        if !no_struct && self.at_punct("{") && self.struct_lit_follows(&segs) {
            self.bump(); // {
            let mut fields = Vec::new();
            loop {
                self.skip_attrs();
                match self.peek() {
                    None => break,
                    Some(t) if t.is_punct("}") => {
                        self.bump();
                        break;
                    }
                    _ => {}
                }
                let before = self.pos;
                if self.eat_punct("..") {
                    // `Foo { x, .. }` in `matches!` patterns has no base
                    // expression; only parse one when it follows.
                    if !self.at_punct("}") {
                        let base = self.parse_expr(0, false);
                        fields.push(("..".to_string(), base));
                    }
                } else if self.peek().is_some_and(|t| t.kind == TokKind::Ident) {
                    let ftok = self.pos;
                    let fname = self.toks[ftok].text.clone();
                    self.bump();
                    if self.eat_punct(":") {
                        let value = self.parse_expr(0, false);
                        fields.push((fname, value));
                    } else {
                        // Shorthand `Foo { x }`.
                        let value = Expr::Path {
                            segs: vec![fname.clone()],
                            tok: ftok,
                        };
                        fields.push((fname, value));
                    }
                }
                self.eat_punct(",");
                if self.pos == before {
                    self.bump();
                }
            }
            return Expr::StructLit {
                path: segs,
                fields,
                tok,
            };
        }
        Expr::Path { segs, tok }
    }

    /// Struct-literal lookahead: the path ends in an uppercase name and
    /// the brace interior starts like field syntax.
    fn struct_lit_follows(&self, segs: &[String]) -> bool {
        let capitalized = segs
            .last()
            .and_then(|s| s.chars().next())
            .is_some_and(|c| c.is_uppercase());
        if !capitalized {
            return false;
        }
        // After `{`: `}`, `..`, `ident:`, `ident,`, `ident}`.
        match self.peek_at(1) {
            Some(t) if t.is_punct("}") || t.is_punct("..") => true,
            Some(t) if t.kind == TokKind::Ident => matches!(
                self.peek_at(2),
                Some(n) if n.is_punct(":") || n.is_punct(",") || n.is_punct("}")
            ),
            _ => false,
        }
    }

    /// Postfix chain: field/method access, calls, indexing, `?`.
    fn parse_postfix(&mut self, mut lhs: Expr) -> Expr {
        loop {
            match self.peek() {
                Some(t) if t.is_punct(".") => {
                    self.bump();
                    match self.peek() {
                        Some(t) if t.kind == TokKind::Ident => {
                            let tok = self.pos;
                            let name = t.text.clone();
                            self.bump();
                            // Turbofish: `.collect::<Vec<_>>()`.
                            if self.at_punct("::")
                                && self.peek_at(1).is_some_and(|t| t.is_punct("<"))
                            {
                                self.bump();
                                self.skip_angles();
                            }
                            if self.at_punct("(") {
                                let args = self.parse_call_args();
                                lhs = Expr::MethodCall {
                                    recv: Box::new(lhs),
                                    method: name,
                                    args,
                                    tok,
                                };
                            } else {
                                lhs = Expr::Field {
                                    base: Box::new(lhs),
                                    name,
                                    tok,
                                };
                            }
                        }
                        Some(t) if matches!(t.kind, TokKind::Num { .. }) => {
                            // Tuple fields; `t.0.1` lexes the index pair
                            // as the float `0.1` — split it back.
                            let tok = self.pos;
                            let text = t.text.clone();
                            self.bump();
                            for part in text.split('.') {
                                lhs = Expr::Field {
                                    base: Box::new(lhs),
                                    name: part.to_string(),
                                    tok,
                                };
                            }
                        }
                        _ => {
                            return lhs;
                        }
                    }
                }
                Some(t) if t.is_punct("(") => {
                    let tok = self.pos;
                    let args = self.parse_call_args();
                    lhs = Expr::Call {
                        callee: Box::new(lhs),
                        args,
                        tok,
                    };
                }
                Some(t) if t.is_punct("[") => {
                    let tok = self.bump();
                    let index = self.parse_expr(0, false);
                    self.eat_punct("]");
                    lhs = Expr::Index {
                        base: Box::new(lhs),
                        index: Box::new(index),
                        tok,
                    };
                }
                Some(t) if t.is_punct("?") => {
                    self.bump();
                    lhs = Expr::Question {
                        expr: Box::new(lhs),
                    };
                }
                _ => break,
            }
        }
        lhs
    }

    /// Parses `( arg, ... )`; the cursor must be at `(`.
    fn parse_call_args(&mut self) -> Vec<Expr> {
        let mut args = Vec::new();
        if !self.eat_punct("(") {
            return args;
        }
        loop {
            match self.peek() {
                None => break,
                Some(t) if t.is_punct(")") => {
                    self.bump();
                    break;
                }
                _ => {}
            }
            let before = self.pos;
            args.push(self.parse_expr(0, false));
            self.eat_punct(",");
            if self.pos == before {
                self.bump();
            }
        }
        args
    }
}

/// Appends a token's surface text, inserting a space between adjacent
/// word-like tokens so `&mut Vec<f64>` renders readably.
fn push_tok_text(out: &mut String, t: &Token, prev_wordy: &mut bool) {
    let (head, wordy): (String, bool) = match t.kind {
        TokKind::Lifetime => (format!("'{}", t.text), true),
        TokKind::Str => ("\"..\"".to_string(), false),
        TokKind::Char => ("'.'".to_string(), false),
        _ => (
            t.text.clone(),
            t.text
                .chars()
                .next()
                .is_some_and(|c| c == '_' || c.is_alphanumeric()),
        ),
    };
    if *prev_wordy && wordy {
        out.push(' ');
    }
    out.push_str(&head);
    *prev_wordy = head
        .chars()
        .last()
        .is_some_and(|c| c == '_' || c.is_alphanumeric());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast;
    use crate::lexer::lex;

    fn parse(src: &str) -> File {
        parse_file(&lex(src))
    }

    #[test]
    fn fn_signature_and_body_shapes() {
        let f = parse(
            "pub(crate) fn resolve(knob: usize, caps: &[f64]) -> usize {\n\
             let mut total = 0.0f64;\n\
             for c in caps { total += *c; }\n\
             total as usize\n\
             }",
        );
        let fns = ast::all_fns(&f);
        assert_eq!(fns.len(), 1);
        let (fd, _) = fns[0];
        assert_eq!(fd.name, "resolve");
        assert!(fd.is_pub);
        assert_eq!(fd.params.len(), 2);
        assert_eq!(fd.params[1].ty, "&[f64]");
        assert_eq!(fd.ret.as_deref(), Some("usize"));
        let body = fd.body.as_ref().unwrap();
        assert_eq!(body.stmts.len(), 3);
        match &body.stmts[0] {
            Stmt::Let {
                primary,
                mutable,
                init,
                ..
            } => {
                assert_eq!(primary.as_deref(), Some("total"));
                assert!(*mutable);
                assert!(matches!(init, Some(Expr::Lit { float: true, .. })));
            }
            other => panic!("expected let, got {other:?}"),
        }
        // `total += *c` inside the for body.
        let mut saw_add_assign = false;
        ast::walk_block(body, &mut |e| {
            if let Expr::Assign { op, target, .. } = e {
                assert_eq!(op, "+=");
                assert_eq!(target.as_path_name(), Some("total"));
                saw_add_assign = true;
            }
            true
        });
        assert!(saw_add_assign);
    }

    #[test]
    fn impl_blocks_methods_and_struct_fields() {
        let f = parse(
            "struct PoolState { sim: Vec<f64>, shards: Vec<(usize, usize)> }\n\
             impl<'a> Engine<'a> {\n\
             fn eval(&mut self, state: &RwLock<PoolState>) -> f64 {\n\
             let st = state.read().unwrap_or_else(|e| e.into_inner());\n\
             st.sim.iter().sum::<f64>()\n\
             } }",
        );
        let structs = ast::all_structs(&f);
        assert_eq!(structs.len(), 1);
        assert_eq!(structs[0].fields[0].ty, "Vec<f64>");
        let fns = ast::all_fns(&f);
        assert_eq!(fns.len(), 1);
        let (fd, self_ty) = fns[0];
        assert_eq!(self_ty, Some("Engine"));
        assert_eq!(fd.params[0].name, "self");
        assert_eq!(fd.params[1].ty, "&RwLock<PoolState>");
        // Method chain with closure arg and turbofish parses cleanly.
        let mut methods = Vec::new();
        ast::walk_block(fd.body.as_ref().unwrap(), &mut |e| {
            if let Expr::MethodCall { method, .. } = e {
                methods.push(method.clone());
            }
            true
        });
        for m in ["read", "unwrap_or_else", "into_inner", "iter", "sum"] {
            assert!(methods.iter().any(|x| x == m), "missing {m} in {methods:?}");
        }
    }

    #[test]
    fn control_flow_and_patterns() {
        let f = parse(
            "fn main_loop(slots: &[Mutex<PoolSlot>]) {\n\
             let mut go = move || {\n\
             if let Some(d) = pick() { use_it(d); } else { return; }\n\
             match kind { Distance::Finite(h) => (h as usize).min(3), _ => 0 };\n\
             for (w, slot) in slots.iter().enumerate().skip(1) {\n\
             let PoolSlot { buf, delta } = &mut *slot.lock().unwrap();\n\
             buf[w] = delta + w as f64;\n\
             } };\n\
             go();\n\
             }",
        );
        let fns = ast::all_fns(&f);
        let body = fns[0].0.body.as_ref().unwrap();
        let mut saw = (false, false, false, false, false);
        ast::walk_block(body, &mut |e| {
            match e {
                Expr::Closure { .. } => saw.0 = true,
                Expr::LetCond { pat_names, .. } => {
                    assert!(pat_names.iter().any(|n| n == "d"));
                    saw.1 = true;
                }
                Expr::Match { arms, .. } => {
                    assert_eq!(arms.len(), 2);
                    saw.2 = true;
                }
                Expr::For { pat_names, .. } => {
                    assert!(pat_names.contains(&"slot".to_string()));
                    saw.3 = true;
                }
                Expr::Index { .. } => saw.4 = true,
                _ => {}
            }
            true
        });
        assert_eq!(saw, (true, true, true, true, true), "missing shapes");
        // The destructuring let binds buf and delta.
        let mut found_destructure = false;
        ast::walk_block(body, &mut |_| true);
        for s in collect_lets(body) {
            if let Stmt::Let {
                pat_names, primary, ..
            } = s
            {
                if pat_names.contains(&"buf".to_string()) {
                    assert!(primary.is_none());
                    found_destructure = true;
                }
            }
        }
        assert!(found_destructure);
    }

    fn collect_lets(block: &Block) -> Vec<&Stmt> {
        fn rec_expr<'a>(e: &'a Expr, out: &mut Vec<&'a Stmt>) {
            match e {
                Expr::Block(b) | Expr::Loop { body: b } => rec(b, out),
                Expr::While { cond, body } => {
                    rec_expr(cond, out);
                    rec(body, out);
                }
                Expr::For { iter, body, .. } => {
                    rec_expr(iter, out);
                    rec(body, out);
                }
                Expr::If { cond, then, else_ } => {
                    rec_expr(cond, out);
                    rec(then, out);
                    if let Some(e) = else_ {
                        rec_expr(e, out);
                    }
                }
                Expr::Closure { body, .. } => rec_expr(body, out),
                Expr::Call { args, .. } => {
                    for a in args {
                        rec_expr(a, out);
                    }
                }
                Expr::MethodCall { recv, args, .. } => {
                    rec_expr(recv, out);
                    for a in args {
                        rec_expr(a, out);
                    }
                }
                _ => {}
            }
        }
        fn rec<'a>(b: &'a Block, out: &mut Vec<&'a Stmt>) {
            for s in &b.stmts {
                if matches!(s, Stmt::Let { .. }) {
                    out.push(s);
                }
                match s {
                    Stmt::Let { init: Some(e), .. } | Stmt::Expr { expr: e, .. } => {
                        rec_expr(e, out)
                    }
                    _ => {}
                }
            }
        }
        let mut out = Vec::new();
        rec(block, &mut out);
        out
    }

    #[test]
    fn macros_struct_literals_and_ranges() {
        let f = parse(
            "fn f() -> Engine {\n\
             assert!(a <= b, \"bad {a}\");\n\
             let v = vec![0.0f64; n];\n\
             let r = 0..n;\n\
             Engine { sim: v, shards: Vec::new(), ..Default::default() }\n\
             }",
        );
        let body = ast::all_fns(&f)[0].0.body.as_ref().unwrap();
        let mut saw_macro = 0;
        let mut saw_struct = false;
        let mut saw_range = false;
        ast::walk_block(body, &mut |e| {
            match e {
                Expr::MacroCall { name, .. } => {
                    assert!(name == "assert" || name == "vec");
                    saw_macro += 1;
                }
                Expr::StructLit { path, fields, .. } => {
                    assert_eq!(path.last().unwrap(), "Engine");
                    assert_eq!(fields.len(), 3);
                    saw_struct = true;
                }
                Expr::Range {
                    lo: Some(_),
                    hi: Some(_),
                    ..
                } => saw_range = true,
                _ => {}
            }
            true
        });
        assert_eq!(saw_macro, 2);
        assert!(saw_struct);
        assert!(saw_range);
        // Trailing struct literal is the fn's value.
        match body.stmts.last().unwrap() {
            Stmt::Expr { has_semi, .. } => assert!(!has_semi),
            other => panic!("expected trailing expr, got {other:?}"),
        }
    }

    #[test]
    fn match_braces_do_not_swallow_struct_literals() {
        // `match x { .. }` scrutinee must not parse `x {` as a literal.
        let f = parse("fn f(x: Kind) -> u32 { match x { Kind::A => 1, _ => 0 } }");
        let body = ast::all_fns(&f)[0].0.body.as_ref().unwrap();
        assert!(matches!(
            body.stmts.last().unwrap(),
            Stmt::Expr {
                expr: Expr::Match { .. },
                ..
            }
        ));
    }

    #[test]
    fn opaque_recovery_keeps_parsing() {
        // Garbage in the middle must not lose the following fn.
        let f = parse("fn a() {} @@@ ::: fn b() {}");
        let names: Vec<_> = ast::all_fns(&f)
            .iter()
            .map(|(f, _)| f.name.clone())
            .collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn shift_ops_do_not_derail_expressions() {
        let f = parse("fn f(x: u64, k: u32) -> u64 { (x << k) | (x >> 3) }");
        let body = ast::all_fns(&f)[0].0.body.as_ref().unwrap();
        let mut shifts = Vec::new();
        ast::walk_block(body, &mut |e| {
            if let Expr::Binary { op, .. } = e {
                shifts.push(op.clone());
            }
            true
        });
        assert!(shifts.contains(&"<<".to_string()), "{shifts:?}");
        assert!(shifts.contains(&">>".to_string()), "{shifts:?}");
    }
}
