//! Diagnostics: rule-tagged findings with file:line:col spans.

use std::fmt;

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule identifier (e.g. `float-ordering`).
    pub rule: &'static str,
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable explanation, including the required replacement.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "error[{}]: {}", self.rule, self.message)?;
        write!(f, "  --> {}:{}:{}", self.path, self.line, self.col)
    }
}

/// Sorts diagnostics into the stable reporting order (path, line, col,
/// rule) so output is deterministic across runs and platforms.
pub fn sort_diagnostics(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
    });
}
