//! Repo-specific scoping: which crates and files each rule watches.
//!
//! These tables *are* the configuration — the lint is purpose-built for
//! this workspace, so scoping lives in code (reviewed like code) rather
//! than in a config file that can drift silently.

/// How a file participates in linting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library source — every rule applies.
    Library,
    /// Binary entry points (`main.rs`, `src/bin/`) — panic-surface rules
    /// are relaxed (a CLI may die loudly), contract rules still apply.
    Binary,
    /// Tests, benches, examples, build scripts — only lexical hygiene
    /// (suppression syntax) is checked.
    Test,
}

/// Classification of one workspace file.
#[derive(Debug, Clone)]
pub struct FileClass {
    /// Crate name (directory under `crates/`), or `event-matching` for the
    /// umbrella crate's own `src`/`tests`.
    pub crate_name: String,
    /// Participation kind.
    pub kind: FileKind,
    /// Workspace-relative path with `/` separators.
    pub rel_path: String,
}

/// Classifies a workspace-relative path (using `/` separators).
pub fn classify(rel_path: &str) -> FileClass {
    let norm = rel_path.replace('\\', "/");
    let parts: Vec<&str> = norm.split('/').collect();
    let crate_name = if parts.first() == Some(&"crates") && parts.len() > 1 {
        parts[1].to_string()
    } else {
        "event-matching".to_string()
    };
    let in_dir = |d: &str| parts.contains(&d);
    let file = parts.last().copied().unwrap_or("");
    let kind = if in_dir("tests") || in_dir("benches") || in_dir("examples") || file == "build.rs" {
        FileKind::Test
    } else if file == "main.rs" || in_dir("bin") {
        FileKind::Binary
    } else {
        FileKind::Library
    };
    FileClass {
        crate_name,
        kind,
        rel_path: norm,
    }
}

/// `float-ordering` exempt files: the numeric module owns the one place
/// where ordering primitives may be wrapped.
pub const FLOAT_ORDERING_EXEMPT: &[&str] = &["crates/core/src/numeric.rs"];

/// `float-taint` watched files: the kernel hot paths whose sums feed
/// Theorem 1's monotone convergence; everywhere else short f64 sums are
/// reviewed case by case. `engine.rs` covers the PR7 worker pool's shard
/// delta reduction; `sim_sparse.rs` is watched so any future CSR
/// accumulation (row sums, occupancy-weighted scores) lands under the
/// same audit as the dense paths it mirrors. Unlike the lexical
/// `naive-accumulation` rule this replaces, only accumulations whose
/// value *escapes* (returns, struct fields, stores through references)
/// are findings — a sum that merely gates a branch is not exported
/// precision.
pub const ACCUMULATION_WATCHED: &[&str] = &[
    "crates/core/src/kernel.rs",
    "crates/core/src/engine.rs",
    "crates/core/src/sim.rs",
    "crates/core/src/sim_sparse.rs",
];

/// `lock-discipline` watched files: the PR7 worker pool is the only
/// sanctioned home for blocking synchronization (DESIGN.md §13), so the
/// guard-lifetime rules watch it alone. Everything else should not hold
/// `Mutex`/`RwLock` guards across rendezvous points at all — add files
/// here as they grow pools of their own.
pub const LOCK_WATCHED: &[&str] = &["crates/core/src/engine.rs"];

/// `index-bounds` watched files: the CSR hot paths, where `a[i]`
/// arithmetic is pervasive and a single malformed offsets table turns
/// every row scan into a panic. Reads must be dominated by a validating
/// `from_parts`-style constructor or an explicit length check.
pub const INDEX_BOUNDS_WATCHED: &[&str] = &[
    "crates/core/src/sim_sparse.rs",
    "crates/depgraph/src/csr.rs",
];

/// `nondeterminism` watched crates: everything whose output feeds
/// reported similarity/matching results (including `synth`, whose outputs
/// must be reproducible from the seed alone, `store`/`faults`, whose
/// snapshot bytes and fault schedules must be pure functions of content
/// and seed, and `catalog`, whose admission/eviction decisions and
/// pruning order must be identical on every host).
pub const NONDET_CRATES: &[&str] = &[
    "core",
    "depgraph",
    "labels",
    "assignment",
    "baselines",
    "events",
    "xes",
    "eval",
    "synth",
    "obs",
    "prof",
    "store",
    "faults",
    "catalog",
];

/// `wall-clock-randomness` watched crates: result-producing code may not
/// read clocks or draw randomness. `synth`/`rng` are excluded (seeded
/// generation is their purpose); `eval` participates except its dedicated
/// timer module; `bench`/`cli` are reporting layers (perf_smoke's whole
/// job is wall-clock timing). `core` participation covers the PR7 worker
/// pool and sparse kernel: shard scheduling and δ-thresholded drops must
/// be pure functions of the inputs, never of time or thread races. `obs` participates
/// so that its two span-timing clock reads must each carry an explicit
/// `allow(wall-clock-randomness, ...)` with a reason — timing stays
/// quarantined in the span `dur_us` field, which every deterministic
/// export redacts.
/// `store` participates so snapshot bytes can never depend on when they
/// were written; `faults` participates so its seeded plan/backoff RNG must
/// carry audited `allow(wall-clock-randomness, ...)` suppressions proving
/// the schedule is a pure function of the seed.
/// `prof` participates with exactly one pinned suppression — the
/// `ProfScope` start-time read — so the profiler can never grow a second
/// clock edge without an audited reason: everything else it emits
/// (counters, allocation tallies, histogram contents) must be a pure
/// function of the work performed, which is what keeps redacted profile
/// exports byte-identical across kernels and thread counts.
/// `catalog` participates so eviction recency can only ever be the
/// logical access counter, never a wall-clock timestamp.
pub const CLOCK_CRATES: &[&str] = &[
    "core",
    "depgraph",
    "labels",
    "assignment",
    "baselines",
    "events",
    "xes",
    "eval",
    "obs",
    "prof",
    "store",
    "faults",
    "catalog",
];

/// `wall-clock-randomness` exempt files: the timing infrastructure itself.
pub const CLOCK_EXEMPT: &[&str] = &["crates/eval/src/timer.rs"];

/// `string-keyed-map` watched crates: the hot-path crates (PR 5's interned
/// data model keys everything by `LabelSym`/`EventId`) plus `events`, which
/// hosts the two interners — the *only* sanctioned string→id edges, each
/// carrying an audited suppression.
pub const STRING_KEY_CRATES: &[&str] = &["core", "depgraph", "events"];

/// Whether `rel_path` ends with one of the watched suffixes.
pub fn path_matches(rel_path: &str, suffixes: &[&str]) -> bool {
    suffixes.iter().any(|s| rel_path.ends_with(s))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_crate_library() {
        let c = classify("crates/core/src/kernel.rs");
        assert_eq!(c.crate_name, "core");
        assert_eq!(c.kind, FileKind::Library);
    }

    #[test]
    fn classify_tests_benches_bins() {
        assert_eq!(classify("crates/core/tests/x.rs").kind, FileKind::Test);
        assert_eq!(classify("crates/bench/benches/x.rs").kind, FileKind::Test);
        assert_eq!(classify("crates/cli/src/main.rs").kind, FileKind::Binary);
        assert_eq!(
            classify("crates/bench/src/bin/perf.rs").kind,
            FileKind::Binary
        );
        assert_eq!(classify("tests/end_to_end.rs").kind, FileKind::Test);
        assert_eq!(classify("src/lib.rs").crate_name, "event-matching");
    }
}
