//! Machine-readable output: JSON and SARIF 2.1.0 serialization of
//! diagnostics, std-only and byte-stable.
//!
//! ## JSON schema (`--format json`)
//!
//! ```json
//! {
//!   "version": 1,
//!   "findings": [
//!     { "rule": "float-taint", "path": "crates/core/src/kernel.rs",
//!       "line": 633, "col": 13, "message": "..." }
//!   ]
//! }
//! ```
//!
//! `findings` is sorted by (path, line, col, rule) — the same stable
//! order the text output uses — so diffing two runs diffs the findings.
//!
//! ## SARIF (`--format sarif`)
//!
//! A single-run SARIF 2.1.0 log: every registered rule appears under
//! `tool.driver.rules`, every finding becomes a `result` with `level:
//! "error"` and one physical location. CI uploads this artifact so
//! findings annotate pull requests.

use crate::diag::Diagnostic;
use std::fmt::Write as _;

/// Escapes a string for a JSON string literal (both formats share JSON
/// string syntax).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Serializes diagnostics as the versioned JSON report.
pub fn to_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("{\n  \"version\": 1,\n  \"findings\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{ \"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"col\": {}, \"message\": \"{}\" }}",
            esc(d.rule),
            esc(&d.path),
            d.line,
            d.col,
            esc(&d.message)
        );
    }
    if diags.is_empty() {
        out.push_str("]\n}\n");
    } else {
        out.push_str("\n  ]\n}\n");
    }
    out
}

/// Serializes diagnostics as a SARIF 2.1.0 log.
pub fn to_sarif(diags: &[Diagnostic]) -> String {
    let mut out = String::from(
        "{\n  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n  \
         \"version\": \"2.1.0\",\n  \"runs\": [\n    {\n      \"tool\": {\n        \
         \"driver\": {\n          \"name\": \"ems-lint\",\n          \"rules\": [",
    );
    let mut first = true;
    for rule in crate::rules::RULES {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "\n            {{ \"id\": \"{}\", \"shortDescription\": {{ \"text\": \"{}\" }} }}",
            esc(rule.id),
            esc(rule.summary)
        );
    }
    let _ = write!(
        out,
        ",\n            {{ \"id\": \"{}\", \"shortDescription\": {{ \"text\": \"{}\" }} }}",
        esc(crate::callgraph::RULE),
        esc(crate::callgraph::SUMMARY)
    );
    let _ = write!(
        out,
        ",\n            {{ \"id\": \"{}\", \"shortDescription\": {{ \"text\": \"malformed, reason-less, unknown-rule, or unused suppression directives\" }} }}",
        esc(crate::allow::SUPPRESSION_RULE)
    );
    out.push_str("\n          ]\n        }\n      },\n      \"results\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n        {{\n          \"ruleId\": \"{}\",\n          \"level\": \"error\",\n          \
             \"message\": {{ \"text\": \"{}\" }},\n          \"locations\": [\n            {{\n              \
             \"physicalLocation\": {{\n                \"artifactLocation\": {{ \"uri\": \"{}\" }},\n                \
             \"region\": {{ \"startLine\": {}, \"startColumn\": {} }}\n              }}\n            }}\n          ]\n        }}",
            esc(d.rule),
            esc(&d.message),
            esc(&d.path),
            d.line,
            d.col
        );
    }
    if diags.is_empty() {
        out.push_str("]\n    }\n  ]\n}\n");
    } else {
        out.push_str("\n      ]\n    }\n  ]\n}\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Diagnostic> {
        vec![Diagnostic {
            rule: "float-taint",
            path: "crates/core/src/kernel.rs".to_string(),
            line: 7,
            col: 9,
            message: "escaping \"sum\"\nsecond line".to_string(),
        }]
    }

    #[test]
    fn json_escapes_and_shapes() {
        let j = to_json(&sample());
        assert!(j.contains("\"version\": 1"));
        assert!(j.contains("\\\"sum\\\"\\nsecond line"));
        assert!(j.contains("\"line\": 7"));
        assert!(to_json(&[]).contains("\"findings\": []"));
    }

    #[test]
    fn sarif_lists_every_rule_and_finding() {
        let s = to_sarif(&sample());
        assert!(s.contains("\"version\": \"2.1.0\""));
        for rule in crate::rules::rule_ids() {
            assert!(s.contains(&format!("\"id\": \"{rule}\"")), "{rule} missing");
        }
        assert!(s.contains("\"startLine\": 7"));
        assert!(to_sarif(&[]).contains("\"results\": []"));
    }
}
