//! Lightweight AST for the semantic rules.
//!
//! This is deliberately *not* a faithful Rust grammar: it models exactly
//! the shapes the rules reason about — items, fn bodies, statements, and
//! an expression tree with calls, method chains, field/index accesses,
//! closures, and control flow. Anything the parser cannot shape (complex
//! generics, trait bounds, exotic patterns) degrades to [`Expr::Opaque`]
//! or [`Stmt::Opaque`] spans rather than failing: the rules treat opaque
//! regions as unknown, which keeps them sound-by-silence (they may miss
//! findings inside an opaque region, never invent them).
//!
//! Every node carries `tok`: the index into the lexed token stream of its
//! anchor token, which gives diagnostics their line/column and lets rules
//! consult [`crate::rules::FileCtx::in_test`].

/// A parsed source file: its top-level items, flattened through modules.
#[derive(Debug, Default)]
pub struct File {
    /// Top-level items in source order.
    pub items: Vec<Item>,
}

/// One item. Items the rules do not model parse as [`Item::Other`].
#[derive(Debug)]
pub enum Item {
    /// A function definition (free, or associated inside an impl).
    Fn(FnDef),
    /// A struct definition with named fields (tuple structs keep their
    /// field types with positional names `"0"`, `"1"`, ...).
    Struct(StructDef),
    /// An impl block; `self_ty` is the implementing type's base name.
    Impl(ImplDef),
    /// An inline module with its items.
    Mod(ModDef),
    /// Anything else (use, const, enum, trait, type alias, macro def).
    Other,
}

/// A function definition.
#[derive(Debug)]
pub struct FnDef {
    /// Name as written.
    pub name: String,
    /// Whether the fn has any `pub` visibility (including `pub(crate)`).
    pub is_pub: bool,
    /// Parameters with raw type text; a `self` receiver appears as a
    /// param named `self` with the impl's self type.
    pub params: Vec<Param>,
    /// Raw return type text (`None` for unit).
    pub ret: Option<String>,
    /// Body; `None` for trait-required fns without one.
    pub body: Option<Block>,
    /// Token index of the fn name (diagnostic anchor).
    pub tok: usize,
}

/// A named, typed slot (fn param or struct field). Types are kept as the
/// raw token text (whitespace-normalized), e.g. `&mut Vec<f64>` — the
/// resolver pattern-matches on that text rather than on a type grammar.
#[derive(Debug, Clone)]
pub struct Param {
    /// Name as written (patterns contribute their first binding).
    pub name: String,
    /// Raw type text.
    pub ty: String,
}

/// A struct definition.
#[derive(Debug)]
pub struct StructDef {
    /// Name as written.
    pub name: String,
    /// Fields with raw type text.
    pub fields: Vec<Param>,
    /// Token index of the struct name.
    pub tok: usize,
}

/// An impl block.
#[derive(Debug)]
pub struct ImplDef {
    /// Base name of the self type (`Engine` for `impl<'a> Engine<'a>`,
    /// `Diagnostic` for `impl fmt::Display for Diagnostic`).
    pub self_ty: String,
    /// Associated items.
    pub items: Vec<Item>,
}

/// An inline `mod name { ... }`.
#[derive(Debug)]
pub struct ModDef {
    /// Module name.
    pub name: String,
    /// Whether this is a `#[cfg(test)]`-style test module (by name).
    pub items: Vec<Item>,
}

/// A block: `{ stmts }`. The final statement is a trailing expression
/// when [`Stmt::Expr`] has `has_semi == false`.
#[derive(Debug, Default)]
pub struct Block {
    /// Statements in order.
    pub stmts: Vec<Stmt>,
}

/// One statement.
#[derive(Debug)]
pub enum Stmt {
    /// `let [mut] pat[: ty] [= init] [else { .. }];`
    Let {
        /// The primary binding: the single name bound when the pattern is
        /// a plain identifier, `None` for destructuring patterns.
        primary: Option<String>,
        /// Every identifier appearing in the pattern (over-approximate).
        pat_names: Vec<String>,
        /// Whether declared `mut`.
        mutable: bool,
        /// Raw annotation type text, when written.
        ty: Option<String>,
        /// Initializer.
        init: Option<Expr>,
        /// `let .. else` diverging block.
        else_block: Option<Block>,
        /// Token index of the `let` keyword.
        tok: usize,
    },
    /// An expression statement; `has_semi == false` marks a trailing
    /// expression (the block's value).
    Expr {
        /// The expression.
        expr: Expr,
        /// Whether a `;` followed.
        has_semi: bool,
    },
    /// A nested item (fn-in-fn, etc.).
    Item(Box<Item>),
    /// Unparseable region, skipped tolerantly.
    Opaque,
}

/// One expression. `tok` fields anchor diagnostics.
#[derive(Debug)]
pub enum Expr {
    /// `a`, `a::b::c` (turbofish segments dropped).
    Path {
        /// Path segments.
        segs: Vec<String>,
        /// Anchor token (first segment).
        tok: usize,
    },
    /// Literal; only numeric-ness and float-ness are retained.
    Lit {
        /// Whether a float literal.
        float: bool,
        /// Anchor token.
        tok: usize,
    },
    /// `callee(args)`.
    Call {
        /// Callee expression (usually a path).
        callee: Box<Expr>,
        /// Arguments.
        args: Vec<Expr>,
        /// Anchor token (the opening paren).
        tok: usize,
    },
    /// `recv.method(args)` (turbofish dropped).
    MethodCall {
        /// Receiver.
        recv: Box<Expr>,
        /// Method name.
        method: String,
        /// Arguments.
        args: Vec<Expr>,
        /// Anchor token (the method name).
        tok: usize,
    },
    /// `name!(...)` / `name![...]` / `name! { ... }`; arguments parse
    /// best-effort (empty when the contents are not expression-shaped).
    MacroCall {
        /// Macro name (last path segment).
        name: String,
        /// Best-effort parsed arguments.
        args: Vec<Expr>,
        /// Anchor token (the macro name).
        tok: usize,
    },
    /// `base.field` (including tuple fields `t.0`).
    Field {
        /// Base expression.
        base: Box<Expr>,
        /// Field name.
        name: String,
        /// Anchor token (the field name).
        tok: usize,
    },
    /// `base[index]`.
    Index {
        /// Base expression.
        base: Box<Expr>,
        /// Index expression.
        index: Box<Expr>,
        /// Anchor token (the opening bracket).
        tok: usize,
    },
    /// Prefix `&`/`&mut`/`*`/`!`/`-`.
    Unary {
        /// Operator char (`&` covers `&mut`).
        op: char,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Binary operator (arithmetic, comparison, logical, shift, range).
    Binary {
        /// Operator text.
        op: String,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Anchor token (the operator).
        tok: usize,
    },
    /// `target = value`, `target += value`, ...
    Assign {
        /// Operator text (`=`, `+=`, ...).
        op: String,
        /// Assignment target.
        target: Box<Expr>,
        /// Assigned value.
        value: Box<Expr>,
        /// Anchor token (the operator).
        tok: usize,
    },
    /// `expr as Ty`.
    Cast {
        /// Operand.
        expr: Box<Expr>,
        /// Raw target type text.
        ty: String,
    },
    /// `|a, b| body` / `move || body`.
    Closure {
        /// Parameter names.
        params: Vec<String>,
        /// Body expression.
        body: Box<Expr>,
        /// Anchor token (the opening `|`).
        tok: usize,
    },
    /// Plain `{ ... }` block (incl. `unsafe { ... }`).
    Block(Block),
    /// `if cond { .. } [else ..]`; `else_` is a Block or another If.
    If {
        /// Condition.
        cond: Box<Expr>,
        /// Then-block.
        then: Block,
        /// Else branch.
        else_: Option<Box<Expr>>,
    },
    /// `if let` / `while let` condition: `let PAT = expr`.
    LetCond {
        /// Identifiers bound by the pattern.
        pat_names: Vec<String>,
        /// Scrutinee.
        expr: Box<Expr>,
    },
    /// `while cond { .. }`.
    While {
        /// Condition.
        cond: Box<Expr>,
        /// Body.
        body: Block,
    },
    /// `loop { .. }`.
    Loop {
        /// Body.
        body: Block,
    },
    /// `for pat in iter { .. }`.
    For {
        /// Identifiers bound by the loop pattern.
        pat_names: Vec<String>,
        /// Iterated expression.
        iter: Box<Expr>,
        /// Body.
        body: Block,
        /// Anchor token (the `for` keyword).
        tok: usize,
    },
    /// `match scrutinee { arms }`.
    Match {
        /// Scrutinee.
        scrutinee: Box<Expr>,
        /// Arms.
        arms: Vec<Arm>,
    },
    /// `Path { field: expr, .. }` struct literal.
    StructLit {
        /// Struct path (base name last).
        path: Vec<String>,
        /// Field initializers; shorthand `x` becomes `("x", Path(x))`.
        fields: Vec<(String, Expr)>,
        /// Anchor token (the path head).
        tok: usize,
    },
    /// `return [expr]`.
    Return {
        /// Returned value.
        value: Option<Box<Expr>>,
        /// Anchor token (the `return` keyword).
        tok: usize,
    },
    /// `(a, b)` tuples and parenthesized groups (1-element = group).
    Tuple {
        /// Elements.
        elems: Vec<Expr>,
    },
    /// `[a, b]` / `[v; n]` array literals.
    Array {
        /// Elements (repeat form keeps both).
        elems: Vec<Expr>,
    },
    /// `expr?`.
    Question {
        /// Operand.
        expr: Box<Expr>,
    },
    /// `lo..hi` / `lo..=hi` with optional ends.
    Range {
        /// Lower bound.
        lo: Option<Box<Expr>>,
        /// Upper bound.
        hi: Option<Box<Expr>>,
        /// Anchor token (the `..`).
        tok: usize,
    },
    /// `break`/`continue` (labels and break-values dropped).
    Jump,
    /// Unparseable region. Rules must not look through it.
    Opaque {
        /// Anchor token of the region start.
        tok: usize,
    },
}

/// One match arm.
#[derive(Debug)]
pub struct Arm {
    /// Identifiers appearing in the pattern and guard (over-approximate).
    pub pat_names: Vec<String>,
    /// Arm body.
    pub body: Expr,
}

impl Expr {
    /// The anchor token index, walking into children when the node has no
    /// own anchor. Falls back to 0 only for empty composites.
    pub fn tok(&self) -> usize {
        match self {
            Expr::Path { tok, .. }
            | Expr::Lit { tok, .. }
            | Expr::Call { tok, .. }
            | Expr::MethodCall { tok, .. }
            | Expr::MacroCall { tok, .. }
            | Expr::Field { tok, .. }
            | Expr::Index { tok, .. }
            | Expr::Binary { tok, .. }
            | Expr::Assign { tok, .. }
            | Expr::Closure { tok, .. }
            | Expr::For { tok, .. }
            | Expr::StructLit { tok, .. }
            | Expr::Return { tok, .. }
            | Expr::Range { tok, .. }
            | Expr::Opaque { tok } => *tok,
            Expr::Unary { expr, .. } | Expr::Cast { expr, .. } | Expr::Question { expr } => {
                expr.tok()
            }
            Expr::If { cond, .. } | Expr::While { cond, .. } => cond.tok(),
            Expr::LetCond { expr, .. } => expr.tok(),
            Expr::Match { scrutinee, .. } => scrutinee.tok(),
            Expr::Tuple { elems } | Expr::Array { elems } => elems.first().map_or(0, Expr::tok),
            Expr::Block(b) | Expr::Loop { body: b } => b
                .stmts
                .iter()
                .find_map(|s| match s {
                    Stmt::Expr { expr, .. } => Some(expr.tok()),
                    Stmt::Let { tok, .. } => Some(*tok),
                    _ => None,
                })
                .unwrap_or(0),
            Expr::Jump => 0,
        }
    }

    /// The base path name when this expression is a plain path (`x` or
    /// `a::b::x` → `x`).
    pub fn as_path_name(&self) -> Option<&str> {
        match self {
            Expr::Path { segs, .. } => segs.last().map(String::as_str),
            _ => None,
        }
    }
}

/// Walks every expression in a block, depth-first, including nested
/// control flow and closure bodies. `f` returning `false` prunes the walk
/// below that expression (children are skipped).
pub fn walk_block(block: &Block, f: &mut dyn FnMut(&Expr) -> bool) {
    for stmt in &block.stmts {
        match stmt {
            Stmt::Let {
                init, else_block, ..
            } => {
                if let Some(e) = init {
                    walk_expr(e, f);
                }
                if let Some(b) = else_block {
                    walk_block(b, f);
                }
            }
            Stmt::Expr { expr, .. } => walk_expr(expr, f),
            Stmt::Item(item) => {
                if let Item::Fn(fd) = item.as_ref() {
                    if let Some(b) = &fd.body {
                        walk_block(b, f);
                    }
                }
            }
            Stmt::Opaque => {}
        }
    }
}

/// Walks `expr` and its children depth-first (see [`walk_block`]).
pub fn walk_expr(expr: &Expr, f: &mut dyn FnMut(&Expr) -> bool) {
    if !f(expr) {
        return;
    }
    match expr {
        Expr::Path { .. } | Expr::Lit { .. } | Expr::Jump | Expr::Opaque { .. } => {}
        Expr::Call { callee, args, .. } => {
            walk_expr(callee, f);
            for a in args {
                walk_expr(a, f);
            }
        }
        Expr::MethodCall { recv, args, .. } => {
            walk_expr(recv, f);
            for a in args {
                walk_expr(a, f);
            }
        }
        Expr::MacroCall { args, .. } => {
            for a in args {
                walk_expr(a, f);
            }
        }
        Expr::Field { base, .. } => walk_expr(base, f),
        Expr::Index { base, index, .. } => {
            walk_expr(base, f);
            walk_expr(index, f);
        }
        Expr::Unary { expr, .. } | Expr::Cast { expr, .. } | Expr::Question { expr } => {
            walk_expr(expr, f)
        }
        Expr::Binary { lhs, rhs, .. } => {
            walk_expr(lhs, f);
            walk_expr(rhs, f);
        }
        Expr::Assign { target, value, .. } => {
            walk_expr(target, f);
            walk_expr(value, f);
        }
        Expr::Closure { body, .. } => walk_expr(body, f),
        Expr::Block(b) | Expr::Loop { body: b } => walk_block(b, f),
        Expr::If { cond, then, else_ } => {
            walk_expr(cond, f);
            walk_block(then, f);
            if let Some(e) = else_ {
                walk_expr(e, f);
            }
        }
        Expr::LetCond { expr, .. } => walk_expr(expr, f),
        Expr::While { cond, body } => {
            walk_expr(cond, f);
            walk_block(body, f);
        }
        Expr::For { iter, body, .. } => {
            walk_expr(iter, f);
            walk_block(body, f);
        }
        Expr::Match { scrutinee, arms } => {
            walk_expr(scrutinee, f);
            for arm in arms {
                walk_expr(&arm.body, f);
            }
        }
        Expr::StructLit { fields, .. } => {
            for (_, e) in fields {
                walk_expr(e, f);
            }
        }
        Expr::Return { value, .. } => {
            if let Some(v) = value {
                walk_expr(v, f);
            }
        }
        Expr::Tuple { elems } | Expr::Array { elems } => {
            for e in elems {
                walk_expr(e, f);
            }
        }
        Expr::Range { lo, hi, .. } => {
            if let Some(e) = lo {
                walk_expr(e, f);
            }
            if let Some(e) = hi {
                walk_expr(e, f);
            }
        }
    }
}

/// Collects every fn in a file, flattened through mods and impls, paired
/// with its enclosing impl self-type (when associated).
pub fn all_fns(file: &File) -> Vec<(&FnDef, Option<&str>)> {
    let mut out = Vec::new();
    fn rec<'a>(
        items: &'a [Item],
        self_ty: Option<&'a str>,
        out: &mut Vec<(&'a FnDef, Option<&'a str>)>,
    ) {
        for item in items {
            match item {
                Item::Fn(fd) => out.push((fd, self_ty)),
                Item::Impl(imp) => rec(&imp.items, Some(&imp.self_ty), out),
                Item::Mod(m) => rec(&m.items, self_ty, out),
                _ => {}
            }
        }
    }
    rec(&file.items, None, &mut out);
    out
}

/// Collects every struct in a file, flattened through mods.
pub fn all_structs(file: &File) -> Vec<&StructDef> {
    let mut out = Vec::new();
    fn rec<'a>(items: &'a [Item], out: &mut Vec<&'a StructDef>) {
        for item in items {
            match item {
                Item::Struct(sd) => out.push(sd),
                Item::Impl(imp) => rec(&imp.items, out),
                Item::Mod(m) => rec(&m.items, out),
                _ => {}
            }
        }
    }
    rec(&file.items, &mut out);
    out
}
