#![forbid(unsafe_code)]
//! `ems-lint` — repo-specific static analysis for the event-matching
//! workspace.
//!
//! The parallel fixpoint kernel's correctness rests on invariants the
//! compiler cannot check: bit-identical results at every thread count,
//! NaN-safe float ordering, compensated accumulation on the similarity
//! hot paths, no panics escaping library crates, and no iteration-order
//! or clock dependence in anything that feeds reported results. This
//! crate turns those contracts (DESIGN.md §9) into machine-checked rules
//! over the workspace's token streams, with an audited suppression
//! syntax (`ems-lint: allow(<rule>, <reason>)`) as the only escape hatch.
//!
//! Run it as `cargo run -p ems-lint -- check`.

pub mod allow;
pub mod ast;
pub mod callgraph;
pub mod config;
pub mod dataflow;
pub mod diag;
pub mod emit;
pub mod lexer;
pub mod parser;
pub mod resolve;
pub mod rules;
pub mod semrules;

use diag::Diagnostic;
use rules::FileCtx;
use std::path::{Path, PathBuf};

/// One fully analyzed file: every layer the rules consume, computed once.
pub struct FileAnalysis {
    /// Path-derived classification.
    pub class: config::FileClass,
    /// Token stream + comments.
    pub lexed: lexer::Lexed,
    /// Parsed AST.
    pub ast: ast::File,
    /// Resolver tables (struct field types).
    pub info: resolve::FileInfo,
    /// Token-index ranges covered by test-gated items.
    pub test_regions: Vec<(usize, usize)>,
}

impl FileAnalysis {
    /// Whether token `i` sits inside a test-only item (or the whole file
    /// is test-kind).
    pub fn in_test(&self, i: usize) -> bool {
        self.class.kind == config::FileKind::Test
            || self.test_regions.iter().any(|&(lo, hi)| i >= lo && i < hi)
    }
}

/// Analyzes one file's source under a (possibly virtual)
/// workspace-relative path: classify, lex, parse, resolve.
pub fn analyze_source(rel_path: &str, source: &str) -> FileAnalysis {
    let class = config::classify(rel_path);
    let lexed = lexer::lex(source);
    let test_regions = rules::find_test_regions(&lexed.tokens);
    let ast = parser::parse_file(&lexed);
    let info = resolve::file_info(&ast);
    FileAnalysis {
        class,
        lexed,
        ast,
        info,
        test_regions,
    }
}

/// Lints a set of analyzed files as one unit: per-file rules, then the
/// workspace call-graph rule, then per-file suppression accounting.
pub fn lint_analyses(files: &[FileAnalysis]) -> Vec<Diagnostic> {
    let mut diags: Vec<Diagnostic> = Vec::new();
    for fa in files {
        let ctx = FileCtx {
            class: &fa.class,
            lexed: &fa.lexed,
            ast: &fa.ast,
            info: &fa.info,
            test_regions: &fa.test_regions,
        };
        for rule in rules::RULES {
            diags.extend((rule.check)(&ctx));
        }
    }
    diags.extend(callgraph::panic_reachability(files));

    // Suppressions are per-file; route each file's findings through its
    // own directives so unused ones are reported against the right file.
    let mut out = Vec::new();
    for fa in files {
        let rel = fa.class.rel_path.as_str();
        let mine: Vec<Diagnostic> = diags.iter().filter(|d| d.path == rel).cloned().collect();
        let (mut sups, sup_diags) = allow::parse_suppressions(&fa.lexed, rel);
        out.extend(allow::apply_suppressions(mine, &mut sups, rel));
        out.extend(sup_diags);
    }
    diag::sort_diagnostics(&mut out);
    out
}

/// Lints one file's source under a (possibly virtual) workspace-relative
/// path. The path drives rule scoping; self-tests use it to lint fixture
/// sources as if they lived in the crates the rules watch. The call-graph
/// rule runs over just this file, so fixtures exercise it too.
pub fn lint_source(rel_path: &str, source: &str) -> Vec<Diagnostic> {
    lint_analyses(&[analyze_source(rel_path, source)])
}

/// Directories never descended into during the workspace walk.
const SKIP_DIRS: &[&str] = &["target", ".git", "fixtures", "results", "node_modules"];

/// Collects every `.rs` file under `root` (sorted, workspace-relative).
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Lints the whole workspace rooted at `root`. Returns all findings in
/// stable order. IO errors abort — a file the lint cannot read is a
/// failure, not a silent skip.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let mut analyses = Vec::new();
    for path in workspace_files(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let source = std::fs::read_to_string(&path)?;
        analyses.push(analyze_source(&rel, &source));
    }
    Ok(lint_analyses(&analyses))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_source_yields_no_findings() {
        let diags = lint_source(
            "crates/core/src/sim.rs",
            "pub fn f(xs: &[f64]) -> f64 { xs.iter().copied().fold(f64::NEG_INFINITY, f64::max) }",
        );
        // `fold` here is not seeded by a float literal and `f64::max` is a
        // path value, not a call — outside this rule set's patterns.
        assert!(diags.iter().all(|d| d.rule != "float-taint"), "{diags:?}");
    }

    #[test]
    fn suppression_consumes_finding() {
        let src = "\
// ems-lint: allow(panic-surface, the slice is checked non-empty one line above)
pub fn f(v: &[u32]) -> u32 { v.first().copied().map(|x| x).unwrap() }
";
        let diags = lint_source("crates/events/src/x.rs", src);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn unused_suppression_is_reported() {
        let src = "// ems-lint: allow(panic-surface, nothing here panics)\npub fn f() {}\n";
        let diags = lint_source("crates/events/src/x.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, allow::SUPPRESSION_RULE);
    }
}
