#![forbid(unsafe_code)]
//! `ems-lint` — repo-specific static analysis for the event-matching
//! workspace.
//!
//! The parallel fixpoint kernel's correctness rests on invariants the
//! compiler cannot check: bit-identical results at every thread count,
//! NaN-safe float ordering, compensated accumulation on the similarity
//! hot paths, no panics escaping library crates, and no iteration-order
//! or clock dependence in anything that feeds reported results. This
//! crate turns those contracts (DESIGN.md §9) into machine-checked rules
//! over the workspace's token streams, with an audited suppression
//! syntax (`ems-lint: allow(<rule>, <reason>)`) as the only escape hatch.
//!
//! Run it as `cargo run -p ems-lint -- check`.

pub mod allow;
pub mod config;
pub mod diag;
pub mod lexer;
pub mod rules;

use diag::Diagnostic;
use rules::FileCtx;
use std::path::{Path, PathBuf};

/// Lints one file's source under a (possibly virtual) workspace-relative
/// path. The path drives rule scoping; self-tests use it to lint fixture
/// sources as if they lived in the crates the rules watch.
pub fn lint_source(rel_path: &str, source: &str) -> Vec<Diagnostic> {
    let class = config::classify(rel_path);
    let lexed = lexer::lex(source);
    let test_regions = rules::find_test_regions(&lexed.tokens);
    let ctx = FileCtx {
        class: &class,
        lexed: &lexed,
        test_regions,
    };
    let mut diags: Vec<Diagnostic> = Vec::new();
    for rule in rules::RULES {
        diags.extend((rule.check)(&ctx));
    }
    let (mut sups, sup_diags) = allow::parse_suppressions(&lexed, rel_path);
    let mut diags = allow::apply_suppressions(diags, &mut sups, rel_path);
    diags.extend(sup_diags);
    diag::sort_diagnostics(&mut diags);
    diags
}

/// Directories never descended into during the workspace walk.
const SKIP_DIRS: &[&str] = &["target", ".git", "fixtures", "results", "node_modules"];

/// Collects every `.rs` file under `root` (sorted, workspace-relative).
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Lints the whole workspace rooted at `root`. Returns all findings in
/// stable order. IO errors abort — a file the lint cannot read is a
/// failure, not a silent skip.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let mut all = Vec::new();
    for path in workspace_files(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let source = std::fs::read_to_string(&path)?;
        all.extend(lint_source(&rel, &source));
    }
    diag::sort_diagnostics(&mut all);
    Ok(all)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_source_yields_no_findings() {
        let diags = lint_source(
            "crates/core/src/sim.rs",
            "pub fn f(xs: &[f64]) -> f64 { xs.iter().copied().fold(f64::NEG_INFINITY, f64::max) }",
        );
        // `fold` here is not seeded by a float literal and `f64::max` is a
        // path value, not a call — outside this rule set's patterns.
        assert!(
            diags.iter().all(|d| d.rule != "naive-accumulation"),
            "{diags:?}"
        );
    }

    #[test]
    fn suppression_consumes_finding() {
        let src = "\
// ems-lint: allow(panic-surface, the slice is checked non-empty one line above)
pub fn f(v: &[u32]) -> u32 { v.first().copied().map(|x| x).unwrap() }
";
        let diags = lint_source("crates/events/src/x.rs", src);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn unused_suppression_is_reported() {
        let src = "// ems-lint: allow(panic-surface, nothing here panics)\npub fn f() {}\n";
        let diags = lint_source("crates/events/src/x.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, allow::SUPPRESSION_RULE);
    }
}
