//! Per-file symbol and type resolution for the semantic rules.
//!
//! The workspace vendors no compiler libraries, so "types" here are the
//! raw type texts the parser captured, interpreted by pattern: `Mutex<X>`
//! / `RwLock<X>` anywhere in a type makes the binding a lock over class
//! `X`, `Barrier` makes it a barrier, `f64`/`f32` makes it float-bearing.
//! Struct definitions in the same file give `self.field` and
//! `binding.field` their declared types; impl blocks give `self` its
//! type. Everything unresolvable is [`VarTy::default`], which the rules
//! treat as *unknown* — unknown never produces a finding.

use crate::ast::{self, Expr, File};
use std::collections::BTreeMap;

/// Which lock primitive a class-bearing type wraps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LockKind {
    /// `std::sync::Mutex`.
    Mutex,
    /// `std::sync::RwLock`.
    RwLock,
}

impl LockKind {
    /// Display name matching the std type.
    pub fn name(self) -> &'static str {
        match self {
            LockKind::Mutex => "Mutex",
            LockKind::RwLock => "RwLock",
        }
    }
}

/// What resolution knows about one binding or expression.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct VarTy {
    /// The binding is (or contains) a lock over this class.
    pub lock: Option<(LockKind, String)>,
    /// The binding is a live guard acquired from this class (set by the
    /// dataflow walker, not by type text).
    pub guard: Option<(LockKind, String)>,
    /// The binding is (or references) a `Barrier`.
    pub barrier: bool,
    /// The binding carries f64/f32 values.
    pub float: bool,
    /// The binding is a compensated accumulator (`NeumaierSum`/`KahanSum`).
    pub compensator: bool,
    /// Base struct name, when the type names a struct defined in-file.
    pub struct_name: Option<String>,
}

/// Per-file resolution tables.
#[derive(Debug, Default)]
pub struct FileInfo {
    /// Struct name → field name → raw type text.
    pub structs: BTreeMap<String, BTreeMap<String, String>>,
}

/// Builds the per-file tables from the AST.
pub fn file_info(file: &File) -> FileInfo {
    let mut info = FileInfo::default();
    for sd in ast::all_structs(file) {
        let fields = sd
            .fields
            .iter()
            .map(|f| (f.name.clone(), f.ty.clone()))
            .collect();
        info.structs.insert(sd.name.clone(), fields);
    }
    info
}

/// First identifier after `needle<` in `ty`, e.g. the lock class.
fn inner_of(ty: &str, needle: &str) -> Option<String> {
    let pos = find_word(ty, needle)?;
    let rest = &ty[pos + needle.len()..];
    let rest = rest.strip_prefix('<')?;
    let inner: String = rest
        .chars()
        .skip_while(|c| *c == '&' || *c == '\'' || c.is_whitespace())
        .take_while(|c| *c == '_' || c.is_alphanumeric())
        .collect();
    if inner.is_empty() {
        None
    } else {
        Some(inner)
    }
}

/// Finds `word` in `ty` at an identifier boundary.
fn find_word(ty: &str, word: &str) -> Option<usize> {
    let bytes = ty.as_bytes();
    let mut from = 0usize;
    while let Some(off) = ty[from..].find(word) {
        let start = from + off;
        let end = start + word.len();
        let pre_ok = start == 0 || {
            let c = bytes[start - 1] as char;
            !(c == '_' || c.is_alphanumeric())
        };
        let post_ok = end >= ty.len() || {
            let c = bytes[end] as char;
            !(c == '_' || c.is_alphanumeric())
        };
        if pre_ok && post_ok {
            return Some(start);
        }
        from = end;
    }
    None
}

/// Interprets raw type text into a [`VarTy`].
pub fn var_ty_from_type(ty: &str, info: &FileInfo) -> VarTy {
    let mut v = VarTy::default();
    if let Some(class) = inner_of(ty, "Mutex") {
        v.lock = Some((LockKind::Mutex, class));
    } else if let Some(class) = inner_of(ty, "RwLock") {
        v.lock = Some((LockKind::RwLock, class));
    }
    if find_word(ty, "Barrier").is_some() {
        v.barrier = true;
    }
    if find_word(ty, "f64").is_some() || find_word(ty, "f32").is_some() {
        v.float = true;
    }
    if find_word(ty, "NeumaierSum").is_some() || find_word(ty, "KahanSum").is_some() {
        v.compensator = true;
    }
    // Base struct name: first path-ish identifier that names an in-file
    // struct (`&Arc<EngineSubstrate>` → `EngineSubstrate`).
    for name in info.structs.keys() {
        if find_word(ty, name).is_some() {
            v.struct_name = Some(name.clone());
            break;
        }
    }
    v
}

/// Iterator adapters that preserve the interesting part of a receiver's
/// type for resolution (`slots.iter().enumerate().skip(1)` still yields
/// the slots' locks).
const PASS_THROUGH_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "enumerate",
    "skip",
    "take",
    "rev",
    "chunks",
    "chunks_exact",
    "windows",
    "as_ref",
    "as_mut",
    "as_slice",
    "clone",
    "copied",
    "cloned",
    "zip",
    "first",
    "last",
    "get",
    "get_mut",
];

/// A per-function name environment layered over the file tables.
#[derive(Debug)]
pub struct Env<'a> {
    /// Binding name → what we know about it.
    pub vars: BTreeMap<String, VarTy>,
    /// The enclosing impl's self type, if any.
    pub self_ty: Option<&'a str>,
    /// File tables.
    pub info: &'a FileInfo,
}

impl<'a> Env<'a> {
    /// New environment over `info` for a fn inside `self_ty`'s impl.
    pub fn new(info: &'a FileInfo, self_ty: Option<&'a str>) -> Self {
        Env {
            vars: BTreeMap::new(),
            self_ty,
            info,
        }
    }

    /// Records a binding's resolved type.
    pub fn bind(&mut self, name: &str, ty: VarTy) {
        if !name.is_empty() {
            self.vars.insert(name.to_string(), ty);
        }
    }

    /// Resolves an expression to what is known about its value.
    pub fn resolve(&self, expr: &Expr) -> VarTy {
        match expr {
            Expr::Path { segs, .. } => {
                if segs.len() == 1 && segs[0] == "self" {
                    VarTy {
                        struct_name: self.self_ty.map(str::to_string),
                        ..VarTy::default()
                    }
                } else if let Some(v) = segs.last().and_then(|n| self.vars.get(n)) {
                    v.clone()
                } else {
                    VarTy::default()
                }
            }
            Expr::Field { base, name, .. } => {
                let b = self.resolve(base);
                if let Some(fields) = b
                    .struct_name
                    .as_ref()
                    .and_then(|s| self.info.structs.get(s))
                {
                    if let Some(ty) = fields.get(name) {
                        return var_ty_from_type(ty, self.info);
                    }
                }
                VarTy::default()
            }
            // Indexing and iteration look *into* a container type; the
            // text pattern already matched through `Vec<...>`/`[...]`.
            Expr::Index { base, .. } => self.resolve(base),
            Expr::Unary { expr, .. } | Expr::Question { expr } => self.resolve(expr),
            Expr::Cast { expr, ty } => {
                let mut v = self.resolve(expr);
                if find_word(ty, "f64").is_some() || find_word(ty, "f32").is_some() {
                    v.float = true;
                }
                v
            }
            Expr::Lit { float, .. } => VarTy {
                float: *float,
                ..VarTy::default()
            },
            Expr::Binary { op, lhs, rhs, .. } => {
                // Arithmetic propagates floatness; comparisons yield bool.
                if matches!(op.as_str(), "+" | "-" | "*" | "/" | "%") {
                    VarTy {
                        float: self.resolve(lhs).float || self.resolve(rhs).float,
                        ..VarTy::default()
                    }
                } else {
                    VarTy::default()
                }
            }
            Expr::MethodCall { recv, method, .. } => {
                if PASS_THROUGH_METHODS.contains(&method.as_str()) {
                    self.resolve(recv)
                } else {
                    VarTy::default()
                }
            }
            Expr::Call { callee, args, .. } => {
                let segs: &[String] = match callee.as_ref() {
                    Expr::Path { segs, .. } => segs,
                    _ => return VarTy::default(),
                };
                let head = segs.iter().rev().nth(1).map(String::as_str);
                let tail = segs.last().map(String::as_str);
                match (head, tail) {
                    (Some("Mutex"), Some("new")) | (Some("RwLock"), Some("new")) => {
                        let kind = if head == Some("Mutex") {
                            LockKind::Mutex
                        } else {
                            LockKind::RwLock
                        };
                        let class = args
                            .first()
                            .and_then(|a| self.class_of_value(a))
                            .unwrap_or_else(|| "_".to_string());
                        VarTy {
                            lock: Some((kind, class)),
                            ..VarTy::default()
                        }
                    }
                    (Some("Barrier"), Some("new")) => VarTy {
                        barrier: true,
                        ..VarTy::default()
                    },
                    (Some("NeumaierSum" | "KahanSum"), _) => VarTy {
                        compensator: true,
                        ..VarTy::default()
                    },
                    // Wrappers that do not change what the value is.
                    (Some("Arc" | "Box" | "Rc"), Some("new")) | (_, Some("AssertUnwindSafe")) => {
                        args.first().map(|a| self.resolve(a)).unwrap_or_default()
                    }
                    _ => VarTy::default(),
                }
            }
            Expr::MacroCall { name, args, .. } if name == "vec" => VarTy {
                float: args.first().is_some_and(|a| self.resolve(a).float),
                ..VarTy::default()
            },
            Expr::StructLit { path, .. } => VarTy {
                struct_name: path.last().cloned(),
                ..VarTy::default()
            },
            Expr::If { then, else_, .. } => {
                // The value comes from the branch tails; either suffices.
                let mut v = block_value_ty(self, then);
                if v == VarTy::default() {
                    if let Some(e) = else_ {
                        v = self.resolve(e);
                    }
                }
                v
            }
            Expr::Block(b) => block_value_ty(self, b),
            _ => VarTy::default(),
        }
    }

    /// The class name of a value used to seed a lock (`PoolState { .. }`
    /// or a binding with a known struct type).
    fn class_of_value(&self, expr: &Expr) -> Option<String> {
        match expr {
            Expr::StructLit { path, .. } => path.last().cloned(),
            Expr::Call { callee, .. } => match callee.as_ref() {
                // `PoolSlot::default()` and friends.
                Expr::Path { segs, .. } if segs.len() >= 2 => segs.iter().rev().nth(1).cloned(),
                _ => None,
            },
            _ => self.resolve(expr).struct_name,
        }
    }
}

/// Resolved type of a block's trailing expression.
fn block_value_ty(env: &Env<'_>, block: &ast::Block) -> VarTy {
    for stmt in block.stmts.iter().rev() {
        if let ast::Stmt::Expr {
            expr,
            has_semi: false,
        } = stmt
        {
            return env.resolve(expr);
        }
    }
    VarTy::default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse_file;

    #[test]
    fn type_text_patterns() {
        let info = FileInfo::default();
        let v = var_ty_from_type("&RwLock<PoolState>", &info);
        assert_eq!(v.lock, Some((LockKind::RwLock, "PoolState".to_string())));
        let v = var_ty_from_type("&[Mutex<PoolSlot>]", &info);
        assert_eq!(v.lock, Some((LockKind::Mutex, "PoolSlot".to_string())));
        let v = var_ty_from_type("Vec<Mutex<PoolSlot>>", &info);
        assert_eq!(v.lock, Some((LockKind::Mutex, "PoolSlot".to_string())));
        assert!(var_ty_from_type("&Barrier", &info).barrier);
        assert!(var_ty_from_type("&mut Vec<f64>", &info).float);
        assert!(var_ty_from_type("NeumaierSum", &info).compensator);
        // Word boundaries: no false matches inside longer identifiers.
        assert!(var_ty_from_type("MutexLike<X>", &info).lock.is_none());
        assert!(!var_ty_from_type("BarrierStats", &info).barrier);
    }

    #[test]
    fn self_fields_resolve_through_impl() {
        let src = "struct Pool { state: RwLock<PoolState>, barrier: Barrier }\n\
                   impl Pool { fn f(&self) { self.state.read(); self.barrier.wait(); } }";
        let file = parse_file(&lex(src));
        let info = file_info(&file);
        let fns = crate::ast::all_fns(&file);
        let (fd, self_ty) = fns[0];
        let mut env = Env::new(&info, self_ty);
        for p in &fd.params {
            env.bind(&p.name, var_ty_from_type(&p.ty, &info));
        }
        // `self.state` is a RwLock<PoolState>; `self.barrier` a Barrier.
        let body = fd.body.as_ref().unwrap();
        let mut found = (false, false);
        crate::ast::walk_block(body, &mut |e| {
            if let Expr::MethodCall { recv, method, .. } = e {
                let v = env.resolve(recv);
                if method == "read" {
                    assert_eq!(v.lock, Some((LockKind::RwLock, "PoolState".to_string())));
                    found.0 = true;
                }
                if method == "wait" {
                    assert!(v.barrier);
                    found.1 = true;
                }
            }
            true
        });
        assert_eq!(found, (true, true));
    }

    #[test]
    fn initializer_heuristics() {
        let info = FileInfo::default();
        let env = Env::new(&info, None);
        let src = "fn f() { let s = RwLock::new(PoolState { x: 1 }); }";
        let file = parse_file(&lex(src));
        let fns = crate::ast::all_fns(&file);
        let body = fns[0].0.body.as_ref().unwrap();
        if let crate::ast::Stmt::Let { init: Some(e), .. } = &body.stmts[0] {
            let v = env.resolve(e);
            assert_eq!(v.lock, Some((LockKind::RwLock, "PoolState".to_string())));
        } else {
            panic!("expected let");
        }
    }
}
