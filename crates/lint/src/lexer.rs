//! A minimal Rust lexer — the token stream under both the token-pattern
//! rules and the v2 recursive-descent parser ([`crate::parser`]).
//!
//! The workspace vendors no third-party crates, so a full AST (syn) is not
//! available; the lexer provides everything that would otherwise make
//! token matching unsound: nested block comments, raw/byte strings, byte
//! chars, raw identifiers, char literals vs lifetimes, and float vs
//! integer literals. Comments are kept on the side — suppression
//! directives and `SAFETY:` audits live there.
//!
//! Every token and comment carries its **byte span** in the source. The
//! spans are a checked invariant: `tests/lexer_roundtrip.rs` asserts that
//! for every source file in the workspace the spans are ascending,
//! non-overlapping, and cover everything but whitespace — i.e. that the
//! token stream exactly reconstructs the file.

/// Token categories relevant to the rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw identifiers — `r#type` lexes
    /// as the identifier `type`, which is what the name refers to).
    Ident,
    /// Punctuation (single char, or one of the composed operators).
    Punct,
    /// Numeric literal; `float` distinguishes `1.0`/`1e9`/`2f64` from `1`.
    Num {
        /// Whether the literal is a floating-point literal.
        float: bool,
    },
    /// String literal of any flavor (contents not retained).
    Str,
    /// Char or byte-char literal.
    Char,
    /// Lifetime (`'a`).
    Lifetime,
}

/// One lexed token with its source position (1-based line and column) and
/// byte span (`start..end` into the source).
#[derive(Debug, Clone)]
pub struct Token {
    /// Category.
    pub kind: TokKind,
    /// Literal text (empty for string contents; the referenced name for
    /// raw identifiers).
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
    /// Byte offset of the token's first byte.
    pub start: u32,
    /// Byte offset one past the token's last byte.
    pub end: u32,
}

impl Token {
    /// Whether this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }

    /// Whether this token is the punctuation `p`.
    pub fn is_punct(&self, p: &str) -> bool {
        self.kind == TokKind::Punct && self.text == p
    }
}

/// One comment (line or block), with the line it starts on and whether any
/// code token precedes it on that line (a *trailing* comment).
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment text without the `//` / `/*` markers, untrimmed. Nested
    /// block-comment delimiters are preserved verbatim.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Whether a code token precedes the comment on its line.
    pub trailing: bool,
    /// Byte offset of the comment opener.
    pub start: u32,
    /// Byte offset one past the comment's last byte.
    pub end: u32,
}

/// Lexer output: the code token stream plus the comment side channel.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Two-character operators composed into single tokens (longest match
/// first is unnecessary — none is a prefix of another here except handled
/// `..=`).
const TWO_CHAR_OPS: &[&str] = &[
    "::", "->", "=>", "+=", "-=", "*=", "/=", "%=", "==", "!=", "<=", ">=", "&&", "||", "..",
];

/// Lexes `src` into tokens and comments. Never fails: unterminated
/// constructs are closed at end of input (the rules operate on whatever
/// structure is recoverable).
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    // Byte offset of every char, plus the end-of-input sentinel, so any
    // char-index range maps straight to a byte span.
    let mut offs: Vec<u32> = Vec::with_capacity(chars.len() + 1);
    let mut b = 0u32;
    for c in &chars {
        offs.push(b);
        b += c.len_utf8() as u32;
    }
    offs.push(b);

    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut col: u32 = 1;
    let mut last_code_line: u32 = 0;

    macro_rules! bump {
        () => {{
            if chars[i] == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        // Whitespace.
        if c.is_whitespace() {
            bump!();
            continue;
        }
        // Line comment (including doc comments).
        if c == '/' && i + 1 < chars.len() && chars[i + 1] == '/' {
            let (start_line, start_i) = (line, i);
            let mut text = String::new();
            bump!();
            bump!();
            while i < chars.len() && chars[i] != '\n' {
                text.push(chars[i]);
                bump!();
            }
            out.comments.push(Comment {
                text,
                line: start_line,
                trailing: last_code_line == start_line,
                start: offs[start_i],
                end: offs[i],
            });
            continue;
        }
        // Block comment (nested).
        if c == '/' && i + 1 < chars.len() && chars[i + 1] == '*' {
            let (start_line, start_i) = (line, i);
            let mut text = String::new();
            let mut depth = 1usize;
            bump!();
            bump!();
            while i < chars.len() && depth > 0 {
                if chars[i] == '/' && i + 1 < chars.len() && chars[i + 1] == '*' {
                    depth += 1;
                    text.push_str("/*");
                    bump!();
                    bump!();
                } else if chars[i] == '*' && i + 1 < chars.len() && chars[i + 1] == '/' {
                    depth -= 1;
                    if depth > 0 {
                        text.push_str("*/");
                    }
                    bump!();
                    bump!();
                } else {
                    text.push(chars[i]);
                    bump!();
                }
            }
            out.comments.push(Comment {
                text,
                line: start_line,
                trailing: last_code_line == start_line,
                start: offs[start_i],
                end: offs[i],
            });
            continue;
        }
        let (tok_line, tok_col, tok_start) = (line, col, i);
        macro_rules! push_tok {
            ($kind:expr, $text:expr) => {{
                out.tokens.push(Token {
                    kind: $kind,
                    text: $text,
                    line: tok_line,
                    col: tok_col,
                    start: offs[tok_start],
                    end: offs[i],
                });
                last_code_line = tok_line;
            }};
        }
        // Raw / byte strings: r"", r#""#, b"", br#""#.
        if (c == 'r' || c == 'b') && is_raw_or_byte_string(&chars, i) {
            consume_string_like(&chars, &mut i, &mut line, &mut col);
            push_tok!(TokKind::Str, String::new());
            continue;
        }
        // Byte-char literal: b'x', b'\n'.
        if c == 'b' && chars.get(i + 1) == Some(&'\'') {
            bump!(); // the `b`
            consume_quoted(&chars, &mut i, &mut line, &mut col, '\'');
            push_tok!(TokKind::Char, String::new());
            continue;
        }
        // Raw identifier: r#ident (the token *is* the suffixed name —
        // `r#type` is the identifier `type`).
        if c == 'r'
            && chars.get(i + 1) == Some(&'#')
            && chars
                .get(i + 2)
                .is_some_and(|d| *d == '_' || d.is_alphabetic())
        {
            bump!(); // r
            bump!(); // #
            let mut text = String::new();
            while i < chars.len() && (chars[i] == '_' || chars[i].is_alphanumeric()) {
                text.push(chars[i]);
                bump!();
            }
            push_tok!(TokKind::Ident, text);
            continue;
        }
        // Plain string.
        if c == '"' {
            consume_quoted(&chars, &mut i, &mut line, &mut col, '"');
            push_tok!(TokKind::Str, String::new());
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            let next = chars.get(i + 1).copied();
            let after = chars.get(i + 2).copied();
            let is_lifetime = match (next, after) {
                (Some(n), a) if n == '_' || n.is_alphabetic() => a != Some('\''),
                _ => false,
            };
            if is_lifetime {
                bump!();
                let mut text = String::new();
                while i < chars.len() && (chars[i] == '_' || chars[i].is_alphanumeric()) {
                    text.push(chars[i]);
                    bump!();
                }
                push_tok!(TokKind::Lifetime, text);
            } else {
                consume_quoted(&chars, &mut i, &mut line, &mut col, '\'');
                push_tok!(TokKind::Char, String::new());
            }
            continue;
        }
        // Identifier / keyword.
        if c == '_' || c.is_alphabetic() {
            let mut text = String::new();
            while i < chars.len() && (chars[i] == '_' || chars[i].is_alphanumeric()) {
                text.push(chars[i]);
                bump!();
            }
            push_tok!(TokKind::Ident, text);
            continue;
        }
        // Numeric literal.
        if c.is_ascii_digit() {
            let mut text = String::new();
            let mut float = false;
            if c == '0' && matches!(chars.get(i + 1), Some('x' | 'o' | 'b')) {
                // Radix literal: consume prefix + digits/underscores.
                text.push(chars[i]);
                bump!();
                text.push(chars[i]);
                bump!();
                while i < chars.len() && (chars[i] == '_' || chars[i].is_alphanumeric()) {
                    text.push(chars[i]);
                    bump!();
                }
            } else {
                while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '_') {
                    text.push(chars[i]);
                    bump!();
                }
                // Fractional part only when a digit follows the dot —
                // `1.max(2)` and `0..n` stay integer.
                if i < chars.len()
                    && chars[i] == '.'
                    && chars.get(i + 1).is_some_and(|d| d.is_ascii_digit())
                {
                    float = true;
                    text.push(chars[i]);
                    bump!();
                    while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '_') {
                        text.push(chars[i]);
                        bump!();
                    }
                }
                // Exponent.
                if i < chars.len() && (chars[i] == 'e' || chars[i] == 'E') {
                    let mut j = i + 1;
                    if matches!(chars.get(j), Some('+' | '-')) {
                        j += 1;
                    }
                    if chars.get(j).is_some_and(|d| d.is_ascii_digit()) {
                        float = true;
                        while i < j {
                            text.push(chars[i]);
                            bump!();
                        }
                        while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '_') {
                            text.push(chars[i]);
                            bump!();
                        }
                    }
                }
                // Type suffix (`f64`, `u32`, `_f64`, ...).
                let mut suffix = String::new();
                while i < chars.len() && (chars[i] == '_' || chars[i].is_alphanumeric()) {
                    suffix.push(chars[i]);
                    bump!();
                }
                if suffix.contains("f32") || suffix.contains("f64") {
                    float = true;
                }
                text.push_str(&suffix);
            }
            push_tok!(TokKind::Num { float }, text);
            continue;
        }
        // Punctuation — compose two-char operators, prefer `..=`.
        let pair: String = chars[i..chars.len().min(i + 2)].iter().collect();
        if pair == ".." && chars.get(i + 2) == Some(&'=') {
            bump!();
            bump!();
            bump!();
            push_tok!(TokKind::Punct, "..=".to_string());
        } else if TWO_CHAR_OPS.contains(&pair.as_str()) {
            bump!();
            bump!();
            push_tok!(TokKind::Punct, pair);
        } else {
            bump!();
            push_tok!(TokKind::Punct, c.to_string());
        }
    }
    out
}

/// Whether position `i` (at `r` or `b`) starts a raw or byte string.
fn is_raw_or_byte_string(chars: &[char], i: usize) -> bool {
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
    }
    if chars.get(j) == Some(&'r') {
        j += 1;
        while chars.get(j) == Some(&'#') {
            j += 1;
        }
    }
    // Followed directly by a quote — and not a plain identifier like `radius`.
    chars.get(j) == Some(&'"') && j > i
}

/// Consumes a raw/byte string starting at `*i` (at the `r`/`b` marker).
fn consume_string_like(chars: &[char], i: &mut usize, line: &mut u32, col: &mut u32) {
    let mut step = |i: &mut usize| {
        if chars[*i] == '\n' {
            *line += 1;
            *col = 1;
        } else {
            *col += 1;
        }
        *i += 1;
    };
    let mut hashes = 0usize;
    let mut raw = false;
    while *i < chars.len() && chars[*i] != '"' {
        if chars[*i] == '#' {
            hashes += 1;
        }
        if chars[*i] == 'r' {
            raw = true;
        }
        step(i);
    }
    if *i < chars.len() {
        step(i); // opening quote
    }
    while *i < chars.len() {
        if chars[*i] == '\\' && !raw {
            step(i);
            if *i < chars.len() {
                step(i);
            }
            continue;
        }
        if chars[*i] == '"' {
            // Raw strings close only with the matching number of hashes.
            let mut j = *i + 1;
            let mut seen = 0usize;
            while seen < hashes && chars.get(j) == Some(&'#') {
                seen += 1;
                j += 1;
            }
            if seen == hashes {
                while *i < j {
                    step(i);
                }
                return;
            }
        }
        step(i);
    }
}

/// Consumes a quoted literal (string or char) starting at the quote.
fn consume_quoted(chars: &[char], i: &mut usize, line: &mut u32, col: &mut u32, quote: char) {
    let mut step = |i: &mut usize| {
        if chars[*i] == '\n' {
            *line += 1;
            *col = 1;
        } else {
            *col += 1;
        }
        *i += 1;
    };
    step(i); // opening quote
    while *i < chars.len() {
        if chars[*i] == '\\' {
            step(i);
            if *i < chars.len() {
                step(i);
            }
            continue;
        }
        if chars[*i] == quote {
            step(i);
            return;
        }
        step(i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    /// Spans must be ascending, non-overlapping, in-bounds, and everything
    /// between them must be whitespace — the reconstruction invariant the
    /// workspace-wide property test enforces on real sources.
    fn assert_spans_reconstruct(src: &str) {
        let lexed = lex(src);
        let mut spans: Vec<(u32, u32)> = lexed
            .tokens
            .iter()
            .map(|t| (t.start, t.end))
            .chain(lexed.comments.iter().map(|c| (c.start, c.end)))
            .collect();
        spans.sort();
        let mut cursor = 0u32;
        for (start, end) in spans {
            assert!(start >= cursor, "overlapping spans at byte {start}");
            assert!(end > start, "empty span at byte {start}");
            assert!(
                src[cursor as usize..start as usize]
                    .chars()
                    .all(char::is_whitespace),
                "non-whitespace bytes between spans before {start}"
            );
            cursor = end;
        }
        assert!(
            src[cursor as usize..].chars().all(char::is_whitespace),
            "non-whitespace tail after last span"
        );
    }

    #[test]
    fn comments_and_strings_hide_tokens() {
        let lexed = lex("let x = \"partial_cmp\"; // partial_cmp here\n/* partial_cmp */ let y;");
        assert!(lexed.tokens.iter().all(|t| t.text != "partial_cmp"));
        assert_eq!(
            idents("let x = \"partial_cmp\"; // partial_cmp here\n/* partial_cmp */ let y;"),
            vec!["let", "x", "let", "y"]
        );
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[0].trailing);
        assert!(!lexed.comments[1].trailing);
    }

    #[test]
    fn float_vs_integer_literals() {
        let toks = lex("1 1.0 1e9 2f64 0x1f 0..n 1.max(2) 100_000.0").tokens;
        let floats: Vec<bool> = toks
            .iter()
            .filter_map(|t| match t.kind {
                TokKind::Num { float } => Some(float),
                _ => None,
            })
            .collect();
        assert_eq!(
            floats,
            vec![false, true, true, true, false, false, false, false, true]
        );
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }").tokens;
        let lifetimes = toks.iter().filter(|t| t.kind == TokKind::Lifetime).count();
        let chars = toks.iter().filter(|t| t.kind == TokKind::Char).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 2);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let lexed = lex("let s = r#\"has \"quotes\" and partial_cmp\"#; let t = 1;");
        assert!(lexed.tokens.iter().all(|t| t.text != "partial_cmp"));
        assert!(lexed.tokens.iter().any(|t| t.is_ident("t")));
    }

    /// Regression (PR 8): `b'x'` used to lex as the identifier `b`
    /// followed by a char literal, leaking a phantom `b` into ident rules.
    #[test]
    fn byte_char_literals_are_single_tokens() {
        let toks = lex("let x = b'a'; let y = b'\\n'; let b = 1;").tokens;
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Char).count(),
            2,
            "{toks:?}"
        );
        // Exactly one `b` ident — the real binding, not the literal prefix.
        assert_eq!(toks.iter().filter(|t| t.is_ident("b")).count(), 1);
        assert_spans_reconstruct("let x = b'a'; let y = b'\\n'; let b = 1;");
    }

    /// Regression (PR 8): `r#type` used to lex as ident `r`, punct `#`,
    /// ident `type` — three phantom tokens for one identifier.
    #[test]
    fn raw_identifiers_are_single_tokens() {
        let src = "let r#type = r#match + radius;";
        let toks = lex(src).tokens;
        assert_eq!(idents(src), vec!["let", "type", "match", "radius"]);
        assert!(toks.iter().all(|t| !t.is_punct("#")), "{toks:?}");
        assert_spans_reconstruct(src);
    }

    #[test]
    fn nested_block_comments_and_raw_strings_reconstruct() {
        for src in [
            "/* outer /* inner */ tail */ fn f() {}",
            "let s = r##\"quote \"# almost\"## ; /* a /* b */ c */",
            "let s = br#\"bytes\"#; let c = b'q';",
            "/* unterminated /* nested",
            "let u = \"\\u{1F600} unicode\"; let w = 'λ';",
        ] {
            assert_spans_reconstruct(src);
        }
    }

    #[test]
    fn nested_block_comment_text_keeps_inner_markers() {
        let lexed = lex("/* a /* ems-lint */ b */");
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.comments[0].text, " a /* ems-lint */ b ");
    }

    #[test]
    fn composed_operators() {
        let toks = lex("a += b; c..=d; e::f; g -> h").tokens;
        assert!(toks.iter().any(|t| t.is_punct("+=")));
        assert!(toks.iter().any(|t| t.is_punct("..=")));
        assert!(toks.iter().any(|t| t.is_punct("::")));
        assert!(toks.iter().any(|t| t.is_punct("->")));
    }

    #[test]
    fn positions_are_one_based() {
        let toks = lex("ab\n  cd").tokens;
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn spans_are_byte_offsets() {
        let src = "let π = 1.5;";
        let toks = lex(src).tokens;
        for t in &toks {
            let slice = &src[t.start as usize..t.end as usize];
            match t.kind {
                TokKind::Ident | TokKind::Punct | TokKind::Num { .. } => {
                    assert_eq!(slice, t.text, "span text mismatch for {t:?}")
                }
                _ => {}
            }
        }
        assert_spans_reconstruct(src);
    }
}
