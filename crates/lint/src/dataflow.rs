//! Intraprocedural dataflow: guard-liveness lock scans and float-taint
//! name flows over one function body.
//!
//! Both walkers share the same philosophy as the parser: unknown shapes
//! contribute nothing. A binding the resolver cannot type never acquires
//! a lock class and never becomes a float accumulator, so opaque code is
//! silent, not noisy.
//!
//! ## Lock scan
//!
//! Walks a fn body in evaluation order tracking which guards are live:
//! - `E.lock()` / `E.read()` / `E.write()` on a lock-classed receiver is
//!   an acquisition. Bound to a `let`, the guard lives until `drop(g)`,
//!   scope end, or rebinding; unbound, it dies at statement end.
//!   `try_lock` is deliberately untracked — it is non-blocking and the
//!   engine's scratch-reuse contract allows it anywhere.
//! - `E.wait()` on a `Barrier` receiver is a wait point.
//! - unwrap/expect method calls and panic-family macros are panic sites;
//!   inside a `catch_unwind` argument they are *absorbed*.
//! - Closures are walked inline where they appear (synchronous-call
//!   assumption), except arguments to `spawn`, which get a fresh guard
//!   context (they run on another thread) — the enclosing environment's
//!   types remain visible, captured by reference. A closure bound to a
//!   local is walked where it is referenced, which is how the pool's
//!   `let mut main_loop = || …; catch_unwind(AssertUnwindSafe(&mut
//!   main_loop))` protocol gets its absorption credit.
//! - Branches merge by intersection: a guard survives a branch point
//!   only if every branch keeps it live.
//!
//! ## Float-taint scan
//!
//! Finds loop-carried f64 accumulations (`acc += …`, `acc = acc + …`,
//! and `container[i] += …` with a loop-invariant base) plus iterator
//! reductions (`.sum()`, `.fold(0.0, …)`), then keeps only those whose
//! value *escapes*: flows — through the let/assign name graph — into a
//! return value, a struct-literal field, a store through a field, index,
//! or deref, or an argument to a method on a parameter or `self`.
//! Comparisons do not propagate taint (a value that only gates a branch
//! is not exported), and compensated accumulators (`NeumaierSum` /
//! `KahanSum`) are the sanctioned sink-route, never a source.

use crate::ast::{self, Block, Expr, FnDef, Stmt};
use crate::resolve::{var_ty_from_type, Env, FileInfo, LockKind, VarTy};
use std::collections::{BTreeMap, BTreeSet};

/// What happened at one point of a lock scan.
#[derive(Debug, Clone, PartialEq)]
pub enum LockOp {
    /// A guard was acquired.
    Acquire {
        /// Lock primitive.
        kind: LockKind,
        /// Lock class (the wrapped type's base name).
        class: String,
    },
    /// A `Barrier::wait` call.
    Wait,
    /// A potential panic (unwrap/expect or panic-family macro).
    PanicSite {
        /// The panicking construct's name.
        what: String,
    },
}

/// One ordered event from a lock scan.
#[derive(Debug, Clone)]
pub struct LockEvent {
    /// What happened.
    pub op: LockOp,
    /// Anchor token index.
    pub tok: usize,
    /// Guard classes live at this point (excluding, for acquisitions and
    /// panic sites, the guard being produced by the same call chain).
    pub held: Vec<(LockKind, String)>,
    /// Whether the point sits inside a `catch_unwind` argument.
    pub absorbed: bool,
    /// Enclosing fn name (spawned closures get a `::spawn` suffix).
    pub fn_name: String,
}

#[derive(Debug, Clone)]
struct Guard {
    id: u64,
    name: Option<String>,
    kind: LockKind,
    class: String,
    scope: usize,
}

struct LockWalker<'a> {
    env: Env<'a>,
    live: Vec<Guard>,
    next_id: u64,
    scope: usize,
    absorbed: usize,
    fn_name: String,
    events: Vec<LockEvent>,
    /// Let-bound closures, walked where referenced instead of where
    /// defined. The stack guards against self-referential closures.
    closures: BTreeMap<String, &'a Expr>,
    closure_stack: Vec<String>,
}

/// Scans one fn body for lock events. `self_ty` is the enclosing impl's
/// type, used to resolve `self.field` receivers.
pub fn scan_locks(fd: &FnDef, self_ty: Option<&str>, info: &FileInfo) -> Vec<LockEvent> {
    let Some(body) = &fd.body else {
        return Vec::new();
    };
    let mut env = Env::new(info, self_ty);
    for p in &fd.params {
        env.bind(&p.name, var_ty_from_type(&p.ty, info));
    }
    let mut w = LockWalker {
        env,
        live: Vec::new(),
        next_id: 0,
        scope: 0,
        absorbed: 0,
        fn_name: fd.name.clone(),
        events: Vec::new(),
        closures: BTreeMap::new(),
        closure_stack: Vec::new(),
    };
    w.walk_block(body);
    w.events
}

impl<'a> LockWalker<'a> {
    fn held(&self, exclude: Option<u64>) -> Vec<(LockKind, String)> {
        self.live
            .iter()
            .filter(|g| Some(g.id) != exclude)
            .map(|g| (g.kind, g.class.clone()))
            .collect()
    }

    fn walk_block(&mut self, block: &'a Block) {
        self.scope += 1;
        let scope = self.scope;
        for stmt in &block.stmts {
            self.walk_stmt(stmt);
            // Unnamed guards die at statement end.
            self.live.retain(|g| g.name.is_some() || g.scope < scope);
        }
        self.live.retain(|g| g.scope < scope);
        self.scope -= 1;
    }

    fn walk_stmt(&mut self, stmt: &'a Stmt) {
        match stmt {
            Stmt::Let {
                primary,
                ty,
                init,
                else_block,
                ..
            } => {
                // Let-bound closures are deferred to their references.
                if let (Some(name), Some(e @ Expr::Closure { .. })) = (primary, init.as_ref()) {
                    self.closures.insert(name.clone(), e);
                    self.env.bind(name, VarTy::default());
                    return;
                }
                let fresh = match init {
                    Some(e) => self.walk_expr(e),
                    None => None,
                };
                let resolved = match (ty, init) {
                    (Some(t), _) => var_ty_from_type(t, self.env.info),
                    (None, Some(e)) => self.env.resolve(e),
                    _ => VarTy::default(),
                };
                if let Some(name) = primary {
                    if let Some(id) = fresh {
                        // The freshly acquired guard is now named; it
                        // lives until drop/rebind/scope end.
                        self.live.retain(|g| g.name.as_deref() != Some(name));
                        if let Some(g) = self.live.iter_mut().find(|g| g.id == id) {
                            g.name = Some(name.clone());
                        }
                    }
                    self.env.bind(name, resolved);
                }
                if let Some(b) = else_block {
                    self.walk_block(b);
                }
            }
            Stmt::Expr { expr, .. } => {
                self.walk_expr(expr);
            }
            Stmt::Item(_) | Stmt::Opaque => {}
        }
    }

    /// Walks an expression in evaluation order, emitting events. Returns
    /// the id of the guard this expression evaluates to, when it is a
    /// fresh acquisition (possibly wrapped in poison-recovery calls).
    fn walk_expr(&mut self, expr: &'a Expr) -> Option<u64> {
        match expr {
            Expr::MethodCall {
                recv,
                method,
                args,
                tok,
            } => {
                let recv_fresh = self.walk_expr(recv);
                // Acquisition?
                if matches!(method.as_str(), "lock" | "read" | "write") && args.is_empty() {
                    let rty = self.env.resolve(recv);
                    if let Some((kind, class)) = rty.lock {
                        let id = self.next_id;
                        self.next_id += 1;
                        self.events.push(LockEvent {
                            op: LockOp::Acquire {
                                kind,
                                class: class.clone(),
                            },
                            tok: *tok,
                            held: self.held(None),
                            absorbed: self.absorbed > 0,
                            fn_name: self.fn_name.clone(),
                        });
                        self.live.push(Guard {
                            id,
                            name: None,
                            kind,
                            class,
                            scope: self.scope,
                        });
                        return Some(id);
                    }
                }
                // Barrier wait?
                if method == "wait" && args.is_empty() && self.env.resolve(recv).barrier {
                    self.events.push(LockEvent {
                        op: LockOp::Wait,
                        tok: *tok,
                        held: self.held(None),
                        absorbed: self.absorbed > 0,
                        fn_name: self.fn_name.clone(),
                    });
                    return None;
                }
                // Panic site? A panicking adapter applied directly to the
                // acquisition chain is poison-handling on the fresh guard,
                // not a panic while *holding* it — exclude that guard.
                if matches!(
                    method.as_str(),
                    "unwrap" | "expect" | "unwrap_err" | "expect_err"
                ) {
                    self.events.push(LockEvent {
                        op: LockOp::PanicSite {
                            what: format!(".{method}()"),
                        },
                        tok: *tok,
                        held: self.held(recv_fresh),
                        absorbed: self.absorbed > 0,
                        fn_name: self.fn_name.clone(),
                    });
                    for a in args {
                        self.walk_expr(a);
                    }
                    return recv_fresh;
                }
                // spawn: the closure runs on another thread — fresh guard
                // context, same type environment.
                if method == "spawn" {
                    for a in args {
                        if let Expr::Closure { body, .. } = a {
                            self.walk_detached(body);
                        } else {
                            self.walk_expr(a);
                        }
                    }
                    return None;
                }
                for a in args {
                    self.walk_expr(a);
                }
                // Poison-recovery wrappers keep the guard identity.
                if matches!(method.as_str(), "unwrap_or_else" | "map_err" | "map") {
                    return recv_fresh;
                }
                None
            }
            Expr::Call { callee, args, .. } => {
                let callee_name = callee.as_path_name().unwrap_or("");
                if callee_name == "drop" {
                    if let Some(name) = args.first().and_then(|a| strip_refs(a).as_path_name()) {
                        self.live.retain(|g| g.name.as_deref() != Some(name));
                        return None;
                    }
                }
                if callee_name == "catch_unwind" {
                    self.absorbed += 1;
                    for a in args {
                        self.walk_expr(a);
                    }
                    self.absorbed -= 1;
                    return None;
                }
                self.walk_expr(callee);
                let mut fresh = None;
                for a in args {
                    let f = self.walk_expr(a);
                    // AssertUnwindSafe and friends are transparent.
                    fresh = fresh.or(f);
                }
                if matches!(callee_name, "AssertUnwindSafe") {
                    return fresh;
                }
                // A named closure called directly: walk it here.
                if let Some(body) = self.closure_body(callee_name) {
                    self.walk_closure_ref(callee_name, body);
                }
                None
            }
            Expr::MacroCall { name, args, tok } => {
                if matches!(
                    name.as_str(),
                    "panic" | "unreachable" | "todo" | "unimplemented"
                ) {
                    self.events.push(LockEvent {
                        op: LockOp::PanicSite {
                            what: format!("{name}!"),
                        },
                        tok: *tok,
                        held: self.held(None),
                        absorbed: self.absorbed > 0,
                        fn_name: self.fn_name.clone(),
                    });
                }
                for a in args {
                    self.walk_expr(a);
                }
                None
            }
            Expr::Path { segs, .. } => {
                // A reference to a let-bound closure: walk it inline at
                // the reference point (this is where `catch_unwind(&mut
                // main_loop)` earns absorption for the loop body).
                if segs.len() == 1 {
                    let name = segs[0].clone();
                    if let Some(body) = self.closure_body(&name) {
                        self.walk_closure_ref(&name, body);
                    }
                }
                None
            }
            Expr::Assign {
                target, value, op, ..
            } => {
                let fresh = self.walk_expr(value);
                self.walk_expr(target);
                if let Some(name) = target.as_path_name() {
                    if op == "=" {
                        if let Some(id) = fresh {
                            // Rebinding a guard name: the old guard (if
                            // any) is replaced by the new acquisition.
                            self.live
                                .retain(|g| g.id == id || g.name.as_deref() != Some(name));
                            if let Some(g) = self.live.iter_mut().find(|g| g.id == id) {
                                g.name = Some(name.to_string());
                                // Promote out of statement-temporary
                                // lifetime into the current scope.
                                g.scope = self.scope.saturating_sub(1).max(1);
                            }
                            let vt = self.env.resolve(value);
                            self.env.bind(name, vt);
                        }
                    }
                }
                None
            }
            Expr::Closure { body, .. } => {
                // Immediately-walked closure (argument position).
                self.walk_expr(body);
                None
            }
            Expr::Block(b) => {
                self.walk_block(b);
                None
            }
            Expr::If { cond, then, else_ } => {
                self.walk_expr(cond);
                let before = self.live.clone();
                self.walk_block(then);
                let after_then = self.live.clone();
                self.live = before.clone();
                if let Some(e) = else_ {
                    self.walk_expr(e);
                    let after_else = std::mem::take(&mut self.live);
                    self.live = intersect(after_then, &after_else);
                } else {
                    let after_none = std::mem::take(&mut self.live);
                    self.live = intersect(after_then, &after_none);
                }
                None
            }
            Expr::Match { scrutinee, arms } => {
                self.walk_expr(scrutinee);
                let before = self.live.clone();
                let mut merged: Option<Vec<Guard>> = None;
                for arm in arms {
                    self.live = before.clone();
                    self.walk_expr(&arm.body);
                    let out = std::mem::take(&mut self.live);
                    merged = Some(match merged {
                        None => out,
                        Some(m) => intersect(m, &out),
                    });
                }
                self.live = merged.unwrap_or(before);
                None
            }
            Expr::While { cond, body } => {
                self.walk_expr(cond);
                let before = self.live.clone();
                self.walk_block(body);
                let after = std::mem::take(&mut self.live);
                self.live = intersect(before, &after);
                None
            }
            Expr::Loop { body } => {
                let before = self.live.clone();
                self.walk_block(body);
                let after = std::mem::take(&mut self.live);
                self.live = intersect(before, &after);
                None
            }
            Expr::For {
                pat_names,
                iter,
                body,
                ..
            } => {
                self.walk_expr(iter);
                // Loop bindings inherit the iterated container's type
                // (`for (w, slot) in slots.iter().enumerate()`).
                let ity = self.env.resolve(iter);
                for n in pat_names {
                    self.env.bind(n, ity.clone());
                }
                let before = self.live.clone();
                self.walk_block(body);
                let after = std::mem::take(&mut self.live);
                self.live = intersect(before, &after);
                None
            }
            Expr::LetCond { expr, .. } => self.walk_expr(expr),
            Expr::Unary { expr, .. } | Expr::Cast { expr, .. } | Expr::Question { expr } => {
                self.walk_expr(expr)
            }
            Expr::Binary { lhs, rhs, .. } => {
                self.walk_expr(lhs);
                self.walk_expr(rhs);
                None
            }
            Expr::Field { base, .. } => {
                self.walk_expr(base);
                None
            }
            Expr::Index { base, index, .. } => {
                self.walk_expr(base);
                self.walk_expr(index);
                None
            }
            Expr::StructLit { fields, .. } => {
                for (_, e) in fields {
                    self.walk_expr(e);
                }
                None
            }
            Expr::Return { value, .. } => {
                if let Some(v) = value {
                    self.walk_expr(v);
                }
                None
            }
            Expr::Tuple { elems } | Expr::Array { elems } => {
                for e in elems {
                    self.walk_expr(e);
                }
                None
            }
            Expr::Range { lo, hi, .. } => {
                if let Some(e) = lo {
                    self.walk_expr(e);
                }
                if let Some(e) = hi {
                    self.walk_expr(e);
                }
                None
            }
            Expr::Lit { .. } | Expr::Jump | Expr::Opaque { .. } => None,
        }
    }

    fn closure_body(&self, name: &str) -> Option<&'a Expr> {
        if name.is_empty() || self.closure_stack.iter().any(|n| n == name) {
            return None;
        }
        self.closures.get(name).map(|c| match c {
            Expr::Closure { body, .. } => body.as_ref(),
            other => *other,
        })
    }

    fn walk_closure_ref(&mut self, name: &str, body: &'a Expr) {
        self.closure_stack.push(name.to_string());
        self.walk_expr(body);
        self.closure_stack.pop();
    }

    /// Walks a spawned closure body: same types, fresh guards/absorption,
    /// suffixed fn name.
    fn walk_detached(&mut self, body: &'a Expr) {
        let saved_live = std::mem::take(&mut self.live);
        let saved_absorbed = std::mem::replace(&mut self.absorbed, 0);
        let saved_name = self.fn_name.clone();
        self.fn_name = format!("{saved_name}::spawn");
        self.walk_expr(body);
        self.fn_name = saved_name;
        self.absorbed = saved_absorbed;
        self.live = saved_live;
    }
}

/// Guards live in both states (by id).
fn intersect(a: Vec<Guard>, b: &[Guard]) -> Vec<Guard> {
    a.into_iter()
        .filter(|g| b.iter().any(|h| h.id == g.id))
        .collect()
}

/// Strips `&`/`&mut`/`*` wrappers.
fn strip_refs(e: &Expr) -> &Expr {
    match e {
        Expr::Unary { expr, .. } => strip_refs(expr),
        _ => e,
    }
}

// ---------------------------------------------------------------------
// Float taint.
// ---------------------------------------------------------------------

/// How an accumulation was formed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaintKind {
    /// `acc += …` (or `-=`) in a loop.
    CompoundAssign,
    /// `acc = acc + …` in a loop.
    SelfAssign,
    /// Iterator `.sum()`.
    IterSum,
    /// Iterator `.fold(float, …)`.
    IterFold,
}

/// One escaping raw accumulation.
#[derive(Debug, Clone)]
pub struct TaintFinding {
    /// The accumulator's name (or indexed base).
    pub name: String,
    /// Anchor token (first tainted update).
    pub tok: usize,
    /// Formation kind.
    pub kind: TaintKind,
}

#[derive(Default)]
struct TaintScan {
    /// Name-flow edges: value name → binding it flows into.
    edges: Vec<(String, String)>,
    /// Names whose value escapes the fn.
    sinks: BTreeSet<String>,
    /// Candidate accumulators: name → (first tok, kind).
    accs: BTreeMap<String, (usize, TaintKind)>,
    /// Iterator reductions: (tok, kind, binding name if let-bound).
    reductions: Vec<(usize, TaintKind, Option<String>, bool)>,
}

/// Scans one fn for escaping raw float accumulations. `is_integer_sum`
/// lets the caller consult the token stream for `.sum::<integer>()`
/// turbofish (the parser drops turbofish).
pub fn scan_float_taint(
    fd: &FnDef,
    self_ty: Option<&str>,
    info: &FileInfo,
    is_integer_sum: &dyn Fn(usize) -> bool,
) -> Vec<TaintFinding> {
    let Some(body) = &fd.body else {
        return Vec::new();
    };
    let mut env = Env::new(info, self_ty);
    for p in &fd.params {
        env.bind(&p.name, var_ty_from_type(&p.ty, info));
    }
    let mut scan = TaintScan::default();
    scan_block(body, &mut env, &mut scan, 0, true);

    // Sink closure: walk edges backwards from sink-used names.
    let mut reach: BTreeSet<String> = scan.sinks.clone();
    loop {
        let mut grew = false;
        for (src, dst) in &scan.edges {
            if reach.contains(dst) && reach.insert(src.clone()) {
                grew = true;
            }
        }
        if !grew {
            break;
        }
    }

    let mut out = Vec::new();
    for (name, (tok, kind)) in &scan.accs {
        if reach.contains(name) {
            out.push(TaintFinding {
                name: name.clone(),
                tok: *tok,
                kind: *kind,
            });
        }
    }
    for (tok, kind, binding, direct_sink) in &scan.reductions {
        if *kind == TaintKind::IterSum && is_integer_sum(*tok) {
            continue;
        }
        let escapes = *direct_sink || binding.as_ref().is_some_and(|b| reach.contains(b));
        if escapes {
            out.push(TaintFinding {
                name: binding.clone().unwrap_or_else(|| "<expr>".to_string()),
                tok: *tok,
                kind: *kind,
            });
        }
    }
    out.sort_by_key(|f| f.tok);
    out
}

/// Collects every path name in `e`, skipping comparison/logical subtrees
/// (no taint through comparisons).
fn value_names(e: &Expr, out: &mut BTreeSet<String>) {
    ast::walk_expr(e, &mut |e| match e {
        Expr::Binary { op, .. } => !matches!(
            op.as_str(),
            "==" | "!=" | "<" | ">" | "<=" | ">=" | "&&" | "||"
        ),
        Expr::Path { segs, .. } => {
            if let Some(n) = segs.last() {
                out.insert(n.clone());
            }
            true
        }
        _ => true,
    });
}

/// The name an assignment target stores through, when the target is a
/// plain binding; stores through fields/indexes/derefs return `None` and
/// are treated as export sinks instead.
fn target_name(e: &Expr) -> Option<&str> {
    e.as_path_name()
}

/// The base binding of an indexed/deref/field target (`buf[j]` → `buf`).
fn target_base_name(e: &Expr) -> Option<&str> {
    match e {
        Expr::Index { base, .. } | Expr::Field { base, .. } => target_base_name(base),
        Expr::Unary { expr, .. } => target_base_name(expr),
        Expr::Path { segs, .. } => segs.last().map(String::as_str),
        _ => None,
    }
}

fn scan_block(
    block: &Block,
    env: &mut Env<'_>,
    scan: &mut TaintScan,
    loop_depth: usize,
    fn_tail: bool,
) {
    let n = block.stmts.len();
    for (i, stmt) in block.stmts.iter().enumerate() {
        match stmt {
            Stmt::Let {
                primary,
                ty,
                init,
                else_block,
                ..
            } => {
                if let Some(e) = init {
                    scan_expr(e, env, scan, loop_depth, None);
                    if let Some(name) = primary {
                        let mut names = BTreeSet::new();
                        value_names(e, &mut names);
                        for src in names {
                            scan.edges.push((src, name.clone()));
                        }
                        note_reduction_binding(e, name, scan);
                    }
                }
                let resolved = match (ty, init) {
                    (Some(t), _) => var_ty_from_type(t, env.info),
                    (None, Some(e)) => env.resolve(e),
                    _ => VarTy::default(),
                };
                if let Some(name) = primary {
                    env.bind(name, resolved);
                }
                if let Some(b) = else_block {
                    scan_block(b, env, scan, loop_depth, false);
                }
            }
            Stmt::Expr { expr, has_semi } => {
                let is_tail = fn_tail && !*has_semi && i + 1 == n;
                scan_expr(expr, env, scan, loop_depth, None);
                if is_tail {
                    let mut names = BTreeSet::new();
                    value_names(expr, &mut names);
                    scan.sinks.extend(names);
                    mark_direct_reductions(expr, scan);
                }
            }
            Stmt::Item(_) | Stmt::Opaque => {}
        }
    }
}

/// If a let initializer *is* (or chains onto) an iterator reduction,
/// attach the binding name to that reduction record.
fn note_reduction_binding(init: &Expr, name: &str, scan: &mut TaintScan) {
    ast::walk_expr(init, &mut |e| {
        if let Expr::MethodCall { tok, .. } = e {
            for r in scan.reductions.iter_mut() {
                if r.0 == *tok && r.2.is_none() {
                    r.2 = Some(name.to_string());
                }
            }
        }
        true
    });
}

/// Marks reductions appearing in a sink expression as directly escaping.
fn mark_direct_reductions(e: &Expr, scan: &mut TaintScan) {
    ast::walk_expr(e, &mut |e| {
        if let Expr::MethodCall { tok, .. } = e {
            for r in scan.reductions.iter_mut() {
                if r.0 == *tok {
                    r.3 = true;
                }
            }
        }
        true
    });
}

/// `for_bound` carries the pattern names of the innermost `for` so that
/// `*x += y` on a per-iteration binding is not mistaken for a
/// loop-carried accumulator.
fn scan_expr(
    e: &Expr,
    env: &mut Env<'_>,
    scan: &mut TaintScan,
    loop_depth: usize,
    for_bound: Option<&[String]>,
) {
    match e {
        Expr::Assign {
            op,
            target,
            value,
            tok,
        } => {
            scan_expr(value, env, scan, loop_depth, for_bound);
            let mut vnames = BTreeSet::new();
            value_names(value, &mut vnames);
            if let Some(name) = target_name(target) {
                // Name-flow edge (compound ops also keep the old value).
                for src in &vnames {
                    scan.edges.push((src.clone(), name.to_string()));
                }
                let is_acc = match op.as_str() {
                    "+=" | "-=" => loop_depth > 0,
                    "=" => {
                        // `acc = acc + x` self-accumulation.
                        loop_depth > 0
                            && matches!(
                                &**value,
                                Expr::Binary { op, lhs, rhs, .. }
                                    if (op == "+" || op == "-")
                                        && (lhs.as_path_name() == Some(name)
                                            || rhs.as_path_name() == Some(name))
                            )
                    }
                    _ => false,
                };
                if is_acc && env.resolve(target).float {
                    let kind = if op == "=" {
                        TaintKind::SelfAssign
                    } else {
                        TaintKind::CompoundAssign
                    };
                    scan.accs
                        .entry(name.to_string())
                        .or_insert((target.tok(), kind));
                }
            } else {
                // Store through a field/index/deref: the value escapes.
                scan.sinks.extend(vnames);
                mark_direct_reductions(value, scan);
                let _ = tok;
                // A compound store with a loop-invariant base is itself a
                // loop-carried accumulator (`acc[j] += x` with `acc`
                // declared outside the loop).
                if matches!(op.as_str(), "+=" | "-=") && loop_depth > 0 {
                    if let Some(base) = target_base_name(target) {
                        let per_iteration =
                            for_bound.is_some_and(|ns| ns.iter().any(|n| n == base));
                        if !per_iteration && env.resolve(target).float {
                            scan.accs
                                .entry(base.to_string())
                                .or_insert((target.tok(), TaintKind::CompoundAssign));
                            // The base escapes by definition (it is a
                            // container that outlives the loop).
                            scan.sinks.insert(base.to_string());
                        }
                    }
                }
            }
            scan_expr(target, env, scan, loop_depth, for_bound);
        }
        Expr::MethodCall {
            recv,
            method,
            args,
            tok,
        } => {
            scan_expr(recv, env, scan, loop_depth, for_bound);
            for a in args {
                scan_expr(a, env, scan, loop_depth, for_bound);
            }
            // Iterator reductions.
            if method == "sum" && args.is_empty() {
                scan.reductions
                    .push((*tok, TaintKind::IterSum, None, false));
            }
            if method == "fold"
                && args.len() == 2
                && matches!(args[0], Expr::Lit { float: true, .. })
            {
                scan.reductions
                    .push((*tok, TaintKind::IterFold, None, false));
            }
            // Arguments handed to a method on a param/self/field are
            // exports (`out.push(sum)`, `slot.delta.set(d)`) — unless the
            // receiver is a compensated accumulator, the sanctioned route.
            let rty = env.resolve(recv);
            let receiver_is_binding = matches!(
                strip_refs(recv),
                Expr::Path { .. } | Expr::Field { .. } | Expr::Index { .. }
            );
            if receiver_is_binding && !rty.compensator && !args.is_empty() {
                let mut names = BTreeSet::new();
                for a in args {
                    value_names(a, &mut names);
                }
                scan.sinks.extend(names);
                for a in args {
                    mark_direct_reductions(a, scan);
                }
            }
        }
        Expr::StructLit { fields, .. } => {
            for (_, v) in fields {
                scan_expr(v, env, scan, loop_depth, for_bound);
                let mut names = BTreeSet::new();
                value_names(v, &mut names);
                scan.sinks.extend(names);
                mark_direct_reductions(v, scan);
            }
        }
        Expr::Return { value: Some(v), .. } => {
            scan_expr(v, env, scan, loop_depth, for_bound);
            let mut names = BTreeSet::new();
            value_names(v, &mut names);
            scan.sinks.extend(names);
            mark_direct_reductions(v, scan);
        }
        Expr::For {
            pat_names,
            iter,
            body,
            ..
        } => {
            scan_expr(iter, env, scan, loop_depth, for_bound);
            let ity = env.resolve(iter);
            for n in pat_names {
                env.bind(n, ity.clone());
            }
            scan_for_block(body, env, scan, loop_depth + 1, pat_names);
        }
        Expr::While { cond, body } => {
            scan_expr(cond, env, scan, loop_depth, for_bound);
            scan_block(body, env, scan, loop_depth + 1, false);
        }
        Expr::Loop { body } => {
            scan_block(body, env, scan, loop_depth + 1, false);
        }
        Expr::If { cond, then, else_ } => {
            scan_expr(cond, env, scan, loop_depth, for_bound);
            scan_block(then, env, scan, loop_depth, false);
            if let Some(e) = else_ {
                scan_expr(e, env, scan, loop_depth, for_bound);
            }
        }
        Expr::Match { scrutinee, arms } => {
            scan_expr(scrutinee, env, scan, loop_depth, for_bound);
            for arm in arms {
                scan_expr(&arm.body, env, scan, loop_depth, for_bound);
            }
        }
        Expr::Block(b) => scan_block(b, env, scan, loop_depth, false),
        Expr::Closure { body, .. } => scan_expr(body, env, scan, loop_depth, for_bound),
        Expr::Call { callee, args, .. } => {
            scan_expr(callee, env, scan, loop_depth, for_bound);
            for a in args {
                scan_expr(a, env, scan, loop_depth, for_bound);
            }
        }
        Expr::MacroCall { args, .. } => {
            for a in args {
                scan_expr(a, env, scan, loop_depth, for_bound);
            }
        }
        Expr::Unary { expr, .. } | Expr::Cast { expr, .. } | Expr::Question { expr } => {
            scan_expr(expr, env, scan, loop_depth, for_bound)
        }
        Expr::Binary { lhs, rhs, .. } => {
            scan_expr(lhs, env, scan, loop_depth, for_bound);
            scan_expr(rhs, env, scan, loop_depth, for_bound);
        }
        Expr::Field { base, .. } => scan_expr(base, env, scan, loop_depth, for_bound),
        Expr::Index { base, index, .. } => {
            scan_expr(base, env, scan, loop_depth, for_bound);
            scan_expr(index, env, scan, loop_depth, for_bound);
        }
        Expr::LetCond { expr, .. } => scan_expr(expr, env, scan, loop_depth, for_bound),
        Expr::Tuple { elems } | Expr::Array { elems } => {
            for e in elems {
                scan_expr(e, env, scan, loop_depth, for_bound);
            }
        }
        Expr::Range { lo, hi, .. } => {
            if let Some(e) = lo {
                scan_expr(e, env, scan, loop_depth, for_bound);
            }
            if let Some(e) = hi {
                scan_expr(e, env, scan, loop_depth, for_bound);
            }
        }
        Expr::Return { value: None, .. } => {}
        Expr::Path { .. } | Expr::Lit { .. } | Expr::Jump | Expr::Opaque { .. } => {}
    }
}

/// A for-body scan that remembers the loop's own bindings.
fn scan_for_block(
    block: &Block,
    env: &mut Env<'_>,
    scan: &mut TaintScan,
    loop_depth: usize,
    pat_names: &[String],
) {
    let n = block.stmts.len();
    for (i, stmt) in block.stmts.iter().enumerate() {
        let _ = (i, n);
        match stmt {
            Stmt::Let {
                primary,
                ty,
                init,
                else_block,
                ..
            } => {
                if let Some(e) = init {
                    scan_expr(e, env, scan, loop_depth, Some(pat_names));
                    if let Some(name) = primary {
                        let mut names = BTreeSet::new();
                        value_names(e, &mut names);
                        for src in names {
                            scan.edges.push((src, name.clone()));
                        }
                        note_reduction_binding(e, name, scan);
                    }
                }
                let resolved = match (ty, init) {
                    (Some(t), _) => var_ty_from_type(t, env.info),
                    (None, Some(e)) => env.resolve(e),
                    _ => VarTy::default(),
                };
                if let Some(name) = primary {
                    env.bind(name, resolved);
                }
                if let Some(b) = else_block {
                    scan_block(b, env, scan, loop_depth, false);
                }
            }
            Stmt::Expr { expr, .. } => {
                scan_expr(expr, env, scan, loop_depth, Some(pat_names));
            }
            Stmt::Item(_) | Stmt::Opaque => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse_file;

    fn first_fn(src: &str) -> (crate::ast::File, FileInfo) {
        let file = parse_file(&lex(src));
        let info = crate::resolve::file_info(&file);
        (file, info)
    }

    fn lock_events(src: &str) -> Vec<LockEvent> {
        let (file, info) = first_fn(src);
        let fns = crate::ast::all_fns(&file);
        let mut out = Vec::new();
        for (fd, self_ty) in fns {
            out.extend(scan_locks(fd, self_ty, &info));
        }
        out
    }

    #[test]
    fn guard_across_wait_is_observed() {
        let ev = lock_events(
            "fn f(state: &RwLock<PoolState>, barrier: &Barrier) {\n\
             let st = state.write().unwrap_or_else(|e| e.into_inner());\n\
             barrier.wait();\n\
             drop(st);\n\
             barrier.wait();\n\
             }",
        );
        let waits: Vec<_> = ev.iter().filter(|e| e.op == LockOp::Wait).collect();
        assert_eq!(waits.len(), 2);
        assert_eq!(
            waits[0].held,
            vec![(LockKind::RwLock, "PoolState".to_string())]
        );
        assert!(waits[1].held.is_empty(), "drop must release the guard");
    }

    #[test]
    fn drop_before_wait_is_clean_and_reacquire_rearms() {
        let ev = lock_events(
            "fn f(state: &RwLock<PoolState>, barrier: &Barrier) {\n\
             let mut st = state.write().unwrap_or_else(|e| e.into_inner());\n\
             drop(st);\n\
             barrier.wait();\n\
             st = state.write().unwrap_or_else(|e| e.into_inner());\n\
             barrier.wait();\n\
             }",
        );
        let waits: Vec<_> = ev.iter().filter(|e| e.op == LockOp::Wait).collect();
        assert!(waits[0].held.is_empty());
        assert_eq!(waits[1].held.len(), 1, "reassignment rearms the guard");
    }

    #[test]
    fn nested_acquisition_records_order_edge() {
        let ev = lock_events(
            "fn f(slots: &[Mutex<PoolSlot>], state: &RwLock<PoolState>) {\n\
             let g = slots[0].lock().unwrap_or_else(|e| e.into_inner());\n\
             let st = state.read().unwrap_or_else(|e| e.into_inner());\n\
             }",
        );
        let acqs: Vec<_> = ev
            .iter()
            .filter_map(|e| match &e.op {
                LockOp::Acquire { class, .. } => Some((class.clone(), e.held.clone())),
                _ => None,
            })
            .collect();
        assert_eq!(acqs.len(), 2);
        assert!(acqs[0].1.is_empty());
        assert_eq!(acqs[1].1, vec![(LockKind::Mutex, "PoolSlot".to_string())]);
    }

    #[test]
    fn catch_unwind_absorbs_even_through_named_closures() {
        let ev = lock_events(
            "fn f(state: &RwLock<PoolState>) {\n\
             let mut main_loop = || { state.read().unwrap(); };\n\
             let out = catch_unwind(AssertUnwindSafe(&mut main_loop));\n\
             }",
        );
        let panics: Vec<_> = ev
            .iter()
            .filter(|e| matches!(e.op, LockOp::PanicSite { .. }))
            .collect();
        assert_eq!(panics.len(), 1);
        assert!(panics[0].absorbed, "catch_unwind must absorb the unwrap");
    }

    #[test]
    fn unwrap_on_own_acquisition_is_not_held_panic() {
        let ev = lock_events("fn f(m: &Mutex<Scratch>) { let g = m.lock().unwrap(); }");
        let p = ev
            .iter()
            .find(|e| matches!(e.op, LockOp::PanicSite { .. }))
            .unwrap();
        assert!(
            p.held.is_empty(),
            "poison-unwrap on the fresh guard is not a held-panic: {p:?}"
        );
    }

    #[test]
    fn spawn_closures_get_fresh_guard_context() {
        let ev = lock_events(
            "fn f(m: &Mutex<Scratch>, scope: &Scope, barrier: &Barrier) {\n\
             let g = m.lock().unwrap_or_else(|e| e.into_inner());\n\
             scope.spawn(move || { barrier.wait(); });\n\
             }",
        );
        let wait = ev.iter().find(|e| e.op == LockOp::Wait).unwrap();
        assert!(wait.held.is_empty(), "spawned thread holds nothing");
        assert!(wait.fn_name.ends_with("::spawn"));
    }

    #[test]
    fn try_lock_is_untracked() {
        let ev = lock_events(
            "fn f(m: &Mutex<Scratch>, barrier: &Barrier) {\n\
             let g = m.try_lock();\n\
             barrier.wait();\n\
             }",
        );
        let wait = ev.iter().find(|e| e.op == LockOp::Wait).unwrap();
        assert!(wait.held.is_empty());
        assert!(!ev.iter().any(|e| matches!(e.op, LockOp::Acquire { .. })));
    }

    fn taints(src: &str) -> Vec<TaintFinding> {
        let (file, info) = first_fn(src);
        let fns = crate::ast::all_fns(&file);
        let mut out = Vec::new();
        for (fd, self_ty) in fns {
            out.extend(scan_float_taint(fd, self_ty, &info, &|_| false));
        }
        out
    }

    #[test]
    fn escaping_accumulator_is_found_once() {
        let found = taints(
            "fn f(xs: &[f64]) -> f64 {\n\
             let mut sum = 0.0;\n\
             for x in xs { sum += x; sum += 1.0; }\n\
             sum / xs.len() as f64\n\
             }",
        );
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].name, "sum");
        assert_eq!(found[0].kind, TaintKind::CompoundAssign);
    }

    #[test]
    fn comparison_only_accumulator_is_silent() {
        let found = taints(
            "fn f(xs: &[f64], threshold: f64) -> bool {\n\
             let mut sum = 0.0;\n\
             for x in xs { sum += x; }\n\
             let avg = sum / xs.len() as f64;\n\
             avg < threshold\n\
             }",
        );
        assert!(found.is_empty(), "comparisons must not taint: {found:?}");
    }

    #[test]
    fn flow_through_block_value_reaches_deref_store() {
        let found = taints(
            "fn f(xs: &[f64], out: &mut f64) {\n\
             for chunk in xs.chunks(4) {\n\
             let s = { let mut sum = 0.0; for x in chunk { sum += x; } sum / 4.0 };\n\
             let value = s * 0.5;\n\
             *out = value;\n\
             }\n\
             }",
        );
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].name, "sum");
    }

    #[test]
    fn integer_accumulators_are_silent() {
        let found = taints(
            "fn f(xs: &[u32]) -> u64 {\n\
             let mut n = 0u64;\n\
             for x in xs { n += 1; }\n\
             n\n\
             }",
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn per_iteration_deref_store_is_not_loop_carried() {
        let found = taints(
            "fn f(acc: &mut [f64], src: &[f64]) {\n\
             for (x, y) in acc.iter_mut().zip(src) { *x += y; }\n\
             }",
        );
        assert!(
            found.is_empty(),
            "per-slot writes are not carried: {found:?}"
        );
    }

    #[test]
    fn loop_invariant_index_store_is_loop_carried() {
        let found = taints(
            "fn f(xs: &[f64]) -> Vec<f64> {\n\
             let mut acc = vec![0.0f64; 8];\n\
             for x in xs { acc[0] += x; }\n\
             acc\n\
             }",
        );
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].name, "acc");
    }

    #[test]
    fn iter_sum_and_fold_escape_detection() {
        let found = taints(
            "fn f(xs: &[f64]) -> f64 { xs.iter().sum() }\n\
             fn g(xs: &[f64]) -> f64 { let t = xs.iter().fold(0.0, |a, b| a + b); t * 2.0 }\n\
             fn h(xs: &[f64]) { let _t: f64 = xs.iter().sum(); }",
        );
        // f: direct-return sum; g: fold bound then returned; h: bound but
        // never escapes.
        assert_eq!(found.len(), 2, "{found:?}");
        assert!(found.iter().any(|f| f.kind == TaintKind::IterSum));
        assert!(found.iter().any(|f| f.kind == TaintKind::IterFold));
    }

    #[test]
    fn compensated_route_is_sanctioned() {
        let found = taints(
            "fn f(xs: &[f64]) -> f64 {\n\
             let mut ns = NeumaierSum::new();\n\
             for x in xs { ns.add(*x); }\n\
             ns.value()\n\
             }",
        );
        assert!(found.is_empty(), "{found:?}");
    }
}
