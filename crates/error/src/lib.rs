#![forbid(unsafe_code)]
//! Unified error taxonomy for the event-matching workspace.
//!
//! Every library crate defines its own error enum (`XesError`,
//! `EventsError`, `GraphError`, `LabelsError`, `AssignmentError`,
//! `CoreError`) and provides a `From` conversion into [`EmsError`], the
//! single type the CLI and umbrella crate surface to callers. The
//! taxonomy is std-only: the build environment is offline, so no
//! `thiserror`/`anyhow` — plain enums with hand-written `Display`.
//!
//! Each variant maps to a distinct, stable process exit code via
//! [`EmsError::exit_code`], so scripts can branch on failure class:
//!
//! | variant      | code | meaning                                        |
//! |--------------|------|------------------------------------------------|
//! | `Usage`      | 2    | bad command line (flags, missing arguments)    |
//! | `Io`         | 3    | file could not be read or written              |
//! | `Parse`      | 4    | malformed XES/MXML input                       |
//! | `Input`      | 5    | well-formed but invalid data (empty log, NaN)  |
//! | `Params`     | 6    | invalid algorithm parameters                   |
//! | `Graph`      | 7    | dependency-graph construction/validation error |
//! | `Assignment` | 8    | correspondence-selection failure               |
//! | `Internal`   | 9    | invariant violation — a bug, please report     |
//! | `StoreCorrupt` | 10 | catalog snapshot failed checksum/validation    |
//! | `StoreIo`    | 11   | catalog store I/O failed after retries         |
//!
//! Exit code 1 is deliberately unused so `EmsError` failures are
//! distinguishable from generic shell/panic failures.

#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

use std::fmt;

/// Workspace-wide error: every fallible public API in the matching
/// pipeline ultimately yields one of these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EmsError {
    /// Command-line usage error (unknown flag, missing operand).
    Usage { message: String },
    /// File-system failure, with the offending path when known.
    Io { path: String, message: String },
    /// Syntactically malformed input document.
    Parse {
        offset: Option<usize>,
        message: String,
    },
    /// Well-formed but semantically invalid input data.
    Input { message: String },
    /// Invalid algorithm parameters or configuration.
    Params { message: String },
    /// Dependency-graph construction or validation failure.
    Graph { message: String },
    /// Correspondence-selection (assignment) failure.
    Assignment { message: String },
    /// Broken internal invariant: a bug in this workspace, not bad input.
    Internal { message: String },
    /// A durable catalog snapshot failed checksum or structural
    /// validation; the entry was (or should be) quarantined and rebuilt.
    StoreCorrupt { path: String, message: String },
    /// Catalog store I/O failed even after transient-fault retries.
    StoreIo { path: String, message: String },
}

impl EmsError {
    /// Stable, distinct process exit code for this failure class.
    pub fn exit_code(&self) -> u8 {
        match self {
            EmsError::Usage { .. } => 2,
            EmsError::Io { .. } => 3,
            EmsError::Parse { .. } => 4,
            EmsError::Input { .. } => 5,
            EmsError::Params { .. } => 6,
            EmsError::Graph { .. } => 7,
            EmsError::Assignment { .. } => 8,
            EmsError::Internal { .. } => 9,
            EmsError::StoreCorrupt { .. } => 10,
            EmsError::StoreIo { .. } => 11,
        }
    }

    /// Short lowercase class name (used as the stderr message prefix).
    pub fn class(&self) -> &'static str {
        match self {
            EmsError::Usage { .. } => "usage",
            EmsError::Io { .. } => "io",
            EmsError::Parse { .. } => "parse",
            EmsError::Input { .. } => "input",
            EmsError::Params { .. } => "params",
            EmsError::Graph { .. } => "graph",
            EmsError::Assignment { .. } => "assignment",
            EmsError::Internal { .. } => "internal",
            EmsError::StoreCorrupt { .. } => "store-corrupt",
            EmsError::StoreIo { .. } => "store-io",
        }
    }

    /// Convenience constructor for [`EmsError::Internal`].
    pub fn internal(message: impl Into<String>) -> Self {
        EmsError::Internal {
            message: message.into(),
        }
    }

    /// Convenience constructor for [`EmsError::Usage`].
    pub fn usage(message: impl Into<String>) -> Self {
        EmsError::Usage {
            message: message.into(),
        }
    }

    /// Convenience constructor for [`EmsError::Io`].
    pub fn io(path: impl Into<String>, message: impl Into<String>) -> Self {
        EmsError::Io {
            path: path.into(),
            message: message.into(),
        }
    }

    /// Convenience constructor for [`EmsError::StoreCorrupt`].
    pub fn store_corrupt(path: impl Into<String>, message: impl Into<String>) -> Self {
        EmsError::StoreCorrupt {
            path: path.into(),
            message: message.into(),
        }
    }

    /// Convenience constructor for [`EmsError::StoreIo`].
    pub fn store_io(path: impl Into<String>, message: impl Into<String>) -> Self {
        EmsError::StoreIo {
            path: path.into(),
            message: message.into(),
        }
    }
}

impl fmt::Display for EmsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmsError::Usage { message } => write!(f, "usage error: {message}"),
            EmsError::Io { path, message } if path.is_empty() => {
                write!(f, "io error: {message}")
            }
            EmsError::Io { path, message } => write!(f, "io error: {path}: {message}"),
            EmsError::Parse {
                offset: Some(o),
                message,
            } => write!(f, "parse error at byte {o}: {message}"),
            EmsError::Parse {
                offset: None,
                message,
            } => write!(f, "parse error: {message}"),
            EmsError::Input { message } => write!(f, "invalid input: {message}"),
            EmsError::Params { message } => write!(f, "invalid parameters: {message}"),
            EmsError::Graph { message } => write!(f, "dependency graph error: {message}"),
            EmsError::Assignment { message } => write!(f, "assignment error: {message}"),
            EmsError::Internal { message } => {
                write!(f, "internal error (this is a bug): {message}")
            }
            EmsError::StoreCorrupt { path, message } if path.is_empty() => {
                write!(f, "store corruption: {message}")
            }
            EmsError::StoreCorrupt { path, message } => {
                write!(f, "store corruption: {path}: {message}")
            }
            EmsError::StoreIo { path, message } if path.is_empty() => {
                write!(f, "store io error: {message}")
            }
            EmsError::StoreIo { path, message } => {
                write!(f, "store io error: {path}: {message}")
            }
        }
    }
}

impl std::error::Error for EmsError {}

impl From<std::io::Error> for EmsError {
    fn from(e: std::io::Error) -> Self {
        EmsError::Io {
            path: String::new(),
            message: e.to_string(),
        }
    }
}

/// Workspace-wide result alias.
pub type EmsResult<T> = Result<T, EmsError>;

#[cfg(test)]
mod tests {
    use super::*;

    fn all_variants() -> Vec<EmsError> {
        vec![
            EmsError::usage("u"),
            EmsError::io("p", "m"),
            EmsError::Parse {
                offset: Some(3),
                message: "m".into(),
            },
            EmsError::Input {
                message: "m".into(),
            },
            EmsError::Params {
                message: "m".into(),
            },
            EmsError::Graph {
                message: "m".into(),
            },
            EmsError::Assignment {
                message: "m".into(),
            },
            EmsError::internal("m"),
            EmsError::store_corrupt("p", "m"),
            EmsError::store_io("p", "m"),
        ]
    }

    #[test]
    fn exit_codes_are_distinct_and_nonzero() {
        let codes: Vec<u8> = all_variants().iter().map(|e| e.exit_code()).collect();
        let mut dedup = codes.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), codes.len(), "exit codes collide: {codes:?}");
        assert!(codes.iter().all(|&c| c >= 2), "codes 0/1 are reserved");
    }

    #[test]
    fn display_is_single_line() {
        for e in all_variants() {
            let s = e.to_string();
            assert!(!s.contains('\n'), "multi-line message: {s:?}");
            assert!(!s.is_empty());
        }
    }

    #[test]
    fn io_error_converts() {
        let e: EmsError = std::io::Error::new(std::io::ErrorKind::NotFound, "missing").into();
        assert_eq!(e.exit_code(), 3);
    }
}
