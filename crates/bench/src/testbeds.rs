//! Workload generators mirroring the paper's testbeds.

use ems_synth::{Dislocation, LogPair, PairConfig, PairGenerator, TreeConfig};

/// Tree shape used by all testbeds: sequence-heavy, like the paper's
/// business processes, so traces visit most activities and cutting a few
/// events per trace dislocates rather than destroys the signal.
fn testbed_tree(num_activities: usize, seed: u64) -> TreeConfig {
    TreeConfig {
        num_activities,
        xor_weight: 0.3,
        and_weight: 0.1,
        loop_weight: 0.03,
        // Choices and concurrency stay local (small detours); the overall
        // process is a sequence of phases, as in the paper's order flows.
        max_branch: (num_activities / 4).max(4),
        seed,
    }
}

/// The three dislocation testbeds of Section 5.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Testbed {
    /// Dislocated events at the *end* of traces.
    DsF,
    /// Dislocated events at the *beginning* of traces (BHV's weak spot).
    DsB,
    /// Dislocation at both ends.
    DsFb,
}

impl Testbed {
    /// All three testbeds in figure order.
    pub fn all() -> [Testbed; 3] {
        [Testbed::DsF, Testbed::DsB, Testbed::DsFb]
    }

    /// The name used in figure captions.
    pub fn name(&self) -> &'static str {
        match self {
            Testbed::DsF => "DS-F",
            Testbed::DsB => "DS-B",
            Testbed::DsFb => "DS-FB",
        }
    }

    fn dislocation(&self, m: usize) -> Dislocation {
        match self {
            Testbed::DsF => Dislocation::Back(m),
            Testbed::DsB => Dislocation::Front(m),
            Testbed::DsFb => Dislocation::Both(m.div_ceil(2)),
        }
    }
}

/// Workload parameters shared by the figure binaries. Every field has a
/// figure-appropriate default; binaries override what their sweep varies.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Log pairs per configuration point.
    pub pairs: usize,
    /// Activities per process specification.
    pub activities: usize,
    /// Traces per log.
    pub traces: usize,
    /// Dislocated events removed per trace.
    pub dislocated: usize,
    /// Fraction of log 2 renamed opaquely.
    pub opaque_fraction: f64,
    /// Composite events injected into log 2.
    pub composites: usize,
    /// Length of each injected composite run.
    pub composite_len: usize,
    /// XOR-weight jitter between the two logs' specifications.
    pub xor_jitter: f64,
    /// Adjacent-swap recording noise in log 2.
    pub swap_noise: f64,
    /// Implementation-private activities per log.
    pub extra_events: usize,
    /// Per-sequence-block reorder probability in log 2.
    pub reorder_prob: f64,
    /// Base RNG seed; pair `k` uses `seed + k`.
    pub seed: u64,
}

impl Default for Workload {
    fn default() -> Self {
        Workload {
            pairs: 8,
            activities: 20,
            traces: 60,
            dislocated: 2,
            opaque_fraction: 1.0,
            composites: 0,
            composite_len: 2,
            xor_jitter: 0.25,
            swap_noise: 0.0,
            extra_events: 1,
            reorder_prob: 0.0,
            seed: 1000,
        }
    }
}

/// Generates the log pairs of a dislocation testbed.
pub fn dislocation_pairs(testbed: Testbed, w: &Workload) -> Vec<LogPair> {
    (0..w.pairs)
        .map(|k| {
            PairGenerator::new(PairConfig {
                tree: testbed_tree(w.activities, w.seed + 17 * k as u64),
                traces_per_log: w.traces,
                seed: w.seed + 1000 + k as u64,
                dislocation: testbed.dislocation(w.dislocated),
                opaque_fraction: w.opaque_fraction,
                num_composites: w.composites,
                composite_len: w.composite_len,
                xor_jitter: w.xor_jitter,
                swap_noise: w.swap_noise,
                extra_events: w.extra_events,
                reorder_prob: w.reorder_prob,
            })
            .generate()
        })
        .collect()
}

/// Generates scalability pairs (Figure 8 protocol): no dislocation, fully
/// opaque, one pair per seed.
pub fn scalability_pairs(activities: usize, w: &Workload) -> Vec<LogPair> {
    (0..w.pairs)
        .map(|k| {
            PairGenerator::new(PairConfig {
                tree: testbed_tree(activities, w.seed + 23 * k as u64),
                traces_per_log: w.traces,
                seed: w.seed + 2000 + k as u64,
                dislocation: Dislocation::None,
                opaque_fraction: w.opaque_fraction,
                num_composites: 0,
                composite_len: 2,
                xor_jitter: w.xor_jitter,
                swap_noise: w.swap_noise,
                extra_events: w.extra_events,
                reorder_prob: w.reorder_prob,
            })
            .generate()
        })
        .collect()
}

/// Generates composite-matching pairs (Figures 10–14): composites injected
/// into log 2, mild dislocation.
pub fn composite_pairs(w: &Workload) -> Vec<LogPair> {
    (0..w.pairs)
        .map(|k| figure1_style_pair(w, k as u64))
        .collect()
}

/// Builds one Figure-1-style log pair: the process is a sequence of blocks,
/// each `Xor(p, q) → s → t`, i.e. a branching choice followed by two steps
/// that log 2 records as one composite event — exactly the shape of the
/// paper's running example, where `Check Inventory; Validate` follows the
/// cash/card choice and appears as the single `Inventory Checking &
/// Validation` in the other subsidiary. The composite matcher must merge
/// `(s, t)` in log 1. The XOR in front gives the frequency texture that the
/// average-similarity objective of Problem 1 keys on.
fn figure1_style_pair(w: &Workload, k: u64) -> LogPair {
    use ems_events::{merge_composite, rename_events, EventId};
    use ems_rng::StdRng;
    use ems_synth::{jitter_weights, playout, GroundTruth, PlayoutConfig, ProcessTree};

    let seed = w.seed + 31 * k;
    let mut rng = StdRng::seed_from_u64(seed ^ 0xF16);
    // Blocks of 4 activities each: Xor(p, q), s, t.
    let num_blocks = (w.activities / 4).max(1);
    let mut blocks = Vec::new();
    let mut composite_steps: Vec<(String, String)> = Vec::new();
    let mut idx = 0usize;
    for b in 0..num_blocks {
        let name = |i: usize| format!("a{i}");
        let p = name(idx);
        let q = name(idx + 1);
        let s_step = name(idx + 2);
        let t = name(idx + 3);
        idx += 4;
        let weight: f64 = rng.gen_range(0.25..0.75);
        blocks.push(ProcessTree::Sequence(vec![
            ProcessTree::Xor(vec![
                (ProcessTree::Activity(p), weight),
                (ProcessTree::Activity(q), 1.0 - weight),
            ]),
            ProcessTree::Activity(s_step.clone()),
            ProcessTree::Activity(t.clone()),
        ]));
        if b < w.composites.max(1) {
            composite_steps.push((s_step, t));
        }
    }
    let tree = ProcessTree::Sequence(blocks);
    // Implementation-private activities on each side.
    let tree1 = if w.extra_events > 0 {
        ems_synth::insert_extras(&tree, w.extra_events, "u1_", &mut rng)
    } else {
        tree.clone()
    };
    let log1 = playout(
        &tree1,
        &PlayoutConfig {
            num_traces: w.traces,
            seed: seed * 2 + 1,
            ..PlayoutConfig::default()
        },
    );
    let mut tree2 = if w.extra_events > 0 {
        ems_synth::insert_extras(&tree, w.extra_events, "u2_", &mut rng)
    } else {
        tree.clone()
    };
    if w.xor_jitter > 0.0 {
        tree2 = jitter_weights(&tree2, w.xor_jitter, &mut rng);
    }
    let tree2 = tree2;
    let mut log2 = playout(
        &tree2,
        &PlayoutConfig {
            num_traces: w.traces,
            seed: seed * 2 + 2,
            ..PlayoutConfig::default()
        },
    );
    // Identity truth, then merge the designated composites in log 2.
    let mut truth = GroundTruth::new();
    for i in 0..log2.alphabet_size() {
        let name = log2.name_of(EventId::from_index(i));
        if log1.id_of(name).is_some() {
            truth.add(name, name);
        }
    }
    for (s_step, t) in &composite_steps {
        let (Some(a), Some(b)) = (log2.id_of(s_step), log2.id_of(t)) else {
            continue;
        };
        let merged_name = format!("{s_step}+{t}");
        let (next, ok) = merge_composite(&log2, &[a, b], &merged_name);
        if ok.is_none() {
            continue;
        }
        log2 = next.compact().0;
        truth.remove_right(s_step);
        truth.remove_right(t);
        truth.add(s_step, &merged_name);
        truth.add(t, &merged_name);
    }
    // Dislocation: the composite group's pairs are heterogeneous too —
    // remove the first `dislocated` events of each log-2 trace.
    if w.dislocated > 0 {
        let before: Vec<String> = (0..log2.alphabet_size())
            .map(|i| log2.name_of(EventId::from_index(i)).to_owned())
            .collect();
        log2 = ems_events::cut_prefix(&log2, w.dislocated).0;
        for name in &before {
            if log2.id_of(name).is_none() {
                truth.remove_right(name);
            }
        }
    }
    // Opaque renaming of log 2.
    if w.opaque_fraction > 0.0 {
        let n = log2.alphabet_size();
        let renamed = ((n as f64) * w.opaque_fraction).round() as usize;
        let mut order: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        let mut names: Vec<String> = (0..n)
            .map(|i| log2.name_of(EventId::from_index(i)).to_owned())
            .collect();
        let mut mapping = std::collections::HashMap::new();
        for (rank, &i) in order.iter().enumerate() {
            if rank < renamed {
                let len = rng.gen_range(5..=9);
                let mut new: String = (0..len)
                    .map(|_| (b'a' + rng.gen_range(0..26u8)) as char)
                    .collect();
                new.push_str(&format!("{rank:02}"));
                mapping.insert(names[i].clone(), new.clone());
                names[i] = new;
            }
        }
        log2 = rename_events(&log2, &names);
        truth = truth
            .iter()
            .map(|(l, r)| {
                let r = mapping.get(r).map(String::as_str).unwrap_or(r);
                (l.to_owned(), r.to_owned())
            })
            .collect();
    }
    LogPair { log1, log2, truth }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbeds_produce_requested_pair_counts() {
        let w = Workload {
            pairs: 3,
            activities: 12,
            traces: 50,
            ..Workload::default()
        };
        for tb in Testbed::all() {
            let pairs = dislocation_pairs(tb, &w);
            assert_eq!(pairs.len(), 3);
            for p in &pairs {
                assert!(!p.truth.is_empty(), "{} produced empty truth", tb.name());
            }
        }
    }

    #[test]
    fn dsb_cuts_fronts_dsf_cuts_backs() {
        let w = Workload {
            pairs: 1,
            activities: 12,
            traces: 50,
            dislocated: 3,
            ..Workload::default()
        };
        let f = &dislocation_pairs(Testbed::DsF, &w)[0];
        let b = &dislocation_pairs(Testbed::DsB, &w)[0];
        // Both shorten log 2 relative to log 1.
        let mean = |l: &ems_events::EventLog| {
            l.traces().iter().map(|t| t.len()).sum::<usize>() as f64 / l.num_traces() as f64
        };
        assert!(mean(&f.log2) < mean(&f.log1));
        assert!(mean(&b.log2) < mean(&b.log1));
    }

    #[test]
    fn composite_pairs_carry_merged_events() {
        let w = Workload {
            pairs: 2,
            activities: 15,
            traces: 80,
            composites: 2,
            opaque_fraction: 0.0,
            ..Workload::default()
        };
        let pairs = composite_pairs(&w);
        assert!(pairs
            .iter()
            .any(|p| p.truth.iter().any(|(_, r)| r.contains('+'))));
    }
}
