//! Tiny dependency-free microbenchmark runner.
//!
//! The build environment is offline, so the workspace cannot fetch
//! Criterion; this module provides the small slice the bench targets
//! need — warm-up, adaptive iteration counts, and a median-of-samples
//! ns/iter report — in plain std.

use std::time::{Duration, Instant};

/// Target wall-clock per measured sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(40);
/// Measured samples per benchmark.
const SAMPLES: usize = 7;

/// Times `f` and prints `label: <median> ns/iter (<iters> iters/sample)`.
///
/// Returns the median per-iteration time so callers can aggregate.
pub fn bench<F: FnMut()>(label: &str, mut f: F) -> Duration {
    // Warm-up and iteration-count calibration: run once, then scale so a
    // sample lasts roughly SAMPLE_TARGET.
    let start = Instant::now();
    f();
    let once = start.elapsed().max(Duration::from_nanos(1));
    let iters = (SAMPLE_TARGET.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as usize;

    let mut samples: Vec<Duration> = (0..SAMPLES)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            start.elapsed() / iters as u32
        })
        .collect();
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    println!(
        "{label}: {} ns/iter ({iters} iters/sample, {SAMPLES} samples)",
        median.as_nanos()
    );
    median
}

/// Prints a group header, mirroring Criterion's group layout in output.
pub fn group(name: &str) {
    println!("\n== {name} ==");
}
