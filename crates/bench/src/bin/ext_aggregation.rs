//! Extension experiment (design ablation): how the forward/backward
//! aggregation choice (Section 3.6's "e.g., by average") affects accuracy
//! across the dislocation testbeds.
//!
//! The paper credits the two-direction aggregation for handling
//! dislocations; this ablation quantifies it: single directions win where
//! their end of the trace is intact and collapse where it is cut, while the
//! average is the only configuration robust to all three testbeds.

use ems_bench::methods::{accuracy, select, MethodRun};
use ems_bench::testbeds::{dislocation_pairs, Testbed, Workload};
use ems_core::{Aggregation, Ems, EmsParams};
use ems_eval::Table;

fn main() {
    let aggregations: [(&str, Aggregation); 5] = [
        ("average", Aggregation::Average),
        ("min", Aggregation::Min),
        ("max", Aggregation::Max),
        ("forward", Aggregation::ForwardOnly),
        ("backward", Aggregation::BackwardOnly),
    ];
    let headers: Vec<String> = std::iter::once("aggregation".to_owned())
        .chain(Testbed::all().iter().map(|t| t.name().to_owned()))
        .collect();
    let mut table = Table::new(
        "Extension: direction-aggregation ablation (EMS, structural)",
        headers,
    );
    let w = Workload::default();
    let beds: Vec<_> = Testbed::all()
        .iter()
        .map(|&tb| (tb, dislocation_pairs(tb, &w)))
        .collect();
    for (label, agg) in aggregations {
        let mut cells = vec![label.to_owned()];
        for (_, pairs) in &beds {
            let mut f = 0.0;
            for pair in pairs {
                let mut params = EmsParams::structural();
                params.aggregation = agg;
                let out = Ems::new(params).match_logs(&pair.log1, &pair.log2);
                let run = MethodRun {
                    found: select(&out.similarity, &pair.log1, &pair.log2),
                    secs: 0.0,
                    formula_evals: 0,
                    finished: true,
                };
                f += accuracy(pair, &run).f_measure;
            }
            cells.push(format!("{:.3}", f / pairs.len() as f64));
        }
        table.row(cells);
    }
    print!("{}", table.to_text());
    let _ = table.write_csv("results/ext_aggregation.csv");
}
