//! Figure 9: handling dislocated events — accuracy as the number of
//! dislocated (removed leading) events per trace grows, at a fixed event
//! size. BHV's accuracy collapses; EMS stays steady.

use ems_bench::methods::{accuracy, run_method, Method};
use ems_bench::testbeds::{dislocation_pairs, Testbed, Workload};
use ems_eval::Table;

fn main() {
    let methods = Method::lineup();
    let headers: Vec<String> = std::iter::once("#dislocated".to_owned())
        .chain(methods.iter().map(|m| m.name()))
        .collect();
    let mut f_table = Table::new(
        "Figure 9(a): f-measure vs number of dislocated events (60-event logs)",
        headers.clone(),
    );
    let mut t_table = Table::new("Figure 9(b): time per log pair (ms)", headers);
    for m in [0usize, 1, 2, 3, 4, 6, 8] {
        let w = Workload {
            pairs: 4,
            activities: 60,
            dislocated: m,
            xor_jitter: 0.0,
            extra_events: 0,
            ..Workload::default()
        };
        let pairs = dislocation_pairs(Testbed::DsB, &w);
        let mut f_cells = vec![m.to_string()];
        let mut t_cells = vec![m.to_string()];
        for &method in &methods {
            if method == Method::Opq {
                // 60 events is far beyond OPQ's reach (Figure 8).
                f_cells.push("DNF".into());
                t_cells.push("DNF".into());
                continue;
            }
            let mut f_sum = 0.0;
            let mut t_sum = 0.0;
            for pair in &pairs {
                let run = run_method(method, pair, 1.0);
                f_sum += accuracy(pair, &run).f_measure;
                t_sum += run.secs;
            }
            f_cells.push(format!("{:.3}", f_sum / pairs.len() as f64));
            t_cells.push(format!("{:.1}", 1e3 * t_sum / pairs.len() as f64));
        }
        f_table.row(f_cells);
        t_table.row(t_cells);
    }
    print!("{}", f_table.to_text());
    println!();
    print!("{}", t_table.to_text());
    let _ = f_table.write_csv("results/fig9a.csv");
    let _ = t_table.write_csv("results/fig9b.csv");
}
