//! Bench-trajectory tooling: folds the committed legacy `BENCH_pr*.json`
//! snapshots into the versioned `BENCH_TRAJECTORY.jsonl` history, emits
//! Prometheus-text twins for legacy snapshots that predate the `.prom`
//! exporter, and gates the newest trajectory row against the best recorded
//! same-host history.
//!
//! ```text
//! bench_trajectory migrate --out BENCH_TRAJECTORY.jsonl BENCH_pr2.json ...
//! bench_trajectory prom BENCH_pr2.json --out BENCH_pr2.prom
//! bench_trajectory gate BENCH_TRAJECTORY.jsonl [--threshold FRAC]
//! ```
//!
//! Exit codes: 0 success / gate passed, 2 usage, 3 I/O or parse failure,
//! **4 regression gate failure** — distinct so CI can tell "the bench
//! regressed" from "the bench is broken".

use ems_obs::trajectory;
use ems_obs::Recorder;
use std::process::ExitCode;

const USAGE: &str = "usage:
  bench_trajectory migrate --out PATH LEGACY.json [LEGACY.json ...]
  bench_trajectory prom LEGACY.json --out PATH
  bench_trajectory gate PATH [--threshold FRAC]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("migrate") => migrate(&args[1..]),
        Some("prom") => prom(&args[1..]),
        Some("gate") => gate(&args[1..]),
        Some(other) => {
            eprintln!("bench_trajectory: unknown subcommand '{other}'\n{USAGE}");
            2
        }
        None => {
            eprintln!("bench_trajectory: missing subcommand\n{USAGE}");
            2
        }
    };
    ExitCode::from(code)
}

/// Splits `--out PATH` out of an argument list, returning (out, rest).
fn take_out(args: &[String]) -> Result<(Option<String>, Vec<String>), String> {
    let mut out = None;
    let mut rest = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--out" {
            match it.next() {
                Some(p) => out = Some(p.clone()),
                None => return Err("--out requires a path".to_owned()),
            }
        } else {
            rest.push(a.clone());
        }
    }
    Ok((out, rest))
}

/// `migrate --out PATH LEGACY.json...`: one trajectory row per legacy
/// snapshot, in argument order (the argument order IS the history order).
fn migrate(args: &[String]) -> u8 {
    let (out, inputs) = match take_out(args) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("bench_trajectory: {e}\n{USAGE}");
            return 2;
        }
    };
    let Some(out) = out else {
        eprintln!("bench_trajectory: migrate requires --out PATH\n{USAGE}");
        return 2;
    };
    if inputs.is_empty() {
        eprintln!("bench_trajectory: migrate requires at least one legacy snapshot\n{USAGE}");
        return 2;
    }
    let mut rows = Vec::new();
    for path in &inputs {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("bench_trajectory: cannot read {path}: {e}");
                return 3;
            }
        };
        match trajectory::migrate_legacy(&text) {
            Ok(row) => {
                println!(
                    "migrated {path}: run '{}' ({} metrics)",
                    row.run_id,
                    row.metrics.len()
                );
                rows.push(row);
            }
            Err(e) => {
                eprintln!("bench_trajectory: {path}: {e}");
                return 3;
            }
        }
    }
    if let Err(e) = std::fs::write(&out, trajectory::write_rows(&rows)) {
        eprintln!("bench_trajectory: cannot write {out}: {e}");
        return 3;
    }
    println!("wrote {} row(s) to {out}", rows.len());
    0
}

/// `prom LEGACY.json --out PATH`: emits the Prometheus-text twin a legacy
/// snapshot never shipped, through the exact exporter (`ems_obs::prom`)
/// and gauge scheme (`ems_bench_wall_ms{kernel,n}`) perf_smoke uses, so
/// the generated file is indistinguishable from a contemporary one.
fn prom(args: &[String]) -> u8 {
    let (out, inputs) = match take_out(args) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("bench_trajectory: {e}\n{USAGE}");
            return 2;
        }
    };
    let (Some(out), [input]) = (out, inputs.as_slice()) else {
        eprintln!(
            "bench_trajectory: prom requires exactly one LEGACY.json and --out PATH\n{USAGE}"
        );
        return 2;
    };
    let text = match std::fs::read_to_string(input) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench_trajectory: cannot read {input}: {e}");
            return 3;
        }
    };
    let row = match trajectory::migrate_legacy(&text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bench_trajectory: {input}: {e}");
            return 3;
        }
    };
    let metrics = Recorder::new();
    for (name, value) in &row.metrics {
        // `n<size>.<kernel>_wall_ms` → ems_bench_wall_ms{kernel,n}; the
        // per-size eval counts keep their dedicated gauge. Sweep/sparse/
        // convergence metrics stay trajectory-only, as they do today.
        let Some((size, rest)) = name.split_once('.') else {
            continue;
        };
        let Some(n) = size.strip_prefix('n') else {
            continue;
        };
        if rest.contains('.') {
            continue;
        }
        if let Some(kernel) = rest.strip_suffix("_wall_ms") {
            metrics.gauge_set(
                "bench_wall_ms",
                ems_obs::labels(&[("n", n), ("kernel", kernel)]),
                *value,
            );
        } else if rest == "formula_evals" {
            metrics.gauge_set("bench_formula_evals", ems_obs::labels(&[("n", n)]), *value);
        }
    }
    if let Err(e) = std::fs::write(out.as_str(), ems_obs::prom::write(&metrics.records())) {
        eprintln!("bench_trajectory: cannot write {out}: {e}");
        return 3;
    }
    println!("wrote {out} (run '{}')", row.run_id);
    0
}

/// `gate PATH [--threshold FRAC]`: compares the newest row's gated
/// metrics against the best same-host history and exits 4 on any
/// regression beyond the threshold.
fn gate(args: &[String]) -> u8 {
    let mut path = None;
    let mut threshold = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threshold" => match it.next().map(|v| v.parse::<f64>()) {
                Some(Ok(f)) if f > 0.0 && f.is_finite() => threshold = Some(f),
                _ => {
                    eprintln!("bench_trajectory: --threshold requires a positive fraction");
                    return 2;
                }
            },
            other if !other.starts_with('-') && path.is_none() => path = Some(other.to_owned()),
            other => {
                eprintln!("bench_trajectory: unexpected argument '{other}'\n{USAGE}");
                return 2;
            }
        }
    }
    let Some(path) = path else {
        eprintln!("bench_trajectory: gate requires a trajectory path\n{USAGE}");
        return 2;
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench_trajectory: cannot read {path}: {e}");
            return 3;
        }
    };
    let rows = match trajectory::parse(&text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bench_trajectory: {path}: {e}");
            return 3;
        }
    };
    let outcome = trajectory::gate(&rows, threshold);
    if let Some(note) = &outcome.note {
        println!("gate: {note}");
    }
    println!(
        "gate: {} metric(s) checked against same-host history",
        outcome.checked
    );
    if outcome.passed() {
        println!("gate: PASS");
        0
    } else {
        for f in &outcome.failures {
            eprintln!("bench_trajectory: REGRESSION: {f}");
        }
        eprintln!(
            "bench_trajectory: gate FAILED with {} regression(s)",
            outcome.failures.len()
        );
        4
    }
}
