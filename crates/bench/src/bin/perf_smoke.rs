//! CI perf smoke: times the seed reference kernel against the precomputed
//! worklist kernel (serial and parallel) on synthetic log pairs, plus the
//! session pipeline (cold build vs cached re-match vs warm-started
//! re-match vs PR6's disk-warm: a fresh session rehydrating every build
//! product from the durable catalog store), and writes the results to the
//! path given by the mandatory `--out PATH` argument (CI passes
//! `BENCH_pr6.json`). A Prometheus-text
//! metrics file is written alongside (same stem, `.prom` extension), and
//! every size's JSON entry carries the per-iteration convergence telemetry
//! of an untimed traced run. Intended to catch large kernel regressions,
//! not to be a rigorous benchmark — each configuration is timed best-of-N
//! wall clock.

use ems_core::engine::{Engine, RunOptions, RunOutput};
use ems_core::{Direction, EmsParams, MatchSession, SessionOptions};
use ems_depgraph::DependencyGraph;
use ems_labels::LabelMatrix;
use ems_obs::{IterationRecord, Record, Recorder};
use ems_store::CatalogStore;
use ems_synth::{PairConfig, PairGenerator, TreeConfig};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

const SIZES: &[usize] = &[50, 200, 800];

fn pair(activities: usize) -> (ems_events::EventLog, ems_events::EventLog) {
    let p = PairGenerator::new(PairConfig {
        tree: TreeConfig {
            num_activities: activities,
            seed: 7,
            max_branch: (activities / 4).max(4),
            ..TreeConfig::default()
        },
        traces_per_log: 60,
        seed: 17,
        xor_jitter: 0.25,
        ..PairConfig::default()
    })
    .generate();
    (p.log1, p.log2)
}

/// Best-of-`rounds` wall-clock milliseconds for each of the three kernel
/// variants, plus each variant's last output. One warm-up run, then the
/// variants are timed *interleaved* — reference, serial, parallel within
/// every round — so slow drifts in shared-machine load hit all three
/// equally instead of skewing whichever happened to run last.
fn time_round_robin(
    rounds: usize,
    fns: [&mut dyn FnMut() -> RunOutput; 3],
) -> ([f64; 3], [RunOutput; 3]) {
    let [f0, f1, f2] = fns;
    let mut best = [f64::INFINITY; 3];
    let mut outs = [f0(), f1(), f2()];
    for _ in 0..rounds {
        for (i, f) in [&mut *f0, &mut *f1, &mut *f2].into_iter().enumerate() {
            let start = Instant::now();
            outs[i] = f();
            let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
            if elapsed_ms < best[i] {
                best[i] = elapsed_ms;
            }
        }
    }
    (best, outs)
}

struct SizeReport {
    n: usize,
    pairs: usize,
    iterations: usize,
    formula_evals: u64,
    setup_ms: f64,
    reference_ms: f64,
    serial_ms: f64,
    parallel_ms: f64,
    session_cold_ms: f64,
    session_cached_ms: f64,
    session_warm_ms: f64,
    session_disk_ms: f64,
    convergence: Vec<IterationRecord>,
}

impl SizeReport {
    fn pairs_per_sec(&self, wall_ms: f64) -> f64 {
        if wall_ms <= 0.0 {
            0.0
        } else {
            self.formula_evals as f64 / (wall_ms / 1e3)
        }
    }
}

/// Parses the mandatory `--out PATH` (a bare positional path is also
/// accepted, kept for back-compatibility with the PR2 invocation). There
/// is deliberately no default: every trajectory file in CI names its PR
/// explicitly, so a stale default can never silently overwrite an earlier
/// PR's numbers.
fn parse_out_path(args: impl Iterator<Item = String>) -> Result<String, String> {
    let mut out_path = None;
    let mut args = args.peekable();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => match args.next() {
                Some(p) => out_path = Some(p),
                None => return Err("--out requires a path".to_owned()),
            },
            other if !other.starts_with('-') => out_path = Some(other.to_owned()),
            other => return Err(format!("unknown flag {other} (expected --out PATH)")),
        }
    }
    out_path.ok_or_else(|| "missing mandatory --out PATH (e.g. --out BENCH_pr5.json)".to_owned())
}

fn main() {
    let out_path = match parse_out_path(std::env::args().skip(1)) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("perf_smoke: {e}");
            std::process::exit(2);
        }
    };
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let metrics = Recorder::new();
    let mut reports = Vec::new();
    for &n in SIZES {
        let (l1, l2) = pair(n);
        let g1 = DependencyGraph::from_log(&l1);
        let g2 = DependencyGraph::from_log(&l2);
        let labels = LabelMatrix::zeros(g1.num_real(), g2.num_real());
        let mut params = EmsParams::structural();
        // Pin the round count so every kernel does identical work.
        params.max_iterations = 6;
        params.epsilon = 1e-15;
        let engine = Engine::new(&g1, &g2, &labels, &params, Direction::Forward);
        let rounds = if n >= 800 { 3 } else { 5 };

        let serial_opts = RunOptions {
            threads: Some(1),
            ..RunOptions::default()
        };
        let parallel_opts = RunOptions {
            threads: Some(0),
            ..RunOptions::default()
        };
        let ([reference_ms, serial_ms, parallel_ms], [ref_out, serial_out, parallel_out]) =
            time_round_robin(
                rounds,
                [
                    &mut || engine.run_reference(&RunOptions::default()),
                    &mut || engine.run(&serial_opts),
                    &mut || engine.run(&parallel_opts),
                ],
            );

        // Smoke-check the equivalence contract while we are here.
        assert_eq!(ref_out.sim.data(), serial_out.sim.data());
        assert_eq!(serial_out.sim.data(), parallel_out.sim.data());
        assert_eq!(ref_out.stats.iterations, parallel_out.stats.iterations);

        // One untimed traced run per size captures the convergence curve
        // (the timed runs stay recorder-free so instrumentation cost never
        // leaks into the wall-clock numbers).
        let recorder = Arc::new(Recorder::new());
        let traced_opts = RunOptions {
            threads: Some(1),
            recorder: Some(Arc::clone(&recorder)),
            ..RunOptions::default()
        };
        let traced_out = engine.run(&traced_opts);
        assert_eq!(traced_out.sim.data(), serial_out.sim.data());
        let convergence: Vec<IterationRecord> = recorder
            .records()
            .into_iter()
            .filter_map(|r| match r {
                Record::Iteration(ir) => Some(ir),
                _ => None,
            })
            .collect();

        // PR5 session pipeline: cold (graph + substrate + label build +
        // both solves) vs cached re-match (builds skipped, solves only)
        // vs warm-started re-match (solves seeded at the prior fixpoint,
        // sound by Theorem 1 monotonicity). Cold needs a fresh session
        // every round; cached and warm reuse that round's session. Unlike
        // the kernel rows above (iteration count pinned for identical
        // work), the session trio runs the default convergence params —
        // the warm win only exists when the prior actually converged.
        let session_params = EmsParams::structural();
        let mut session_cold_ms = f64::INFINITY;
        let mut session_cached_ms = f64::INFINITY;
        let mut session_warm_ms = f64::INFINITY;
        for _ in 0..rounds {
            let mut session =
                MatchSession::try_new(session_params.clone()).expect("params are valid");
            let h1 = session.ingest(l1.clone());
            let h2 = session.ingest(l2.clone());
            let warm_opts = SessionOptions {
                warm_start: true,
                ..SessionOptions::default()
            };
            let start = Instant::now();
            let cold = session.match_pair(h1, h2).expect("session match succeeds");
            let cold_ms = start.elapsed().as_secs_f64() * 1e3;
            if cold_ms < session_cold_ms {
                session_cold_ms = cold_ms;
            }
            let start = Instant::now();
            let cached = session.match_pair(h1, h2).expect("session match succeeds");
            let cached_ms = start.elapsed().as_secs_f64() * 1e3;
            if cached_ms < session_cached_ms {
                session_cached_ms = cached_ms;
            }
            let start = Instant::now();
            let _warm = session
                .match_pair_opts(h1, h2, &warm_opts)
                .expect("session match succeeds");
            let warm_ms = start.elapsed().as_secs_f64() * 1e3;
            if warm_ms < session_warm_ms {
                session_warm_ms = warm_ms;
            }
            // The cached re-match must be a pure cache hit: bit-identical.
            assert_eq!(cold.similarity.data(), cached.similarity.data());
        }

        // PR6 disk-warm row: one session populates the durable catalog
        // store (untimed), then a *fresh* session — no shared memory, only
        // the store directory — is timed rehydrating every build product
        // from checksummed snapshots. The gap to `session_cold_ms` is the
        // build work the store saves; the gap to `session_cached_ms` is
        // the decode cost of the disk tier.
        let mut session_disk_ms = f64::INFINITY;
        let store_root =
            std::env::temp_dir().join(format!("ems-perf-store-{}-{n}", std::process::id()));
        for _ in 0..rounds {
            let _ = std::fs::remove_dir_all(&store_root);
            let store = Arc::new(CatalogStore::open(&store_root).expect("store opens"));
            let mut populate = MatchSession::try_new(session_params.clone())
                .expect("params are valid")
                .with_store(store);
            let h1 = populate.ingest(l1.clone());
            let h2 = populate.ingest(l2.clone());
            let cold = populate.match_pair(h1, h2).expect("session match succeeds");
            drop(populate);
            // Reopen the store as a fresh process would.
            let store = Arc::new(CatalogStore::open(&store_root).expect("store reopens"));
            let mut fresh = MatchSession::try_new(session_params.clone())
                .expect("params are valid")
                .with_store(store);
            let h1 = fresh.ingest(l1.clone());
            let h2 = fresh.ingest(l2.clone());
            let start = Instant::now();
            let disk = fresh.match_pair(h1, h2).expect("session match succeeds");
            let disk_ms = start.elapsed().as_secs_f64() * 1e3;
            if disk_ms < session_disk_ms {
                session_disk_ms = disk_ms;
            }
            // The disk-warm run must be a pure rehydration: nothing built,
            // scores bit-identical to the populating cold run.
            assert_eq!(fresh.stats().graph_builds, 0);
            assert_eq!(fresh.stats().substrate_builds, 0);
            assert_eq!(cold.similarity.data(), disk.similarity.data());
        }
        let _ = std::fs::remove_dir_all(&store_root);

        let size_labels =
            |kernel: &str| ems_obs::labels(&[("n", &n.to_string()), ("kernel", kernel)]);
        metrics.gauge_set("bench_wall_ms", size_labels("reference"), reference_ms);
        metrics.gauge_set("bench_wall_ms", size_labels("serial"), serial_ms);
        metrics.gauge_set("bench_wall_ms", size_labels("parallel"), parallel_ms);
        metrics.gauge_set(
            "bench_wall_ms",
            size_labels("session_cold"),
            session_cold_ms,
        );
        metrics.gauge_set(
            "bench_wall_ms",
            size_labels("session_cached"),
            session_cached_ms,
        );
        metrics.gauge_set(
            "bench_wall_ms",
            size_labels("session_warm"),
            session_warm_ms,
        );
        metrics.gauge_set(
            "bench_wall_ms",
            size_labels("session_disk"),
            session_disk_ms,
        );
        metrics.gauge_set(
            "bench_formula_evals",
            ems_obs::labels(&[("n", &n.to_string())]),
            serial_out.stats.formula_evals as f64,
        );

        let report = SizeReport {
            n,
            pairs: g1.num_real() * g2.num_real(),
            iterations: serial_out.stats.iterations,
            formula_evals: serial_out.stats.formula_evals,
            setup_ms: serial_out.stats.phase_times.setup.as_secs_f64() * 1e3,
            reference_ms,
            serial_ms,
            parallel_ms,
            session_cold_ms,
            session_cached_ms,
            session_warm_ms,
            session_disk_ms,
            convergence,
        };
        eprintln!(
            "n={n}: reference {reference_ms:.1} ms, serial {serial_ms:.1} ms \
             ({:.2}x), parallel {parallel_ms:.1} ms ({:.2}x, {threads} threads); \
             session cold {session_cold_ms:.1} ms, cached {session_cached_ms:.1} ms, \
             warm {session_warm_ms:.1} ms, disk-warm {session_disk_ms:.1} ms",
            reference_ms / serial_ms,
            reference_ms / parallel_ms,
        );
        reports.push(report);
    }

    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"pr6_session_pipeline\",\n");
    let _ = writeln!(json, "  \"parallel_threads\": {threads},");
    json.push_str("  \"sizes\": [\n");
    for (i, r) in reports.iter().enumerate() {
        json.push_str("    {\n");
        let _ = writeln!(json, "      \"n\": {},", r.n);
        let _ = writeln!(json, "      \"pairs\": {},", r.pairs);
        let _ = writeln!(json, "      \"iterations\": {},", r.iterations);
        let _ = writeln!(json, "      \"formula_evals\": {},", r.formula_evals);
        let _ = writeln!(json, "      \"setup_ms\": {:.3},", r.setup_ms);
        let _ = writeln!(json, "      \"reference_wall_ms\": {:.3},", r.reference_ms);
        let _ = writeln!(json, "      \"serial_wall_ms\": {:.3},", r.serial_ms);
        let _ = writeln!(json, "      \"parallel_wall_ms\": {:.3},", r.parallel_ms);
        let _ = writeln!(
            json,
            "      \"session_cold_wall_ms\": {:.3},",
            r.session_cold_ms
        );
        let _ = writeln!(
            json,
            "      \"session_cached_wall_ms\": {:.3},",
            r.session_cached_ms
        );
        let _ = writeln!(
            json,
            "      \"session_warm_wall_ms\": {:.3},",
            r.session_warm_ms
        );
        let _ = writeln!(
            json,
            "      \"session_disk_wall_ms\": {:.3},",
            r.session_disk_ms
        );
        let _ = writeln!(
            json,
            "      \"reference_pairs_per_sec\": {:.0},",
            r.pairs_per_sec(r.reference_ms)
        );
        let _ = writeln!(
            json,
            "      \"serial_pairs_per_sec\": {:.0},",
            r.pairs_per_sec(r.serial_ms)
        );
        let _ = writeln!(
            json,
            "      \"parallel_pairs_per_sec\": {:.0},",
            r.pairs_per_sec(r.parallel_ms)
        );
        let _ = writeln!(
            json,
            "      \"speedup_serial_vs_reference\": {:.2},",
            r.reference_ms / r.serial_ms
        );
        let _ = writeln!(
            json,
            "      \"speedup_parallel_vs_reference\": {:.2},",
            r.reference_ms / r.parallel_ms
        );
        json.push_str("      \"convergence\": [\n");
        for (j, it) in r.convergence.iter().enumerate() {
            let _ = write!(
                json,
                "        {{\"iteration\": {}, \"max_delta\": ",
                it.iteration
            );
            ems_obs::json::write_f64(&mut json, it.max_delta);
            json.push_str(", \"mean_delta\": ");
            ems_obs::json::write_f64(&mut json, it.mean_delta);
            let _ = write!(
                json,
                ", \"active_pairs\": {}, \"retired_pairs\": {}, \
                 \"frozen_pairs\": {}, \"formula_evals\": {}}}",
                it.active_pairs, it.retired_pairs, it.frozen_pairs, it.formula_evals
            );
            json.push_str(if j + 1 == r.convergence.len() {
                "\n"
            } else {
                ",\n"
            });
        }
        json.push_str("      ]\n");
        json.push_str(if i + 1 == reports.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    json.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("perf_smoke: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    let prom_path = match out_path.strip_suffix(".json") {
        Some(stem) => format!("{stem}.prom"),
        None => format!("{out_path}.prom"),
    };
    if let Err(e) = std::fs::write(&prom_path, ems_obs::prom::write(&metrics.records())) {
        eprintln!("perf_smoke: cannot write {prom_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path} and {prom_path}");
}
