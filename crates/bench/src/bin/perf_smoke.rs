//! CI perf smoke: times the seed reference kernel against the worklist
//! kernel across a thread sweep (1/2/4/8 pooled workers) and against the
//! δ-thresholded sparse kernel on synthetic log pairs, plus the session
//! pipeline (cold build vs cached re-match vs warm-started re-match vs
//! disk-warm rehydration from the durable catalog store), and writes the
//! results to the path given by the mandatory `--out PATH` argument (CI
//! passes `BENCH_pr7.json`). A Prometheus-text metrics file is written
//! alongside (same stem, `.prom` extension), and every size's JSON entry
//! carries the per-iteration convergence telemetry of an untimed traced
//! run. The n=3200 size runs in sparse mode only — the point of that row
//! is that sparsification makes the size tractable at all, so it runs a
//! contraction/threshold pair under which δ-dropping provably engages
//! within the pinned iteration budget (see [`LARGE_SPARSE_DELTA`]).
//!
//! With `--baseline PATH` the run additionally compares its serial
//! pairs/sec per size against a previously committed report and exits 3
//! on a >20% regression, so CI catches kernel slowdowns in the diff that
//! caused them.
//!
//! Intended to catch large kernel regressions, not to be a rigorous
//! benchmark — each configuration is timed best-of-N wall clock,
//! interleaved round-robin so machine-load drift hits all variants
//! equally.

use ems_catalog::{outcome_score, Catalog};
use ems_core::engine::{Engine, RunOptions, RunOutput};
use ems_core::{Direction, EmsParams, MatchSession, SessionOptions, SharedSession, SparseSim};
use ems_depgraph::DependencyGraph;
use ems_labels::LabelMatrix;
use ems_obs::trajectory::TrajectoryRow;
use ems_obs::{IterationRecord, Record, Recorder};
use ems_store::CatalogStore;
use ems_synth::{PairConfig, PairGenerator, TreeConfig};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// Sizes measured with the full dense matrix (reference + sweep + sparse
/// cross-check + session pipeline).
const DENSE_SIZES: &[usize] = &[50, 200, 800];
/// The large size runs sparse-mode only: no reference kernel, no session
/// rows — its job is to show the sparse path scales past the dense sweet
/// spot.
const LARGE_SIZE: usize = 3200;
/// Worker counts of the thread sweep. Explicit counts spin up a real pool
/// even when the host exposes fewer cores (the speedup is then ~1×, which
/// the JSON reports honestly via `host_parallelism`).
const THREAD_SWEEP: &[usize] = &[1, 2, 4, 8];
/// δ of the thresholded (approximate) sparse rows at the dense sizes.
/// The exactness row always runs at δ = 0.
const SPARSE_DELTA: f64 = 0.01;
/// Exact iterations before sparsification engages.
const SPARSE_WARMUP: usize = 2;
/// δ of the n=3200 sparse-only row. Dropping a pair needs its Prop-2
/// upper bound `s_k + α·c^k/(1−α·c)` under δ, so the geometric tail must
/// decay below `δ − s` within the pinned budget: at the default c=0.8
/// that takes 15+ iterations, so the large row tightens the contraction
/// to [`LARGE_SPARSE_C`] (tail `2.5·0.6^k` < 0.1 by iteration 5) and
/// uses a δ sitting inside the synthetic pairs' score range. Measured at
/// n=3200 this drops ~79% of the grid and makes 12 sparse iterations
/// cheaper than 6 dense ones.
const LARGE_SPARSE_DELTA: f64 = 0.3;
/// Contraction factor of the n=3200 row (see [`LARGE_SPARSE_DELTA`]).
const LARGE_SPARSE_C: f64 = 0.6;
/// Pinned iteration budget of the n=3200 row: enough for the certificate
/// to engage (~iteration 5-6) plus a post-collapse tail that shows the
/// shrunken worklist iterating cheaply.
const LARGE_MAX_ITERATIONS: usize = 12;
/// References pinned by the serve-throughput row's catalog:
/// [`SERVE_QUERIES`] families of [`SERVE_FAMILY_VARIANTS`] near-duplicate
/// deployments each, the rest structurally unrelated decoys.
const SERVE_REFS: usize = 20;
/// Queries answered by the serve row (each a fourth near-duplicate
/// variant of one family, so every query has clear nearest neighbors).
const SERVE_QUERIES: usize = 4;
/// Near-duplicate reference variants per family.
const SERVE_FAMILY_VARIANTS: usize = 3;
/// Activity count of the serve row's logs.
const SERVE_N: usize = 800;
/// Top-k size of the serve row's queries.
const SERVE_K: usize = 3;

fn pair(activities: usize) -> (ems_events::EventLog, ems_events::EventLog) {
    let p = PairGenerator::new(PairConfig {
        tree: TreeConfig {
            num_activities: activities,
            seed: 7,
            max_branch: (activities / 4).max(4),
            ..TreeConfig::default()
        },
        traces_per_log: 60,
        seed: 17,
        xor_jitter: 0.25,
        ..PairConfig::default()
    })
    .generate();
    (p.log1, p.log2)
}

/// Best-of-`rounds` wall-clock milliseconds for each variant, plus each
/// variant's last output. One warm-up pass, then the variants are timed
/// *interleaved* — every variant once per round — so slow drifts in
/// shared-machine load hit all of them equally instead of skewing
/// whichever happened to run last.
fn time_round_robin(
    rounds: usize,
    fns: &mut [Box<dyn FnMut() -> RunOutput + '_>],
) -> (Vec<f64>, Vec<RunOutput>) {
    let mut best = vec![f64::INFINITY; fns.len()];
    let mut outs: Vec<RunOutput> = fns.iter_mut().map(|f| f()).collect();
    for _ in 0..rounds {
        for (i, f) in fns.iter_mut().enumerate() {
            let start = Instant::now();
            outs[i] = f();
            let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
            if elapsed_ms < best[i] {
                best[i] = elapsed_ms;
            }
        }
    }
    (best, outs)
}

/// One point of the thread sweep.
struct SweepPoint {
    threads: usize,
    wall_ms: f64,
    /// Largest shard count the pooled evaluation actually used (1 when
    /// the worklist stayed under the pairs-per-shard floor).
    pool_shards: u64,
}

/// Dense-vs-sparse cross-check (dense sizes only — the large size has no
/// dense run to compare against).
struct SparseReport {
    exact_wall_ms: f64,
    thresholded_wall_ms: f64,
    sparsified_pairs: u64,
    final_occupancy: f64,
    max_abs_error: f64,
    error_bound: f64,
}

struct SessionReport {
    cold_ms: f64,
    cached_ms: f64,
    warm_ms: f64,
    disk_ms: f64,
}

struct SizeReport {
    n: usize,
    mode: &'static str,
    pairs: usize,
    iterations: usize,
    formula_evals: u64,
    setup_ms: f64,
    reference_ms: Option<f64>,
    sweep: Vec<SweepPoint>,
    sparse: Option<SparseReport>,
    sparsified_pairs: u64,
    final_occupancy: f64,
    session: Option<SessionReport>,
    convergence: Vec<IterationRecord>,
    /// Relative wall-clock cost of running with a recorder + profiler
    /// attached vs bare (n=800 dense row only; the profiler budget is 5%).
    profiler_overhead_frac: Option<f64>,
}

impl SizeReport {
    fn pairs_per_sec(&self, wall_ms: f64) -> f64 {
        if wall_ms <= 0.0 {
            0.0
        } else {
            self.formula_evals as f64 / (wall_ms / 1e3)
        }
    }

    fn serial_ms(&self) -> f64 {
        self.sweep[0].wall_ms
    }

    /// Best wall over the multi-threaded sweep points.
    fn parallel_ms(&self) -> f64 {
        self.sweep[1..]
            .iter()
            .map(|p| p.wall_ms)
            .fold(f64::INFINITY, f64::min)
    }
}

struct CliArgs {
    out_path: String,
    baseline: Option<String>,
    append_trajectory: Option<String>,
    run_id: Option<String>,
}

/// Parses the mandatory `--out PATH` (a bare positional path is also
/// accepted, kept for back-compatibility with the PR2 invocation), the
/// optional `--baseline PATH`, and the optional
/// `--append-trajectory PATH [--run-id ID]` pair that appends one
/// `ems-bench/1` row to the versioned trajectory file. There is
/// deliberately no default output: every trajectory file in CI names its
/// PR explicitly, so a stale default can never silently overwrite an
/// earlier PR's numbers.
fn parse_cli(args: impl Iterator<Item = String>) -> Result<CliArgs, String> {
    let mut out_path = None;
    let mut baseline = None;
    let mut append_trajectory = None;
    let mut run_id = None;
    let mut args = args.peekable();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => match args.next() {
                Some(p) => out_path = Some(p),
                None => return Err("--out requires a path".to_owned()),
            },
            "--baseline" => match args.next() {
                Some(p) => baseline = Some(p),
                None => return Err("--baseline requires a path".to_owned()),
            },
            "--append-trajectory" => match args.next() {
                Some(p) => append_trajectory = Some(p),
                None => return Err("--append-trajectory requires a path".to_owned()),
            },
            "--run-id" => match args.next() {
                Some(p) => run_id = Some(p),
                None => return Err("--run-id requires an id".to_owned()),
            },
            other if !other.starts_with('-') => out_path = Some(other.to_owned()),
            other => {
                return Err(format!(
                    "unknown flag {other} (expected --out PATH [--baseline PATH] \
                     [--append-trajectory PATH] [--run-id ID])"
                ))
            }
        }
    }
    let out_path = out_path
        .ok_or_else(|| "missing mandatory --out PATH (e.g. --out BENCH_pr7.json)".to_owned())?;
    Ok(CliArgs {
        out_path,
        baseline,
        append_trajectory,
        run_id,
    })
}

/// Short git revision of the working tree, read straight from `.git`
/// (HEAD → loose ref → packed-refs); `unknown` when not in a repository.
/// No subprocess: the bench must run identically in minimal CI images.
fn git_rev() -> String {
    let Ok(head) = std::fs::read_to_string(".git/HEAD") else {
        return "unknown".to_owned();
    };
    let head = head.trim();
    let full = if let Some(refname) = head.strip_prefix("ref: ") {
        let refname = refname.trim();
        match std::fs::read_to_string(format!(".git/{refname}")) {
            Ok(s) => s.trim().to_owned(),
            Err(_) => std::fs::read_to_string(".git/packed-refs")
                .ok()
                .and_then(|packed| {
                    packed
                        .lines()
                        .find_map(|l| l.strip_suffix(refname).map(|sha| sha.trim().to_owned()))
                })
                .unwrap_or_default(),
        }
    } else {
        head.to_owned()
    };
    if full.len() >= 7 && full.bytes().all(|b| b.is_ascii_hexdigit()) {
        full[..7].to_owned()
    } else {
        "unknown".to_owned()
    }
}

/// Host fingerprint used to scope regression-gate comparisons: rows are
/// only ever gated against rows produced on the same `os/arch/cores`.
fn host_fingerprint(host_parallelism: usize) -> String {
    format!(
        "{}/{}/{host_parallelism}",
        std::env::consts::OS,
        std::env::consts::ARCH
    )
}

/// Flattens the size reports into one `ems-bench/1` trajectory row using
/// the same dotted metric names `trajectory::migrate_legacy` produces for
/// the committed `BENCH_pr*.json` history, so the gate and `ems report
/// --compare` see one continuous metric lineage.
fn trajectory_row(
    run_id: String,
    host_parallelism: usize,
    reports: &[SizeReport],
    serve: &ServeBenchReport,
) -> TrajectoryRow {
    let mut metrics: BTreeMap<String, f64> = BTreeMap::new();
    metrics.insert("host_parallelism".to_owned(), host_parallelism as f64);
    for r in reports {
        let p = format!("n{}", r.n);
        metrics.insert(format!("{p}.serial_wall_ms"), r.serial_ms());
        metrics.insert(
            format!("{p}.serial_pairs_per_sec"),
            r.pairs_per_sec(r.serial_ms()),
        );
        metrics.insert(format!("{p}.parallel_wall_ms"), r.parallel_ms());
        metrics.insert(
            format!("{p}.parallel_pairs_per_sec"),
            r.pairs_per_sec(r.parallel_ms()),
        );
        if let Some(reference_ms) = r.reference_ms {
            metrics.insert(format!("{p}.reference_wall_ms"), reference_ms);
            metrics.insert(
                format!("{p}.reference_pairs_per_sec"),
                r.pairs_per_sec(reference_ms),
            );
        }
        for pt in &r.sweep {
            metrics.insert(format!("{p}.t{}.wall_ms", pt.threads), pt.wall_ms);
            metrics.insert(
                format!("{p}.t{}.pairs_per_sec", pt.threads),
                r.pairs_per_sec(pt.wall_ms),
            );
            metrics.insert(
                format!("{p}.t{}.pool_shards", pt.threads),
                pt.pool_shards as f64,
            );
        }
        if let Some(sp) = &r.sparse {
            metrics.insert(format!("{p}.sparse.exact_wall_ms"), sp.exact_wall_ms);
            metrics.insert(
                format!("{p}.sparse.thresholded_wall_ms"),
                sp.thresholded_wall_ms,
            );
            metrics.insert(
                format!("{p}.sparse.sparsified_pairs"),
                sp.sparsified_pairs as f64,
            );
        }
        if let Some(s) = &r.session {
            metrics.insert(format!("{p}.session_cold_wall_ms"), s.cold_ms);
            metrics.insert(format!("{p}.session_cached_wall_ms"), s.cached_ms);
            metrics.insert(format!("{p}.session_warm_wall_ms"), s.warm_ms);
            metrics.insert(format!("{p}.session_disk_wall_ms"), s.disk_ms);
        }
        metrics.insert(
            format!("{p}.convergence_iterations"),
            r.convergence.len() as f64,
        );
        if let Some(frac) = r.profiler_overhead_frac {
            metrics.insert(format!("{p}.profiler_overhead_frac"), frac);
        }
    }
    // Serve row: queries/sec is the gated throughput metric (`*_per_sec`
    // → higher-is-better at 15%); the rest are informational context.
    metrics.insert(
        "serve.queries_per_sec".to_owned(),
        serve.serve_queries_per_sec,
    );
    metrics.insert("serve.speedup_vs_per_process".to_owned(), serve.speedup);
    metrics.insert("serve.pruned_fraction".to_owned(), serve.pruned_fraction);
    metrics.insert("serve.catalog_refs".to_owned(), serve.refs as f64);
    TrajectoryRow {
        run_id,
        git_rev: git_rev(),
        host: host_fingerprint(host_parallelism),
        source: "perf_smoke".to_owned(),
        metrics,
    }
}

/// Extracts `(n, <key>)` pairs from a committed bench report. The reports
/// are emitted one key per line by this binary (and its predecessors), so
/// a line scan is exact for every file this can be pointed at — no JSON
/// parser needed.
fn extract_per_n(text: &str, key: &str) -> Vec<(usize, f64)> {
    let n_prefix = "\"n\":";
    let key_prefix = format!("\"{key}\":");
    let mut current_n: Option<usize> = None;
    let mut found = Vec::new();
    for line in text.lines() {
        let t = line.trim();
        let num = |rest: &str| rest.trim().trim_end_matches(',').parse::<f64>().ok();
        if let Some(rest) = t.strip_prefix(n_prefix) {
            current_n = num(rest).map(|v| v as usize);
        } else if let Some(rest) = t.strip_prefix(key_prefix.as_str()) {
            if let (Some(n), Some(v)) = (current_n, num(rest)) {
                found.push((n, v));
            }
        }
    }
    found
}

/// Compares this run's serial pairs/sec per size against a committed
/// baseline report; returns the list of regressions beyond 20%.
fn baseline_regressions(baseline_text: &str, reports: &[SizeReport]) -> Vec<String> {
    let base = extract_per_n(baseline_text, "serial_pairs_per_sec");
    let mut failures = Vec::new();
    for (n, base_pps) in base {
        let Some(r) = reports.iter().find(|r| r.n == n) else {
            eprintln!("perf_smoke: baseline has n={n}, current run does not; skipping");
            continue;
        };
        let cur = r.pairs_per_sec(r.serial_ms());
        if cur < 0.8 * base_pps {
            failures.push(format!(
                "n={n}: serial {cur:.0} pairs/sec is {:.0}% of baseline {base_pps:.0}",
                100.0 * cur / base_pps
            ));
        }
    }
    failures
}

fn main() {
    let cli = match parse_cli(std::env::args().skip(1)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("perf_smoke: {e}");
            std::process::exit(2);
        }
    };
    let host_parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let metrics = Recorder::new();
    let mut reports = Vec::new();
    for &n in DENSE_SIZES {
        reports.push(dense_size(n, host_parallelism, &metrics));
    }
    reports.push(sparse_size(LARGE_SIZE, &metrics));
    let serve = serve_bench(&metrics);

    let json = render_json(host_parallelism, &reports, &serve);
    if let Err(e) = std::fs::write(&cli.out_path, &json) {
        eprintln!("perf_smoke: cannot write {}: {e}", cli.out_path);
        std::process::exit(1);
    }
    let prom_path = match cli.out_path.strip_suffix(".json") {
        Some(stem) => format!("{stem}.prom"),
        None => format!("{}.prom", cli.out_path),
    };
    if let Err(e) = std::fs::write(&prom_path, ems_obs::prom::write(&metrics.records())) {
        eprintln!("perf_smoke: cannot write {prom_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {} and {prom_path}", cli.out_path);

    if let Some(tp) = &cli.append_trajectory {
        let run_id = cli
            .run_id
            .clone()
            .unwrap_or_else(|| format!("ci-{}", git_rev()));
        let row = trajectory_row(run_id, host_parallelism, &reports, &serve);
        let line = ems_obs::trajectory::write_row(&row);
        use std::io::Write as _;
        let appended = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(tp)
            .and_then(|mut f| writeln!(f, "{line}"));
        if let Err(e) = appended {
            eprintln!("perf_smoke: cannot append to {tp}: {e}");
            std::process::exit(1);
        }
        println!("appended run '{}' to {tp}", row.run_id);
    }

    if let Some(bp) = &cli.baseline {
        let text = match std::fs::read_to_string(bp) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("perf_smoke: cannot read baseline {bp}: {e}");
                std::process::exit(2);
            }
        };
        let failures = baseline_regressions(&text, &reports);
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("perf_smoke: REGRESSION vs {bp}: {f}");
            }
            std::process::exit(3);
        }
        println!("no >20% pairs/sec regression vs {bp}");
    }
}

/// Full measurement of one dense-tractable size: reference kernel, thread
/// sweep, sparse cross-checks, session pipeline, convergence trace.
fn dense_size(n: usize, host_parallelism: usize, metrics: &Recorder) -> SizeReport {
    let (l1, l2) = pair(n);
    let g1 = DependencyGraph::from_log(&l1);
    let g2 = DependencyGraph::from_log(&l2);
    let labels = LabelMatrix::zeros(g1.num_real(), g2.num_real());
    let mut params = EmsParams::structural();
    // Pin the round count so every kernel does identical work.
    params.max_iterations = 6;
    params.epsilon = 1e-15;
    let sparse_exact_params = params.clone().with_sparse(0.0, SPARSE_WARMUP);
    let sparse_thresh_params = params.clone().with_sparse(SPARSE_DELTA, SPARSE_WARMUP);
    let engine = Engine::new(&g1, &g2, &labels, &params, Direction::Forward);
    let sparse_exact = Engine::new(&g1, &g2, &labels, &sparse_exact_params, Direction::Forward);
    let sparse_thresh = Engine::new(&g1, &g2, &labels, &sparse_thresh_params, Direction::Forward);
    let rounds = if n >= 800 { 3 } else { 5 };

    let sweep_opts: Vec<RunOptions> = THREAD_SWEEP
        .iter()
        .map(|&t| RunOptions {
            threads: Some(t),
            oversubscribe: true,
            ..RunOptions::default()
        })
        .collect();
    let serial_opts = RunOptions {
        threads: Some(1),
        ..RunOptions::default()
    };
    let engine_ref = &engine;
    let mut variants: Vec<Box<dyn FnMut() -> RunOutput>> = Vec::new();
    variants.push(Box::new(|| {
        engine_ref.run_reference(&RunOptions::default())
    }));
    for opts in &sweep_opts {
        variants.push(Box::new(move || engine_ref.run(opts)));
    }
    variants.push(Box::new(|| sparse_exact.run(&serial_opts)));
    variants.push(Box::new(|| sparse_thresh.run(&serial_opts)));
    let (walls, outs) = time_round_robin(rounds, &mut variants);
    drop(variants);
    let reference_ms = walls[0];
    let sweep: Vec<SweepPoint> = THREAD_SWEEP
        .iter()
        .enumerate()
        .map(|(i, &t)| SweepPoint {
            threads: t,
            wall_ms: walls[1 + i],
            pool_shards: outs[1 + i].stats.pool_shards,
        })
        .collect();
    let serial_out = &outs[1];
    let exact_idx = 1 + THREAD_SWEEP.len();
    let sparse_thresh_out = &outs[exact_idx + 1];

    // Smoke-check the equivalence contracts while we are here: the
    // reference kernel, every pooled thread count, and the δ=0 sparse
    // mode must agree bit-for-bit.
    for out in &outs[..=exact_idx] {
        assert_eq!(out.sim.data(), serial_out.sim.data());
        assert_eq!(out.stats.iterations, serial_out.stats.iterations);
    }
    // δ>0 is approximate, but provably within δ/(1−α·c) of the exact
    // scores (see the sparse-similarity module docs).
    let error_bound = SPARSE_DELTA / (1.0 - params.alpha * params.c);
    let max_abs_error = serial_out
        .sim
        .data()
        .iter()
        .zip(sparse_thresh_out.sim.data())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max);
    assert!(
        max_abs_error <= error_bound,
        "n={n}: sparse δ={SPARSE_DELTA} error {max_abs_error} exceeds bound {error_bound}"
    );
    // Parallel-scaling gate (satellite/CI): only meaningful where the
    // host actually has the cores; on smaller machines the sweep numbers
    // are still reported but not asserted on.
    if n == 800 && host_parallelism >= 4 {
        let t4 = sweep
            .iter()
            .find(|p| p.threads == 4)
            .map(|p| p.wall_ms)
            .unwrap_or(f64::INFINITY);
        assert!(
            t4 < 0.7 * sweep[0].wall_ms,
            "n=800: 4-thread wall {t4:.1} ms is not < 0.7x serial {:.1} ms",
            sweep[0].wall_ms
        );
    }

    // One untimed traced run per size captures the convergence curve
    // (the timed runs stay recorder-free so instrumentation cost never
    // leaks into the wall-clock numbers).
    let recorder = Arc::new(Recorder::new());
    let traced_opts = RunOptions {
        threads: Some(1),
        recorder: Some(Arc::clone(&recorder)),
        ..RunOptions::default()
    };
    let traced_out = engine.run(&traced_opts);
    assert_eq!(traced_out.sim.data(), serial_out.sim.data());
    let convergence = convergence_of(&recorder);

    // Profiler-overhead row (largest dense size only): bare serial run vs
    // serial run with recorder + profiler attached, interleaved best-of-N
    // so machine drift cancels. The instrumentation budget is 5%.
    let profiler_overhead_frac = if n >= 800 {
        let plain_opts = RunOptions {
            threads: Some(1),
            ..RunOptions::default()
        };
        let profiled_recorder = Arc::new(Recorder::new());
        let profiled_opts = RunOptions {
            threads: Some(1),
            recorder: Some(Arc::clone(&profiled_recorder)),
            ..RunOptions::default()
        };
        let mut overhead_variants: Vec<Box<dyn FnMut() -> RunOutput>> = vec![
            Box::new(|| engine_ref.run(&plain_opts)),
            Box::new(|| engine_ref.run(&profiled_opts)),
        ];
        let (walls, _) = time_round_robin(rounds.max(3), &mut overhead_variants);
        drop(overhead_variants);
        let frac = (walls[1] - walls[0]) / walls[0];
        eprintln!(
            "n={n}: profiler overhead {:+.2}% (bare {:.1} ms, profiled {:.1} ms)",
            frac * 100.0,
            walls[0],
            walls[1]
        );
        assert!(
            frac <= 0.05,
            "n={n}: profiler overhead {:.2}% exceeds the 5% budget \
             (bare {:.1} ms, profiled {:.1} ms)",
            frac * 100.0,
            walls[0],
            walls[1]
        );
        Some(frac)
    } else {
        None
    };

    let session = session_rows(n, &l1, &l2, rounds);

    let size_labels = |kernel: &str| ems_obs::labels(&[("n", &n.to_string()), ("kernel", kernel)]);
    metrics.gauge_set("bench_wall_ms", size_labels("reference"), reference_ms);
    for p in &sweep {
        metrics.gauge_set(
            "bench_wall_ms",
            ems_obs::labels(&[
                ("n", &n.to_string()),
                ("kernel", "pool"),
                ("threads", &p.threads.to_string()),
            ]),
            p.wall_ms,
        );
    }
    metrics.gauge_set(
        "bench_wall_ms",
        size_labels("sparse_exact"),
        walls[exact_idx],
    );
    metrics.gauge_set(
        "bench_wall_ms",
        size_labels("sparse_thresholded"),
        walls[exact_idx + 1],
    );
    metrics.gauge_set(
        "bench_wall_ms",
        size_labels("session_cold"),
        session.cold_ms,
    );
    metrics.gauge_set(
        "bench_wall_ms",
        size_labels("session_cached"),
        session.cached_ms,
    );
    metrics.gauge_set(
        "bench_wall_ms",
        size_labels("session_warm"),
        session.warm_ms,
    );
    metrics.gauge_set(
        "bench_wall_ms",
        size_labels("session_disk"),
        session.disk_ms,
    );
    metrics.gauge_set(
        "bench_formula_evals",
        ems_obs::labels(&[("n", &n.to_string())]),
        serial_out.stats.formula_evals as f64,
    );

    eprintln!(
        "n={n}: reference {reference_ms:.1} ms, serial {:.1} ms ({:.2}x), \
         4-thread {:.1} ms; sparse exact {:.1} ms, sparse δ={SPARSE_DELTA} {:.1} ms \
         (max err {max_abs_error:.4} ≤ {error_bound}); session cold {:.1} ms, \
         cached {:.1} ms, warm {:.1} ms, disk-warm {:.1} ms",
        sweep[0].wall_ms,
        reference_ms / sweep[0].wall_ms,
        sweep
            .iter()
            .find(|p| p.threads == 4)
            .map(|p| p.wall_ms)
            .unwrap_or(f64::NAN),
        walls[exact_idx],
        walls[exact_idx + 1],
        session.cold_ms,
        session.cached_ms,
        session.warm_ms,
        session.disk_ms,
    );

    let final_occupancy = SparseSim::from_dense(&sparse_thresh_out.sim, 0.0).occupancy();
    SizeReport {
        n,
        mode: "dense",
        pairs: g1.num_real() * g2.num_real(),
        iterations: serial_out.stats.iterations,
        formula_evals: serial_out.stats.formula_evals,
        setup_ms: serial_out.stats.phase_times.setup.as_secs_f64() * 1e3,
        reference_ms: Some(reference_ms),
        sparse: Some(SparseReport {
            exact_wall_ms: walls[exact_idx],
            thresholded_wall_ms: walls[exact_idx + 1],
            sparsified_pairs: sparse_thresh_out.stats.sparsified_pairs,
            final_occupancy,
            max_abs_error,
            error_bound,
        }),
        sparsified_pairs: sparse_thresh_out.stats.sparsified_pairs,
        final_occupancy,
        sweep,
        session: Some(session),
        convergence,
        profiler_overhead_frac,
    }
}

/// The large size: sparse δ-thresholded mode only, thread sweep included.
/// No reference kernel (O(n²) dense walls) and no session rows — this row
/// exists to show the sparse path makes the size tractable.
fn sparse_size(n: usize, metrics: &Recorder) -> SizeReport {
    let (l1, l2) = pair(n);
    let g1 = DependencyGraph::from_log(&l1);
    let g2 = DependencyGraph::from_log(&l2);
    let labels = LabelMatrix::zeros(g1.num_real(), g2.num_real());
    let mut params = EmsParams::structural().with_sparse(LARGE_SPARSE_DELTA, SPARSE_WARMUP);
    params.c = LARGE_SPARSE_C;
    params.max_iterations = LARGE_MAX_ITERATIONS;
    params.epsilon = 1e-15;
    let engine = Engine::new(&g1, &g2, &labels, &params, Direction::Forward);
    // Each n=3200 run is ~a minute of wall; warm-up + one timed round per
    // variant keeps the whole row inside a CI-tolerable budget.
    let rounds = 1;

    let sweep_opts: Vec<RunOptions> = THREAD_SWEEP
        .iter()
        .map(|&t| RunOptions {
            threads: Some(t),
            oversubscribe: true,
            ..RunOptions::default()
        })
        .collect();
    let engine_ref = &engine;
    let mut variants: Vec<Box<dyn FnMut() -> RunOutput>> = Vec::new();
    for opts in &sweep_opts {
        variants.push(Box::new(move || engine_ref.run(opts)));
    }
    let (walls, outs) = time_round_robin(rounds, &mut variants);
    drop(variants);
    let sweep: Vec<SweepPoint> = THREAD_SWEEP
        .iter()
        .enumerate()
        .map(|(i, &t)| SweepPoint {
            threads: t,
            wall_ms: walls[i],
            pool_shards: outs[i].stats.pool_shards,
        })
        .collect();
    let serial_out = &outs[0];
    // Thread counts must agree bit-for-bit even in sparse mode.
    for out in &outs {
        assert_eq!(out.sim.data(), serial_out.sim.data());
    }
    assert!(
        serial_out.stats.sparsified_pairs > 0,
        "n={n}: sparse mode never dropped a pair — the row is not exercising sparsification"
    );

    let recorder = Arc::new(Recorder::new());
    let traced_opts = RunOptions {
        threads: Some(1),
        recorder: Some(Arc::clone(&recorder)),
        ..RunOptions::default()
    };
    let traced_out = engine.run(&traced_opts);
    assert_eq!(traced_out.sim.data(), serial_out.sim.data());
    let convergence = convergence_of(&recorder);

    for p in &sweep {
        metrics.gauge_set(
            "bench_wall_ms",
            ems_obs::labels(&[
                ("n", &n.to_string()),
                ("kernel", "sparse_pool"),
                ("threads", &p.threads.to_string()),
            ]),
            p.wall_ms,
        );
    }
    metrics.gauge_set(
        "bench_formula_evals",
        ems_obs::labels(&[("n", &n.to_string())]),
        serial_out.stats.formula_evals as f64,
    );

    let final_occupancy = SparseSim::from_dense(&serial_out.sim, 0.0).occupancy();
    eprintln!(
        "n={n} (sparse δ={LARGE_SPARSE_DELTA}, c={LARGE_SPARSE_C}): serial {:.1} ms, \
         4-thread {:.1} ms; {} pairs sparsified, final occupancy {final_occupancy:.3}",
        sweep[0].wall_ms,
        sweep
            .iter()
            .find(|p| p.threads == 4)
            .map(|p| p.wall_ms)
            .unwrap_or(f64::NAN),
        serial_out.stats.sparsified_pairs,
    );

    SizeReport {
        n,
        mode: "sparse",
        pairs: g1.num_real() * g2.num_real(),
        iterations: serial_out.stats.iterations,
        formula_evals: serial_out.stats.formula_evals,
        setup_ms: serial_out.stats.phase_times.setup.as_secs_f64() * 1e3,
        reference_ms: None,
        sparse: None,
        sparsified_pairs: serial_out.stats.sparsified_pairs,
        final_occupancy,
        sweep,
        session: None,
        convergence,
        profiler_overhead_frac: None,
    }
}

/// The catalog-serving throughput row (tentpole of the serve PR): one
/// shared catalog answering top-k queries with sketch pruning, measured
/// against the per-process baseline — a fresh [`MatchSession`] for every
/// (query, reference) pair, exactly what scripting `ems match` in a loop
/// costs.
struct ServeBenchReport {
    refs: usize,
    queries: usize,
    k: usize,
    baseline_wall_ms: f64,
    baseline_queries_per_sec: f64,
    serve_wall_ms: f64,
    serve_queries_per_sec: f64,
    speedup: f64,
    evaluated: u64,
    pruned: u64,
    pruned_fraction: f64,
}

/// One clean playout of a process tree for the serve corpus.
fn serve_base(tree_seed: u64, playout_seed: u64) -> ems_events::EventLog {
    PairGenerator::new(PairConfig {
        tree: TreeConfig {
            num_activities: SERVE_N,
            seed: tree_seed,
            max_branch: (SERVE_N / 4).max(4),
            ..TreeConfig::default()
        },
        traces_per_log: 60,
        seed: playout_seed,
        ..PairConfig::default()
    })
    .generate()
    .log1
}

/// A deployment variant of `log`: the traces at `drop` removed (distinct
/// recorded subsets per site), every activity name carried into the
/// family's namespace via `prefix`, and — for query logs — every
/// `opaque_stride`-th activity renamed to a site-local opaque token
/// (heterogeneous vocabulary the matcher must bridge structurally).
fn serve_variant(
    log: &ems_events::EventLog,
    drop: &[usize],
    prefix: &str,
    opaque_stride: usize,
) -> ems_events::EventLog {
    let mut out = ems_events::EventLog::new();
    for (i, tr) in log.traces().iter().enumerate() {
        if drop.contains(&i) {
            continue;
        }
        out.push_trace(tr.events().iter().map(|&id| {
            let idx = id.index();
            if opaque_stride > 0 && idx % opaque_stride == 0 {
                format!("{prefix}opaque{idx}")
            } else {
                format!("{prefix}{}", log.name_of(id))
            }
        }));
    }
    out
}

/// Generates the serve corpus: [`SERVE_QUERIES`] families — each one
/// process, recorded at [`SERVE_FAMILY_VARIANTS`] near-duplicate sites
/// (same playout, distinct dropped-trace subsets, a family name prefix) —
/// plus structurally unrelated decoy references, [`SERVE_REFS`] in total.
/// Each query is a fourth variant of its family with ~8% of activities
/// opaquely renamed, so it has close in-family neighbors and is far from
/// everything else — the catalog-retrieval shape the label-aware sketch
/// bound is built for.
fn serve_corpus() -> (Vec<ems_events::EventLog>, Vec<ems_events::EventLog>) {
    const FAMILY_DROPS: [&[usize]; SERVE_FAMILY_VARIANTS] = [&[0, 7], &[2, 11], &[4, 13]];
    let mut refs = Vec::new();
    let mut queries = Vec::new();
    for f in 0..SERVE_QUERIES {
        let base = serve_base(100 + f as u64, 11 + f as u64);
        let prefix = format!("f{f}:");
        for drops in FAMILY_DROPS {
            refs.push(serve_variant(&base, drops, &prefix, 0));
        }
        queries.push(serve_variant(&base, &[1, 9], &prefix, 12));
    }
    let decoys = SERVE_REFS - SERVE_QUERIES * SERVE_FAMILY_VARIANTS;
    for d in 0..decoys {
        let base = serve_base(300 + d as u64, 31 + d as u64);
        refs.push(serve_variant(&base, &[], &format!("d{d}:"), 0));
    }
    (refs, queries)
}

fn serve_bench(metrics: &Recorder) -> ServeBenchReport {
    // Catalog retrieval runs structure + exact-equality labels at the
    // paper's α = 0.5 split: the equality measure is what lets the sketch
    // cap the label term by name-set overlap (see `ems_depgraph::sketch`),
    // which is where the pruning power on same-scale corpora comes from.
    let params = EmsParams::with_exact_labels(0.5);
    let (refs, queries) = serve_corpus();

    // Both paths consume what a real deployment consumes: XES documents.
    // Serialization is untimed (the files exist either way); parsing is
    // timed where each path actually pays it.
    let to_xes = |l: &ems_events::EventLog| ems_xes::write_string(&ems_xes::from_event_log(l));
    let ref_xes: Vec<String> = refs.iter().map(to_xes).collect();
    let query_xes: Vec<String> = queries.iter().map(to_xes).collect();
    let parse = |text: &str| -> ems_events::EventLog {
        ems_xes::load_event_log_str(text, ems_xes::ParseMode::Strict)
            .expect("serve corpus round-trips through XES")
            .log
    };

    // Baseline: per-process matching. Every (query, reference) pair pays
    // both parses and a full fresh-session build — graphs, substrates,
    // labels, and the solve — exactly like running
    // `ems match query.xes ref-i.xes` in a shell loop and ranking the
    // printed scores.
    let start = Instant::now();
    let mut baseline_top: Vec<Vec<usize>> = Vec::new();
    for qx in &query_xes {
        let mut scored: Vec<(f64, usize)> = Vec::new();
        for (ri, rx) in ref_xes.iter().enumerate() {
            let mut session = MatchSession::try_new(params.clone()).expect("params are valid");
            let hq = session.ingest(parse(qx));
            let hr = session.ingest(parse(rx));
            let out = session.match_pair(hq, hr).expect("session match succeeds");
            scored.push((outcome_score(&out), ri));
        }
        scored.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        baseline_top.push(scored[..SERVE_K].iter().map(|&(_, ri)| ri).collect());
    }
    let baseline_wall_ms = start.elapsed().as_secs_f64() * 1e3;

    // Serve path: one shared catalog, references admitted once (untimed —
    // that is the amortization a resident service buys), then the query
    // batch timed end-to-end: each query's XES parse, graph build, sketch
    // pass, and the surviving exact fixpoints.
    let shared = Arc::new(SharedSession::try_new(params.clone()).expect("params are valid"));
    let mut catalog = Catalog::new(shared);
    for (ri, rlog) in refs.iter().enumerate() {
        catalog.add(format!("ref-{ri:02}"), rlog.clone());
    }
    assert_eq!(
        catalog.len(),
        SERVE_REFS,
        "serve corpus collided on content"
    );

    let start = Instant::now();
    let mut outcomes = Vec::new();
    let mut parsed_queries = Vec::new();
    for qx in &query_xes {
        let q = parse(qx);
        outcomes.push(
            catalog
                .query_top_k_opts(&q, SERVE_K, true)
                .expect("catalog query succeeds"),
        );
        parsed_queries.push(q);
    }
    let serve_wall_ms = start.elapsed().as_secs_f64() * 1e3;

    let mut evaluated = 0u64;
    let mut pruned = 0u64;
    for (qi, out) in outcomes.iter().enumerate() {
        evaluated += out.evaluated as u64;
        pruned += out.pruned as u64;
        // Pruning must be invisible in the results: the ranking equals
        // both the unpruned catalog pass and the per-process baseline.
        let unpruned = catalog
            .query_top_k_opts(&parsed_queries[qi], SERVE_K, false)
            .expect("catalog query succeeds");
        assert_eq!(unpruned.pruned, 0);
        let names = |o: &ems_catalog::QueryOutcome| -> Vec<String> {
            o.ranked.iter().map(|r| r.name.clone()).collect()
        };
        assert_eq!(
            names(out),
            names(&unpruned),
            "query {qi}: pruned ranking diverged from exact (recall < 1.0)"
        );
        let expected: Vec<String> = baseline_top[qi]
            .iter()
            .map(|&ri| format!("ref-{ri:02}"))
            .collect();
        assert_eq!(
            names(out),
            expected,
            "query {qi}: catalog ranking diverged from the per-process baseline"
        );
    }
    let pruned_fraction = pruned as f64 / (evaluated + pruned).max(1) as f64;
    let per_sec = |wall_ms: f64| {
        if wall_ms <= 0.0 {
            0.0
        } else {
            queries.len() as f64 / (wall_ms / 1e3)
        }
    };
    let baseline_queries_per_sec = per_sec(baseline_wall_ms);
    let serve_queries_per_sec = per_sec(serve_wall_ms);
    let speedup = baseline_wall_ms / serve_wall_ms;
    assert!(
        speedup >= 5.0,
        "serve throughput {serve_queries_per_sec:.2} q/s is only {speedup:.2}x the \
         per-process baseline {baseline_queries_per_sec:.2} q/s (needs >= 5x)"
    );
    assert!(
        pruned_fraction >= 0.5,
        "sketch pruning skipped only {:.0}% of exact fixpoints (needs >= 50%)",
        pruned_fraction * 100.0
    );

    metrics.gauge_set(
        "bench_wall_ms",
        ems_obs::labels(&[("n", &SERVE_N.to_string()), ("kernel", "serve_batch")]),
        serve_wall_ms,
    );
    metrics.gauge_set(
        "bench_wall_ms",
        ems_obs::labels(&[("n", &SERVE_N.to_string()), ("kernel", "serve_baseline")]),
        baseline_wall_ms,
    );
    eprintln!(
        "serve: {} refs, {} queries, k={}: catalog {:.1} ms ({:.2} q/s) vs \
         per-process {:.1} ms ({:.2} q/s) — {speedup:.1}x, {pruned}/{} fixpoints pruned",
        SERVE_REFS,
        queries.len(),
        SERVE_K,
        serve_wall_ms,
        serve_queries_per_sec,
        baseline_wall_ms,
        baseline_queries_per_sec,
        evaluated + pruned,
    );

    ServeBenchReport {
        refs: SERVE_REFS,
        queries: queries.len(),
        k: SERVE_K,
        baseline_wall_ms,
        baseline_queries_per_sec,
        serve_wall_ms,
        serve_queries_per_sec,
        speedup,
        evaluated,
        pruned,
        pruned_fraction,
    }
}

fn convergence_of(recorder: &Recorder) -> Vec<IterationRecord> {
    recorder
        .records()
        .into_iter()
        .filter_map(|r| match r {
            Record::Iteration(ir) => Some(ir),
            _ => None,
        })
        .collect()
}

/// Session pipeline rows: cold (graph + substrate + label build + both
/// solves) vs cached re-match (a pure outcome-cache hit) vs warm-started
/// re-match (solves seeded at the prior fixpoint, sound by Theorem 1
/// monotonicity) vs disk-warm (a fresh session rehydrating every build
/// product from the durable catalog store). Cold needs a fresh session
/// every round; cached and warm reuse that round's session. Unlike the
/// kernel rows (iteration count pinned for identical work), the session
/// trio runs the default convergence params — the warm win only exists
/// when the prior actually converged.
fn session_rows(
    n: usize,
    l1: &ems_events::EventLog,
    l2: &ems_events::EventLog,
    rounds: usize,
) -> SessionReport {
    let session_params = EmsParams::structural();
    let mut cold_ms = f64::INFINITY;
    let mut cached_ms = f64::INFINITY;
    let mut warm_ms = f64::INFINITY;
    for _ in 0..rounds {
        let mut session = MatchSession::try_new(session_params.clone()).expect("params are valid");
        let h1 = session.ingest(l1.clone());
        let h2 = session.ingest(l2.clone());
        let warm_opts = SessionOptions {
            warm_start: true,
            ..SessionOptions::default()
        };
        let start = Instant::now();
        let cold = session.match_pair(h1, h2).expect("session match succeeds");
        let ms = start.elapsed().as_secs_f64() * 1e3;
        if ms < cold_ms {
            cold_ms = ms;
        }
        let start = Instant::now();
        let cached = session.match_pair(h1, h2).expect("session match succeeds");
        let ms = start.elapsed().as_secs_f64() * 1e3;
        if ms < cached_ms {
            cached_ms = ms;
        }
        let start = Instant::now();
        let _warm = session
            .match_pair_opts(h1, h2, &warm_opts)
            .expect("session match succeeds");
        let ms = start.elapsed().as_secs_f64() * 1e3;
        if ms < warm_ms {
            warm_ms = ms;
        }
        // The cached re-match must be a pure cache hit: bit-identical.
        assert_eq!(cold.similarity.data(), cached.similarity.data());
    }
    // The PR7 outcome cache makes a cached re-match a map lookup + clone;
    // anything above half the cold wall means the cache is doing
    // redundant work again (the PR5/PR6 symptom this PR fixed).
    assert!(
        cached_ms <= 0.5 * cold_ms,
        "n={n}: cached re-match {cached_ms:.2} ms is not <= 0.5x cold {cold_ms:.2} ms"
    );

    // Disk-warm row: one session populates the durable catalog store
    // (untimed), then a *fresh* session — no shared memory, only the
    // store directory — is timed rehydrating every build product from
    // checksummed snapshots.
    let mut disk_ms = f64::INFINITY;
    let store_root =
        std::env::temp_dir().join(format!("ems-perf-store-{}-{n}", std::process::id()));
    for _ in 0..rounds {
        let _ = std::fs::remove_dir_all(&store_root);
        let store = Arc::new(CatalogStore::open(&store_root).expect("store opens"));
        let mut populate = MatchSession::try_new(session_params.clone())
            .expect("params are valid")
            .with_store(store);
        let h1 = populate.ingest(l1.clone());
        let h2 = populate.ingest(l2.clone());
        let cold = populate.match_pair(h1, h2).expect("session match succeeds");
        drop(populate);
        // Reopen the store as a fresh process would.
        let store = Arc::new(CatalogStore::open(&store_root).expect("store reopens"));
        let mut fresh = MatchSession::try_new(session_params.clone())
            .expect("params are valid")
            .with_store(store);
        let h1 = fresh.ingest(l1.clone());
        let h2 = fresh.ingest(l2.clone());
        let start = Instant::now();
        let disk = fresh.match_pair(h1, h2).expect("session match succeeds");
        let ms = start.elapsed().as_secs_f64() * 1e3;
        if ms < disk_ms {
            disk_ms = ms;
        }
        // The disk-warm run must be a pure rehydration: nothing built,
        // scores bit-identical to the populating cold run.
        assert_eq!(fresh.stats().graph_builds, 0);
        assert_eq!(fresh.stats().substrate_builds, 0);
        assert_eq!(cold.similarity.data(), disk.similarity.data());
    }
    let _ = std::fs::remove_dir_all(&store_root);

    SessionReport {
        cold_ms,
        cached_ms,
        warm_ms,
        disk_ms,
    }
}

fn render_json(
    host_parallelism: usize,
    reports: &[SizeReport],
    serve: &ServeBenchReport,
) -> String {
    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"pr7_kernel_scaling\",\n");
    let _ = writeln!(json, "  \"host_parallelism\": {host_parallelism},");
    let _ = writeln!(json, "  \"sparse_delta\": {SPARSE_DELTA},");
    let _ = writeln!(json, "  \"sparse_warmup\": {SPARSE_WARMUP},");
    json.push_str("  \"sizes\": [\n");
    for (i, r) in reports.iter().enumerate() {
        json.push_str("    {\n");
        let _ = writeln!(json, "      \"n\": {},", r.n);
        let _ = writeln!(json, "      \"mode\": \"{}\",", r.mode);
        if r.mode == "sparse" {
            // The sparse-only row runs its own threshold/contraction pair
            // (the top-level sparse_delta applies to the dense sizes).
            let _ = writeln!(json, "      \"delta\": {LARGE_SPARSE_DELTA},");
            let _ = writeln!(json, "      \"c\": {LARGE_SPARSE_C},");
        }
        let _ = writeln!(json, "      \"pairs\": {},", r.pairs);
        let _ = writeln!(json, "      \"iterations\": {},", r.iterations);
        let _ = writeln!(json, "      \"formula_evals\": {},", r.formula_evals);
        let _ = writeln!(json, "      \"setup_ms\": {:.3},", r.setup_ms);
        if let Some(reference_ms) = r.reference_ms {
            let _ = writeln!(json, "      \"reference_wall_ms\": {reference_ms:.3},");
            let _ = writeln!(
                json,
                "      \"reference_pairs_per_sec\": {:.0},",
                r.pairs_per_sec(reference_ms)
            );
            let _ = writeln!(
                json,
                "      \"speedup_serial_vs_reference\": {:.2},",
                reference_ms / r.serial_ms()
            );
        }
        let _ = writeln!(json, "      \"serial_wall_ms\": {:.3},", r.serial_ms());
        let _ = writeln!(
            json,
            "      \"serial_pairs_per_sec\": {:.0},",
            r.pairs_per_sec(r.serial_ms())
        );
        let _ = writeln!(json, "      \"parallel_wall_ms\": {:.3},", r.parallel_ms());
        let _ = writeln!(
            json,
            "      \"parallel_pairs_per_sec\": {:.0},",
            r.pairs_per_sec(r.parallel_ms())
        );
        let _ = writeln!(
            json,
            "      \"speedup_parallel_vs_serial\": {:.2},",
            r.serial_ms() / r.parallel_ms()
        );
        json.push_str("      \"thread_sweep\": [\n");
        for (j, p) in r.sweep.iter().enumerate() {
            let _ = write!(
                json,
                "        {{\"threads\": {}, \"wall_ms\": {:.3}, \"pairs_per_sec\": {:.0}, \
                 \"speedup_vs_serial\": {:.2}, \"pool_shards\": {}}}",
                p.threads,
                p.wall_ms,
                r.pairs_per_sec(p.wall_ms),
                r.serial_ms() / p.wall_ms,
                p.pool_shards
            );
            json.push_str(if j + 1 == r.sweep.len() { "\n" } else { ",\n" });
        }
        json.push_str("      ],\n");
        let _ = writeln!(json, "      \"sparsified_pairs\": {},", r.sparsified_pairs);
        let _ = write!(json, "      \"final_occupancy\": ");
        ems_obs::json::write_f64(&mut json, r.final_occupancy);
        json.push_str(",\n");
        if let Some(sp) = &r.sparse {
            json.push_str("      \"sparse\": {\n");
            let _ = writeln!(json, "        \"delta\": {SPARSE_DELTA},");
            let _ = writeln!(json, "        \"exact_wall_ms\": {:.3},", sp.exact_wall_ms);
            let _ = writeln!(
                json,
                "        \"thresholded_wall_ms\": {:.3},",
                sp.thresholded_wall_ms
            );
            let _ = writeln!(
                json,
                "        \"sparsified_pairs\": {},",
                sp.sparsified_pairs
            );
            let _ = write!(json, "        \"final_occupancy\": ");
            ems_obs::json::write_f64(&mut json, sp.final_occupancy);
            json.push_str(",\n        \"max_abs_error\": ");
            ems_obs::json::write_f64(&mut json, sp.max_abs_error);
            json.push_str(",\n        \"error_bound\": ");
            ems_obs::json::write_f64(&mut json, sp.error_bound);
            json.push_str("\n      },\n");
        }
        if let Some(frac) = r.profiler_overhead_frac {
            let _ = write!(json, "      \"profiler_overhead_frac\": ");
            ems_obs::json::write_f64(&mut json, frac);
            json.push_str(",\n");
        }
        if let Some(s) = &r.session {
            let _ = writeln!(json, "      \"session_cold_wall_ms\": {:.3},", s.cold_ms);
            let _ = writeln!(
                json,
                "      \"session_cached_wall_ms\": {:.3},",
                s.cached_ms
            );
            let _ = writeln!(json, "      \"session_warm_wall_ms\": {:.3},", s.warm_ms);
            let _ = writeln!(json, "      \"session_disk_wall_ms\": {:.3},", s.disk_ms);
        }
        json.push_str("      \"convergence\": [\n");
        for (j, it) in r.convergence.iter().enumerate() {
            let _ = write!(
                json,
                "        {{\"iteration\": {}, \"max_delta\": ",
                it.iteration
            );
            ems_obs::json::write_f64(&mut json, it.max_delta);
            json.push_str(", \"mean_delta\": ");
            ems_obs::json::write_f64(&mut json, it.mean_delta);
            let _ = write!(
                json,
                ", \"active_pairs\": {}, \"retired_pairs\": {}, \
                 \"frozen_pairs\": {}, \"formula_evals\": {}}}",
                it.active_pairs, it.retired_pairs, it.frozen_pairs, it.formula_evals
            );
            json.push_str(if j + 1 == r.convergence.len() {
                "\n"
            } else {
                ",\n"
            });
        }
        json.push_str("      ]\n");
        json.push_str(if i + 1 == reports.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    json.push_str("  ],\n");
    json.push_str("  \"serve\": {\n");
    let _ = writeln!(json, "    \"refs\": {},", serve.refs);
    let _ = writeln!(json, "    \"queries\": {},", serve.queries);
    let _ = writeln!(json, "    \"k\": {},", serve.k);
    let _ = writeln!(
        json,
        "    \"baseline_wall_ms\": {:.3},",
        serve.baseline_wall_ms
    );
    let _ = writeln!(
        json,
        "    \"baseline_queries_per_sec\": {:.3},",
        serve.baseline_queries_per_sec
    );
    let _ = writeln!(json, "    \"wall_ms\": {:.3},", serve.serve_wall_ms);
    let _ = writeln!(
        json,
        "    \"queries_per_sec\": {:.3},",
        serve.serve_queries_per_sec
    );
    let _ = writeln!(
        json,
        "    \"speedup_vs_per_process\": {:.2},",
        serve.speedup
    );
    let _ = writeln!(json, "    \"evaluated_fixpoints\": {},", serve.evaluated);
    let _ = writeln!(json, "    \"pruned_fixpoints\": {},", serve.pruned);
    let _ = write!(json, "    \"pruned_fraction\": ");
    ems_obs::json::write_f64(&mut json, serve.pruned_fraction);
    json.push_str("\n  }\n}\n");
    json
}
