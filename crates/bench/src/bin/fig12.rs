//! Figure 12: prune power of unchanged similarities (Uc, Proposition 4)
//! and similarity upper bounds (Bd, Section 4.3) inside composite matching:
//! total formula-(1) evaluations and time under each pruning combination.

use ems_bench::composite::{run_composite, CompositeMethod};
use ems_bench::testbeds::{composite_pairs, Workload};
use ems_core::composite::{CandidateConfig, CompositeConfig};
use ems_eval::Table;

/// The greedy threshold δ at this workload's improvement scale: true merges
/// improve the average similarity by ~0.001-0.004 here (the objective's
/// magnitude depends on graph size; the paper's real logs operated at a
/// larger scale).
fn operating_config() -> CompositeConfig {
    CompositeConfig {
        delta: 0.001,
        ..CompositeConfig::default()
    }
}

fn main() {
    let w = Workload {
        pairs: 5,
        activities: 14,
        traces: 120,
        composites: 2,
        dislocated: 0,
        ..Workload::default()
    };
    let pairs = composite_pairs(&w);
    let mut table = Table::new(
        "Figure 12: prune power of Uc and Bd (EMS composite matching)",
        vec![
            "pruning",
            "formula evals",
            "time (ms)",
            "evaluations",
            "aborted",
        ],
    );
    for (label, uc, bd) in [
        ("none", false, false),
        ("Uc", true, false),
        ("Bd", false, true),
        ("Uc+Bd", true, true),
    ] {
        let config = CompositeConfig {
            unchanged_pruning: uc,
            upper_bound_pruning: bd,
            ..operating_config()
        };
        let mut evals = 0u64;
        let mut secs = 0.0;
        let mut cand_evals = 0usize;
        let mut aborted = 0usize;
        for pair in &pairs {
            let (run, counters) = run_composite(
                CompositeMethod::Ems,
                pair,
                1.0,
                &CandidateConfig::default(),
                &config,
            );
            evals += run.formula_evals;
            secs += run.secs;
            cand_evals += counters.evaluations;
            aborted += counters.aborted;
        }
        let n = pairs.len() as f64;
        table.row(vec![
            label.to_owned(),
            format!("{}", evals / pairs.len() as u64),
            format!("{:.1}", 1e3 * secs / n),
            format!("{:.1}", cand_evals as f64 / n),
            format!("{:.1}", aborted as f64 / n),
        ]);
    }
    print!("{}", table.to_text());
    let _ = table.write_csv("results/fig12.csv");
}
