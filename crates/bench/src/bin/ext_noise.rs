//! Extension experiment (beyond the paper): robustness to log-quality noise.
//!
//! Real exporters drop, duplicate and reorder entries. This sweep measures
//! how each matcher degrades as recording noise grows — complementing the
//! paper's heterogeneity dimensions (opacity, dislocation, composites) with
//! the data-quality dimension its real logs implicitly contained.

use ems_bench::methods::{accuracy, run_method, Method};
use ems_bench::testbeds::{dislocation_pairs, Testbed, Workload};
use ems_eval::Table;
use ems_synth::{apply_noise, NoiseConfig};

fn main() {
    let methods = [
        Method::Ems,
        Method::EmsEstimated(5),
        Method::Ged,
        Method::Bhv,
    ];
    let headers: Vec<String> = std::iter::once("noise".to_owned())
        .chain(methods.iter().map(|m| m.name()))
        .collect();
    let mut table = Table::new(
        "Extension: f-measure vs recording noise (drop = duplicate = swap = p)",
        headers,
    );
    let w = Workload {
        pairs: 5,
        ..Workload::default()
    };
    let base_pairs = dislocation_pairs(Testbed::DsF, &w);
    for p in [0.0, 0.02, 0.05, 0.10, 0.15] {
        let mut cells = vec![format!("{p:.2}")];
        for &method in &methods {
            let mut f = 0.0;
            for (k, pair) in base_pairs.iter().enumerate() {
                let mut noisy = pair.clone();
                noisy.log2 = apply_noise(
                    &pair.log2,
                    &NoiseConfig {
                        drop_prob: p,
                        duplicate_prob: p,
                        swap_prob: p,
                        seed: 77 + k as u64,
                    },
                );
                let run = run_method(method, &noisy, 1.0);
                f += accuracy(&noisy, &run).f_measure;
            }
            cells.push(format!("{:.3}", f / base_pairs.len() as f64));
        }
        table.row(cells);
    }
    print!("{}", table.to_text());
    let _ = table.write_csv("results/ext_noise.csv");
}
