//! Extension experiment (the paper's stated future work): empirical bounds
//! of the Section-3.5 estimation error.
//!
//! For each event size, sweeps the exact-iteration count `I` and reports
//! the maximum/mean estimation error against the exact fixpoint, plus the
//! fitted constant of the geometric model `|err| ≤ K · (αc)^I` — if `K`
//! stays roughly flat across `I`, the estimation error is geometrically
//! bounded in practice, answering the paper's open question empirically.

use ems_bench::testbeds::{scalability_pairs, Workload};
use ems_core::diagnostics::estimation_sweep;
use ems_core::EmsParams;
use ems_eval::Table;

fn main() {
    let w = Workload {
        pairs: 3,
        xor_jitter: 0.0,
        extra_events: 0,
        ..Workload::default()
    };
    let mut table = Table::new(
        "Extension: estimation error vs exact iterations I (40-event logs)",
        vec![
            "I",
            "max |err|",
            "mean |err|",
            "rmse",
            "exact pairs",
            "K = max/(ac)^I",
        ],
    );
    let pairs = scalability_pairs(40, &w);
    let i_values = [0usize, 1, 2, 3, 5, 8, 12];
    // Aggregate the per-pair sweeps.
    let mut agg: Vec<(f64, f64, f64, f64, f64)> = vec![(0.0, 0.0, 0.0, 0.0, 0.0); i_values.len()];
    for pair in &pairs {
        let reports = estimation_sweep(&pair.log1, &pair.log2, &EmsParams::structural(), &i_values);
        for (k, r) in reports.iter().enumerate() {
            agg[k].0 = agg[k].0.max(r.max_error);
            agg[k].1 += r.mean_error;
            agg[k].2 += r.rmse;
            agg[k].3 += r.exact_fraction;
            agg[k].4 = agg[k].4.max(r.geometric_constant);
        }
    }
    let n = pairs.len() as f64;
    for (k, &i) in i_values.iter().enumerate() {
        table.row(vec![
            i.to_string(),
            format!("{:.4}", agg[k].0),
            format!("{:.4}", agg[k].1 / n),
            format!("{:.4}", agg[k].2 / n),
            format!("{:.2}", agg[k].3 / n),
            format!("{:.3}", agg[k].4),
        ]);
    }
    print!("{}", table.to_text());
    println!("(K roughly flat across I => empirically geometric error decay)");
    let _ = table.write_csv("results/ext_estimation.csv");
}
