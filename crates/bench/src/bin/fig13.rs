//! Figure 13: the effect of the improvement threshold δ in Algorithm 2.
//! A moderately large δ peaks the F-measure (smaller δ admits false
//! composites); time grows as δ shrinks because more candidates survive.

use ems_bench::composite::{run_composite, CompositeMethod};
use ems_bench::methods::accuracy;
use ems_bench::testbeds::{composite_pairs, Workload};
use ems_core::composite::{CandidateConfig, CompositeConfig};
use ems_eval::Table;

fn main() {
    let w = Workload {
        pairs: 5,
        activities: 14,
        traces: 120,
        composites: 2,
        dislocated: 0,
        ..Workload::default()
    };
    let pairs = composite_pairs(&w);
    let mut table = Table::new(
        "Figure 13: varying threshold delta (EMS composite matching)",
        vec!["delta", "f-measure", "time (ms)", "merges"],
    );
    for delta in [0.02, 0.01, 0.005, 0.002, 0.001, 0.0005, 0.0002, 0.0001] {
        let config = CompositeConfig {
            delta,
            ..CompositeConfig::default()
        };
        let mut f_sum = 0.0;
        let mut secs = 0.0;
        let mut merges = 0usize;
        for pair in &pairs {
            let (run, counters) = run_composite(
                CompositeMethod::Ems,
                pair,
                1.0,
                &CandidateConfig::default(),
                &config,
            );
            f_sum += accuracy(pair, &run).f_measure;
            secs += run.secs;
            merges += counters.merges;
        }
        let n = pairs.len() as f64;
        table.row(vec![
            format!("{delta:.4}"),
            format!("{:.3}", f_sum / n),
            format!("{:.1}", 1e3 * secs / n),
            format!("{:.1}", merges as f64 / n),
        ]);
    }
    print!("{}", table.to_text());
    let _ = table.write_csv("results/fig13.csv");
}
