//! Figure 8: scalability over the number of events (10..100), following the
//! paper's synthetic protocol. OPQ's branch-and-bound hits its node budget
//! beyond ~30 events and is reported DNF, reproducing the paper's
//! observation about its `O(n!)` cost.

use ems_bench::methods::{accuracy, run_method, Method};
use ems_bench::testbeds::{scalability_pairs, Workload};
use ems_eval::Table;

fn main() {
    let sizes = [10usize, 20, 30, 40, 50, 60, 70, 80, 90, 100];
    // The paper's scalability protocol (BeehiveZ): two playouts of the
    // same specification, same-name events correspond — no injected
    // heterogeneity beyond opaque renaming.
    let w = Workload {
        pairs: 3,
        xor_jitter: 0.0,
        extra_events: 0,
        ..Workload::default()
    };
    let methods = Method::lineup();
    let headers: Vec<String> = std::iter::once("#events".to_owned())
        .chain(methods.iter().map(|m| m.name()))
        .collect();
    let mut f_table = Table::new("Figure 8(a): f-measure vs event size", headers.clone());
    let mut t_table = Table::new("Figure 8(b): time per log pair (ms)", headers);
    for &n in &sizes {
        let pairs = scalability_pairs(n, &w);
        let mut f_cells = vec![n.to_string()];
        let mut t_cells = vec![n.to_string()];
        for &method in &methods {
            // Reproduce the paper's cut-off: OPQ "cannot even finish the
            // matching of events more than 30".
            if method == Method::Opq && n > 30 {
                f_cells.push("DNF".into());
                t_cells.push("DNF".into());
                continue;
            }
            let mut f_sum = 0.0;
            let mut t_sum = 0.0;
            let mut finished = true;
            for pair in &pairs {
                let run = run_method(method, pair, 1.0);
                f_sum += accuracy(pair, &run).f_measure;
                t_sum += run.secs;
                finished &= run.finished;
            }
            let suffix = if finished { "" } else { "*" };
            f_cells.push(format!("{:.3}{suffix}", f_sum / pairs.len() as f64));
            t_cells.push(format!("{:.1}{suffix}", 1e3 * t_sum / pairs.len() as f64));
        }
        f_table.row(f_cells);
        t_table.row(t_cells);
    }
    print!("{}", f_table.to_text());
    println!("(* = budget exhausted, incumbent reported)");
    println!();
    print!("{}", t_table.to_text());
    let _ = f_table.write_csv("results/fig8a.csv");
    let _ = t_table.write_csv("results/fig8b.csv");
}
