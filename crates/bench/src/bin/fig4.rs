//! Figure 4: singleton matching with typographic similarity integrated
//! (α = 0.5, labels partially informative — half the events keep readable
//! names, mirroring real logs where only some encodings are garbled).

use ems_bench::methods::{accuracy, run_method, Method};
use ems_bench::testbeds::{dislocation_pairs, Testbed, Workload};
use ems_eval::Table;

fn main() {
    let w = Workload {
        opaque_fraction: 0.5,
        ..Workload::default()
    };
    // α = 0.8: labels enter the iteration and propagate through neighbors,
    // so a modest label weight already anchors the readable half strongly;
    // heavier label weights dilute the structural signal the opaque half
    // still needs.
    let alpha = 0.8;
    let mut f_table = Table::new(
        "Figure 4(a): f-measure, singleton matching + typographic similarity",
        vec!["method", "DS-F", "DS-B", "DS-FB"],
    );
    let mut t_table = Table::new(
        "Figure 4(b): time per log pair (ms)",
        vec!["method", "DS-F", "DS-B", "DS-FB"],
    );
    let beds: Vec<_> = Testbed::all()
        .iter()
        .map(|&tb| (tb, dislocation_pairs(tb, &w)))
        .collect();
    for method in Method::lineup() {
        let mut f_cells = vec![method.name()];
        let mut t_cells = vec![method.name()];
        for (_, pairs) in &beds {
            let mut f_sum = 0.0;
            let mut t_sum = 0.0;
            for pair in pairs {
                let run = run_method(method, pair, alpha);
                f_sum += accuracy(pair, &run).f_measure;
                t_sum += run.secs;
            }
            f_cells.push(format!("{:.3}", f_sum / pairs.len() as f64));
            t_cells.push(format!("{:.1}", 1e3 * t_sum / pairs.len() as f64));
        }
        f_table.row(f_cells);
        t_table.row(t_cells);
    }
    print!("{}", f_table.to_text());
    println!();
    print!("{}", t_table.to_text());
    let _ = f_table.write_csv("results/fig4a.csv");
    let _ = t_table.write_csv("results/fig4b.csv");
}
