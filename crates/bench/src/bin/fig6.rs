//! Figure 6: prune power of early convergence (Section 3.4) — total number
//! of formula-(1) evaluations and time, with and without pruning, as the
//! event size grows.

use ems_bench::testbeds::{scalability_pairs, Workload};
use ems_core::{Ems, EmsParams};
use ems_eval::{Stopwatch, Table};

fn main() {
    let mut evals_table = Table::new(
        "Figure 6(a): total iterations (formula (1) evaluations)",
        vec!["#events", "no pruning", "pruning"],
    );
    let mut time_table = Table::new(
        "Figure 6(b): time per log pair (ms)",
        vec!["#events", "no pruning", "pruning"],
    );
    let w = Workload {
        pairs: 4,
        xor_jitter: 0.0,
        extra_events: 0,
        ..Workload::default()
    };
    for activities in [10usize, 20, 30, 40, 50] {
        let pairs = scalability_pairs(activities, &w);
        let mut row_evals = vec![activities.to_string()];
        let mut row_time = vec![activities.to_string()];
        for pruning in [false, true] {
            let mut evals = 0u64;
            let mut secs = 0.0;
            for pair in &pairs {
                let params = if pruning {
                    EmsParams::structural()
                } else {
                    EmsParams::structural().without_pruning()
                };
                let ems = Ems::new(params);
                let (out, d) = Stopwatch::time(|| ems.match_logs(&pair.log1, &pair.log2));
                evals += out.stats.formula_evals;
                secs += d.as_secs_f64();
            }
            row_evals.push(format!("{}", evals / pairs.len() as u64));
            row_time.push(format!("{:.1}", 1e3 * secs / pairs.len() as f64));
        }
        evals_table.row(row_evals);
        time_table.row(row_time);
    }
    print!("{}", evals_table.to_text());
    println!();
    print!("{}", time_table.to_text());
    let _ = evals_table.write_csv("results/fig6a.csv");
    let _ = time_table.write_csv("results/fig6b.csv");
}
