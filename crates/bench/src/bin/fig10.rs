//! Figure 10: matching composite events, structural similarity only.
//! All methods run through a greedy composite search (EMS via the native
//! Algorithm 2 with pruning, baselines via the generic greedy loop).

use ems_bench::composite::{run_composite, CompositeMethod};
use ems_bench::methods::accuracy;
use ems_bench::testbeds::{composite_pairs, Workload};
use ems_core::composite::{CandidateConfig, CompositeConfig};
use ems_eval::Table;

/// The greedy threshold δ at this workload's improvement scale: true merges
/// improve the average similarity by ~0.001-0.004 here (the objective's
/// magnitude depends on graph size; the paper's real logs operated at a
/// larger scale).
fn operating_config() -> CompositeConfig {
    CompositeConfig {
        delta: 0.001,
        ..CompositeConfig::default()
    }
}

fn main() {
    let w = Workload {
        pairs: 5,
        activities: 14,
        traces: 120,
        composites: 2,
        dislocated: 0,
        ..Workload::default()
    };
    let pairs = composite_pairs(&w);
    let mut table = Table::new(
        "Figure 10: composite event matching, structural only",
        vec!["method", "f-measure", "time (ms)"],
    );
    for method in CompositeMethod::lineup() {
        let mut f_sum = 0.0;
        let mut t_sum = 0.0;
        for pair in &pairs {
            let (run, _) = run_composite(
                method,
                pair,
                1.0,
                &CandidateConfig::default(),
                &operating_config(),
            );
            f_sum += accuracy(pair, &run).f_measure;
            t_sum += run.secs;
        }
        table.row(vec![
            method.name(),
            format!("{:.3}", f_sum / pairs.len() as f64),
            format!("{:.1}", 1e3 * t_sum / pairs.len() as f64),
        ]);
    }
    print!("{}", table.to_text());
    let _ = table.write_csv("results/fig10.csv");
}
