//! Figure 7: minimum frequency control (Section 2) — accuracy and time as
//! low-frequency edges are filtered from the dependency graphs.

use ems_bench::methods::{accuracy, labels_for, select, MethodRun};
use ems_bench::testbeds::{dislocation_pairs, Testbed, Workload};
use ems_core::{Ems, EmsParams};
use ems_depgraph::{filter_min_frequency, DependencyGraph};
use ems_eval::{Stopwatch, Table};

fn main() {
    // Recording noise creates the low-frequency edges that minimum-frequency
    // control is designed to filter out.
    let w = Workload {
        swap_noise: 0.05,
        ..Workload::default()
    };
    let pairs = dislocation_pairs(Testbed::DsFb, &w);
    let mut table = Table::new(
        "Figure 7: minimum frequency control (EMS, DS-FB)",
        vec!["threshold", "f-measure", "time (ms)", "edges removed"],
    );
    for threshold in [0.0, 0.05, 0.10, 0.15, 0.20, 0.25] {
        let mut f_sum = 0.0;
        let mut t_sum = 0.0;
        let mut removed_sum = 0usize;
        for pair in &pairs {
            let ems = Ems::new(EmsParams::structural());
            let (run, removed) = {
                let g1 = DependencyGraph::from_log(&pair.log1);
                let g2 = DependencyGraph::from_log(&pair.log2);
                let (g1, r1) = filter_min_frequency(&g1, threshold);
                let (g2, r2) = filter_min_frequency(&g2, threshold);
                let labels = labels_for(&pair.log1, &pair.log2, 1.0);
                let (out, d) = Stopwatch::time(|| ems.match_graphs(&g1, &g2, &labels));
                (
                    MethodRun {
                        found: select(&out.similarity, &pair.log1, &pair.log2),
                        secs: d.as_secs_f64(),
                        formula_evals: out.stats.formula_evals,
                        finished: true,
                    },
                    r1 + r2,
                )
            };
            f_sum += accuracy(pair, &run).f_measure;
            t_sum += run.secs;
            removed_sum += removed;
        }
        table.row(vec![
            format!("{threshold:.2}"),
            format!("{:.3}", f_sum / pairs.len() as f64),
            format!("{:.1}", 1e3 * t_sum / pairs.len() as f64),
            format!("{:.1}", removed_sum as f64 / pairs.len() as f64),
        ]);
    }
    print!("{}", table.to_text());
    let _ = table.write_csv("results/fig7.csv");
}
