//! Figure 5: the accuracy/time trade-off of the similarity estimation
//! (Section 3.5) — F-measure and time as the number of exact iterations
//! `I` grows from 0 to MAX (no estimation).

use ems_bench::methods::{accuracy, run_method, Method};
use ems_bench::testbeds::{dislocation_pairs, Testbed, Workload};
use ems_eval::Table;

fn main() {
    let w = Workload::default();
    let pairs = dislocation_pairs(Testbed::DsFb, &w);
    let mut table = Table::new(
        "Figure 5: estimation trade-off on DS-FB (structural only)",
        vec!["I", "f-measure", "time (ms)"],
    );
    let configs: Vec<(String, Method)> = vec![
        ("0".into(), Method::EmsEstimated(0)),
        ("1".into(), Method::EmsEstimated(1)),
        ("2".into(), Method::EmsEstimated(2)),
        ("5".into(), Method::EmsEstimated(5)),
        ("10".into(), Method::EmsEstimated(10)),
        ("MAX".into(), Method::Ems),
    ];
    for (label, method) in configs {
        let mut f_sum = 0.0;
        let mut t_sum = 0.0;
        for pair in &pairs {
            let run = run_method(method, pair, 1.0);
            f_sum += accuracy(pair, &run).f_measure;
            t_sum += run.secs;
        }
        table.row(vec![
            label,
            format!("{:.3}", f_sum / pairs.len() as f64),
            format!("{:.1}", 1e3 * t_sum / pairs.len() as f64),
        ]);
    }
    print!("{}", table.to_text());
    let _ = table.write_csv("results/fig5.csv");
}
