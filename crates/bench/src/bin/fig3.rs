//! Figure 3: performance on matching singleton events, structural
//! similarity only (opaque names, α = 1).
//!
//! Reproduces both panels: (a) F-measure and (b) time per log pair, for
//! EMS, EMS+es(I=5), GED, OPQ and BHV on the DS-F / DS-B / DS-FB
//! dislocation testbeds.

use ems_bench::methods::{accuracy, run_method, Method};
use ems_bench::testbeds::{dislocation_pairs, Testbed, Workload};
use ems_eval::{Aggregate, Table};

fn main() {
    let w = Workload::default();
    let mut f_table = Table::new(
        "Figure 3(a): f-measure, singleton matching, structural only",
        vec!["method", "DS-F", "DS-B", "DS-FB"],
    );
    let mut t_table = Table::new(
        "Figure 3(b): time per log pair (ms)",
        vec!["method", "DS-F", "DS-B", "DS-FB"],
    );
    let beds: Vec<_> = Testbed::all()
        .iter()
        .map(|&tb| (tb, dislocation_pairs(tb, &w)))
        .collect();
    for method in Method::lineup() {
        let mut f_cells = vec![method.name()];
        let mut t_cells = vec![method.name()];
        for (_, pairs) in &beds {
            let mut fs = Vec::with_capacity(pairs.len());
            let mut t_sum = 0.0;
            for pair in pairs {
                let run = run_method(method, pair, 1.0);
                fs.push(accuracy(pair, &run).f_measure);
                t_sum += run.secs;
            }
            let agg = Aggregate::of(&fs);
            f_cells.push(format!("{:.3}±{:.2}", agg.mean, agg.std_dev));
            t_cells.push(format!("{:.1}", 1e3 * t_sum / pairs.len() as f64));
        }
        f_table.row(f_cells);
        t_table.row(t_cells);
    }
    print!("{}", f_table.to_text());
    println!();
    print!("{}", t_table.to_text());
    let _ = f_table.write_csv("results/fig3a.csv");
    let _ = t_table.write_csv("results/fig3b.csv");
}
