//! Figure 14: the effect of the candidate-set size — more composite
//! candidates raise accuracy (more true composites discoverable) at fast-
//! growing time cost.

use ems_bench::composite::{run_composite, CompositeMethod};
use ems_bench::methods::accuracy;
use ems_bench::testbeds::{composite_pairs, Workload};
use ems_core::composite::{CandidateConfig, CompositeConfig};
use ems_eval::Table;

/// The greedy threshold δ at this workload's improvement scale: true merges
/// improve the average similarity by ~0.001-0.004 here (the objective's
/// magnitude depends on graph size; the paper's real logs operated at a
/// larger scale).
fn operating_config() -> CompositeConfig {
    CompositeConfig {
        delta: 0.001,
        ..CompositeConfig::default()
    }
}

fn main() {
    let w = Workload {
        pairs: 5,
        activities: 14,
        traces: 120,
        composites: 2,
        dislocated: 0,
        ..Workload::default()
    };
    let pairs = composite_pairs(&w);
    let mut table = Table::new(
        "Figure 14: varying candidate-set size (EMS composite matching)",
        vec!["#candidates", "f-measure", "time (ms)", "evaluations"],
    );
    for max_candidates in [2usize, 4, 8, 16, 32] {
        let candidates = CandidateConfig {
            max_candidates,
            // Relax the ratio so larger candidate pools actually fill up.
            min_ratio: 0.75,
            ..CandidateConfig::default()
        };
        let mut f_sum = 0.0;
        let mut secs = 0.0;
        let mut evals = 0usize;
        for pair in &pairs {
            let (run, counters) = run_composite(
                CompositeMethod::Ems,
                pair,
                1.0,
                &candidates,
                &operating_config(),
            );
            f_sum += accuracy(pair, &run).f_measure;
            secs += run.secs;
            evals += counters.evaluations;
        }
        let n = pairs.len() as f64;
        table.row(vec![
            max_candidates.to_string(),
            format!("{:.3}", f_sum / n),
            format!("{:.1}", 1e3 * secs / n),
            format!("{:.1}", evals as f64 / n),
        ]);
    }
    print!("{}", table.to_text());
    let _ = table.write_csv("results/fig14.csv");
}
