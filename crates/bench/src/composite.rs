//! Composite-event matching drivers for all methods (Figures 10–14).
//!
//! EMS runs the paper's own [`CompositeMatcher`] (Algorithm 2 with both
//! prunings). The baselines are driven through a *generic* greedy loop with
//! the same structure — tentatively merge each candidate, recompute the
//! method's objective, accept the best improvement above `δ` — which is how
//! the paper evaluates them ("we need to frequently compute the similarities
//! of events for various combinations of candidate composite events").

use crate::methods::{ems_params, labels_for, select, MethodRun};
use ems_baselines::{Bhv, BhvParams, Ged, GedParams, Opq, OpqParams};
use ems_core::composite::{
    discover_candidates, Candidate, CandidateConfig, CompositeConfig, CompositeMatcher,
};
use ems_core::Ems;
use ems_depgraph::DependencyGraph;
use ems_eval::{expand_merged, Stopwatch};
use ems_events::{merge_composite, EventId, EventLog};
use ems_synth::LogPair;
use std::collections::HashMap;

/// A method that can be driven through the generic composite greedy loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompositeMethod {
    /// EMS via the native Algorithm 2 (exact).
    Ems,
    /// EMS via Algorithm 2 with estimation after `I` iterations.
    EmsEstimated(usize),
    /// GED under the generic greedy loop (objective: negative distance).
    Ged,
    /// OPQ under the generic greedy loop (objective: negative distance).
    Opq,
    /// BHV under the generic greedy loop (objective: average similarity).
    Bhv,
}

impl CompositeMethod {
    /// Display name.
    pub fn name(&self) -> String {
        match self {
            CompositeMethod::Ems => "EMS".into(),
            CompositeMethod::EmsEstimated(i) => format!("EMS+es(I={i})"),
            CompositeMethod::Ged => "GED".into(),
            CompositeMethod::Opq => "OPQ".into(),
            CompositeMethod::Bhv => "BHV".into(),
        }
    }

    /// The lineup of Figures 10/11.
    pub fn lineup() -> Vec<CompositeMethod> {
        vec![
            CompositeMethod::Ems,
            CompositeMethod::EmsEstimated(5),
            CompositeMethod::Ged,
            CompositeMethod::Opq,
            CompositeMethod::Bhv,
        ]
    }
}

/// Extra counters from a composite run.
#[derive(Debug, Clone, Default)]
pub struct CompositeCounters {
    /// Candidate evaluations across all greedy rounds.
    pub evaluations: usize,
    /// Evaluations aborted by upper-bound pruning (EMS only).
    pub aborted: usize,
    /// Accepted merges.
    pub merges: usize,
}

/// Runs `method` in composite mode on `pair`.
///
/// `alpha` weighs structure vs labels as in [`crate::methods::run_method`];
/// `candidates` configures SEQ discovery; `config` is the greedy search
/// configuration (δ, prunings) — baselines use its `delta`/`max_rounds`.
pub fn run_composite(
    method: CompositeMethod,
    pair: &LogPair,
    alpha: f64,
    candidates: &CandidateConfig,
    config: &CompositeConfig,
) -> (MethodRun, CompositeCounters) {
    let l1 = &pair.log1;
    let l2 = &pair.log2;
    let cands1 = discover_candidates(l1, candidates);
    let cands2 = discover_candidates(l2, candidates);
    match method {
        CompositeMethod::Ems | CompositeMethod::EmsEstimated(_) => {
            let params = match method {
                CompositeMethod::EmsEstimated(i) => {
                    ems_params(crate::methods::Method::EmsEstimated(i), alpha)
                }
                _ => ems_params(crate::methods::Method::Ems, alpha),
            };
            let matcher = CompositeMatcher::new(Ems::new(params), config.clone());
            let (outcome, secs) = Stopwatch::time(|| matcher.match_logs(l1, l2, &cands1, &cands2));
            let raw = select(&outcome.similarity, &outcome.log1, &outcome.log2);
            let (left_map, right_map) =
                merge_maps(outcome.merges.iter().map(|m| (m.side == 1, &m.candidate)));
            let counters = CompositeCounters {
                evaluations: outcome.candidates_evaluated,
                aborted: outcome.candidates_aborted,
                merges: outcome.merges.len(),
            };
            (
                MethodRun {
                    found: expand_merged(&raw, &left_map, &right_map),
                    secs: secs.as_secs_f64(),
                    formula_evals: outcome.stats.formula_evals,
                    finished: true,
                },
                counters,
            )
        }
        CompositeMethod::Ged | CompositeMethod::Opq | CompositeMethod::Bhv => {
            let provider: Box<dyn Provider> = match method {
                CompositeMethod::Ged => Box::new(GedProvider { alpha }),
                CompositeMethod::Opq => Box::new(OpqProvider {
                    // Small budget: each greedy round evaluates many
                    // candidates; an uncapped OPQ would take hours, which is
                    // the paper's point about its cost.
                    budget: 200_000,
                }),
                CompositeMethod::Bhv => Box::new(BhvProvider { alpha }),
                // ems-lint: allow(panic-surface, this dispatcher is only entered for the greedy methods matched above; other variants take the non-greedy path)
                _ => unreachable!(),
            };
            let (run, counters) =
                generic_greedy(provider.as_ref(), l1, l2, &cands1, &cands2, config);
            (run, counters)
        }
    }
}

/// Builds name-expansion maps from accepted merges.
fn merge_maps<'a>(
    merges: impl Iterator<Item = (bool, &'a Candidate)>,
) -> (HashMap<String, Vec<String>>, HashMap<String, Vec<String>>) {
    let mut left = HashMap::new();
    let mut right = HashMap::new();
    for (is_left, cand) in merges {
        let target = if is_left { &mut left } else { &mut right };
        target.insert(cand.merged_name(), cand.parts.clone());
    }
    (left, right)
}

/// A baseline similarity provider for the generic greedy loop.
trait Provider {
    /// Evaluates two logs, returning `(objective, found name pairs, finished)`.
    fn evaluate(&self, l1: &EventLog, l2: &EventLog) -> (f64, Vec<(String, String)>, bool);
}

struct BhvProvider {
    alpha: f64,
}

impl Provider for BhvProvider {
    fn evaluate(&self, l1: &EventLog, l2: &EventLog) -> (f64, Vec<(String, String)>, bool) {
        let g1 = DependencyGraph::from_log(l1);
        let g2 = DependencyGraph::from_log(l2);
        let labels = labels_for(l1, l2, self.alpha);
        let sim = Bhv::new(BhvParams {
            alpha: self.alpha,
            ..BhvParams::default()
        })
        .similarity_with_anchors(
            &g1,
            &g2,
            &labels,
            &ems_baselines::bhv::trace_start_anchors(l1),
            &ems_baselines::bhv::trace_start_anchors(l2),
        );
        (sim.average(), select(&sim, l1, l2), true)
    }
}

struct GedProvider {
    alpha: f64,
}

impl Provider for GedProvider {
    fn evaluate(&self, l1: &EventLog, l2: &EventLog) -> (f64, Vec<(String, String)>, bool) {
        let g1 = DependencyGraph::from_log(l1);
        let g2 = DependencyGraph::from_log(l2);
        let labels = labels_for(l1, l2, self.alpha);
        let r = Ged::new(GedParams {
            alpha: if self.alpha < 1.0 { 0.5 } else { 1.0 },
            ..GedParams::default()
        })
        .match_graphs(&g1, &g2, &labels);
        let found = r
            .mapping
            .iter()
            .map(|&(a, b)| {
                (
                    l1.name_of(EventId::from_index(a)).to_owned(),
                    l2.name_of(EventId::from_index(b)).to_owned(),
                )
            })
            .collect();
        (-r.distance, found, true)
    }
}

struct OpqProvider {
    budget: u64,
}

impl Provider for OpqProvider {
    fn evaluate(&self, l1: &EventLog, l2: &EventLog) -> (f64, Vec<(String, String)>, bool) {
        let g1 = DependencyGraph::from_log(l1);
        let g2 = DependencyGraph::from_log(l2);
        let r = Opq::new(OpqParams {
            node_budget: self.budget,
        })
        .match_graphs(&g1, &g2);
        let found = r
            .mapping
            .iter()
            .map(|&(a, b)| {
                (
                    l1.name_of(EventId::from_index(a)).to_owned(),
                    l2.name_of(EventId::from_index(b)).to_owned(),
                )
            })
            .collect();
        // Normalize by pair count so merging (which shrinks the matrix)
        // does not trivially reduce the distance.
        let norm = (g1.num_real() * g2.num_real()).max(1) as f64;
        (-r.distance / norm, found, r.finished)
    }
}

/// The generic greedy composite loop mirroring Algorithm 2 for baseline
/// objectives.
fn generic_greedy(
    provider: &dyn Provider,
    l1: &EventLog,
    l2: &EventLog,
    cands1: &[Candidate],
    cands2: &[Candidate],
    config: &CompositeConfig,
) -> (MethodRun, CompositeCounters) {
    let sw_start = std::time::Instant::now();
    let mut log1 = l1.clone();
    let mut log2 = l2.clone();
    let (mut objective, mut found, mut finished) = provider.evaluate(&log1, &log2);
    let mut remaining1 = cands1.to_vec();
    let mut remaining2 = cands2.to_vec();
    let mut counters = CompositeCounters::default();
    let mut merges: Vec<(bool, Candidate)> = Vec::new();
    // (is_left, candidate idx, objective, merged log, found pairs, finished)
    type BestMerge = (bool, usize, f64, EventLog, Vec<(String, String)>, bool);
    for _ in 0..config.max_rounds {
        let mut best: Option<BestMerge> = None;
        for (is_left, cands) in [(true, &remaining1), (false, &remaining2)] {
            let log = if is_left { &log1 } else { &log2 };
            for (idx, cand) in cands.iter().enumerate() {
                let Some(parts) = cand.resolve(log) else {
                    continue;
                };
                if log.id_of(&cand.merged_name()).is_some() {
                    continue;
                }
                let (merged, id) = merge_composite(log, &parts, &cand.merged_name());
                if id.is_none() {
                    continue;
                }
                let merged = merged.compact().0;
                counters.evaluations += 1;
                let (obj, fnd, fin) = if is_left {
                    provider.evaluate(&merged, &log2)
                } else {
                    provider.evaluate(&log1, &merged)
                };
                if obj > objective + config.delta && best.as_ref().map_or(true, |b| obj > b.2) {
                    best = Some((is_left, idx, obj, merged, fnd, fin));
                }
            }
        }
        match best {
            Some((is_left, idx, obj, merged, fnd, fin)) => {
                let cand = if is_left {
                    remaining1.remove(idx)
                } else {
                    remaining2.remove(idx)
                };
                merges.push((is_left, cand));
                if is_left {
                    log1 = merged;
                } else {
                    log2 = merged;
                }
                objective = obj;
                found = fnd;
                finished &= fin;
                counters.merges += 1;
            }
            None => break,
        }
    }
    let (left_map, right_map) = merge_maps(merges.iter().map(|(l, c)| (*l, c)));
    (
        MethodRun {
            found: expand_merged(&found, &left_map, &right_map),
            secs: sw_start.elapsed().as_secs_f64(),
            formula_evals: 0,
            finished,
        },
        counters,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ems_synth::{Dislocation, PairConfig, PairGenerator, TreeConfig};

    fn composite_pair() -> LogPair {
        PairGenerator::new(PairConfig {
            tree: TreeConfig {
                num_activities: 12,
                seed: 21,
                ..TreeConfig::default()
            },
            traces_per_log: 100,
            seed: 22,
            dislocation: Dislocation::None,
            opaque_fraction: 0.0,
            num_composites: 1,
            composite_len: 2,
            xor_jitter: 0.0,
            swap_noise: 0.0,
            extra_events: 0,
            reorder_prob: 0.0,
        })
        .generate()
    }

    #[test]
    fn ems_composite_runner_expands_merged_names() {
        let pair = composite_pair();
        let (run, counters) = run_composite(
            CompositeMethod::Ems,
            &pair,
            1.0,
            &CandidateConfig::default(),
            &CompositeConfig::default(),
        );
        assert!(!run.found.is_empty());
        assert!(counters.evaluations >= counters.merges);
        // Expanded pairs never carry the matcher's own '+'-joined left names
        // for events that exist separately in log 1.
        for (l, _) in &run.found {
            assert!(
                pair.log1.id_of(l).is_some() || !l.contains('+'),
                "leaked {l}"
            );
        }
    }

    #[test]
    fn baseline_composite_runners_complete() {
        let pair = composite_pair();
        for m in [CompositeMethod::Bhv, CompositeMethod::Ged] {
            let (run, _) = run_composite(
                m,
                &pair,
                1.0,
                &CandidateConfig::default(),
                &CompositeConfig::default(),
            );
            assert!(!run.found.is_empty(), "{} found nothing", m.name());
        }
    }
}
