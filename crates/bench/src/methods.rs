//! Uniform matcher runner: every figure measures all methods through this.

use ems_assignment::max_total_assignment;
use ems_baselines::{Bhv, BhvParams, Ged, GedParams, Opq, OpqParams};
use ems_core::{Ems, EmsParams, SimMatrix};
use ems_depgraph::DependencyGraph;
use ems_eval::Stopwatch;
use ems_events::{EventId, EventLog};
use ems_labels::{LabelMatrix, QgramCosine};
use ems_synth::LogPair;

/// A matching method under evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// The paper's contribution: exact iterative EMS.
    Ems,
    /// EMS with the closed-form estimation after `I` exact iterations.
    EmsEstimated(usize),
    /// EMS forward similarity only (ablation of the two-direction
    /// aggregation).
    EmsForwardOnly,
    /// Graph edit distance (Dijkman et al.).
    Ged,
    /// Opaque matching (Kang & Naughton), branch-and-bound.
    Opq,
    /// SimRank-like behavioral similarity (Nejati et al.).
    Bhv,
}

impl Method {
    /// Display name as used in the paper's legends.
    pub fn name(&self) -> String {
        match self {
            Method::Ems => "EMS".into(),
            Method::EmsEstimated(i) => format!("EMS+es(I={i})"),
            Method::EmsForwardOnly => "EMS-fwd".into(),
            Method::Ged => "GED".into(),
            Method::Opq => "OPQ".into(),
            Method::Bhv => "BHV".into(),
        }
    }

    /// The method lineup of Figures 3/4/8/9/10/11.
    pub fn lineup() -> Vec<Method> {
        vec![
            Method::Ems,
            Method::EmsEstimated(5),
            Method::Ged,
            Method::Opq,
            Method::Bhv,
        ]
    }
}

/// Result of one matcher run on one log pair.
#[derive(Debug, Clone)]
pub struct MethodRun {
    /// The correspondences found, as name pairs.
    pub found: Vec<(String, String)>,
    /// Wall-clock seconds.
    pub secs: f64,
    /// Engine work counter (EMS variants only; 0 otherwise).
    pub formula_evals: u64,
    /// False when the method gave up (OPQ beyond its budget).
    pub finished: bool,
}

/// Correspondence score floor: assignment pairs with (near-)zero similarity
/// are junk forced by the assignment, not findings.
pub const MIN_SCORE: f64 = 1e-6;

fn alphabet(log: &EventLog) -> Vec<String> {
    (0..log.alphabet_size())
        .map(|i| log.name_of(EventId::from_index(i)).to_owned())
        .collect()
}

/// Builds the label matrix for a pair: q-gram cosine when `alpha < 1`,
/// zeros otherwise (structure-only evaluation).
pub fn labels_for(l1: &EventLog, l2: &EventLog, alpha: f64) -> LabelMatrix {
    if alpha < 1.0 {
        LabelMatrix::compute(&alphabet(l1), &alphabet(l2), &QgramCosine::default())
    } else {
        LabelMatrix::zeros(l1.alphabet_size(), l2.alphabet_size())
    }
}

/// Converts an index mapping into name pairs.
fn names(l1: &EventLog, l2: &EventLog, pairs: &[(usize, usize)]) -> Vec<(String, String)> {
    pairs
        .iter()
        .map(|&(a, b)| {
            (
                l1.name_of(EventId::from_index(a)).to_owned(),
                l2.name_of(EventId::from_index(b)).to_owned(),
            )
        })
        .collect()
}

/// Selects correspondences from a similarity matrix by maximum total
/// similarity (Munkres) and converts them to name pairs.
pub fn select(sim: &SimMatrix, l1: &EventLog, l2: &EventLog) -> Vec<(String, String)> {
    let cs = max_total_assignment(sim.rows(), sim.cols(), |i, j| sim.get(i, j), MIN_SCORE);
    names(
        l1,
        l2,
        &cs.iter().map(|c| (c.left, c.right)).collect::<Vec<_>>(),
    )
}

/// EMS parameters for a given method/alpha combination.
pub fn ems_params(method: Method, alpha: f64) -> EmsParams {
    let mut p = if alpha < 1.0 {
        EmsParams::with_labels(alpha)
    } else {
        EmsParams::structural()
    };
    if let Method::EmsEstimated(i) = method {
        p = p.estimated(i);
    }
    p
}

/// Scores a run against the pair's ground truth.
pub fn accuracy(pair: &LogPair, run: &MethodRun) -> ems_eval::Accuracy {
    ems_eval::score(
        pair.truth.iter(),
        run.found.iter().map(|(a, b)| (a.as_str(), b.as_str())),
    )
}

/// Runs `method` on `pair` with structural weight `alpha` (`1.0` = opaque
/// setting of Figure 3, `< 1.0` = typographic blending of Figure 4) and
/// returns the found correspondences plus timing.
pub fn run_method(method: Method, pair: &LogPair, alpha: f64) -> MethodRun {
    let l1 = &pair.log1;
    let l2 = &pair.log2;
    match method {
        Method::Ems | Method::EmsEstimated(_) | Method::EmsForwardOnly => {
            let params = ems_params(method, alpha);
            let ems = Ems::new(params);
            let ((sim, evals), secs) = Stopwatch::time(|| {
                let out = ems.match_logs(l1, l2);
                let sim = if method == Method::EmsForwardOnly {
                    out.forward
                } else {
                    out.similarity
                };
                (sim, out.stats.formula_evals)
            });
            MethodRun {
                found: select(&sim, l1, l2),
                secs: secs.as_secs_f64(),
                formula_evals: evals,
                finished: true,
            }
        }
        Method::Bhv => {
            let params = BhvParams {
                alpha,
                ..BhvParams::default()
            };
            let (sim, secs) = Stopwatch::time(|| {
                let g1 = DependencyGraph::from_log(l1);
                let g2 = DependencyGraph::from_log(l2);
                let labels = labels_for(l1, l2, alpha);
                Bhv::new(params).similarity_with_anchors(
                    &g1,
                    &g2,
                    &labels,
                    &ems_baselines::bhv::trace_start_anchors(l1),
                    &ems_baselines::bhv::trace_start_anchors(l2),
                )
            });
            MethodRun {
                found: select(&sim, l1, l2),
                secs: secs.as_secs_f64(),
                formula_evals: 0,
                finished: true,
            }
        }
        Method::Ged => {
            let params = GedParams {
                alpha: if alpha < 1.0 { 0.5 } else { 1.0 },
                ..GedParams::default()
            };
            let (result, secs) = Stopwatch::time(|| {
                let g1 = DependencyGraph::from_log(l1);
                let g2 = DependencyGraph::from_log(l2);
                let labels = labels_for(l1, l2, alpha);
                Ged::new(params).match_graphs(&g1, &g2, &labels)
            });
            MethodRun {
                found: names(l1, l2, &result.mapping),
                secs: secs.as_secs_f64(),
                formula_evals: 0,
                finished: true,
            }
        }
        Method::Opq => {
            // OPQ "does not benefit from label similarity" (Section 5.2):
            // it only consumes graph statistics.
            let (result, secs) = Stopwatch::time(|| {
                let g1 = DependencyGraph::from_log(l1);
                let g2 = DependencyGraph::from_log(l2);
                Opq::new(OpqParams::default()).match_graphs(&g1, &g2)
            });
            MethodRun {
                found: names(l1, l2, &result.mapping),
                secs: secs.as_secs_f64(),
                formula_evals: 0,
                finished: result.finished,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ems_synth::{Dislocation, PairConfig, PairGenerator};

    fn small_pair() -> LogPair {
        PairGenerator::new(PairConfig {
            tree: ems_synth::TreeConfig {
                num_activities: 10,
                seed: 3,
                ..ems_synth::TreeConfig::default()
            },
            traces_per_log: 100,
            seed: 4,
            dislocation: Dislocation::None,
            opaque_fraction: 1.0,
            num_composites: 0,
            composite_len: 2,
            xor_jitter: 0.0,
            swap_noise: 0.0,
            extra_events: 0,
            reorder_prob: 0.0,
        })
        .generate()
    }

    #[test]
    fn all_methods_run_and_find_something() {
        let pair = small_pair();
        for m in Method::lineup() {
            let run = run_method(m, &pair, 1.0);
            assert!(!run.found.is_empty(), "{} found nothing", m.name());
            assert!(run.secs >= 0.0);
        }
    }

    #[test]
    fn ems_beats_chance_on_clean_pair() {
        let pair = small_pair();
        let run = run_method(Method::Ems, &pair, 1.0);
        let acc = ems_eval::score(
            pair.truth.iter(),
            run.found.iter().map(|(a, b)| (a.as_str(), b.as_str())),
        );
        assert!(acc.f_measure > 0.4, "f = {}", acc.f_measure);
    }

    #[test]
    fn method_names_are_stable() {
        assert_eq!(Method::Ems.name(), "EMS");
        assert_eq!(Method::EmsEstimated(5).name(), "EMS+es(I=5)");
        assert_eq!(Method::lineup().len(), 5);
    }
}
