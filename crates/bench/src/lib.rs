#![forbid(unsafe_code)]
//! Experiment harness reproducing the paper's evaluation (Figures 3–14).
//!
//! Each figure has a binary (`cargo run --release -p ems-bench --bin figNN`)
//! that regenerates the corresponding panel(s) as text tables: the same
//! series and axes the paper plots, measured on this implementation and the
//! synthetic testbeds of [`ems_synth`] (the real 149-log-pair corpus is
//! proprietary — see DESIGN.md for the substitution argument).
//!
//! The library part hosts the shared machinery:
//!
//! * [`methods`] — a uniform [`Method`](methods::Method) runner wrapping
//!   EMS, EMS+es, GED, OPQ and BHV so every figure measures all matchers
//!   under identical conditions (same graphs, same label matrices, same
//!   Munkres correspondence selection);
//! * [`testbeds`] — the DS-F / DS-B / DS-FB dislocation testbeds and the
//!   scalability/composite workloads;
//! * [`composite`] — a similarity-provider-generic greedy composite search
//!   so the baselines can be driven through the same Algorithm-2 loop the
//!   paper uses for Figures 10–14.

pub mod composite;
pub mod methods;
pub mod microbench;
pub mod testbeds;
