//! End-to-end tests of the `bench_trajectory` binary: the regression gate
//! must fail with its distinct exit code (4) on an injected >15%
//! regression, pass within threshold, and the migrate/prom subcommands
//! must fold the committed legacy snapshots without loss.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_bench_trajectory"))
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ems-traj-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn row(run_id: &str, pairs_per_sec: f64) -> String {
    format!(
        "{{\"schema\":\"ems-bench/1\",\"run_id\":\"{run_id}\",\"git_rev\":\"abc1234\",\
         \"host\":\"linux/x86_64/8\",\"source\":\"perf_smoke\",\
         \"metrics\":{{\"n800.serial_pairs_per_sec\":{pairs_per_sec}}}}}\n"
    )
}

#[test]
fn gate_fails_with_exit_4_on_injected_regression() {
    let dir = tmpdir("gate-fail");
    let path = dir.join("traj.jsonl");
    // Baseline 100k pairs/sec, then a 20% throughput drop: past the 15%
    // threshold for *_pairs_per_sec metrics.
    std::fs::write(
        &path,
        format!("{}{}", row("pr7", 100_000.0), row("ci-1", 80_000.0)),
    )
    .unwrap();
    let out = bin()
        .args(["gate", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(4),
        "regression gate exits 4: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("REGRESSION"), "{err}");
    assert!(err.contains("n800.serial_pairs_per_sec"), "{err}");
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn gate_passes_within_threshold_and_on_new_host() {
    let dir = tmpdir("gate-pass");
    let path = dir.join("traj.jsonl");
    // A 10% drop is inside the 15% throughput threshold.
    std::fs::write(
        &path,
        format!("{}{}", row("pr7", 100_000.0), row("ci-1", 90_000.0)),
    )
    .unwrap();
    let out = bin()
        .args(["gate", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("PASS"));

    // The same 10% drop fails under a stricter override threshold.
    let out = bin()
        .args(["gate", path.to_str().unwrap(), "--threshold", "0.05"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(4));

    // A first row on a fresh host has no same-host history: baseline run.
    let foreign = "{\"schema\":\"ems-bench/1\",\"run_id\":\"ci-2\",\"git_rev\":\"def5678\",\
                   \"host\":\"other/arm64/4\",\"source\":\"perf_smoke\",\
                   \"metrics\":{\"n800.serial_pairs_per_sec\":1.0}}\n";
    std::fs::write(&path, format!("{}{foreign}", row("pr7", 100_000.0))).unwrap();
    let out = bin()
        .args(["gate", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&out.stdout).contains("baseline"));
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn gate_distinguishes_broken_input_from_regression() {
    let dir = tmpdir("gate-io");
    let out = bin()
        .args(["gate", "/no/such/traj.jsonl"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3), "I/O failures exit 3, not 4");
    let bad = dir.join("bad.jsonl");
    std::fs::write(&bad, "{\"schema\":\"ems-bench/9\"}\n").unwrap();
    let out = bin()
        .args(["gate", bad.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3), "parse failures exit 3, not 4");
    let out = bin().arg("frobnicate").output().unwrap();
    assert_eq!(out.status.code(), Some(2), "usage errors exit 2");
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn migrate_folds_the_committed_legacy_snapshots() {
    let repo_root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let dir = tmpdir("migrate");
    let out_path = dir.join("traj.jsonl");
    let legacy: Vec<String> = [
        "BENCH_pr2.json",
        "BENCH_pr5.json",
        "BENCH_pr6.json",
        "BENCH_pr7.json",
    ]
    .iter()
    .map(|f| format!("{repo_root}/{f}"))
    .collect();
    let mut cmd = bin();
    cmd.args(["migrate", "--out", out_path.to_str().unwrap()]);
    for l in &legacy {
        cmd.arg(l);
    }
    let out = cmd.output().unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&out_path).unwrap();
    let rows = ems_obs::trajectory::parse(&text).unwrap();
    assert_eq!(rows.len(), 4);
    let ids: Vec<&str> = rows.iter().map(|r| r.run_id.as_str()).collect();
    assert_eq!(ids, ["pr2", "pr5", "pr6", "pr7"]);
    for r in &rows {
        assert_eq!(r.host, "unknown", "migrated rows predate fingerprinting");
        assert!(
            r.metrics.contains_key("n800.serial_wall_ms"),
            "{}: {:?}",
            r.run_id,
            r.metrics.keys().take(5).collect::<Vec<_>>()
        );
    }
    // The checked-in trajectory must be exactly this migration's output
    // plus (optionally) appended perf_smoke rows.
    let committed = std::fs::read_to_string(format!("{repo_root}/BENCH_TRAJECTORY.jsonl")).unwrap();
    assert!(
        committed.starts_with(&text),
        "BENCH_TRAJECTORY.jsonl must begin with the migrated legacy history"
    );
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn prom_twin_matches_the_contemporary_exporter_scheme() {
    let repo_root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let dir = tmpdir("prom");
    let out_path = dir.join("pr2.prom");
    let out = bin()
        .args([
            "prom",
            &format!("{repo_root}/BENCH_pr2.json"),
            "--out",
            out_path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&out_path).unwrap();
    assert!(text.contains("# TYPE ems_bench_wall_ms gauge"), "{text}");
    assert!(
        text.contains("ems_bench_wall_ms{kernel=\"serial\",n=\"800\"}"),
        "{text}"
    );
    assert!(
        text.contains("ems_bench_formula_evals{n=\"800\"}"),
        "{text}"
    );
    // The committed twins are this subcommand's output, byte for byte.
    for pr in ["pr2", "pr5"] {
        let committed = format!("{repo_root}/BENCH_{pr}.prom");
        let regen = dir.join(format!("regen-{pr}.prom"));
        let out = bin()
            .args([
                "prom",
                &format!("{repo_root}/BENCH_{pr}.json"),
                "--out",
                regen.to_str().unwrap(),
            ])
            .output()
            .unwrap();
        assert_eq!(out.status.code(), Some(0));
        assert_eq!(
            std::fs::read_to_string(&committed).unwrap(),
            std::fs::read_to_string(&regen).unwrap(),
            "{committed} drifted from the exporter output"
        );
    }
    let _ = std::fs::remove_dir_all(dir);
}
