//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! early-convergence pruning on/off, one- vs two-direction similarity, and
//! the composite matcher's pruning combinations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ems_core::composite::{discover_candidates, CandidateConfig, CompositeConfig, CompositeMatcher};
use ems_core::engine::{Engine, RunOptions};
use ems_core::{Direction, Ems, EmsParams};
use ems_depgraph::DependencyGraph;
use ems_labels::LabelMatrix;
use ems_synth::{PairConfig, PairGenerator, TreeConfig};

fn pair(activities: usize) -> (ems_events::EventLog, ems_events::EventLog) {
    let p = PairGenerator::new(PairConfig {
        tree: TreeConfig {
            num_activities: activities,
            seed: 3,
            max_branch: (activities / 4).max(4),
            ..TreeConfig::default()
        },
        traces_per_log: 60,
        seed: 13,
        xor_jitter: 0.25,
        ..PairConfig::default()
    })
    .generate();
    (p.log1, p.log2)
}

fn bench_pruning(c: &mut Criterion) {
    let mut group = c.benchmark_group("early_convergence_pruning");
    for &n in &[30usize, 60] {
        let (l1, l2) = pair(n);
        let g1 = DependencyGraph::from_log(&l1);
        let g2 = DependencyGraph::from_log(&l2);
        let labels = LabelMatrix::zeros(g1.num_real(), g2.num_real());
        for (label, pruning) in [("on", true), ("off", false)] {
            let params = if pruning {
                EmsParams::structural()
            } else {
                EmsParams::structural().without_pruning()
            };
            group.bench_with_input(
                BenchmarkId::new(label, n),
                &n,
                |b, _| {
                    let engine =
                        Engine::new(&g1, &g2, &labels, &params, Direction::Forward);
                    b.iter(|| engine.run(&RunOptions::default()))
                },
            );
        }
    }
    group.finish();
}

fn bench_directions(c: &mut Criterion) {
    let (l1, l2) = pair(40);
    let g1 = DependencyGraph::from_log(&l1);
    let g2 = DependencyGraph::from_log(&l2);
    let labels = LabelMatrix::zeros(g1.num_real(), g2.num_real());
    let params = EmsParams::structural();
    let mut group = c.benchmark_group("directions");
    group.bench_function("forward_only", |b| {
        let engine = Engine::new(&g1, &g2, &labels, &params, Direction::Forward);
        b.iter(|| engine.run(&RunOptions::default()))
    });
    group.bench_function("both_directions", |b| {
        let ems = Ems::new(params.clone());
        b.iter(|| ems.match_graphs(&g1, &g2, &labels))
    });
    group.finish();
}

fn bench_composite_prunings(c: &mut Criterion) {
    let (l1, l2) = pair(16);
    let cands1 = discover_candidates(&l1, &CandidateConfig::default());
    let cands2 = discover_candidates(&l2, &CandidateConfig::default());
    let mut group = c.benchmark_group("composite_prunings");
    for (label, uc, bd) in [
        ("none", false, false),
        ("uc", true, false),
        ("bd", false, true),
        ("uc_bd", true, true),
    ] {
        group.bench_function(label, |b| {
            let matcher = CompositeMatcher::new(
                Ems::new(EmsParams::structural()),
                CompositeConfig {
                    delta: 0.001,
                    unchanged_pruning: uc,
                    upper_bound_pruning: bd,
                    ..CompositeConfig::default()
                },
            );
            b.iter(|| matcher.match_logs(&l1, &l2, &cands1, &cands2))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pruning, bench_directions, bench_composite_prunings);
criterion_main!(benches);
