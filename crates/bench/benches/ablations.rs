//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! early-convergence pruning on/off, one- vs two-direction similarity, and
//! the composite matcher's pruning combinations. Uses the std-only
//! `microbench` runner (the offline build cannot fetch Criterion).

use ems_bench::microbench::{bench, group};
use ems_core::composite::{
    discover_candidates, CandidateConfig, CompositeConfig, CompositeMatcher,
};
use ems_core::engine::{Engine, RunOptions};
use ems_core::{Direction, Ems, EmsParams};
use ems_depgraph::DependencyGraph;
use ems_labels::LabelMatrix;
use ems_synth::{PairConfig, PairGenerator, TreeConfig};

fn pair(activities: usize) -> (ems_events::EventLog, ems_events::EventLog) {
    let p = PairGenerator::new(PairConfig {
        tree: TreeConfig {
            num_activities: activities,
            seed: 3,
            max_branch: (activities / 4).max(4),
            ..TreeConfig::default()
        },
        traces_per_log: 60,
        seed: 13,
        xor_jitter: 0.25,
        ..PairConfig::default()
    })
    .generate();
    (p.log1, p.log2)
}

fn main() {
    group("early_convergence_pruning");
    for &n in &[30usize, 60] {
        let (l1, l2) = pair(n);
        let g1 = DependencyGraph::from_log(&l1);
        let g2 = DependencyGraph::from_log(&l2);
        let labels = LabelMatrix::zeros(g1.num_real(), g2.num_real());
        for (label, pruning) in [("on", true), ("off", false)] {
            let params = if pruning {
                EmsParams::structural()
            } else {
                EmsParams::structural().without_pruning()
            };
            let engine = Engine::new(&g1, &g2, &labels, &params, Direction::Forward);
            bench(&format!("{label}/{n}"), || {
                engine.run(&RunOptions::default());
            });
        }
    }

    group("directions");
    let (l1, l2) = pair(40);
    let g1 = DependencyGraph::from_log(&l1);
    let g2 = DependencyGraph::from_log(&l2);
    let labels = LabelMatrix::zeros(g1.num_real(), g2.num_real());
    let params = EmsParams::structural();
    let engine = Engine::new(&g1, &g2, &labels, &params, Direction::Forward);
    bench("forward_only", || {
        engine.run(&RunOptions::default());
    });
    let ems = Ems::new(params.clone());
    bench("both_directions", || {
        ems.match_graphs(&g1, &g2, &labels);
    });

    group("composite_prunings");
    let (l1, l2) = pair(16);
    let cands1 = discover_candidates(&l1, &CandidateConfig::default());
    let cands2 = discover_candidates(&l2, &CandidateConfig::default());
    for (label, uc, bd) in [
        ("none", false, false),
        ("uc", true, false),
        ("bd", false, true),
        ("uc_bd", true, true),
    ] {
        let matcher = CompositeMatcher::new(
            Ems::new(EmsParams::structural()),
            CompositeConfig {
                delta: 0.001,
                unchanged_pruning: uc,
                upper_bound_pruning: bd,
                ..CompositeConfig::default()
            },
        );
        bench(label, || {
            matcher.match_logs(&l1, &l2, &cands1, &cands2);
        });
    }
}
