//! Microbenchmarks of the fixpoint kernels: the seed reference
//! implementation vs the precomputed worklist kernel, serial and parallel,
//! at three problem sizes. Uses the std-only `microbench` runner.
//!
//! The iteration count is pinned (`max_iterations`, tiny `epsilon` so the
//! cap always binds) so every variant does the same number of rounds and
//! the comparison measures per-iteration throughput, not convergence luck.

use ems_bench::microbench::{bench, group};
use ems_core::engine::{Engine, RunOptions};
use ems_core::{Direction, EmsParams};
use ems_depgraph::DependencyGraph;
use ems_labels::LabelMatrix;
use ems_synth::{PairConfig, PairGenerator, TreeConfig};

fn pair(activities: usize) -> (ems_events::EventLog, ems_events::EventLog) {
    let p = PairGenerator::new(PairConfig {
        tree: TreeConfig {
            num_activities: activities,
            seed: 7,
            max_branch: (activities / 4).max(4),
            ..TreeConfig::default()
        },
        traces_per_log: 60,
        seed: 17,
        xor_jitter: 0.25,
        ..PairConfig::default()
    })
    .generate();
    (p.log1, p.log2)
}

fn main() {
    group("fixpoint");
    for &n in &[50usize, 200, 800] {
        let (l1, l2) = pair(n);
        let g1 = DependencyGraph::from_log(&l1);
        let g2 = DependencyGraph::from_log(&l2);
        let labels = LabelMatrix::zeros(g1.num_real(), g2.num_real());
        let mut params = EmsParams::structural();
        params.max_iterations = 6;
        params.epsilon = 1e-15;
        let engine = Engine::new(&g1, &g2, &labels, &params, Direction::Forward);

        bench(&format!("reference/{n}"), || {
            engine.run_reference(&RunOptions::default());
        });
        bench(&format!("precomputed_serial/{n}"), || {
            engine.run(&RunOptions {
                threads: Some(1),
                ..RunOptions::default()
            });
        });
        bench(&format!("precomputed_parallel/{n}"), || {
            engine.run(&RunOptions {
                threads: Some(0), // all available cores
                ..RunOptions::default()
            });
        });
    }
}
