//! Criterion microbenchmarks of the similarity kernels: exact EMS vs the
//! estimation variants and the baselines, at two event sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ems_baselines::{Bhv, Ged};
use ems_core::{Ems, EmsParams};
use ems_depgraph::DependencyGraph;
use ems_labels::LabelMatrix;
use ems_synth::{PairConfig, PairGenerator, TreeConfig};

fn pair(activities: usize) -> (ems_events::EventLog, ems_events::EventLog) {
    let p = PairGenerator::new(PairConfig {
        tree: TreeConfig {
            num_activities: activities,
            seed: 7,
            max_branch: (activities / 4).max(4),
            ..TreeConfig::default()
        },
        traces_per_log: 60,
        seed: 17,
        xor_jitter: 0.25,
        ..PairConfig::default()
    })
    .generate();
    (p.log1, p.log2)
}

fn bench_matchers(c: &mut Criterion) {
    let mut group = c.benchmark_group("matchers");
    for &n in &[20usize, 50] {
        let (l1, l2) = pair(n);
        let g1 = DependencyGraph::from_log(&l1);
        let g2 = DependencyGraph::from_log(&l2);
        let labels = LabelMatrix::zeros(g1.num_real(), g2.num_real());

        group.bench_with_input(BenchmarkId::new("ems_exact", n), &n, |b, _| {
            let ems = Ems::new(EmsParams::structural());
            b.iter(|| ems.match_graphs(&g1, &g2, &labels))
        });
        group.bench_with_input(BenchmarkId::new("ems_estimated_i5", n), &n, |b, _| {
            let ems = Ems::new(EmsParams::structural().estimated(5));
            b.iter(|| ems.match_graphs(&g1, &g2, &labels))
        });
        group.bench_with_input(BenchmarkId::new("ems_estimated_i0", n), &n, |b, _| {
            let ems = Ems::new(EmsParams::structural().estimated(0));
            b.iter(|| ems.match_graphs(&g1, &g2, &labels))
        });
        group.bench_with_input(BenchmarkId::new("bhv", n), &n, |b, _| {
            let bhv = Bhv::default();
            b.iter(|| bhv.similarity(&g1, &g2, &labels))
        });
        group.bench_with_input(BenchmarkId::new("ged", n), &n, |b, _| {
            let ged = Ged::default();
            b.iter(|| ged.match_graphs(&g1, &g2, &labels))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_matchers);
criterion_main!(benches);
