//! Microbenchmarks of the similarity kernels: exact EMS vs the estimation
//! variants and the baselines, at two event sizes. Uses the std-only
//! `microbench` runner (the offline build cannot fetch Criterion).

use ems_baselines::{Bhv, Ged};
use ems_bench::microbench::{bench, group};
use ems_core::{Ems, EmsParams};
use ems_depgraph::DependencyGraph;
use ems_labels::LabelMatrix;
use ems_synth::{PairConfig, PairGenerator, TreeConfig};

fn pair(activities: usize) -> (ems_events::EventLog, ems_events::EventLog) {
    let p = PairGenerator::new(PairConfig {
        tree: TreeConfig {
            num_activities: activities,
            seed: 7,
            max_branch: (activities / 4).max(4),
            ..TreeConfig::default()
        },
        traces_per_log: 60,
        seed: 17,
        xor_jitter: 0.25,
        ..PairConfig::default()
    })
    .generate();
    (p.log1, p.log2)
}

fn main() {
    group("matchers");
    for &n in &[20usize, 50] {
        let (l1, l2) = pair(n);
        let g1 = DependencyGraph::from_log(&l1);
        let g2 = DependencyGraph::from_log(&l2);
        let labels = LabelMatrix::zeros(g1.num_real(), g2.num_real());

        let ems = Ems::new(EmsParams::structural());
        bench(&format!("ems_exact/{n}"), || {
            ems.match_graphs(&g1, &g2, &labels);
        });
        let ems_i5 = Ems::new(EmsParams::structural().estimated(5));
        bench(&format!("ems_estimated_i5/{n}"), || {
            ems_i5.match_graphs(&g1, &g2, &labels);
        });
        let ems_i0 = Ems::new(EmsParams::structural().estimated(0));
        bench(&format!("ems_estimated_i0/{n}"), || {
            ems_i0.match_graphs(&g1, &g2, &labels);
        });
        let bhv = Bhv::default();
        bench(&format!("bhv/{n}"), || {
            bhv.similarity(&g1, &g2, &labels);
        });
        let ged = Ged::default();
        bench(&format!("ged/{n}"), || {
            ged.match_graphs(&g1, &g2, &labels);
        });
    }
}
