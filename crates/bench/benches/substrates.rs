//! Microbenchmarks of the substrates: dependency-graph construction,
//! longest-distance analysis, the Hungarian assignment, q-gram cosine label
//! matrices and XES parsing throughput. Uses the std-only `microbench`
//! runner (the offline build cannot fetch Criterion).

use ems_assignment::hungarian_max;
use ems_bench::microbench::{bench, group};
use ems_depgraph::{longest_distances, DependencyGraph};
use ems_labels::{LabelMatrix, QgramCosine};
use ems_synth::{generate_tree, playout, PlayoutConfig, TreeConfig};
use ems_xes::{from_event_log, parse_str, write_string};

fn log_of(activities: usize, traces: usize) -> ems_events::EventLog {
    let tree = generate_tree(&TreeConfig {
        num_activities: activities,
        seed: 5,
        max_branch: (activities / 4).max(4),
        ..TreeConfig::default()
    });
    playout(
        &tree,
        &PlayoutConfig {
            num_traces: traces,
            seed: 6,
            ..PlayoutConfig::default()
        },
    )
}

fn main() {
    group("graph_build");
    for &n in &[20usize, 50, 100] {
        let log = log_of(n, 100);
        bench(&format!("graph_build/{n}"), || {
            DependencyGraph::from_log(&log);
        });
    }

    group("longest_distances");
    for &n in &[20usize, 100] {
        let g = DependencyGraph::from_log(&log_of(n, 100));
        bench(&format!("longest_distances/{n}"), || {
            longest_distances(&g);
        });
    }

    group("hungarian");
    for &n in &[20usize, 50, 100] {
        // Deterministic pseudo-random weights.
        let weights: Vec<f64> = (0..n * n)
            .map(|k| ((k * 2654435761) % 1000) as f64 / 1000.0)
            .collect();
        bench(&format!("hungarian/{n}"), || {
            hungarian_max(n, n, |i, j| weights[i * n + j]);
        });
    }

    group("labels");
    let names: Vec<String> = (0..50)
        .map(|i| format!("Business Activity Step {i} (variant)"))
        .collect();
    bench("qgram_label_matrix_50x50", || {
        LabelMatrix::compute(&names, &names, &QgramCosine::default());
    });

    group("xes");
    let log = log_of(30, 200);
    let text = write_string(&from_event_log(&log));
    bench("parse", || {
        parse_str(&text).unwrap();
    });
    let doc = from_event_log(&log);
    bench("write", || {
        write_string(&doc);
    });
}
