//! Criterion microbenchmarks of the substrates: dependency-graph
//! construction, longest-distance analysis, the Hungarian assignment,
//! q-gram cosine label matrices and XES parsing throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ems_assignment::hungarian_max;
use ems_depgraph::{longest_distances, DependencyGraph};
use ems_labels::{LabelMatrix, QgramCosine};
use ems_synth::{playout, generate_tree, PlayoutConfig, TreeConfig};
use ems_xes::{from_event_log, parse_str, write_string};

fn log_of(activities: usize, traces: usize) -> ems_events::EventLog {
    let tree = generate_tree(&TreeConfig {
        num_activities: activities,
        seed: 5,
        max_branch: (activities / 4).max(4),
        ..TreeConfig::default()
    });
    playout(
        &tree,
        &PlayoutConfig {
            num_traces: traces,
            seed: 6,
            ..PlayoutConfig::default()
        },
    )
}

fn bench_graph_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_build");
    for &n in &[20usize, 50, 100] {
        let log = log_of(n, 100);
        group.throughput(Throughput::Elements(log.num_events() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| DependencyGraph::from_log(&log))
        });
    }
    group.finish();
}

fn bench_longest_distances(c: &mut Criterion) {
    let mut group = c.benchmark_group("longest_distances");
    for &n in &[20usize, 100] {
        let g = DependencyGraph::from_log(&log_of(n, 100));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| longest_distances(&g))
        });
    }
    group.finish();
}

fn bench_hungarian(c: &mut Criterion) {
    let mut group = c.benchmark_group("hungarian");
    for &n in &[20usize, 50, 100] {
        // Deterministic pseudo-random weights.
        let weights: Vec<f64> = (0..n * n)
            .map(|k| ((k * 2654435761) % 1000) as f64 / 1000.0)
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| hungarian_max(n, n, |i, j| weights[i * n + j]))
        });
    }
    group.finish();
}

fn bench_labels(c: &mut Criterion) {
    let names: Vec<String> = (0..50)
        .map(|i| format!("Business Activity Step {i} (variant)"))
        .collect();
    c.bench_function("qgram_label_matrix_50x50", |b| {
        b.iter(|| LabelMatrix::compute(&names, &names, &QgramCosine::default()))
    });
}

fn bench_xes(c: &mut Criterion) {
    let log = log_of(30, 200);
    let text = write_string(&from_event_log(&log));
    let mut group = c.benchmark_group("xes");
    group.throughput(Throughput::Bytes(text.len() as u64));
    group.bench_function("parse", |b| b.iter(|| parse_str(&text).unwrap()));
    group.bench_function("write", |b| {
        let doc = from_event_log(&log);
        b.iter(|| write_string(&doc))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_graph_build,
    bench_longest_distances,
    bench_hungarian,
    bench_labels,
    bench_xes
);
criterion_main!(benches);
