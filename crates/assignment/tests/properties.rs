//! Randomized property tests: the Hungarian algorithm is optimal (checked
//! against brute force on small instances) and structurally valid on larger
//! ones. Driven by the deterministic `ems-rng` generator so every run
//! exercises the same cases.

use ems_assignment::{greedy_assignment, hungarian_max, max_total_assignment};
use ems_rng::StdRng;

fn total(m: &[Vec<f64>], assignment: &[Option<usize>]) -> f64 {
    assignment
        .iter()
        .enumerate()
        .filter_map(|(i, &j)| j.map(|j| m[i][j]))
        .sum()
}

/// Brute-force optimal assignment total for tiny matrices.
fn brute_force(m: &[Vec<f64>]) -> f64 {
    let rows = m.len();
    let cols = m[0].len();
    let k = rows.min(cols);
    let mut best = f64::NEG_INFINITY;
    // Permute column choices for the first k rows (rows <= cols assumed by
    // caller flipping).
    let mut cols_vec: Vec<usize> = (0..cols).collect();
    permute(&mut cols_vec, 0, &mut |perm| {
        let mut s = 0.0;
        for i in 0..k {
            s += m[i][perm[i]];
        }
        if s > best {
            best = s;
        }
    });
    best
}

fn permute(v: &mut Vec<usize>, k: usize, f: &mut impl FnMut(&[usize])) {
    if k == v.len() {
        f(v);
        return;
    }
    for i in k..v.len() {
        v.swap(k, i);
        permute(v, k + 1, f);
        v.swap(k, i);
    }
}

fn random_matrix(rng: &mut StdRng, max_rows: usize, max_cols: usize) -> Vec<Vec<f64>> {
    let r = rng.gen_range(1..=max_rows);
    let c = rng.gen_range(1..=max_cols);
    (0..r)
        .map(|_| (0..c).map(|_| rng.gen::<f64>()).collect())
        .collect()
}

#[test]
fn hungarian_matches_brute_force_on_small() {
    let mut rng = StdRng::seed_from_u64(0xA551);
    let mut checked = 0;
    while checked < 128 {
        let m = random_matrix(&mut rng, 4, 4);
        if m.len() > m[0].len() {
            continue; // brute force permutes columns
        }
        checked += 1;
        let a = hungarian_max(m.len(), m[0].len(), |i, j| m[i][j]);
        let hung = total(&m, &a);
        let brute = brute_force(&m);
        assert!(
            (hung - brute).abs() < 1e-9,
            "hungarian {hung} vs brute {brute}"
        );
    }
}

#[test]
fn assignment_is_injective() {
    let mut rng = StdRng::seed_from_u64(0xA552);
    for _ in 0..128 {
        let m = random_matrix(&mut rng, 8, 8);
        let a = hungarian_max(m.len(), m[0].len(), |i, j| m[i][j]);
        let mut cols: Vec<usize> = a.iter().flatten().copied().collect();
        let matched = cols.len();
        cols.sort_unstable();
        cols.dedup();
        assert_eq!(cols.len(), matched);
        assert_eq!(matched, m.len().min(m[0].len()));
        for &c in &cols {
            assert!(c < m[0].len());
        }
    }
}

#[test]
fn hungarian_total_at_least_greedy() {
    let mut rng = StdRng::seed_from_u64(0xA553);
    for _ in 0..128 {
        let m = random_matrix(&mut rng, 7, 9);
        let rows = m.len();
        let cols = m[0].len();
        let h: f64 = max_total_assignment(rows, cols, |i, j| m[i][j], 0.0)
            .iter()
            .map(|c| c.score)
            .sum();
        let g: f64 = greedy_assignment(rows, cols, |i, j| m[i][j], 0.0)
            .iter()
            .map(|c| c.score)
            .sum();
        assert!(h >= g - 1e-9, "hungarian {h} < greedy {g}");
    }
}

#[test]
fn min_score_filter_never_keeps_weak_pairs() {
    let mut rng = StdRng::seed_from_u64(0xA554);
    for _ in 0..128 {
        let m = random_matrix(&mut rng, 6, 6);
        let threshold: f64 = rng.gen();
        let cs = max_total_assignment(m.len(), m[0].len(), |i, j| m[i][j], threshold);
        for c in cs {
            assert!(c.score >= threshold);
        }
    }
}
