//! Correspondence selectors built on raw similarity access.

use crate::hungarian::hungarian_max;

/// A selected correspondence between event `left` of log 1 and event `right`
/// of log 2, with its similarity score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Correspondence {
    /// Row (event index in log 1).
    pub left: usize,
    /// Column (event index in log 2).
    pub right: usize,
    /// The pair's similarity.
    pub score: f64,
}

/// Maximum-total-similarity selection (the paper's choice, \[17\]): the
/// optimal 1:1 assignment, with pairs scoring below `min_score` dropped
/// afterwards.
pub fn max_total_assignment<F>(
    rows: usize,
    cols: usize,
    sim: F,
    min_score: f64,
) -> Vec<Correspondence>
where
    F: Fn(usize, usize) -> f64,
{
    let assignment = hungarian_max(rows, cols, &sim);
    let mut out: Vec<Correspondence> = assignment
        .iter()
        .enumerate()
        .filter_map(|(i, &j)| {
            j.map(|j| Correspondence {
                left: i,
                right: j,
                score: sim(i, j),
            })
        })
        .filter(|c| c.score >= min_score)
        .collect();
    out.sort_by_key(|c| (c.left, c.right));
    out
}

/// Validating variant of [`max_total_assignment`]: returns a typed error
/// when any similarity is NaN or infinite instead of corrupting the
/// underlying Hungarian solve.
pub fn try_max_total_assignment<F>(
    rows: usize,
    cols: usize,
    sim: F,
    min_score: f64,
) -> Result<Vec<Correspondence>, crate::AssignmentError>
where
    F: Fn(usize, usize) -> f64,
{
    let assignment = crate::try_hungarian_max(rows, cols, &sim)?;
    let mut out: Vec<Correspondence> = assignment
        .iter()
        .enumerate()
        .filter_map(|(i, &j)| {
            j.map(|j| Correspondence {
                left: i,
                right: j,
                score: sim(i, j),
            })
        })
        .filter(|c| c.score >= min_score)
        .collect();
    out.sort_by_key(|c| (c.left, c.right));
    Ok(out)
}

/// Greedy 1:1 selection: repeatedly pick the largest remaining pair whose
/// row and column are both free, stopping below `min_score`.
pub fn greedy_assignment<F>(rows: usize, cols: usize, sim: F, min_score: f64) -> Vec<Correspondence>
where
    F: Fn(usize, usize) -> f64,
{
    let mut pairs: Vec<Correspondence> = (0..rows)
        .flat_map(|i| (0..cols).map(move |j| (i, j)))
        .map(|(i, j)| Correspondence {
            left: i,
            right: j,
            score: sim(i, j),
        })
        .filter(|c| c.score >= min_score)
        .collect();
    pairs.sort_by(|a, b| {
        b.score
            .total_cmp(&a.score)
            .then((a.left, a.right).cmp(&(b.left, b.right)))
    });
    let mut used_r = vec![false; rows];
    let mut used_c = vec![false; cols];
    let mut out = Vec::new();
    for c in pairs {
        if !used_r[c.left] && !used_c[c.right] {
            used_r[c.left] = true;
            used_c[c.right] = true;
            out.push(c);
        }
    }
    out.sort_by_key(|c| (c.left, c.right));
    out
}

/// Threshold (m:n) selection: every pair scoring at least `threshold` is a
/// correspondence. Allows one event to correspond to many.
pub fn threshold_selection<F>(
    rows: usize,
    cols: usize,
    sim: F,
    threshold: f64,
) -> Vec<Correspondence>
where
    F: Fn(usize, usize) -> f64,
{
    (0..rows)
        .flat_map(|i| (0..cols).map(move |j| (i, j)))
        .map(|(i, j)| Correspondence {
            left: i,
            right: j,
            score: sim(i, j),
        })
        .filter(|c| c.score >= threshold)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const M: [[f64; 3]; 3] = [[0.9, 0.2, 0.1], [0.3, 0.8, 0.7], [0.1, 0.75, 0.6]];

    fn sim(i: usize, j: usize) -> f64 {
        M[i][j]
    }

    #[test]
    fn max_total_picks_the_optimum() {
        let cs = max_total_assignment(3, 3, sim, 0.0);
        assert_eq!(cs.len(), 3);
        // Optimal: (0,0) + (1,2) + (2,1) = 0.9 + 0.7 + 0.75 = 2.35
        // vs greedy (0,0)+(1,1)+(2,2) = 0.9+0.8+0.6 = 2.3.
        let total: f64 = cs.iter().map(|c| c.score).sum();
        assert!((total - 2.35).abs() < 1e-12, "total {total}");
    }

    #[test]
    fn min_score_drops_weak_pairs() {
        let cs = max_total_assignment(3, 3, sim, 0.72);
        assert_eq!(cs.len(), 2);
        assert!(cs.iter().all(|c| c.score >= 0.72));
    }

    #[test]
    fn greedy_takes_local_maxima() {
        let cs = greedy_assignment(3, 3, sim, 0.0);
        // Greedy: 0.9 (0,0), then 0.8 (1,1), then 0.6 (2,2).
        let total: f64 = cs.iter().map(|c| c.score).sum();
        assert!((total - 2.3).abs() < 1e-12);
    }

    #[test]
    fn threshold_allows_m_to_n() {
        let cs = threshold_selection(3, 3, sim, 0.7);
        // 0.9, 0.8, 0.7, 0.75 qualify: row 1 appears twice.
        assert_eq!(cs.len(), 4);
        assert!(cs.iter().filter(|c| c.left == 1).count() == 2);
    }

    #[test]
    fn outputs_are_sorted_by_position() {
        let cs = max_total_assignment(3, 3, sim, 0.0);
        for w in cs.windows(2) {
            assert!((w[0].left, w[0].right) < (w[1].left, w[1].right));
        }
    }

    #[test]
    fn empty_matrices() {
        assert!(max_total_assignment(0, 0, |_, _| 0.0, 0.0).is_empty());
        assert!(matches!(
            try_max_total_assignment(1, 1, |_, _| f64::NAN, 0.0),
            Err(crate::AssignmentError::NonFiniteWeight { row: 0, col: 0, .. })
        ));
        assert_eq!(
            try_max_total_assignment(2, 2, |i, j| if i == j { 1.0 } else { 0.0 }, 0.5)
                .unwrap()
                .len(),
            2
        );
        assert!(greedy_assignment(0, 3, |_, _| 0.0, 0.0).is_empty());
        assert!(threshold_selection(3, 0, |_, _| 0.0, 0.0).is_empty());
    }
}
