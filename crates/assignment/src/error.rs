//! Typed errors for correspondence selection.

use ems_error::EmsError;
use std::fmt;

/// Errors raised when an assignment problem is fed invalid weights.
#[derive(Debug, Clone, PartialEq)]
pub enum AssignmentError {
    /// A similarity weight is NaN or infinite — the Hungarian potentials
    /// would silently corrupt (or never terminate) on such input.
    NonFiniteWeight {
        /// Row index of the offending entry.
        row: usize,
        /// Column index of the offending entry.
        col: usize,
        /// The invalid weight.
        value: f64,
    },
}

impl fmt::Display for AssignmentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AssignmentError::NonFiniteWeight { row, col, value } => {
                write!(f, "non-finite weight {value} at ({row}, {col})")
            }
        }
    }
}

impl std::error::Error for AssignmentError {}

impl From<AssignmentError> for EmsError {
    fn from(e: AssignmentError) -> Self {
        EmsError::Assignment {
            message: e.to_string(),
        }
    }
}
