//! The Munkres/Hungarian algorithm for rectangular assignment, maximization
//! form, `O(n³)`.

use crate::AssignmentError;

/// Validating variant of [`hungarian_max`]: rejects NaN or infinite weights
/// up front instead of letting them corrupt the potential updates (a NaN
/// weight makes every comparison false, so the augmenting-path search can
/// spin without progress).
pub fn try_hungarian_max<F>(
    rows: usize,
    cols: usize,
    weight: F,
) -> Result<Vec<Option<usize>>, AssignmentError>
where
    F: Fn(usize, usize) -> f64,
{
    for i in 0..rows {
        for j in 0..cols {
            let w = weight(i, j);
            if !w.is_finite() {
                return Err(AssignmentError::NonFiniteWeight {
                    row: i,
                    col: j,
                    value: w,
                });
            }
        }
    }
    Ok(hungarian_max(rows, cols, weight))
}

/// Solves the rectangular assignment problem **maximizing** total weight.
///
/// `weight(i, j)` gives the benefit of assigning row `i` (0..rows) to column
/// `j` (0..cols). Returns, for each row, the assigned column (`None` when
/// `rows > cols` leaves the row unmatched). Every returned column is unique.
///
/// Implementation: the classical potential-based Hungarian algorithm on the
/// cost matrix `max_weight - weight`, padded implicitly to square shape.
pub fn hungarian_max<F>(rows: usize, cols: usize, weight: F) -> Vec<Option<usize>>
where
    F: Fn(usize, usize) -> f64,
{
    if rows == 0 || cols == 0 {
        return vec![None; rows];
    }
    let n = rows.max(cols);
    // Build the square cost matrix. Padding rows/columns cost 0 so they
    // never distort the real assignment.
    let mut max_w = 0.0_f64;
    for i in 0..rows {
        for j in 0..cols {
            max_w = max_w.max(weight(i, j));
        }
    }
    let cost = |i: usize, j: usize| -> f64 {
        if i < rows && j < cols {
            max_w - weight(i, j)
        } else {
            0.0
        }
    };

    // Potentials + augmenting path method (1-indexed helpers, classic
    // formulation from competitive-programming folklore / Lawler).
    let mut u = vec![0.0_f64; n + 1];
    let mut v = vec![0.0_f64; n + 1];
    let mut p = vec![0usize; n + 1]; // p[j] = row matched to column j (1-based)
    let mut way = vec![0usize; n + 1];
    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![f64::INFINITY; n + 1];
        let mut used = vec![false; n + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = f64::INFINITY;
            let mut j1 = 0usize;
            for j in 1..=n {
                if used[j] {
                    continue;
                }
                let cur = cost(i0 - 1, j - 1) - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=n {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut result = vec![None; rows];
    for (j, &i) in p.iter().enumerate().take(n + 1).skip(1) {
        if i >= 1 && i <= rows && j <= cols {
            result[i - 1] = Some(j - 1);
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn total(rows: usize, m: &[Vec<f64>], assignment: &[Option<usize>]) -> f64 {
        (0..rows)
            .filter_map(|i| assignment[i].map(|j| m[i][j]))
            .sum()
    }

    #[test]
    fn square_identity_case() {
        let m = [
            vec![1.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 1.0],
        ];
        let a = hungarian_max(3, 3, |i, j| m[i][j]);
        assert_eq!(a, vec![Some(0), Some(1), Some(2)]);
    }

    #[test]
    fn prefers_global_optimum_over_greedy() {
        // Greedy would pick (0,0)=0.9 then be stuck with (1,1)=0.0;
        // optimal is (0,1)+(1,0) = 0.8 + 0.8.
        let m = vec![vec![0.9, 0.8], vec![0.8, 0.0]];
        let a = hungarian_max(2, 2, |i, j| m[i][j]);
        assert_eq!(a, vec![Some(1), Some(0)]);
        assert!((total(2, &m, &a) - 1.6).abs() < 1e-12);
    }

    #[test]
    fn rectangular_wide_matrix() {
        // 2 rows, 4 cols: both rows matched, to distinct columns.
        let m = [vec![0.1, 0.9, 0.2, 0.3], vec![0.2, 0.8, 0.1, 0.05]];
        let a = hungarian_max(2, 4, |i, j| m[i][j]);
        assert_eq!(a[0], Some(1));
        assert_eq!(a[1], Some(0));
    }

    #[test]
    fn rectangular_tall_matrix_leaves_rows_unmatched() {
        let m = [vec![0.9], vec![0.8], vec![0.7]];
        let a = hungarian_max(3, 1, |i, j| m[i][j]);
        let matched: Vec<_> = a.iter().filter(|x| x.is_some()).collect();
        assert_eq!(matched.len(), 1);
        assert_eq!(a[0], Some(0)); // the best row wins the only column
    }

    #[test]
    fn columns_are_unique() {
        let m = [
            vec![0.5, 0.5, 0.5],
            vec![0.5, 0.5, 0.5],
            vec![0.5, 0.5, 0.5],
        ];
        let a = hungarian_max(3, 3, |i, j| m[i][j]);
        let mut cols: Vec<_> = a.iter().flatten().collect();
        cols.sort();
        cols.dedup();
        assert_eq!(cols.len(), 3);
    }

    #[test]
    fn empty_inputs() {
        assert!(hungarian_max(0, 5, |_, _| 0.0).is_empty());
        assert_eq!(hungarian_max(2, 0, |_, _| 0.0), vec![None, None]);
    }

    #[test]
    fn randomized_beats_or_ties_greedy() {
        // Deterministic pseudo-random matrices: Hungarian total must be at
        // least the greedy total.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1000) as f64 / 1000.0
        };
        for _ in 0..20 {
            let rows = 5;
            let cols = 7;
            let m: Vec<Vec<f64>> = (0..rows)
                .map(|_| (0..cols).map(|_| rnd()).collect())
                .collect();
            let a = hungarian_max(rows, cols, |i, j| m[i][j]);
            let hung_total = total(rows, &m, &a);
            // Greedy baseline.
            let mut pairs: Vec<(usize, usize, f64)> = (0..rows)
                .flat_map(|i| (0..cols).map(move |j| (i, j)))
                .map(|(i, j)| (i, j, m[i][j]))
                .collect();
            pairs.sort_by(|a, b| b.2.total_cmp(&a.2));
            let mut used_r = vec![false; rows];
            let mut used_c = vec![false; cols];
            let mut greedy_total = 0.0;
            for (i, j, w) in pairs {
                if !used_r[i] && !used_c[j] {
                    used_r[i] = true;
                    used_c[j] = true;
                    greedy_total += w;
                }
            }
            assert!(
                hung_total >= greedy_total - 1e-9,
                "hungarian {hung_total} < greedy {greedy_total}"
            );
        }
    }
}
