#![forbid(unsafe_code)]
//! Correspondence selection from pairwise similarity matrices.
//!
//! After EMS (or a baseline) produces the pairwise similarities of two event
//! sets, correspondences must be selected. The paper uses the
//! *maximum total similarity* selection — the classical assignment problem,
//! solved here by the Munkres/Hungarian algorithm \[17\] in `O(n³)` — and
//! notes that other selectors exist; this crate also offers the common
//! greedy and threshold selectors for comparison:
//!
//! * [`max_total_assignment`] — optimal 1:1 assignment maximizing the sum of
//!   similarities (Munkres);
//! * [`greedy_assignment`] — repeatedly pick the globally largest remaining
//!   pair (what GED-style matchers typically use);
//! * [`threshold_selection`] — all pairs above a threshold (m:n).
//!
//! All selectors can drop pairs below a minimum score, since an assignment
//! is forced to match everything otherwise — even noise.

#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

mod error;
mod hungarian;
mod select;

pub use error::AssignmentError;
pub use hungarian::{hungarian_max, try_hungarian_max};
pub use select::{
    greedy_assignment, max_total_assignment, threshold_selection, try_max_total_assignment,
    Correspondence,
};
