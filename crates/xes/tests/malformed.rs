//! Failure-injection suite: the parser must reject malformed documents with
//! a descriptive error and must never panic.

use ems_xes::{parse_str, XesError};

fn assert_rejected(input: &str, note: &str) {
    match parse_str(input) {
        Err(_) => {}
        Ok(_) => panic!("accepted malformed input ({note}): {input:?}"),
    }
}

#[test]
fn truncated_documents() {
    for (input, note) in [
        ("", "empty"),
        ("<", "lone angle bracket"),
        ("<log", "unterminated start tag"),
        ("<log>", "unclosed root"),
        ("<log><trace>", "unclosed trace"),
        ("<log><trace><event>", "unclosed event"),
        ("<log><trace><event><string key=\"a\" value=\"b\">", "unclosed attribute"),
        ("<log><!-- comment that never ends", "unterminated comment"),
        ("<log><![CDATA[ stuck", "unterminated cdata"),
        ("<?xml version=\"1.0\"", "unterminated declaration"),
    ] {
        assert_rejected(input, note);
    }
}

#[test]
fn structural_violations() {
    for (input, note) in [
        ("<trace/>", "wrong root"),
        ("<log></trace>", "mismatched close"),
        ("<log><event/></log>", "event outside trace"),
        ("<log><trace><trace/></trace></log>", "nested trace"),
        (
            "<log><trace><event><event/></event></trace></log>",
            "nested event",
        ),
        ("<log><string value=\"v\"/></log>", "attribute without key"),
        ("<log></log></log>", "content after root is a stray close"),
    ] {
        assert_rejected(input, note);
    }
}

#[test]
fn bad_typed_values() {
    for (input, note) in [
        (r#"<log><int key="k" value="3.5"/></log>"#, "float as int"),
        (r#"<log><int key="k" value=""/></log>"#, "empty int"),
        (r#"<log><float key="k" value="1,5"/></log>"#, "comma decimal"),
        (r#"<log><boolean key="k" value="yes"/></log>"#, "yes boolean"),
    ] {
        assert_rejected(input, note);
    }
}

#[test]
fn bad_entities() {
    for (input, note) in [
        (r#"<log><string key="k" value="&nbsp;"/></log>"#, "html entity"),
        (r#"<log><string key="k" value="&#xZZ;"/></log>"#, "bad hex ref"),
        (r#"<log><string key="k" value="&#2000000000;"/></log>"#, "out of range ref"),
        (r#"<log><string key="k" value="&unterminated"/></log>"#, "unterminated entity"),
    ] {
        assert_rejected(input, note);
    }
}

#[test]
fn errors_carry_positions_or_descriptions() {
    let err = parse_str("<log><trace></log>").unwrap_err();
    match err {
        XesError::TagMismatch {
            expected, found, ..
        } => {
            assert_eq!(expected, "trace");
            assert_eq!(found, "log");
        }
        other => panic!("expected TagMismatch, got {other:?}"),
    }
    let err = parse_str("<log attr=\"unterminated></log>").unwrap_err();
    assert!(matches!(err, XesError::Syntax { .. }));
    assert!(err.to_string().contains("byte"));
}

#[test]
fn weird_but_wellformed_documents_are_accepted() {
    // Things that look suspicious but are legal in our XES subset.
    for input in [
        "<log/>",
        "<log></log>",
        "<log>stray text</log>",
        "<log><trace/><trace/><trace/></log>",
        "<log><unknown><deeply><nested/></deeply></unknown></log>",
        "<log xes.version=\"1.0\" randomattr='single quotes'/>",
        "<log><trace><event><string key=\"k\" value=\"\"/></event></trace></log>",
        "<log><!--c--><trace><!--c--><event/><!--c--></trace></log>",
    ] {
        parse_str(input).unwrap_or_else(|e| panic!("rejected {input:?}: {e}"));
    }
}

#[test]
fn deeply_nested_attributes_do_not_overflow() {
    // 200 levels of nested <string> attributes: recursion depth check.
    let mut doc = String::from("<log><trace><event>");
    for i in 0..200 {
        doc.push_str(&format!("<string key=\"k{i}\" value=\"v\">"));
    }
    for _ in 0..200 {
        doc.push_str("</string>");
    }
    doc.push_str("</event></trace></log>");
    let log = parse_str(&doc).unwrap();
    // The chain is preserved.
    let mut depth = 0;
    let mut attr = &log.traces[0].events[0].attributes[0];
    loop {
        depth += 1;
        match attr.children.first() {
            Some(child) => attr = child,
            None => break,
        }
    }
    assert_eq!(depth, 200);
}

#[test]
fn large_flat_document_parses() {
    let mut doc = String::from("<log>");
    for t in 0..200 {
        doc.push_str("<trace>");
        for e in 0..20 {
            doc.push_str(&format!(
                "<event><string key=\"concept:name\" value=\"act{}\"/></event>",
                (t + e) % 7
            ));
        }
        doc.push_str("</trace>");
    }
    doc.push_str("</log>");
    let log = parse_str(&doc).unwrap();
    assert_eq!(log.traces.len(), 200);
    let event_log = ems_xes::to_event_log(&log);
    assert_eq!(event_log.alphabet_size(), 7);
    assert_eq!(event_log.num_events(), 4000);
}
