//! Failure-injection suite: the parser must reject malformed documents with
//! a descriptive error and must never panic.

use ems_xes::{parse_str, XesError};

fn assert_rejected(input: &str, note: &str) {
    match parse_str(input) {
        Err(_) => {}
        Ok(_) => panic!("accepted malformed input ({note}): {input:?}"),
    }
}

#[test]
fn truncated_documents() {
    for (input, note) in [
        ("", "empty"),
        ("<", "lone angle bracket"),
        ("<log", "unterminated start tag"),
        ("<log>", "unclosed root"),
        ("<log><trace>", "unclosed trace"),
        ("<log><trace><event>", "unclosed event"),
        (
            "<log><trace><event><string key=\"a\" value=\"b\">",
            "unclosed attribute",
        ),
        ("<log><!-- comment that never ends", "unterminated comment"),
        ("<log><![CDATA[ stuck", "unterminated cdata"),
        ("<?xml version=\"1.0\"", "unterminated declaration"),
    ] {
        assert_rejected(input, note);
    }
}

#[test]
fn structural_violations() {
    for (input, note) in [
        ("<trace/>", "wrong root"),
        ("<log></trace>", "mismatched close"),
        ("<log><event/></log>", "event outside trace"),
        ("<log><trace><trace/></trace></log>", "nested trace"),
        (
            "<log><trace><event><event/></event></trace></log>",
            "nested event",
        ),
        ("<log><string value=\"v\"/></log>", "attribute without key"),
        ("<log></log></log>", "content after root is a stray close"),
    ] {
        assert_rejected(input, note);
    }
}

#[test]
fn bad_typed_values() {
    for (input, note) in [
        (r#"<log><int key="k" value="3.5"/></log>"#, "float as int"),
        (r#"<log><int key="k" value=""/></log>"#, "empty int"),
        (
            r#"<log><float key="k" value="1,5"/></log>"#,
            "comma decimal",
        ),
        (
            r#"<log><boolean key="k" value="yes"/></log>"#,
            "yes boolean",
        ),
    ] {
        assert_rejected(input, note);
    }
}

#[test]
fn bad_entities() {
    for (input, note) in [
        (
            r#"<log><string key="k" value="&nbsp;"/></log>"#,
            "html entity",
        ),
        (
            r#"<log><string key="k" value="&#xZZ;"/></log>"#,
            "bad hex ref",
        ),
        (
            r#"<log><string key="k" value="&#2000000000;"/></log>"#,
            "out of range ref",
        ),
        (
            r#"<log><string key="k" value="&unterminated"/></log>"#,
            "unterminated entity",
        ),
    ] {
        assert_rejected(input, note);
    }
}

#[test]
fn errors_carry_positions_or_descriptions() {
    let err = parse_str("<log><trace></log>").unwrap_err();
    match err {
        XesError::TagMismatch {
            expected, found, ..
        } => {
            assert_eq!(expected, "trace");
            assert_eq!(found, "log");
        }
        other => panic!("expected TagMismatch, got {other:?}"),
    }
    let err = parse_str("<log attr=\"unterminated></log>").unwrap_err();
    assert!(matches!(err, XesError::Syntax { .. }));
    assert!(err.to_string().contains("byte"));
}

#[test]
fn weird_but_wellformed_documents_are_accepted() {
    // Things that look suspicious but are legal in our XES subset.
    for input in [
        "<log/>",
        "<log></log>",
        "<log>stray text</log>",
        "<log><trace/><trace/><trace/></log>",
        "<log><unknown><deeply><nested/></deeply></unknown></log>",
        "<log xes.version=\"1.0\" randomattr='single quotes'/>",
        "<log><trace><event><string key=\"k\" value=\"\"/></event></trace></log>",
        "<log><!--c--><trace><!--c--><event/><!--c--></trace></log>",
    ] {
        parse_str(input).unwrap_or_else(|e| panic!("rejected {input:?}: {e}"));
    }
}

#[test]
fn deeply_nested_attributes_do_not_overflow() {
    // 200 levels of nested <string> attributes: recursion depth check.
    let mut doc = String::from("<log><trace><event>");
    for i in 0..200 {
        doc.push_str(&format!("<string key=\"k{i}\" value=\"v\">"));
    }
    for _ in 0..200 {
        doc.push_str("</string>");
    }
    doc.push_str("</event></trace></log>");
    let log = parse_str(&doc).unwrap();
    // The chain is preserved.
    let mut depth = 0;
    let mut attr = &log.traces[0].events[0].attributes[0];
    loop {
        depth += 1;
        match attr.children.first() {
            Some(child) => attr = child,
            None => break,
        }
    }
    assert_eq!(depth, 200);
}

#[test]
fn large_flat_document_parses() {
    let mut doc = String::from("<log>");
    for t in 0..200 {
        doc.push_str("<trace>");
        for e in 0..20 {
            doc.push_str(&format!(
                "<event><string key=\"concept:name\" value=\"act{}\"/></event>",
                (t + e) % 7
            ));
        }
        doc.push_str("</trace>");
    }
    doc.push_str("</log>");
    let log = parse_str(&doc).unwrap();
    assert_eq!(log.traces.len(), 200);
    let event_log = ems_xes::to_event_log(&log);
    assert_eq!(event_log.alphabet_size(), 7);
    assert_eq!(event_log.num_events(), 4000);
}

// ---------------------------------------------------------------------------
// Recovery mode: the same damage classes must yield partial logs + warnings.
// ---------------------------------------------------------------------------

use ems_xes::{load_event_log_str, ParseMode, WarningKind};

/// Asserts that recovery mode accepts `input`, reports at least one warning,
/// and salvages exactly `traces` traces.
fn assert_recovered(input: &str, traces: usize, note: &str) {
    let r = load_event_log_str(input, ParseMode::Recovery)
        .unwrap_or_else(|e| panic!("recovery failed ({note}): {e}"));
    assert!(!r.is_clean(), "no warnings for damaged input ({note})");
    assert_eq!(
        r.log.num_traces(),
        traces,
        "salvaged traces ({note}): {:?}",
        r.warnings
    );
}

const GOOD_TRACE: &str = r#"<trace><event><string key="concept:name" value="a"/></event></trace>"#;

#[test]
fn recovery_salvages_truncated_xes() {
    // A good trace followed by damage: the good trace always survives.
    // An open trace at EOF is committed as a partial trace (hence 2), while
    // damage outside any trace leaves just the one good trace.
    for (suffix, traces, note) in [
        ("<trace><event>", 2, "truncated mid-trace"),
        (
            "<trace><event><string key=\"x\" value=\"y\">",
            2,
            "unclosed attribute",
        ),
        ("<!-- never closed", 1, "unterminated trailing comment"),
        ("<![CDATA[ stuck", 1, "unterminated trailing cdata"),
    ] {
        let doc = format!("<log>{GOOD_TRACE}{suffix}");
        assert_recovered(&doc, traces, note);
    }
    // Strict mode still rejects every one of them.
    for suffix in ["<trace><event>", "<!-- never closed"] {
        let doc = format!("<log>{GOOD_TRACE}{suffix}");
        assert!(load_event_log_str(&doc, ParseMode::Strict).is_err());
    }
}

#[test]
fn recovery_repairs_mis_nesting() {
    // Mis-nested closing tags: open elements are closed implicitly and the
    // events seen so far are kept.
    let doc = format!(
        "<log>{GOOD_TRACE}\
         <trace><event><string key=\"concept:name\" value=\"b\"/></event></log>"
    );
    let r = load_event_log_str(&doc, ParseMode::Recovery).unwrap();
    assert_eq!(r.log.num_traces(), 2, "{:?}", r.warnings);
    assert!(
        r.warnings
            .iter()
            .any(|w| matches!(w.kind, WarningKind::TagMismatch { .. })),
        "expected a tag-mismatch diagnostic: {:?}",
        r.warnings
    );
    // Nested traces and events-outside-traces are structural repairs.
    for (doc, note) in [
        (
            format!("<log><trace>{GOOD_TRACE}</trace></log>"),
            "nested trace",
        ),
        (
            format!("<log><event/>{GOOD_TRACE}</log>"),
            "event outside trace",
        ),
    ] {
        let r =
            load_event_log_str(&doc, ParseMode::Recovery).unwrap_or_else(|e| panic!("{note}: {e}"));
        assert!(!r.is_clean(), "{note} must warn");
        assert!(r.log.num_traces() >= 1, "{note} salvages the good trace");
    }
}

#[test]
fn entity_definitions_are_never_expanded() {
    // Billion-laughs shape: entity definitions are not supported, so the
    // classic expansion bomb cannot detonate. Strict mode rejects the use of
    // an undefined entity; recovery warns and moves on without expanding.
    let mut doc = String::from("<!DOCTYPE log [\n");
    doc.push_str("<!ENTITY lol \"lollollollollollollollollollol\">\n");
    for i in 1..10 {
        doc.push_str(&format!(
            "<!ENTITY lol{i} \"&lol{};&lol{};&lol{};&lol{};&lol{};\">\n",
            i - 1,
            i - 1,
            i - 1,
            i - 1,
            i - 1
        ));
    }
    doc.push_str("]>\n<log><trace><event>");
    doc.push_str("<string key=\"concept:name\" value=\"&lol9;\"/>");
    doc.push_str("</event></trace></log>");

    assert!(
        load_event_log_str(&doc, ParseMode::Strict).is_err(),
        "strict mode must reject undefined entity references"
    );
    let r = load_event_log_str(&doc, ParseMode::Recovery).unwrap();
    assert!(!r.is_clean());
    // Nothing was expanded: total salvaged text stays tiny.
    for t in r.log.traces() {
        assert!(t.len() <= 1);
    }
}

#[test]
fn encoding_damage_is_survivable() {
    // Encoding-broken bytes reach the parser as U+FFFD replacement chars
    // (files are read lossily in recovery pipelines). Damage inside markup is
    // a syntax error; damage inside values is preserved as data.
    let in_markup = format!("<log>{GOOD_TRACE}<tra\u{FFFD}ce><event/></trace></log>");
    assert!(load_event_log_str(&in_markup, ParseMode::Strict).is_err());
    let r = load_event_log_str(&in_markup, ParseMode::Recovery).unwrap();
    assert!(!r.is_clean());
    assert!(r.log.num_traces() >= 1);

    let in_value =
        "<log><trace><event><string key=\"concept:name\" value=\"a\u{FFFD}b\"/></event></trace></log>";
    let r = load_event_log_str(in_value, ParseMode::Recovery).unwrap();
    assert!(r.is_clean(), "data damage is not a parse error");
    assert_eq!(r.log.num_traces(), 1);
}

#[test]
fn mxml_recovery_salvages_partial_documents() {
    let good = "<ProcessInstance><AuditTrailEntry>\
                <WorkflowModelElement>A</WorkflowModelElement>\
                <EventType>complete</EventType>\
                </AuditTrailEntry></ProcessInstance>";
    // A truncated open instance is committed as a partial trace; damage
    // outside any instance leaves only the good one.
    for (doc, traces, events, note) in [
        (
            format!("<WorkflowLog><Process>{good}<ProcessInstance><AuditTrailEntry>"),
            2,
            2,
            "truncated mid-instance",
        ),
        (
            format!("<WorkflowLog><Process>{good}</AuditTrailEntry></Process></WorkflowLog>"),
            1,
            1,
            "stray entry close",
        ),
        (
            "<WorkflowLog><Process><ProcessInstance><AuditTrailEntry>\
             <WorkflowModelElement>A</WorkflowModelElement>\
             <EventType>complete</EventType></AuditTrailEntry>\
             <ProcessInstance/></ProcessInstance></Process></WorkflowLog>"
                .to_string(),
            2,
            1,
            "nested instance",
        ),
    ] {
        let r =
            load_event_log_str(&doc, ParseMode::Recovery).unwrap_or_else(|e| panic!("{note}: {e}"));
        assert!(!r.is_clean(), "{note} must warn: {:?}", r.warnings);
        assert_eq!(r.log.num_traces(), traces, "{note}: {:?}", r.warnings);
        assert_eq!(r.log.num_events(), events, "{note}");
    }
    // Strict mode rejects the truncated variant with a typed error.
    let doc = format!("<WorkflowLog><Process>{good}<ProcessInstance>");
    assert!(load_event_log_str(&doc, ParseMode::Strict).is_err());
}

#[test]
fn recovery_warnings_locate_the_damage() {
    let doc = format!("<log>{GOOD_TRACE}<trace><event><<<</event></trace></log>");
    let r = load_event_log_str(&doc, ParseMode::Recovery).unwrap();
    assert!(!r.is_clean());
    let w = &r.warnings[0];
    assert!(
        w.offset.is_some() || w.trace.is_some(),
        "warning carries no location: {w:?}"
    );
    let rendered = w.to_string();
    assert!(!rendered.is_empty());
}
