//! Randomized property tests: XES serialization round-trips arbitrary
//! documents. Driven by the deterministic `ems-rng` generator.

use ems_rng::StdRng;
use ems_xes::{parse_str, write_string, AttrValue, Attribute, XesEvent, XesLog, XesTrace};

/// Text that exercises the escaper: quotes, angle brackets, ampersands,
/// unicode.
fn random_text(rng: &mut StdRng) -> String {
    const CHARS: &[char] = &[
        'a', 'b', 'z', 'A', 'Z', '0', '9', ' ', '<', '>', '&', '"', '\'', '?', '一', '事', '鿿',
    ];
    let len = rng.gen_range(0..=16usize);
    (0..len)
        .map(|_| CHARS[rng.gen_range(0..CHARS.len())])
        .collect()
}

fn random_value(rng: &mut StdRng) -> AttrValue {
    match rng.gen_range(0..6u32) {
        0 => AttrValue::String(random_text(rng)),
        1 => AttrValue::Date(random_text(rng)),
        2 => AttrValue::Int(rng.gen::<u64>() as i64),
        // Finite floats only: NaN breaks equality, infinities don't parse.
        3 => AttrValue::Float(rng.gen_range(-1e12..1e12)),
        4 => AttrValue::Boolean(rng.gen::<bool>()),
        _ => AttrValue::Id(random_text(rng)),
    }
}

fn random_key(rng: &mut StdRng) -> String {
    const HEAD: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ";
    const TAIL: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789:_.-";
    let mut s = String::new();
    s.push(HEAD[rng.gen_range(0..HEAD.len())] as char);
    for _ in 0..rng.gen_range(0..=10usize) {
        s.push(TAIL[rng.gen_range(0..TAIL.len())] as char);
    }
    s
}

fn random_attribute(rng: &mut StdRng) -> Attribute {
    // One level of nesting is enough to exercise the recursive paths.
    Attribute {
        key: random_key(rng),
        value: random_value(rng),
        children: (0..rng.gen_range(0..3usize))
            .map(|_| Attribute {
                key: random_key(rng),
                value: random_value(rng),
                children: vec![],
            })
            .collect(),
    }
}

fn random_xes_log(rng: &mut StdRng) -> XesLog {
    let attrs = |rng: &mut StdRng, max: usize| -> Vec<Attribute> {
        (0..rng.gen_range(0..max))
            .map(|_| random_attribute(rng))
            .collect()
    };
    let traces = (0..rng.gen_range(0..5usize))
        .map(|_| {
            let attributes = attrs(rng, 2);
            let events = (0..rng.gen_range(0..5usize))
                .map(|_| XesEvent {
                    attributes: attrs(rng, 3),
                })
                .collect();
            XesTrace { attributes, events }
        })
        .collect();
    XesLog {
        version: Some("2.0".into()),
        attributes: attrs(rng, 2),
        traces,
    }
}

#[test]
fn write_parse_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0x7E51);
    for _ in 0..64 {
        let log = random_xes_log(&mut rng);
        let text = write_string(&log);
        let parsed = parse_str(&text).expect("own output must parse");
        assert_eq!(parsed, log);
    }
}

#[test]
fn double_roundtrip_is_stable() {
    let mut rng = StdRng::seed_from_u64(0x7E52);
    for _ in 0..64 {
        let log = random_xes_log(&mut rng);
        let once = write_string(&log);
        let twice = write_string(&parse_str(&once).unwrap());
        assert_eq!(once, twice);
    }
}

#[test]
fn float_roundtrip_preserves_value_exactly() {
    let log = XesLog {
        version: None,
        attributes: vec![Attribute {
            key: "x".into(),
            value: AttrValue::Float(0.1 + 0.2),
            children: vec![],
        }],
        traces: vec![],
    };
    let parsed = parse_str(&write_string(&log)).unwrap();
    assert_eq!(parsed.attributes[0].value, AttrValue::Float(0.1 + 0.2));
}
