//! Property tests: XES serialization round-trips arbitrary documents.

use ems_xes::{parse_str, write_string, AttrValue, Attribute, XesEvent, XesLog, XesTrace};
use proptest::prelude::*;

fn arb_text() -> impl Strategy<Value = String> {
    // Exercise the escaper: quotes, angle brackets, ampersands, unicode.
    proptest::string::string_regex("[a-zA-Z0-9 <>&\"'?一-鿿]{0,16}").expect("valid regex")
}

fn arb_value() -> impl Strategy<Value = AttrValue> {
    prop_oneof![
        arb_text().prop_map(AttrValue::String),
        arb_text().prop_map(AttrValue::Date),
        any::<i64>().prop_map(AttrValue::Int),
        // Finite floats only: NaN breaks equality, infinities don't parse.
        (-1e12f64..1e12).prop_map(AttrValue::Float),
        any::<bool>().prop_map(AttrValue::Boolean),
        arb_text().prop_map(AttrValue::Id),
    ]
}

fn arb_key() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-zA-Z][a-zA-Z0-9:_.-]{0,10}").expect("valid regex")
}

fn arb_attribute() -> impl Strategy<Value = Attribute> {
    // One level of nesting is enough to exercise the recursive paths.
    (arb_key(), arb_value(), prop::collection::vec((arb_key(), arb_value()), 0..3)).prop_map(
        |(key, value, children)| Attribute {
            key,
            value,
            children: children
                .into_iter()
                .map(|(key, value)| Attribute {
                    key,
                    value,
                    children: vec![],
                })
                .collect(),
        },
    )
}

fn arb_log() -> impl Strategy<Value = XesLog> {
    let event = prop::collection::vec(arb_attribute(), 0..3)
        .prop_map(|attributes| XesEvent { attributes });
    let trace = (
        prop::collection::vec(arb_attribute(), 0..2),
        prop::collection::vec(event, 0..5),
    )
        .prop_map(|(attributes, events)| XesTrace { attributes, events });
    (
        prop::collection::vec(arb_attribute(), 0..2),
        prop::collection::vec(trace, 0..5),
    )
        .prop_map(|(attributes, traces)| XesLog {
            version: Some("2.0".into()),
            attributes,
            traces,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn write_parse_roundtrip(log in arb_log()) {
        let text = write_string(&log);
        let parsed = parse_str(&text).expect("own output must parse");
        prop_assert_eq!(parsed, log);
    }

    #[test]
    fn double_roundtrip_is_stable(log in arb_log()) {
        let once = write_string(&log);
        let twice = write_string(&parse_str(&once).unwrap());
        prop_assert_eq!(once, twice);
    }
}

#[test]
fn float_roundtrip_preserves_value_exactly() {
    let log = XesLog {
        version: None,
        attributes: vec![Attribute {
            key: "x".into(),
            value: AttrValue::Float(0.1 + 0.2),
            children: vec![],
        }],
        traces: vec![],
    };
    let parsed = parse_str(&write_string(&log)).unwrap();
    assert_eq!(parsed.attributes[0].value, AttrValue::Float(0.1 + 0.2));
}
