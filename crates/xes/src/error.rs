//! Error taxonomy for XES parsing.

use std::fmt;

/// Result alias for XES operations.
pub type XesResult<T> = Result<T, XesError>;

/// Errors produced while lexing, parsing or validating an XES document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XesError {
    /// Malformed XML at the byte offset: unterminated tag, bad attribute
    /// syntax, invalid entity, etc.
    Syntax {
        /// Byte offset into the input where the error was detected.
        offset: usize,
        /// Human-readable description.
        message: String,
    },
    /// Well-formed XML that is not valid XES (wrong root element, element
    /// nesting that XES forbids, missing required attribute, etc.).
    Structure(String),
    /// Mismatched or unexpected closing tag.
    TagMismatch {
        /// The tag that was open.
        expected: String,
        /// The closing tag that was found.
        found: String,
        /// Byte offset of the closing tag.
        offset: usize,
    },
    /// I/O failure reading or writing a file.
    Io(String),
}

impl fmt::Display for XesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XesError::Syntax { offset, message } => {
                write!(f, "XML syntax error at byte {offset}: {message}")
            }
            XesError::Structure(m) => write!(f, "invalid XES structure: {m}"),
            XesError::TagMismatch {
                expected,
                found,
                offset,
            } => write!(
                f,
                "mismatched closing tag at byte {offset}: expected </{expected}>, found </{found}>"
            ),
            XesError::Io(m) => write!(f, "I/O error: {m}"),
        }
    }
}

impl std::error::Error for XesError {}

impl From<XesError> for ems_error::EmsError {
    fn from(e: XesError) -> Self {
        match e {
            XesError::Syntax { offset, message } => ems_error::EmsError::Parse {
                offset: Some(offset),
                message,
            },
            XesError::TagMismatch { offset, .. } => ems_error::EmsError::Parse {
                offset: Some(offset),
                message: e.to_string(),
            },
            XesError::Structure(message) => ems_error::EmsError::Parse {
                offset: None,
                message,
            },
            XesError::Io(message) => ems_error::EmsError::Io {
                path: String::new(),
                message,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_descriptive() {
        let e = XesError::Syntax {
            offset: 12,
            message: "unterminated tag".into(),
        };
        assert!(e.to_string().contains("byte 12"));
        let e = XesError::TagMismatch {
            expected: "trace".into(),
            found: "log".into(),
            offset: 3,
        };
        assert!(e.to_string().contains("</trace>"));
        assert!(e.to_string().contains("</log>"));
        assert!(XesError::Structure("x".into()).to_string().contains("x"));
        assert!(XesError::Io("gone".into()).to_string().contains("gone"));
    }
}
