//! The XES document model: logs, traces, events, typed attributes.

/// A typed XES attribute value.
///
/// XES defines six elementary types. Dates are kept as their ISO-8601 string
/// representation: the matcher never does date arithmetic, and preserving the
/// exact source text makes serialization lossless.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// `<string>`.
    String(String),
    /// `<date>`, as the verbatim ISO-8601 text.
    Date(String),
    /// `<int>`.
    Int(i64),
    /// `<float>`.
    Float(f64),
    /// `<boolean>`.
    Boolean(bool),
    /// `<id>`.
    Id(String),
}

impl AttrValue {
    /// The XES element name for this value type.
    pub fn tag(&self) -> &'static str {
        match self {
            AttrValue::String(_) => "string",
            AttrValue::Date(_) => "date",
            AttrValue::Int(_) => "int",
            AttrValue::Float(_) => "float",
            AttrValue::Boolean(_) => "boolean",
            AttrValue::Id(_) => "id",
        }
    }

    /// The serialized `value="..."` text.
    pub fn value_text(&self) -> String {
        match self {
            AttrValue::String(s) | AttrValue::Date(s) | AttrValue::Id(s) => s.clone(),
            AttrValue::Int(i) => i.to_string(),
            AttrValue::Float(x) => {
                // Keep floats round-trippable.
                format!("{x:?}")
            }
            AttrValue::Boolean(b) => b.to_string(),
        }
    }

    /// The string payload, if this is a string-like value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            AttrValue::String(s) | AttrValue::Date(s) | AttrValue::Id(s) => Some(s),
            _ => None,
        }
    }
}

/// A keyed XES attribute, possibly with nested child attributes.
#[derive(Debug, Clone, PartialEq)]
pub struct Attribute {
    /// The attribute key, e.g. `concept:name`.
    pub key: String,
    /// The typed value.
    pub value: AttrValue,
    /// Nested attributes (XES allows arbitrary nesting).
    pub children: Vec<Attribute>,
}

impl Attribute {
    /// Creates a string attribute with no children.
    pub fn string(key: impl Into<String>, value: impl Into<String>) -> Self {
        Attribute {
            key: key.into(),
            value: AttrValue::String(value.into()),
            children: Vec::new(),
        }
    }
}

/// Searches `attrs` for the first attribute with `key` and returns its string
/// payload.
pub(crate) fn find_string<'a>(attrs: &'a [Attribute], key: &str) -> Option<&'a str> {
    attrs
        .iter()
        .find(|a| a.key == key)
        .and_then(|a| a.value.as_str())
}

/// An XES event: a bag of attributes. `concept:name` identifies the activity.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct XesEvent {
    /// The event's attributes.
    pub attributes: Vec<Attribute>,
}

impl XesEvent {
    /// Creates an event with just a `concept:name`.
    pub fn named(name: impl Into<String>) -> Self {
        XesEvent {
            attributes: vec![Attribute::string("concept:name", name)],
        }
    }

    /// The `concept:name` of the event, if present.
    pub fn name(&self) -> Option<&str> {
        find_string(&self.attributes, "concept:name")
    }
}

/// An XES trace: trace-level attributes plus an ordered list of events.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct XesTrace {
    /// Trace-level attributes (e.g. the case id under `concept:name`).
    pub attributes: Vec<Attribute>,
    /// The events of the trace, in order.
    pub events: Vec<XesEvent>,
}

impl XesTrace {
    /// The `concept:name` (case id) of the trace, if present.
    pub fn name(&self) -> Option<&str> {
        find_string(&self.attributes, "concept:name")
    }
}

/// An XES log document.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct XesLog {
    /// The `xes.version` root attribute, if present.
    pub version: Option<String>,
    /// Log-level attributes.
    pub attributes: Vec<Attribute>,
    /// The traces of the log.
    pub traces: Vec<XesTrace>,
}

impl XesLog {
    /// The `concept:name` of the log, if present.
    pub fn name(&self) -> Option<&str> {
        find_string(&self.attributes, "concept:name")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_text_roundtrips_types() {
        assert_eq!(AttrValue::Int(-3).value_text(), "-3");
        assert_eq!(AttrValue::Boolean(true).value_text(), "true");
        assert_eq!(AttrValue::Float(0.5).value_text(), "0.5");
        assert_eq!(AttrValue::String("x".into()).value_text(), "x");
        assert_eq!(AttrValue::Int(1).tag(), "int");
        assert_eq!(AttrValue::Id("i".into()).tag(), "id");
    }

    #[test]
    fn event_name_reads_concept_name() {
        let e = XesEvent::named("Ship Goods");
        assert_eq!(e.name(), Some("Ship Goods"));
        assert_eq!(XesEvent::default().name(), None);
    }

    #[test]
    fn trace_and_log_names() {
        let mut t = XesTrace::default();
        t.attributes
            .push(Attribute::string("concept:name", "case-9"));
        assert_eq!(t.name(), Some("case-9"));
        let mut l = XesLog::default();
        assert_eq!(l.name(), None);
        l.attributes
            .push(Attribute::string("concept:name", "orders"));
        assert_eq!(l.name(), Some("orders"));
    }

    #[test]
    fn as_str_only_for_stringlike() {
        assert_eq!(
            AttrValue::Date("2014-06-22".into()).as_str(),
            Some("2014-06-22")
        );
        assert_eq!(AttrValue::Int(5).as_str(), None);
    }
}
