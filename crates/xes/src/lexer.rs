//! A minimal streaming XML tokenizer covering the subset XES documents use.
//!
//! Supported constructs: start/end/self-closing tags with double- or
//! single-quoted attributes, character data, comments, CDATA sections,
//! processing instructions / XML declarations, DOCTYPE declarations (skipped),
//! the five predefined entities and decimal/hex character references.
//!
//! The tokenizer is pull-based: [`Lexer::next_token`] yields one [`Token`]
//! at a time with its byte offset, which keeps memory constant in the
//! document size apart from the token being produced.

use crate::error::{XesError, XesResult};

/// One XML attribute (`key="value"`), entity references already resolved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlAttr {
    /// The attribute name, including any namespace prefix.
    pub name: String,
    /// The attribute value with entities decoded.
    pub value: String,
}

/// A token produced by the [`Lexer`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// `<name attr="v" ...>` — `self_closing` is true for `<name ... />`.
    StartTag {
        /// Element name.
        name: String,
        /// Attributes in document order.
        attrs: Vec<XmlAttr>,
        /// Whether the tag ends with `/>`.
        self_closing: bool,
    },
    /// `</name>`.
    EndTag {
        /// Element name.
        name: String,
    },
    /// Character data between tags with entities decoded; whitespace-only
    /// runs are skipped by the lexer.
    Text(String),
    /// End of input.
    Eof,
}

/// Pull-based tokenizer over a UTF-8 XML document.
#[derive(Debug)]
pub struct Lexer<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    /// Creates a lexer over `input`.
    pub fn new(input: &'a str) -> Self {
        Lexer {
            input: input.as_bytes(),
            pos: 0,
        }
    }

    /// Current byte offset (for error reporting).
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// Re-synchronizes after a tokenization error: advances to the next `<`
    /// (or EOF) so recovery-mode parsing can resume at a tag boundary.
    ///
    /// Guarantees progress in combination with [`next_token`](Self::next_token):
    /// a failing `next_token` always consumes at least the `<` it started on,
    /// and `resync` consumes everything up to the next tag boundary.
    pub fn resync(&mut self) {
        while let Some(b) = self.peek() {
            if b == b'<' {
                return;
            }
            self.pos += 1;
        }
    }

    fn err(&self, message: impl Into<String>) -> XesError {
        XesError::Syntax {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn eat_str(&mut self, s: &str) -> bool {
        if self.input[self.pos..].starts_with(s.as_bytes()) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn skip_until(&mut self, terminator: &str) -> XesResult<()> {
        match find_sub(&self.input[self.pos..], terminator.as_bytes()) {
            Some(i) => {
                self.pos += i + terminator.len();
                Ok(())
            }
            None => Err(self.err(format!("unterminated construct, expected `{terminator}`"))),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    /// Produces the next token, skipping comments, PIs, DOCTYPE and
    /// whitespace-only text.
    pub fn next_token(&mut self) -> XesResult<(usize, Token)> {
        loop {
            let start = self.pos;
            match self.peek() {
                None => return Ok((start, Token::Eof)),
                Some(b'<') => {
                    if self.eat_str("<!--") {
                        self.skip_until("-->")?;
                        continue;
                    }
                    if self.eat_str("<![CDATA[") {
                        let rest = &self.input[self.pos..];
                        let end = find_sub(rest, b"]]>")
                            .ok_or_else(|| self.err("unterminated CDATA section"))?;
                        let text = std::str::from_utf8(&rest[..end])
                            .map_err(|_| self.err("CDATA is not valid UTF-8"))?
                            .to_owned();
                        self.pos += end + 3;
                        return Ok((start, Token::Text(text)));
                    }
                    if self.eat_str("<!DOCTYPE") || self.eat_str("<!doctype") {
                        // XES never uses internal subsets; skip to `>`.
                        self.skip_until(">")?;
                        continue;
                    }
                    if self.eat_str("<?") {
                        self.skip_until("?>")?;
                        continue;
                    }
                    if self.eat_str("</") {
                        let name = self.lex_name()?;
                        self.skip_ws();
                        if self.bump() != Some(b'>') {
                            return Err(self.err("expected `>` after closing tag name"));
                        }
                        return Ok((start, Token::EndTag { name }));
                    }
                    self.pos += 1; // consume '<'
                    return Ok((start, self.lex_start_tag()?));
                }
                Some(_) => {
                    let text = self.lex_text()?;
                    if text.chars().all(char::is_whitespace) {
                        continue;
                    }
                    return Ok((start, Token::Text(text)));
                }
            }
        }
    }

    fn lex_start_tag(&mut self) -> XesResult<Token> {
        let name = self.lex_name()?;
        let mut attrs = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'>') => {
                    self.pos += 1;
                    return Ok(Token::StartTag {
                        name,
                        attrs,
                        self_closing: false,
                    });
                }
                Some(b'/') => {
                    self.pos += 1;
                    if self.bump() != Some(b'>') {
                        return Err(self.err("expected `>` after `/` in self-closing tag"));
                    }
                    return Ok(Token::StartTag {
                        name,
                        attrs,
                        self_closing: true,
                    });
                }
                Some(_) => {
                    let attr_name = self.lex_name()?;
                    self.skip_ws();
                    if self.bump() != Some(b'=') {
                        return Err(self.err(format!("expected `=` after attribute `{attr_name}`")));
                    }
                    self.skip_ws();
                    let quote = match self.bump() {
                        Some(q @ (b'"' | b'\'')) => q,
                        _ => return Err(self.err("attribute value must be quoted")),
                    };
                    let rest = &self.input[self.pos..];
                    let end = rest
                        .iter()
                        .position(|&b| b == quote)
                        .ok_or_else(|| self.err("unterminated attribute value"))?;
                    let raw = std::str::from_utf8(&rest[..end])
                        .map_err(|_| self.err("attribute value is not valid UTF-8"))?;
                    let value = decode_entities(raw)
                        .map_err(|m| self.err(format!("in attribute `{attr_name}`: {m}")))?;
                    self.pos += end + 1;
                    attrs.push(XmlAttr {
                        name: attr_name,
                        value,
                    });
                }
                None => return Err(self.err("unterminated start tag")),
            }
        }
    }

    fn lex_name(&mut self) -> XesResult<String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            let ok = b.is_ascii_alphanumeric() || matches!(b, b':' | b'_' | b'-' | b'.');
            // Accept any non-ASCII byte as a name character: XML names allow
            // a wide range of Unicode, and XES keys may carry it.
            if ok || b >= 0x80 {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        std::str::from_utf8(&self.input[start..self.pos])
            .map(str::to_owned)
            .map_err(|_| self.err("name is not valid UTF-8"))
    }

    fn lex_text(&mut self) -> XesResult<String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == b'<' {
                break;
            }
            self.pos += 1;
        }
        let raw = std::str::from_utf8(&self.input[start..self.pos])
            .map_err(|_| self.err("text is not valid UTF-8"))?;
        decode_entities(raw).map_err(|m| XesError::Syntax {
            offset: start,
            message: m,
        })
    }
}

fn find_sub(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

/// Decodes the five predefined XML entities and numeric character references.
pub fn decode_entities(s: &str) -> Result<String, String> {
    if !s.contains('&') {
        return Ok(s.to_owned());
    }
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(amp) = rest.find('&') {
        out.push_str(&rest[..amp]);
        rest = &rest[amp..];
        let semi = rest
            .find(';')
            .ok_or_else(|| "unterminated entity reference".to_owned())?;
        let ent = &rest[1..semi];
        match ent {
            "amp" => out.push('&'),
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            _ if ent.starts_with("#x") || ent.starts_with("#X") => {
                let code = u32::from_str_radix(&ent[2..], 16)
                    .map_err(|_| format!("bad hex character reference `&{ent};`"))?;
                out.push(
                    char::from_u32(code)
                        .ok_or_else(|| format!("invalid code point in `&{ent};`"))?,
                );
            }
            _ if ent.starts_with('#') => {
                let code: u32 = ent[1..]
                    .parse()
                    .map_err(|_| format!("bad character reference `&{ent};`"))?;
                out.push(
                    char::from_u32(code)
                        .ok_or_else(|| format!("invalid code point in `&{ent};`"))?,
                );
            }
            _ => return Err(format!("unknown entity `&{ent};`")),
        }
        rest = &rest[semi + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

/// Encodes text for inclusion in XML character data or attribute values.
pub fn encode_entities(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            _ => out.push(ch),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_tokens(s: &str) -> Vec<Token> {
        let mut lx = Lexer::new(s);
        let mut toks = Vec::new();
        loop {
            let (_, t) = lx.next_token().unwrap();
            let eof = t == Token::Eof;
            toks.push(t);
            if eof {
                break;
            }
        }
        toks
    }

    #[test]
    fn lexes_simple_element() {
        let toks = all_tokens("<a>hi</a>");
        assert_eq!(
            toks,
            vec![
                Token::StartTag {
                    name: "a".into(),
                    attrs: vec![],
                    self_closing: false
                },
                Token::Text("hi".into()),
                Token::EndTag { name: "a".into() },
                Token::Eof
            ]
        );
    }

    #[test]
    fn lexes_attributes_with_both_quote_styles() {
        let toks = all_tokens(r#"<e key="concept:name" value='Paid &amp; Shipped'/>"#);
        match &toks[0] {
            Token::StartTag {
                name,
                attrs,
                self_closing,
            } => {
                assert_eq!(name, "e");
                assert!(self_closing);
                assert_eq!(attrs[0].name, "key");
                assert_eq!(attrs[0].value, "concept:name");
                assert_eq!(attrs[1].value, "Paid & Shipped");
            }
            t => panic!("unexpected token {t:?}"),
        }
    }

    #[test]
    fn skips_declaration_comment_doctype_and_whitespace() {
        let toks =
            all_tokens("<?xml version=\"1.0\"?>\n<!DOCTYPE log>\n<!-- a comment -->\n  <log/>  ");
        assert_eq!(toks.len(), 2);
        assert!(matches!(&toks[0], Token::StartTag { name, .. } if name == "log"));
    }

    #[test]
    fn cdata_is_verbatim_text() {
        let toks = all_tokens("<a><![CDATA[<not a tag> & raw]]></a>");
        assert_eq!(toks[1], Token::Text("<not a tag> & raw".into()));
    }

    #[test]
    fn numeric_character_references() {
        assert_eq!(decode_entities("&#65;&#x42;").unwrap(), "AB");
        assert_eq!(decode_entities("caf&#xE9;").unwrap(), "café");
    }

    #[test]
    fn unknown_entity_is_an_error() {
        assert!(decode_entities("&nbsp;").is_err());
        assert!(decode_entities("&unterminated").is_err());
    }

    #[test]
    fn unterminated_tag_reports_offset() {
        let mut lx = Lexer::new("<log key=\"v");
        let err = lx.next_token().unwrap_err();
        assert!(matches!(err, XesError::Syntax { .. }));
    }

    #[test]
    fn unterminated_comment_is_an_error() {
        let mut lx = Lexer::new("<!-- never ends");
        assert!(lx.next_token().is_err());
    }

    #[test]
    fn encode_decode_roundtrip() {
        let original = r#"a<b>&"quote"&'apos'"#;
        assert_eq!(
            decode_entities(&encode_entities(original)).unwrap(),
            original
        );
    }

    #[test]
    fn unicode_in_names_and_text() {
        let toks = all_tokens("<日志>文本</日志>");
        assert!(matches!(&toks[0], Token::StartTag { name, .. } if name == "日志"));
        assert_eq!(toks[1], Token::Text("文本".into()));
    }

    #[test]
    fn mismatched_quote_is_unterminated() {
        let mut lx = Lexer::new("<a k=\"v'>");
        assert!(lx.next_token().is_err());
    }
}
