//! MXML support — the legacy ProM log format that predates XES.
//!
//! Many of the OA systems the paper surveys were built in the early 2000s;
//! their exporters produce MXML (`<WorkflowLog>` / `<Process>` /
//! `<ProcessInstance>` / `<AuditTrailEntry>`) rather than XES. This module
//! parses the MXML subset those exporters emit, reusing the same hand-written
//! XML [`lexer`](crate::lexer), and serializes back.
//!
//! Mapping onto the event model:
//!
//! * each `<ProcessInstance>` is a trace;
//! * each `<AuditTrailEntry>` with a `<WorkflowModelElement>` is one event,
//!   classified by the element name;
//! * entries whose `<EventType>` is present but not `complete` are skipped
//!   by [`to_event_log_complete_only`] (the usual process-mining convention:
//!   one event per completed activity) and kept by [`to_event_log`].

use crate::error::{XesError, XesResult};
use crate::lexer::{encode_entities, Lexer, Token};
use ems_events::EventLog;
use std::fmt::Write as _;

/// One audit-trail entry of a process instance.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MxmlEntry {
    /// The `<WorkflowModelElement>` text: the activity name.
    pub element: String,
    /// The `<EventType>` text (e.g. `start`, `complete`), if present.
    pub event_type: Option<String>,
    /// The `<Timestamp>` text, if present (kept verbatim).
    pub timestamp: Option<String>,
    /// The `<Originator>` text, if present.
    pub originator: Option<String>,
}

/// One `<ProcessInstance>`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MxmlInstance {
    /// The instance `id` attribute, if present.
    pub id: Option<String>,
    /// The audit-trail entries in document order.
    pub entries: Vec<MxmlEntry>,
}

/// A parsed MXML document (one `<Process>` of a `<WorkflowLog>`; multiple
/// processes are concatenated).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MxmlLog {
    /// The process `id`/`description`, if present.
    pub process: Option<String>,
    /// The process instances.
    pub instances: Vec<MxmlInstance>,
}

/// Parses an MXML document from a string.
pub fn parse_mxml(input: &str) -> XesResult<MxmlLog> {
    let mut lexer = Lexer::new(input);
    let mut log = MxmlLog::default();
    // States while descending; we only track what we need.
    let mut instance: Option<MxmlInstance> = None;
    let mut entry: Option<MxmlEntry> = None;
    let mut text_target: Option<TextTarget> = None;
    let mut saw_root = false;

    loop {
        let (offset, tok) = lexer.next_token()?;
        match tok {
            Token::StartTag {
                name,
                attrs,
                self_closing,
            } => match name.as_str() {
                "WorkflowLog" => saw_root = true,
                "Process" => {
                    log.process = attrs
                        .iter()
                        .find(|a| a.name == "id" || a.name == "description")
                        .map(|a| a.value.clone());
                }
                "ProcessInstance" => {
                    let inst = MxmlInstance {
                        id: attrs
                            .iter()
                            .find(|a| a.name == "id")
                            .map(|a| a.value.clone()),
                        entries: Vec::new(),
                    };
                    if self_closing {
                        log.instances.push(inst);
                    } else {
                        instance = Some(inst);
                    }
                }
                "AuditTrailEntry" if !self_closing => {
                    entry = Some(MxmlEntry::default());
                }
                "WorkflowModelElement" => text_target = Some(TextTarget::Element),
                "EventType" => text_target = Some(TextTarget::EventType),
                "Timestamp" => text_target = Some(TextTarget::Timestamp),
                "Originator" => text_target = Some(TextTarget::Originator),
                _ => {} // Data, Attribute, Source vendor blocks: text ignored
            },
            Token::Text(text) => {
                if let (Some(target), Some(e)) = (text_target, entry.as_mut()) {
                    let text = text.trim().to_owned();
                    match target {
                        TextTarget::Element => e.element = text,
                        TextTarget::EventType => e.event_type = Some(text),
                        TextTarget::Timestamp => e.timestamp = Some(text),
                        TextTarget::Originator => e.originator = Some(text),
                    }
                }
            }
            Token::EndTag { name } => match name.as_str() {
                "WorkflowModelElement" | "EventType" | "Timestamp" | "Originator" => {
                    text_target = None;
                }
                "AuditTrailEntry" => {
                    let e = entry.take().ok_or(XesError::TagMismatch {
                        expected: "AuditTrailEntry".into(),
                        found: name,
                        offset,
                    })?;
                    if let Some(inst) = instance.as_mut() {
                        inst.entries.push(e);
                    }
                }
                "ProcessInstance" => {
                    let inst = instance.take().ok_or(XesError::TagMismatch {
                        expected: "ProcessInstance".into(),
                        found: name,
                        offset,
                    })?;
                    log.instances.push(inst);
                }
                _ => {}
            },
            Token::Eof => break,
        }
    }
    if !saw_root {
        return Err(XesError::Structure(
            "MXML document has no <WorkflowLog> root".into(),
        ));
    }
    if instance.is_some() || entry.is_some() {
        return Err(XesError::Structure(
            "unclosed <ProcessInstance> or <AuditTrailEntry>".into(),
        ));
    }
    Ok(log)
}

#[derive(Debug, Clone, Copy)]
enum TextTarget {
    Element,
    EventType,
    Timestamp,
    Originator,
}

/// Serializes an [`MxmlLog`] back to MXML text (accepted by [`parse_mxml`]).
pub fn write_mxml(log: &MxmlLog) -> String {
    let mut out = String::new();
    out.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<WorkflowLog>\n");
    let _ = writeln!(
        out,
        "  <Process id=\"{}\">",
        encode_entities(log.process.as_deref().unwrap_or("process"))
    );
    for (i, inst) in log.instances.iter().enumerate() {
        let id = inst.id.clone().unwrap_or_else(|| format!("case-{}", i + 1));
        let _ = writeln!(out, "    <ProcessInstance id=\"{}\">", encode_entities(&id));
        for e in &inst.entries {
            out.push_str("      <AuditTrailEntry>\n");
            let _ = writeln!(
                out,
                "        <WorkflowModelElement>{}</WorkflowModelElement>",
                encode_entities(&e.element)
            );
            if let Some(t) = &e.event_type {
                let _ = writeln!(out, "        <EventType>{}</EventType>", encode_entities(t));
            }
            if let Some(t) = &e.timestamp {
                let _ = writeln!(out, "        <Timestamp>{}</Timestamp>", encode_entities(t));
            }
            if let Some(o) = &e.originator {
                let _ = writeln!(
                    out,
                    "        <Originator>{}</Originator>",
                    encode_entities(o)
                );
            }
            out.push_str("      </AuditTrailEntry>\n");
        }
        out.push_str("    </ProcessInstance>\n");
    }
    out.push_str("  </Process>\n</WorkflowLog>\n");
    out
}

/// Projects an MXML log onto the matcher's [`EventLog`], keeping every
/// audit-trail entry as an event.
pub fn to_event_log(log: &MxmlLog) -> EventLog {
    project(log, false)
}

/// As [`to_event_log`], but keeping only entries whose `<EventType>` is
/// absent or `complete` (case-insensitive) — the standard one-event-per-
/// activity view.
pub fn to_event_log_complete_only(log: &MxmlLog) -> EventLog {
    project(log, true)
}

fn project(log: &MxmlLog, complete_only: bool) -> EventLog {
    let mut out = match &log.process {
        Some(p) => EventLog::with_name(p.clone()),
        None => EventLog::new(),
    };
    for inst in &log.instances {
        let events = inst.entries.iter().filter(|e| {
            !complete_only
                || e.event_type
                    .as_deref()
                    .map(|t| t.eq_ignore_ascii_case("complete"))
                    .unwrap_or(true)
        });
        out.push_trace(events.map(|e| e.element.as_str()));
    }
    out
}

/// Builds an MXML document from an [`EventLog`] (entries typed `complete`).
pub fn from_event_log(log: &EventLog) -> MxmlLog {
    MxmlLog {
        process: log.name().map(str::to_owned),
        instances: log
            .traces()
            .iter()
            .enumerate()
            .map(|(i, t)| MxmlInstance {
                id: Some(format!("case-{}", i + 1)),
                entries: t
                    .events()
                    .iter()
                    .map(|&e| MxmlEntry {
                        element: log.name_of(e).to_owned(),
                        event_type: Some("complete".into()),
                        timestamp: None,
                        originator: None,
                    })
                    .collect(),
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"<?xml version="1.0"?>
<WorkflowLog>
  <Source program="legacy OA exporter"/>
  <Process id="turbine orders" description="order processing">
    <ProcessInstance id="case-1">
      <AuditTrailEntry>
        <WorkflowModelElement>Paid by Cash</WorkflowModelElement>
        <EventType>start</EventType>
        <Timestamp>2003-06-22T10:00:00</Timestamp>
      </AuditTrailEntry>
      <AuditTrailEntry>
        <WorkflowModelElement>Paid by Cash</WorkflowModelElement>
        <EventType>complete</EventType>
        <Originator>clerk-7</Originator>
      </AuditTrailEntry>
      <AuditTrailEntry>
        <WorkflowModelElement>Ship &amp; Email</WorkflowModelElement>
        <EventType>complete</EventType>
      </AuditTrailEntry>
    </ProcessInstance>
    <ProcessInstance id="case-2"/>
  </Process>
</WorkflowLog>"#;

    #[test]
    fn parses_the_legacy_shape() {
        let log = parse_mxml(SAMPLE).unwrap();
        assert_eq!(log.process.as_deref(), Some("turbine orders"));
        assert_eq!(log.instances.len(), 2);
        let i0 = &log.instances[0];
        assert_eq!(i0.id.as_deref(), Some("case-1"));
        assert_eq!(i0.entries.len(), 3);
        assert_eq!(i0.entries[0].element, "Paid by Cash");
        assert_eq!(i0.entries[0].event_type.as_deref(), Some("start"));
        assert_eq!(
            i0.entries[0].timestamp.as_deref(),
            Some("2003-06-22T10:00:00")
        );
        assert_eq!(i0.entries[1].originator.as_deref(), Some("clerk-7"));
        assert_eq!(i0.entries[2].element, "Ship & Email");
        assert!(log.instances[1].entries.is_empty());
    }

    #[test]
    fn complete_only_projection_drops_start_events() {
        let log = parse_mxml(SAMPLE).unwrap();
        let all = to_event_log(&log);
        let complete = to_event_log_complete_only(&log);
        assert_eq!(all.traces()[0].len(), 3);
        assert_eq!(complete.traces()[0].len(), 2);
        assert_eq!(complete.name(), Some("turbine orders"));
    }

    #[test]
    fn roundtrip_preserves_model() {
        let log = parse_mxml(SAMPLE).unwrap();
        let text = write_mxml(&log);
        let back = parse_mxml(&text).unwrap();
        assert_eq!(back, log);
    }

    #[test]
    fn event_log_roundtrip() {
        let mut log = EventLog::with_name("demo");
        log.push_trace(["a", "b"]);
        log.push_trace(["b"]);
        let mxml = from_event_log(&log);
        let back = to_event_log_complete_only(&parse_mxml(&write_mxml(&mxml)).unwrap());
        assert_eq!(back.num_traces(), 2);
        assert_eq!(back.alphabet_size(), 2);
        assert_eq!(back.traces()[0].len(), 2);
    }

    #[test]
    fn missing_root_is_an_error() {
        assert!(matches!(
            parse_mxml("<Process/>"),
            Err(XesError::Structure(_))
        ));
    }

    #[test]
    fn unclosed_instance_is_an_error() {
        let bad = "<WorkflowLog><Process><ProcessInstance id=\"x\"></Process></WorkflowLog>";
        // The stray </Process> does not close the instance; EOF leaves it open.
        assert!(parse_mxml(bad).is_err());
    }

    #[test]
    fn vendor_blocks_are_ignored() {
        let xml = r#"<WorkflowLog>
          <Source program="x"><Data><Attribute name="k">v</Attribute></Data></Source>
          <Process><ProcessInstance>
            <AuditTrailEntry>
              <Data><Attribute name="noise">zzz</Attribute></Data>
              <WorkflowModelElement>real</WorkflowModelElement>
            </AuditTrailEntry>
          </ProcessInstance></Process>
        </WorkflowLog>"#;
        let log = parse_mxml(xml).unwrap();
        assert_eq!(log.instances[0].entries[0].element, "real");
    }
}
