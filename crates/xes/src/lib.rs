#![forbid(unsafe_code)]
//! Hand-written XES event-log parser and serializer.
//!
//! [XES](https://xes-standard.org/) (eXtensible Event Stream) is the IEEE
//! standard interchange format for process event logs. The paper's event
//! logs come from OA systems that export XES/MXML; since this reproduction
//! may not take an XML dependency, this crate implements the XML subset XES
//! needs by hand:
//!
//! * a streaming tokenizer ([`lexer`]) for tags, attributes, text, comments,
//!   CDATA, processing instructions and the five predefined entities plus
//!   numeric character references;
//! * a recursive-descent parser building the model tree
//!   (`log` → `trace` → `event`, each with typed attributes);
//! * a serializer producing valid XES accepted back by the
//!   parser (round-trip tested, including property tests);
//! * a converter projecting an XES document onto the
//!   [`ems_events::EventLog`] model using the `concept:name` attribute as
//!   the event classifier;
//! * an [`mxml`] module for the legacy ProM MXML format, which early-2000s
//!   OA systems (like those the paper surveys) export.
//!
//! # Example
//!
//! ```
//! let xml = r#"<?xml version="1.0" encoding="UTF-8"?>
//! <log xes.version="2.0">
//!   <trace>
//!     <string key="concept:name" value="case-1"/>
//!     <event><string key="concept:name" value="Order Accepted"/></event>
//!     <event><string key="concept:name" value="Paid by Cash"/></event>
//!   </trace>
//! </log>"#;
//! let log = ems_xes::parse_str(xml).unwrap();
//! let event_log = ems_xes::to_event_log(&log);
//! assert_eq!(event_log.num_traces(), 1);
//! assert_eq!(event_log.alphabet_size(), 2);
//! ```

#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

mod convert;
mod error;
pub mod lexer;
mod model;
pub mod mxml;
mod parser;
pub mod recover;
pub mod streaming;
mod writer;

pub use convert::{from_event_log, to_event_log};
pub use error::{XesError, XesResult};
pub use model::{AttrValue, Attribute, XesEvent, XesLog, XesTrace};
pub use parser::parse_str;
pub use recover::{
    parse_event_log_recovering, parse_mxml_recovering, record_ingestion, ParseMode, Recovered,
    Warning, WarningKind,
};
pub use streaming::parse_event_log;
pub use writer::write_string;

use std::path::Path;

/// The two log interchange formats this crate reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogFormat {
    /// IEEE XES (`<log>` root).
    Xes,
    /// Legacy ProM MXML (`<WorkflowLog>` root).
    Mxml,
}

/// Sniffs whether `text` is XES or MXML by its root element. Defaults to XES
/// when neither root is recognizable (strict parsing will then produce a
/// precise error; recovery will salvage whatever trace structure exists).
pub fn detect_format(text: &str) -> LogFormat {
    let xes = text.find("<log");
    let mxml = text.find("<WorkflowLog");
    match (xes, mxml) {
        (Some(x), Some(m)) => {
            if m < x {
                LogFormat::Mxml
            } else {
                LogFormat::Xes
            }
        }
        (None, Some(_)) => LogFormat::Mxml,
        _ => LogFormat::Xes,
    }
}

/// Loads an event log from disk, auto-detecting XES vs MXML.
///
/// In [`ParseMode::Strict`], any malformation aborts with a typed
/// [`XesError`] and the returned warning list is empty. In
/// [`ParseMode::Recovery`], malformed regions are skipped and reported as
/// [`Warning`]s; only I/O failures are errors. MXML audit-trail entries are
/// projected complete-only (the standard one-event-per-activity view) in
/// both modes.
pub fn load_event_log(path: impl AsRef<Path>, mode: ParseMode) -> XesResult<Recovered> {
    let text = std::fs::read_to_string(path.as_ref())
        .map_err(|e| XesError::Io(format!("{}: {e}", path.as_ref().display())))?;
    load_event_log_str(&text, mode)
}

/// As [`load_event_log`], over already-read text.
pub fn load_event_log_str(text: &str, mode: ParseMode) -> XesResult<Recovered> {
    match (detect_format(text), mode) {
        (LogFormat::Xes, ParseMode::Strict) => Ok(Recovered {
            log: parse_event_log(text)?,
            warnings: Vec::new(),
        }),
        (LogFormat::Xes, ParseMode::Recovery) => Ok(parse_event_log_recovering(text)),
        (LogFormat::Mxml, ParseMode::Strict) => Ok(Recovered {
            log: mxml::to_event_log_complete_only(&mxml::parse_mxml(text)?),
            warnings: Vec::new(),
        }),
        (LogFormat::Mxml, ParseMode::Recovery) => {
            let (m, warnings) = parse_mxml_recovering(text);
            Ok(Recovered {
                log: mxml::to_event_log_complete_only(&m),
                warnings,
            })
        }
    }
}

/// Parses an XES file from disk.
pub fn parse_file(path: impl AsRef<Path>) -> XesResult<XesLog> {
    let text = std::fs::read_to_string(path.as_ref())
        .map_err(|e| XesError::Io(format!("{}: {e}", path.as_ref().display())))?;
    parse_str(&text)
}

/// Serializes an XES document to a file on disk.
pub fn write_file(log: &XesLog, path: impl AsRef<Path>) -> XesResult<()> {
    std::fs::write(path.as_ref(), write_string(log))
        .map_err(|e| XesError::Io(format!("{}: {e}", path.as_ref().display())))
}
