//! Recovering ingestion: parse damaged XES/MXML and keep what can be kept.
//!
//! Real OA exports are frequently truncated, mis-nested, or corrupted in
//! transit; the matcher downstream works on *frequencies over traces*, so a
//! partial log is far more useful than no log. This module re-runs the
//! streaming state machines of [`crate::streaming`] and [`crate::mxml`] in a
//! mode where every error becomes a structured [`Warning`] instead of
//! aborting the load:
//!
//! * tokenizer errors re-synchronize at the next tag boundary
//!   ([`crate::lexer::Lexer::resync`]) and drop only the garbled region;
//! * mis-nested elements are repaired by implicitly closing what the
//!   document forgot to close;
//! * truncated documents commit whatever trace was open at EOF.
//!
//! The result is a [`Recovered`] log plus the warning report, so callers can
//! decide whether the damage was acceptable.

use crate::error::XesError;
use crate::lexer::{Lexer, Token};
use crate::mxml::{MxmlEntry, MxmlInstance, MxmlLog};
use ems_events::{EventLog, LogBuilder};

/// How the loaders treat malformed input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ParseMode {
    /// Any malformation aborts the load with a typed [`XesError`].
    #[default]
    Strict,
    /// Malformed regions are skipped and reported as [`Warning`]s; the load
    /// always produces a (possibly empty) partial log.
    Recovery,
}

/// What went wrong at one point of a damaged document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WarningKind {
    /// The tokenizer hit malformed XML and re-synchronized at the next tag.
    Syntax {
        /// Description of the malformation.
        message: String,
    },
    /// A closing tag did not match the open element; the open element was
    /// closed implicitly.
    TagMismatch {
        /// The element that was open.
        expected: String,
        /// The closing tag that was found.
        found: String,
    },
    /// An element appeared where the format forbids it and was repaired or
    /// skipped.
    Structure {
        /// Description of the violation.
        message: String,
    },
    /// A typed attribute was unusable (e.g. missing its `key`).
    BadAttribute {
        /// Description of the problem.
        message: String,
    },
    /// The document ended with elements still open; the open trace was
    /// committed as-is.
    Truncated,
}

impl WarningKind {
    /// Stable telemetry label for this warning category — used as the
    /// `kind` label of the `xes_warnings` counter.
    pub fn label(&self) -> &'static str {
        match self {
            WarningKind::Syntax { .. } => "syntax",
            WarningKind::TagMismatch { .. } => "tag-mismatch",
            WarningKind::Structure { .. } => "structure",
            WarningKind::BadAttribute { .. } => "bad-attribute",
            WarningKind::Truncated => "truncated",
        }
    }
}

/// One recovery diagnostic: where the damage was and what was done about it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Warning {
    /// Byte offset into the input, when the tokenizer could attribute one.
    pub offset: Option<usize>,
    /// Index of the trace being parsed when the damage was found, if any.
    pub trace: Option<usize>,
    /// The category and details of the damage.
    pub kind: WarningKind,
}

impl std::fmt::Display for Warning {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.kind {
            WarningKind::Syntax { message } => write!(f, "syntax: {message}")?,
            WarningKind::TagMismatch { expected, found } => {
                write!(f, "expected </{expected}>, found </{found}>")?
            }
            WarningKind::Structure { message } => write!(f, "structure: {message}")?,
            WarningKind::BadAttribute { message } => write!(f, "attribute: {message}")?,
            WarningKind::Truncated => write!(f, "document truncated")?,
        }
        if let Some(o) = self.offset {
            write!(f, " (byte {o})")?;
        }
        if let Some(t) = self.trace {
            write!(f, " (trace {t})")?;
        }
        Ok(())
    }
}

/// A partially recovered event log with its damage report.
#[derive(Debug, Clone, PartialEq)]
pub struct Recovered {
    /// The events that could be salvaged.
    pub log: EventLog,
    /// Every repair made along the way; empty means the document was clean.
    pub warnings: Vec<Warning>,
}

impl Recovered {
    /// Whether the document parsed without a single repair.
    pub fn is_clean(&self) -> bool {
        self.warnings.is_empty()
    }
}

/// Tallies `warnings` by [`WarningKind::label`] into the recorder as
/// `xes_warnings{kind, log}` counters (plus an `xes_traces{log}` gauge for
/// the salvaged trace count). Emission order is sorted by kind label, so
/// identical ingestions produce identical traces.
pub fn record_ingestion(recorder: &ems_obs::Recorder, log_label: &str, recovered: &Recovered) {
    let mut by_kind: std::collections::BTreeMap<&'static str, u64> =
        std::collections::BTreeMap::new();
    for w in &recovered.warnings {
        *by_kind.entry(w.kind.label()).or_insert(0) += 1;
    }
    for (kind, count) in by_kind {
        recorder.counter_add(
            "xes_warnings",
            vec![
                ("kind".to_string(), kind.to_string()),
                ("log".to_string(), log_label.to_string()),
            ],
            count,
        );
    }
    recorder.gauge_set(
        "xes_traces",
        vec![("log".to_string(), log_label.to_string())],
        recovered.log.num_traces() as f64,
    );
}

/// Converts a strict-mode error into the equivalent recovery warning.
fn warn_of(e: XesError, trace: Option<usize>) -> Warning {
    match e {
        XesError::Syntax { offset, message } => Warning {
            offset: Some(offset),
            trace,
            kind: WarningKind::Syntax { message },
        },
        XesError::TagMismatch {
            expected,
            found,
            offset,
        } => Warning {
            offset: Some(offset),
            trace,
            kind: WarningKind::TagMismatch { expected, found },
        },
        XesError::Structure(message) | XesError::Io(message) => Warning {
            offset: None,
            trace,
            kind: WarningKind::Structure { message },
        },
    }
}

/// Parses XES text into an [`EventLog`], skipping and reporting damaged
/// regions instead of failing. Never returns an error: the worst possible
/// input yields an empty log and a warning per damaged region.
///
/// Classification matches [`crate::parse_event_log`]: events are named by
/// their top-level `concept:name` (or `"<unnamed>"`), the log by its own
/// `concept:name` attribute.
pub fn parse_event_log_recovering(input: &str) -> Recovered {
    let mut lexer = Lexer::new(input);
    let mut warnings: Vec<Warning> = Vec::new();
    let mut builder = LogBuilder::new();
    let mut log_name: Option<String> = None;

    let mut in_log = false;
    let mut in_trace = false;
    let mut in_event = false;
    let mut root_closed = false;
    let mut event_name: Option<String> = None;
    let mut skip_depth = 0usize;
    let mut skip_tag = String::new();
    let mut attr_depth = 0usize;
    let mut traces_started = 0usize;

    macro_rules! cur_trace {
        () => {
            if in_trace {
                Some(traces_started - 1)
            } else {
                None
            }
        };
    }
    macro_rules! warn {
        ($offset:expr, $kind:expr) => {
            warnings.push(Warning {
                offset: $offset,
                trace: cur_trace!(),
                kind: $kind,
            })
        };
    }

    loop {
        let (offset, tok) = match lexer.next_token() {
            Ok(t) => t,
            Err(e) => {
                warnings.push(warn_of(e, cur_trace!()));
                lexer.resync();
                continue;
            }
        };
        if skip_depth > 0 {
            match &tok {
                Token::StartTag {
                    name, self_closing, ..
                } if *name == skip_tag && !self_closing => skip_depth += 1,
                Token::EndTag { name } if *name == skip_tag => skip_depth -= 1,
                Token::Eof => {
                    warn!(Some(offset), WarningKind::Truncated);
                    if in_event {
                        builder.event(event_name.take().as_deref().unwrap_or("<unnamed>"));
                    }
                    builder.end_trace();
                    break;
                }
                _ => {}
            }
            continue;
        }
        match tok {
            Token::StartTag {
                name,
                attrs,
                self_closing,
            } => match name.as_str() {
                "log" if !in_log && !root_closed => {
                    in_log = true;
                    if self_closing {
                        in_log = false;
                        root_closed = true;
                    }
                }
                "log" => {
                    // Nested or repeated root: ignore the tag itself; its
                    // contents parse in the current context.
                    warn!(
                        Some(offset),
                        WarningKind::Structure {
                            message: "<log> cannot nest; tag ignored".into(),
                        }
                    );
                }
                "trace" => {
                    if in_event {
                        // Missing </event>: commit the open event first.
                        warn!(
                            Some(offset),
                            WarningKind::Structure {
                                message: "<trace> opened inside <event>; event closed implicitly"
                                    .into(),
                            }
                        );
                        builder.event(event_name.take().as_deref().unwrap_or("<unnamed>"));
                        in_event = false;
                        attr_depth = 0;
                        builder.end_trace();
                        in_trace = false;
                    } else if in_trace {
                        // Missing </trace>: treat as a sibling trace.
                        warn!(
                            Some(offset),
                            WarningKind::Structure {
                                message: "<trace> cannot nest; previous trace closed implicitly"
                                    .into(),
                            }
                        );
                        builder.end_trace();
                        in_trace = false;
                    } else if !in_log {
                        // Damaged or missing header: open the log implicitly.
                        warn!(
                            Some(offset),
                            WarningKind::Structure {
                                message: "<trace> outside <log>; log opened implicitly".into(),
                            }
                        );
                        in_log = true;
                        root_closed = false;
                    }
                    if self_closing {
                        builder.begin_trace();
                        builder.end_trace();
                    } else {
                        in_trace = true;
                        traces_started += 1;
                        builder.begin_trace();
                    }
                }
                "event" => {
                    if in_event {
                        // Missing </event>: commit and start the next one.
                        warn!(
                            Some(offset),
                            WarningKind::Structure {
                                message: "<event> cannot nest; previous event closed implicitly"
                                    .into(),
                            }
                        );
                        builder.event(event_name.take().as_deref().unwrap_or("<unnamed>"));
                        attr_depth = 0;
                    } else if !in_trace {
                        // An event with no surrounding trace would change the
                        // trace multiset arbitrarily: drop it.
                        warn!(
                            Some(offset),
                            WarningKind::Structure {
                                message: "<event> outside <trace>; event dropped".into(),
                            }
                        );
                        if !self_closing {
                            skip_tag = name;
                            skip_depth = 1;
                        }
                        continue;
                    }
                    if self_closing {
                        builder.event("<unnamed>");
                        in_event = false;
                    } else {
                        in_event = true;
                        event_name = None;
                    }
                }
                "string" | "date" | "int" | "float" | "boolean" | "id" => {
                    if attr_depth == 0 {
                        let mut key = None;
                        let mut value = None;
                        for a in &attrs {
                            match a.name.as_str() {
                                "key" => key = Some(a.value.as_str()),
                                "value" => value = Some(a.value.as_str()),
                                _ => {}
                            }
                        }
                        if key.is_none() {
                            warn!(
                                Some(offset),
                                WarningKind::BadAttribute {
                                    message: format!("<{name}> missing `key`; attribute ignored"),
                                }
                            );
                        }
                        if key == Some("concept:name") {
                            if in_event {
                                if let Some(v) = value {
                                    event_name = Some(v.to_owned());
                                }
                            } else if in_log && !in_trace {
                                if let Some(v) = value {
                                    log_name = Some(v.to_owned());
                                }
                            }
                        }
                    }
                    if !self_closing {
                        attr_depth += 1;
                    }
                }
                other => {
                    if !self_closing {
                        skip_tag = other.to_owned();
                        skip_depth = 1;
                    }
                }
            },
            Token::EndTag { name } => match name.as_str() {
                "log" if in_log && !in_trace => {
                    in_log = false;
                    root_closed = true;
                }
                "log" if in_trace => {
                    // Missing </trace> (and possibly </event>): close all.
                    warn!(
                        Some(offset),
                        WarningKind::TagMismatch {
                            expected: if in_event {
                                "event".into()
                            } else {
                                "trace".into()
                            },
                            found: name,
                        }
                    );
                    if in_event {
                        builder.event(event_name.take().as_deref().unwrap_or("<unnamed>"));
                        in_event = false;
                        attr_depth = 0;
                    }
                    builder.end_trace();
                    in_trace = false;
                    in_log = false;
                    root_closed = true;
                }
                "trace" if in_trace && !in_event => {
                    in_trace = false;
                    builder.end_trace();
                }
                "trace" if in_event => {
                    // Missing </event>: commit the event, close the trace.
                    warn!(
                        Some(offset),
                        WarningKind::TagMismatch {
                            expected: "event".into(),
                            found: name,
                        }
                    );
                    builder.event(event_name.take().as_deref().unwrap_or("<unnamed>"));
                    in_event = false;
                    attr_depth = 0;
                    builder.end_trace();
                    in_trace = false;
                }
                "event" if in_event && attr_depth == 0 => {
                    in_event = false;
                    builder.event(event_name.take().as_deref().unwrap_or("<unnamed>"));
                }
                "event" if in_event => {
                    // Unclosed attribute elements inside the event.
                    warn!(
                        Some(offset),
                        WarningKind::Structure {
                            message: "unclosed attribute element inside <event>".into(),
                        }
                    );
                    attr_depth = 0;
                    in_event = false;
                    builder.event(event_name.take().as_deref().unwrap_or("<unnamed>"));
                }
                "string" | "date" | "int" | "float" | "boolean" | "id" if attr_depth > 0 => {
                    attr_depth -= 1;
                }
                other => {
                    warn!(
                        Some(offset),
                        WarningKind::Structure {
                            message: format!("stray closing tag </{other}> ignored"),
                        }
                    );
                }
            },
            Token::Text(_) => {}
            Token::Eof => {
                if in_event || in_trace || in_log || attr_depth > 0 {
                    warn!(Some(offset), WarningKind::Truncated);
                    if in_event {
                        builder.event(event_name.take().as_deref().unwrap_or("<unnamed>"));
                    }
                    builder.end_trace();
                } else if !root_closed && warnings.is_empty() {
                    warn!(
                        Some(offset),
                        WarningKind::Structure {
                            message: "empty document".into(),
                        }
                    );
                }
                break;
            }
        }
    }
    let mut log = builder.finish();
    if let Some(n) = log_name.take() {
        log.set_name(n);
    }
    Recovered { log, warnings }
}

/// Parses MXML text, skipping and reporting damaged regions. Returns the
/// salvaged document model and the warning report; project it with
/// [`crate::mxml::to_event_log`] or
/// [`crate::mxml::to_event_log_complete_only`].
pub fn parse_mxml_recovering(input: &str) -> (MxmlLog, Vec<Warning>) {
    let mut lexer = Lexer::new(input);
    let mut warnings: Vec<Warning> = Vec::new();
    let mut log = MxmlLog::default();
    let mut instance: Option<MxmlInstance> = None;
    let mut entry: Option<MxmlEntry> = None;
    let mut text_target: Option<MxmlText> = None;
    let mut saw_root = false;

    loop {
        let cur_trace = instance.as_ref().map(|_| log.instances.len());
        let (offset, tok) = match lexer.next_token() {
            Ok(t) => t,
            Err(e) => {
                warnings.push(warn_of(e, cur_trace));
                lexer.resync();
                continue;
            }
        };
        match tok {
            Token::StartTag {
                name,
                attrs,
                self_closing,
            } => match name.as_str() {
                "WorkflowLog" => saw_root = true,
                "Process" => {
                    log.process = attrs
                        .iter()
                        .find(|a| a.name == "id" || a.name == "description")
                        .map(|a| a.value.clone());
                }
                "ProcessInstance" => {
                    if let Some(open) = instance.take() {
                        warnings.push(Warning {
                            offset: Some(offset),
                            trace: cur_trace,
                            kind: WarningKind::Structure {
                                message: "<ProcessInstance> cannot nest; previous instance closed"
                                    .into(),
                            },
                        });
                        log.instances.push(open);
                    }
                    let inst = MxmlInstance {
                        id: attrs
                            .iter()
                            .find(|a| a.name == "id")
                            .map(|a| a.value.clone()),
                        entries: Vec::new(),
                    };
                    if self_closing {
                        log.instances.push(inst);
                    } else {
                        instance = Some(inst);
                    }
                }
                "AuditTrailEntry" => {
                    if let (Some(open), Some(inst)) = (entry.take(), instance.as_mut()) {
                        warnings.push(Warning {
                            offset: Some(offset),
                            trace: cur_trace,
                            kind: WarningKind::Structure {
                                message: "<AuditTrailEntry> cannot nest; previous entry closed"
                                    .into(),
                            },
                        });
                        inst.entries.push(open);
                    }
                    if !self_closing {
                        entry = Some(MxmlEntry::default());
                    }
                }
                "WorkflowModelElement" => text_target = Some(MxmlText::Element),
                "EventType" => text_target = Some(MxmlText::EventType),
                "Timestamp" => text_target = Some(MxmlText::Timestamp),
                "Originator" => text_target = Some(MxmlText::Originator),
                _ => {}
            },
            Token::Text(text) => {
                if let (Some(target), Some(e)) = (text_target, entry.as_mut()) {
                    let text = text.trim().to_owned();
                    match target {
                        MxmlText::Element => e.element = text,
                        MxmlText::EventType => e.event_type = Some(text),
                        MxmlText::Timestamp => e.timestamp = Some(text),
                        MxmlText::Originator => e.originator = Some(text),
                    }
                }
            }
            Token::EndTag { name } => match name.as_str() {
                "WorkflowModelElement" | "EventType" | "Timestamp" | "Originator" => {
                    text_target = None;
                }
                "AuditTrailEntry" => match entry.take() {
                    Some(e) => {
                        if let Some(inst) = instance.as_mut() {
                            inst.entries.push(e);
                        }
                    }
                    None => warnings.push(Warning {
                        offset: Some(offset),
                        trace: cur_trace,
                        kind: WarningKind::Structure {
                            message: "stray </AuditTrailEntry> ignored".into(),
                        },
                    }),
                },
                "ProcessInstance" => match instance.take() {
                    Some(inst) => log.instances.push(inst),
                    None => warnings.push(Warning {
                        offset: Some(offset),
                        trace: cur_trace,
                        kind: WarningKind::Structure {
                            message: "stray </ProcessInstance> ignored".into(),
                        },
                    }),
                },
                _ => {}
            },
            Token::Eof => {
                if entry.is_some() || instance.is_some() {
                    warnings.push(Warning {
                        offset: Some(offset),
                        trace: cur_trace,
                        kind: WarningKind::Truncated,
                    });
                    if let (Some(e), Some(inst)) = (entry.take(), instance.as_mut()) {
                        inst.entries.push(e);
                    }
                    if let Some(inst) = instance.take() {
                        log.instances.push(inst);
                    }
                }
                break;
            }
        }
    }
    if !saw_root {
        warnings.push(Warning {
            offset: None,
            trace: None,
            kind: WarningKind::Structure {
                message: "MXML document has no <WorkflowLog> root".into(),
            },
        });
    }
    (log, warnings)
}

#[derive(Debug, Clone, Copy)]
enum MxmlText {
    Element,
    EventType,
    Timestamp,
    Originator,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(log: &EventLog) -> Vec<Vec<String>> {
        log.traces()
            .iter()
            .map(|t| {
                t.events()
                    .iter()
                    .map(|&e| log.name_of(e).to_owned())
                    .collect()
            })
            .collect()
    }

    #[test]
    fn clean_document_has_no_warnings() {
        let xml = r#"<log><trace>
            <event><string key="concept:name" value="a"/></event>
            <event><string key="concept:name" value="b"/></event>
        </trace></log>"#;
        let r = parse_event_log_recovering(xml);
        assert!(r.is_clean(), "{:?}", r.warnings);
        assert_eq!(names(&r.log), vec![vec!["a".to_string(), "b".to_string()]]);
    }

    #[test]
    fn record_ingestion_tallies_warnings_by_kind() {
        let xml = r#"<log><trace>
            <event><string key="concept:name" value="a"/></event>
            <event><string key="concept:name" value="b"/>"#;
        let r = parse_event_log_recovering(xml);
        assert!(!r.is_clean());
        let rec = ems_obs::Recorder::new();
        record_ingestion(&rec, "log1", &r);
        let records = rec.records();
        let truncated = records.iter().any(|rec| {
            matches!(
                rec,
                ems_obs::Record::Counter { name, labels, value }
                    if name == "xes_warnings"
                        && *value >= 1
                        && labels.contains(&("kind".to_string(), "truncated".to_string()))
                        && labels.contains(&("log".to_string(), "log1".to_string()))
            )
        });
        assert!(truncated, "records: {records:?}");
        let traces = records.iter().any(|rec| {
            matches!(
                rec,
                ems_obs::Record::Gauge { name, value, .. }
                    if name == "xes_traces" && *value == 1.0
            )
        });
        assert!(traces, "records: {records:?}");
    }

    #[test]
    fn warning_kind_labels_are_stable() {
        assert_eq!(
            WarningKind::Syntax {
                message: String::new()
            }
            .label(),
            "syntax"
        );
        assert_eq!(
            WarningKind::TagMismatch {
                expected: String::new(),
                found: String::new()
            }
            .label(),
            "tag-mismatch"
        );
        assert_eq!(
            WarningKind::Structure {
                message: String::new()
            }
            .label(),
            "structure"
        );
        assert_eq!(
            WarningKind::BadAttribute {
                message: String::new()
            }
            .label(),
            "bad-attribute"
        );
        assert_eq!(WarningKind::Truncated.label(), "truncated");
    }

    #[test]
    fn truncated_document_commits_open_trace() {
        let xml = r#"<log><trace>
            <event><string key="concept:name" value="a"/></event>
            <event><string key="concept:name" value="b"/>"#;
        let r = parse_event_log_recovering(xml);
        assert!(!r.is_clean());
        assert!(r.warnings.iter().any(|w| w.kind == WarningKind::Truncated));
        // The open event commits too (its name was already seen).
        assert_eq!(names(&r.log), vec![vec!["a".to_string(), "b".to_string()]]);
    }

    #[test]
    fn garbled_region_is_skipped_and_reported() {
        let xml = r#"<log><trace>
            <event><string key="concept:name" value="a"/></event>
            <event><string key="concept:name" value=b0rken/></event>
            <event><string key="concept:name" value="c"/></event>
        </trace></log>"#;
        let r = parse_event_log_recovering(xml);
        assert!(r
            .warnings
            .iter()
            .any(|w| matches!(w.kind, WarningKind::Syntax { .. })));
        let flat: Vec<Vec<String>> = names(&r.log);
        // "a" and "c" survive; the garbled event degrades but the trace lives.
        assert!(flat[0].contains(&"a".to_string()));
        assert!(flat[0].contains(&"c".to_string()));
    }

    #[test]
    fn missing_trace_end_is_repaired() {
        let xml = r#"<log>
            <trace><event><string key="concept:name" value="a"/></event>
            <trace><event><string key="concept:name" value="b"/></event></trace>
        </log>"#;
        let r = parse_event_log_recovering(xml);
        assert!(!r.is_clean());
        assert_eq!(
            names(&r.log),
            vec![vec!["a".to_string()], vec!["b".to_string()]]
        );
    }

    #[test]
    fn event_outside_trace_is_dropped_with_warning() {
        let xml = r#"<log><event><string key="concept:name" value="x"/></event>
            <trace><event><string key="concept:name" value="a"/></event></trace></log>"#;
        let r = parse_event_log_recovering(xml);
        assert!(!r.is_clean());
        assert_eq!(names(&r.log), vec![vec!["a".to_string()]]);
    }

    #[test]
    fn trace_without_log_header_opens_log_implicitly() {
        let xml = r#"<trace><event><string key="concept:name" value="a"/></event></trace>"#;
        let r = parse_event_log_recovering(xml);
        assert!(!r.is_clean());
        assert_eq!(names(&r.log), vec![vec!["a".to_string()]]);
    }

    #[test]
    fn warning_carries_trace_index() {
        let xml = r#"<log>
            <trace><event><string key="concept:name" value="a"/></event></trace>
            <trace><event><string key="concept:name" value=bad/></event></trace>
        </log>"#;
        let r = parse_event_log_recovering(xml);
        let w = r
            .warnings
            .iter()
            .find(|w| matches!(w.kind, WarningKind::Syntax { .. }))
            .expect("syntax warning");
        assert_eq!(w.trace, Some(1));
        assert!(w.offset.is_some());
    }

    #[test]
    fn empty_input_yields_empty_log_plus_warning() {
        let r = parse_event_log_recovering("");
        assert_eq!(r.log.num_traces(), 0);
        assert_eq!(r.warnings.len(), 1);
    }

    #[test]
    fn pure_garbage_never_panics() {
        for input in ["<<<<>>>>", "&&&;;;", "\u{0}\u{1}\u{2}", "<log a=", "</"] {
            let r = parse_event_log_recovering(input);
            assert_eq!(r.log.num_events(), 0);
        }
    }

    #[test]
    fn mxml_truncation_commits_partial_instance() {
        let xml = r#"<WorkflowLog><Process><ProcessInstance id="c1">
            <AuditTrailEntry><WorkflowModelElement>pay</WorkflowModelElement>
            </AuditTrailEntry>
            <AuditTrailEntry><WorkflowModelElement>ship</WorkflowModelElement>"#;
        let (log, warnings) = parse_mxml_recovering(xml);
        assert!(warnings.iter().any(|w| w.kind == WarningKind::Truncated));
        assert_eq!(log.instances.len(), 1);
        let entries: Vec<&str> = log.instances[0]
            .entries
            .iter()
            .map(|e| e.element.as_str())
            .collect();
        assert_eq!(entries, vec!["pay", "ship"]);
    }

    #[test]
    fn mxml_missing_root_is_reported_not_fatal() {
        let xml = r#"<Process><ProcessInstance>
            <AuditTrailEntry><WorkflowModelElement>a</WorkflowModelElement></AuditTrailEntry>
        </ProcessInstance></Process>"#;
        let (log, warnings) = parse_mxml_recovering(xml);
        assert!(!warnings.is_empty());
        assert_eq!(log.instances[0].entries[0].element, "a");
    }

    #[test]
    fn recovery_matches_strict_on_clean_mxml() {
        let xml = r#"<WorkflowLog><Process id="p"><ProcessInstance id="c">
            <AuditTrailEntry><WorkflowModelElement>a</WorkflowModelElement>
            <EventType>complete</EventType></AuditTrailEntry>
        </ProcessInstance></Process></WorkflowLog>"#;
        let strict = crate::mxml::parse_mxml(xml).unwrap();
        let (recovered, warnings) = parse_mxml_recovering(xml);
        assert!(warnings.is_empty());
        assert_eq!(strict, recovered);
    }

    #[test]
    fn warning_display_is_single_line() {
        let r = parse_event_log_recovering("<log><trace>");
        for w in &r.warnings {
            let s = w.to_string();
            assert!(!s.contains('\n'));
            assert!(!s.is_empty());
        }
    }
}
