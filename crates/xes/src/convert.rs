//! Conversion between the XES document model and [`ems_events::EventLog`].

use crate::model::{Attribute, XesEvent, XesLog, XesTrace};
use ems_events::EventLog;

/// Projects an XES document onto the matcher's [`EventLog`] model using the
/// `concept:name` attribute as the activity classifier.
///
/// Events without a `concept:name` are classified as the reserved label
/// `"<unnamed>"` — dropping them silently would distort the consecutive-pair
/// frequencies of Definition 1.
pub fn to_event_log(log: &XesLog) -> EventLog {
    let mut out = match log.name() {
        Some(n) => EventLog::with_name(n),
        None => EventLog::new(),
    };
    for trace in &log.traces {
        out.push_trace(trace.events.iter().map(|e| e.name().unwrap_or("<unnamed>")));
    }
    out
}

/// Builds an XES document from an [`EventLog`], producing one `<trace>` per
/// trace with `concept:name` event attributes and sequential case ids.
pub fn from_event_log(log: &EventLog) -> XesLog {
    let mut attributes = Vec::new();
    if let Some(n) = log.name() {
        attributes.push(Attribute::string("concept:name", n));
    }
    XesLog {
        version: Some("2.0".into()),
        attributes,
        traces: log
            .traces()
            .iter()
            .enumerate()
            .map(|(i, t)| XesTrace {
                attributes: vec![Attribute::string("concept:name", format!("case-{}", i + 1))],
                events: t
                    .events()
                    .iter()
                    .map(|&e| XesEvent::named(log.name_of(e)))
                    .collect(),
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn to_event_log_uses_concept_name() {
        let xes = XesLog {
            version: None,
            attributes: vec![Attribute::string("concept:name", "orders")],
            traces: vec![XesTrace {
                attributes: vec![],
                events: vec![
                    XesEvent::named("a"),
                    XesEvent::default(),
                    XesEvent::named("a"),
                ],
            }],
        };
        let log = to_event_log(&xes);
        assert_eq!(log.name(), Some("orders"));
        assert_eq!(log.num_traces(), 1);
        assert_eq!(log.alphabet_size(), 2); // "a" and "<unnamed>"
        assert!(log.id_of("<unnamed>").is_some());
    }

    #[test]
    fn event_log_roundtrip_through_xes() {
        let mut log = EventLog::with_name("demo");
        log.push_trace(["x", "y"]);
        log.push_trace(["y"]);
        let back = to_event_log(&from_event_log(&log));
        assert_eq!(back.name(), Some("demo"));
        assert_eq!(back.num_traces(), 2);
        assert_eq!(back.alphabet_size(), 2);
        assert_eq!(back.traces()[0].len(), 2);
        let x = back.id_of("x").unwrap();
        assert!((back.event_frequency(x) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn from_event_log_numbers_cases() {
        let mut log = EventLog::new();
        log.push_trace(["a"]);
        log.push_trace(["b"]);
        let xes = from_event_log(&log);
        assert_eq!(xes.traces[0].name(), Some("case-1"));
        assert_eq!(xes.traces[1].name(), Some("case-2"));
    }
}
