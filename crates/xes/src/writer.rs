//! XES serializer producing documents the [`parser`](crate::parser) accepts.

use crate::lexer::encode_entities;
use crate::model::{Attribute, XesLog};
use std::fmt::Write as _;

/// Serializes `log` to an XES document string.
pub fn write_string(log: &XesLog) -> String {
    let mut out = String::new();
    out.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
    let version = log.version.as_deref().unwrap_or("2.0");
    let _ = writeln!(
        out,
        "<log xes.version=\"{}\" xmlns=\"http://www.xes-standard.org/\">",
        encode_entities(version)
    );
    for attr in &log.attributes {
        write_attribute(&mut out, attr, 1);
    }
    for trace in &log.traces {
        out.push_str("  <trace>\n");
        for attr in &trace.attributes {
            write_attribute(&mut out, attr, 2);
        }
        for event in &trace.events {
            if event.attributes.is_empty() {
                out.push_str("    <event/>\n");
                continue;
            }
            out.push_str("    <event>\n");
            for attr in &event.attributes {
                write_attribute(&mut out, attr, 3);
            }
            out.push_str("    </event>\n");
        }
        out.push_str("  </trace>\n");
    }
    out.push_str("</log>\n");
    out
}

fn write_attribute(out: &mut String, attr: &Attribute, depth: usize) {
    let pad = "  ".repeat(depth);
    let tag = attr.value.tag();
    let key = encode_entities(&attr.key);
    let value = encode_entities(&attr.value.value_text());
    if attr.children.is_empty() {
        let _ = writeln!(out, "{pad}<{tag} key=\"{key}\" value=\"{value}\"/>");
    } else {
        let _ = writeln!(out, "{pad}<{tag} key=\"{key}\" value=\"{value}\">");
        for child in &attr.children {
            write_attribute(out, child, depth + 1);
        }
        let _ = writeln!(out, "{pad}</{tag}>");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{AttrValue, Attribute, XesEvent, XesLog, XesTrace};
    use crate::parser::parse_str;

    fn sample_log() -> XesLog {
        XesLog {
            version: Some("2.0".into()),
            attributes: vec![Attribute::string("concept:name", "demo & log")],
            traces: vec![XesTrace {
                attributes: vec![Attribute::string("concept:name", "case<1>")],
                events: vec![
                    XesEvent::named("Paid \"by\" Cash"),
                    XesEvent {
                        attributes: vec![
                            Attribute::string("concept:name", "Validate"),
                            Attribute {
                                key: "cost".into(),
                                value: AttrValue::Float(1.25),
                                children: vec![Attribute {
                                    key: "currency".into(),
                                    value: AttrValue::String("CNY".into()),
                                    children: vec![],
                                }],
                            },
                            Attribute {
                                key: "n".into(),
                                value: AttrValue::Int(-7),
                                children: vec![],
                            },
                            Attribute {
                                key: "ok".into(),
                                value: AttrValue::Boolean(false),
                                children: vec![],
                            },
                        ],
                    },
                    XesEvent::default(),
                ],
            }],
        }
    }

    #[test]
    fn roundtrip_preserves_model() {
        let log = sample_log();
        let text = write_string(&log);
        let parsed = parse_str(&text).unwrap();
        assert_eq!(parsed, log);
    }

    #[test]
    fn special_characters_are_escaped() {
        let text = write_string(&sample_log());
        assert!(text.contains("demo &amp; log"));
        assert!(text.contains("case&lt;1&gt;"));
        assert!(!text.contains("case<1>"));
    }

    #[test]
    fn empty_log_serializes() {
        let text = write_string(&XesLog::default());
        let parsed = parse_str(&text).unwrap();
        assert!(parsed.traces.is_empty());
    }
}
