//! Recursive-descent XES parser on top of the [`lexer`](crate::lexer).

use crate::error::{XesError, XesResult};
use crate::lexer::{Lexer, Token, XmlAttr};
use crate::model::{AttrValue, Attribute, XesEvent, XesLog, XesTrace};

/// Parses an XES document from a string.
///
/// The parser accepts the constructs XES documents actually use: a single
/// `<log>` root with nested `<trace>` and `<event>` elements and typed
/// attribute elements (`string`, `date`, `int`, `float`, `boolean`, `id`),
/// which may nest. Unknown elements (e.g. `<extension>`, `<classifier>`,
/// `<global>`) are skipped with their subtrees.
pub fn parse_str(input: &str) -> XesResult<XesLog> {
    let mut p = Parser {
        lexer: Lexer::new(input),
    };
    let log = p.parse_log()?;
    // Nothing but whitespace/comments may follow the root element.
    let (offset, tok) = p.lexer.next_token()?;
    if tok != Token::Eof {
        return Err(XesError::Syntax {
            offset,
            message: format!("unexpected content after </log>: {tok:?}"),
        });
    }
    Ok(log)
}

struct Parser<'a> {
    lexer: Lexer<'a>,
}

const ATTR_TAGS: [&str; 6] = ["string", "date", "int", "float", "boolean", "id"];

impl<'a> Parser<'a> {
    fn parse_log(&mut self) -> XesResult<XesLog> {
        // Find the root element.
        let (offset, tok) = self.lexer.next_token()?;
        let (name, attrs, self_closing) = match tok {
            Token::StartTag {
                name,
                attrs,
                self_closing,
            } => (name, attrs, self_closing),
            Token::Eof => return Err(XesError::Structure("empty document".into())),
            other => {
                return Err(XesError::Syntax {
                    offset,
                    message: format!("expected root element, found {other:?}"),
                })
            }
        };
        if name != "log" {
            return Err(XesError::Structure(format!(
                "root element must be <log>, found <{name}>"
            )));
        }
        let mut log = XesLog {
            version: xml_attr(&attrs, "xes.version").map(str::to_owned),
            ..XesLog::default()
        };
        if self_closing {
            return Ok(log);
        }
        loop {
            let (offset, tok) = self.lexer.next_token()?;
            match tok {
                Token::StartTag {
                    name,
                    attrs,
                    self_closing,
                } => match name.as_str() {
                    "trace" => {
                        let trace = if self_closing {
                            XesTrace::default()
                        } else {
                            self.parse_trace()?
                        };
                        log.traces.push(trace);
                    }
                    "event" => {
                        return Err(XesError::Structure(
                            "<event> must appear inside a <trace>".into(),
                        ))
                    }
                    t if ATTR_TAGS.contains(&t) => log.attributes.push(self.parse_attribute(
                        &name,
                        &attrs,
                        self_closing,
                        offset,
                    )?),
                    _ => {
                        // extension / classifier / global / vendor elements.
                        if !self_closing {
                            self.skip_subtree(&name)?;
                        }
                    }
                },
                Token::EndTag { name } if name == "log" => return Ok(log),
                Token::EndTag { name } => {
                    return Err(XesError::TagMismatch {
                        expected: "log".into(),
                        found: name,
                        offset,
                    })
                }
                Token::Text(_) => {} // stray text inside <log> is ignored
                Token::Eof => return Err(XesError::Structure("unclosed <log> element".into())),
            }
        }
    }

    fn parse_trace(&mut self) -> XesResult<XesTrace> {
        let mut trace = XesTrace::default();
        loop {
            let (offset, tok) = self.lexer.next_token()?;
            match tok {
                Token::StartTag {
                    name,
                    attrs,
                    self_closing,
                } => {
                    match name.as_str() {
                        "event" => {
                            let ev = if self_closing {
                                XesEvent::default()
                            } else {
                                self.parse_event()?
                            };
                            trace.events.push(ev);
                        }
                        "trace" => {
                            return Err(XesError::Structure("<trace> cannot nest".into()));
                        }
                        t if ATTR_TAGS.contains(&t) => trace
                            .attributes
                            .push(self.parse_attribute(&name, &attrs, self_closing, offset)?),
                        _ => {
                            if !self_closing {
                                self.skip_subtree(&name)?;
                            }
                        }
                    }
                }
                Token::EndTag { name } if name == "trace" => return Ok(trace),
                Token::EndTag { name } => {
                    return Err(XesError::TagMismatch {
                        expected: "trace".into(),
                        found: name,
                        offset,
                    })
                }
                Token::Text(_) => {}
                Token::Eof => return Err(XesError::Structure("unclosed <trace> element".into())),
            }
        }
    }

    fn parse_event(&mut self) -> XesResult<XesEvent> {
        let mut event = XesEvent::default();
        loop {
            let (offset, tok) = self.lexer.next_token()?;
            match tok {
                Token::StartTag {
                    name,
                    attrs,
                    self_closing,
                } => {
                    if ATTR_TAGS.contains(&name.as_str()) {
                        event.attributes.push(self.parse_attribute(
                            &name,
                            &attrs,
                            self_closing,
                            offset,
                        )?);
                    } else if name == "event" || name == "trace" {
                        return Err(XesError::Structure(format!(
                            "<{name}> cannot nest in <event>"
                        )));
                    } else if !self_closing {
                        self.skip_subtree(&name)?;
                    }
                }
                Token::EndTag { name } if name == "event" => return Ok(event),
                Token::EndTag { name } => {
                    return Err(XesError::TagMismatch {
                        expected: "event".into(),
                        found: name,
                        offset,
                    })
                }
                Token::Text(_) => {}
                Token::Eof => return Err(XesError::Structure("unclosed <event> element".into())),
            }
        }
    }

    fn parse_attribute(
        &mut self,
        tag: &str,
        attrs: &[XmlAttr],
        self_closing: bool,
        offset: usize,
    ) -> XesResult<Attribute> {
        let key = xml_attr(attrs, "key")
            .ok_or_else(|| XesError::Structure(format!("<{tag}> missing `key` at byte {offset}")))?
            .to_owned();
        let raw = xml_attr(attrs, "value").unwrap_or("");
        let value = parse_value(tag, raw)
            .map_err(|m| XesError::Structure(format!("attribute `{key}` at byte {offset}: {m}")))?;
        let mut attribute = Attribute {
            key,
            value,
            children: Vec::new(),
        };
        if self_closing {
            return Ok(attribute);
        }
        // Nested attributes until the matching end tag.
        loop {
            let (offset, tok) = self.lexer.next_token()?;
            match tok {
                Token::StartTag {
                    name,
                    attrs,
                    self_closing,
                } => {
                    if ATTR_TAGS.contains(&name.as_str()) {
                        attribute.children.push(self.parse_attribute(
                            &name,
                            &attrs,
                            self_closing,
                            offset,
                        )?);
                    } else if !self_closing {
                        self.skip_subtree(&name)?;
                    }
                }
                Token::EndTag { name } if name == tag => return Ok(attribute),
                Token::EndTag { name } => {
                    return Err(XesError::TagMismatch {
                        expected: tag.to_owned(),
                        found: name,
                        offset,
                    })
                }
                Token::Text(_) => {}
                Token::Eof => return Err(XesError::Structure(format!("unclosed <{tag}> element"))),
            }
        }
    }

    /// Consumes tokens until the end tag matching an already-consumed start
    /// tag `name`, handling same-name nesting.
    fn skip_subtree(&mut self, name: &str) -> XesResult<()> {
        let mut depth = 1usize;
        loop {
            let (_, tok) = self.lexer.next_token()?;
            match tok {
                Token::StartTag {
                    name: n,
                    self_closing,
                    ..
                } if n == name && !self_closing => depth += 1,
                Token::EndTag { name: n } if n == name => {
                    depth -= 1;
                    if depth == 0 {
                        return Ok(());
                    }
                }
                Token::Eof => {
                    return Err(XesError::Structure(format!("unclosed <{name}> element")))
                }
                _ => {}
            }
        }
    }
}

fn xml_attr<'x>(attrs: &'x [XmlAttr], name: &str) -> Option<&'x str> {
    attrs
        .iter()
        .find(|a| a.name == name)
        .map(|a| a.value.as_str())
}

fn parse_value(tag: &str, raw: &str) -> Result<AttrValue, String> {
    Ok(match tag {
        "string" => AttrValue::String(raw.to_owned()),
        "date" => AttrValue::Date(raw.to_owned()),
        "id" => AttrValue::Id(raw.to_owned()),
        "int" => AttrValue::Int(raw.parse().map_err(|_| format!("`{raw}` is not an int"))?),
        "float" => AttrValue::Float(raw.parse().map_err(|_| format!("`{raw}` is not a float"))?),
        "boolean" => AttrValue::Boolean(match raw {
            "true" | "True" | "TRUE" | "1" => true,
            "false" | "False" | "FALSE" | "0" => false,
            _ => return Err(format!("`{raw}` is not a boolean")),
        }),
        // Callers only pass tags from ATTR_TAGS; a typed error beats an
        // unreachable! if that invariant ever breaks.
        _ => return Err(format!("`{tag}` is not an attribute element")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"<?xml version="1.0" encoding="UTF-8"?>
<!-- exported by a heterogeneous OA system -->
<log xes.version="2.0" xmlns="http://www.xes-standard.org/">
  <extension name="Concept" prefix="concept" uri="http://..."/>
  <classifier name="Activity" keys="concept:name"/>
  <string key="concept:name" value="turbine orders"/>
  <trace>
    <string key="concept:name" value="case-1"/>
    <event>
      <string key="concept:name" value="Paid by Cash"/>
      <date key="time:timestamp" value="2014-06-22T10:00:00.000+08:00"/>
      <int key="org:resource_id" value="42"/>
    </event>
    <event>
      <string key="concept:name" value="Check Inventory"/>
      <boolean key="auto" value="true"/>
      <float key="cost" value="12.5"/>
    </event>
  </trace>
  <trace>
    <event><string key="concept:name" value="?????"/></event>
  </trace>
</log>"#;

    #[test]
    fn parses_full_sample() {
        let log = parse_str(SAMPLE).unwrap();
        assert_eq!(log.version.as_deref(), Some("2.0"));
        assert_eq!(log.name(), Some("turbine orders"));
        assert_eq!(log.traces.len(), 2);
        let t0 = &log.traces[0];
        assert_eq!(t0.name(), Some("case-1"));
        assert_eq!(t0.events.len(), 2);
        assert_eq!(t0.events[0].name(), Some("Paid by Cash"));
        assert_eq!(t0.events[1].attributes[1].value, AttrValue::Boolean(true));
        assert_eq!(t0.events[1].attributes[2].value, AttrValue::Float(12.5));
        // Opaque name survives verbatim.
        assert_eq!(log.traces[1].events[0].name(), Some("?????"));
    }

    #[test]
    fn nested_attributes_parse() {
        let xml = r#"<log><trace><event>
            <string key="outer" value="o">
              <string key="inner" value="i"/>
            </string>
        </event></trace></log>"#;
        let log = parse_str(xml).unwrap();
        let attr = &log.traces[0].events[0].attributes[0];
        assert_eq!(attr.key, "outer");
        assert_eq!(attr.children[0].key, "inner");
    }

    #[test]
    fn rejects_non_log_root() {
        assert!(matches!(parse_str("<trace/>"), Err(XesError::Structure(_))));
    }

    #[test]
    fn rejects_event_outside_trace() {
        assert!(parse_str("<log><event/></log>").is_err());
    }

    #[test]
    fn rejects_nested_trace() {
        assert!(parse_str("<log><trace><trace/></trace></log>").is_err());
    }

    #[test]
    fn rejects_mismatched_tags() {
        assert!(matches!(
            parse_str("<log><trace></log></trace>"),
            Err(XesError::TagMismatch { .. })
        ));
    }

    #[test]
    fn rejects_unclosed_log() {
        assert!(parse_str("<log><trace></trace>").is_err());
        assert!(parse_str("").is_err());
    }

    #[test]
    fn attribute_missing_key_is_structural_error() {
        assert!(parse_str(r#"<log><string value="v"/></log>"#).is_err());
    }

    #[test]
    fn bad_typed_values_are_errors() {
        assert!(parse_str(r#"<log><int key="k" value="NaN"/></log>"#).is_err());
        assert!(parse_str(r#"<log><boolean key="k" value="maybe"/></log>"#).is_err());
        assert!(parse_str(r#"<log><float key="k" value="wide"/></log>"#).is_err());
    }

    #[test]
    fn self_closing_trace_and_event() {
        let log = parse_str("<log><trace/><trace><event/></trace></log>").unwrap();
        assert_eq!(log.traces.len(), 2);
        assert!(log.traces[0].events.is_empty());
        assert_eq!(log.traces[1].events.len(), 1);
    }

    #[test]
    fn unknown_elements_are_skipped_with_subtrees() {
        let xml = r#"<log>
          <global scope="event"><string key="concept:name" value="UNKNOWN"/></global>
          <trace><event><string key="concept:name" value="a"/></event></trace>
        </log>"#;
        let log = parse_str(xml).unwrap();
        // The global's attribute must NOT leak into log attributes.
        assert!(log.attributes.is_empty());
        assert_eq!(log.traces[0].events[0].name(), Some("a"));
    }

    #[test]
    fn entities_in_values_are_decoded() {
        let xml = r#"<log><trace><event>
            <string key="concept:name" value="Ship &amp; Email &lt;now&gt;"/>
        </event></trace></log>"#;
        let log = parse_str(xml).unwrap();
        assert_eq!(log.traces[0].events[0].name(), Some("Ship & Email <now>"));
    }
}
