//! Streaming XES ingestion: build an [`EventLog`] directly from the token
//! stream without materializing the document tree.
//!
//! Real OA exports run to hundreds of megabytes; the matcher only needs
//! each event's `concept:name`. This path keeps memory proportional to the
//! *output* (interned names + traces) rather than the XML tree: attribute
//! values other than the classifier are never allocated.

use crate::error::{XesError, XesResult};
use crate::lexer::{Lexer, Token};
use ems_events::{EventLog, LogBuilder};

/// Parses XES text straight into an [`EventLog`], classifying events by
/// `concept:name` (events without one become `"<unnamed>"`).
///
/// Structural validation matches [`parse_str`](crate::parse_str): a single
/// `<log>` root, traces not nested, events only inside traces. Unknown
/// elements are skipped. Equivalent to
/// `to_event_log(&parse_str(text)?)` but without the intermediate tree.
pub fn parse_event_log(input: &str) -> XesResult<EventLog> {
    let mut lexer = Lexer::new(input);
    let mut builder = LogBuilder::new();
    let mut log_name: Option<String> = None;

    // Where are we? Depth counters instead of a recursive tree build.
    let mut in_log = false;
    let mut in_trace = false;
    let mut in_event = false;
    let mut root_closed = false;
    // Name of the current event, captured from its concept:name attribute.
    let mut event_name: Option<String> = None;
    // Depth of skipped unknown subtrees (per containing state).
    let mut skip_depth = 0usize;
    let mut skip_tag = String::new();
    // Depth of nested attribute elements inside the current event; only the
    // top-level concept:name counts.
    let mut attr_depth = 0usize;

    loop {
        let (offset, tok) = lexer.next_token()?;
        if skip_depth > 0 {
            match &tok {
                Token::StartTag {
                    name, self_closing, ..
                } if *name == skip_tag && !self_closing => skip_depth += 1,
                Token::EndTag { name } if *name == skip_tag => skip_depth -= 1,
                Token::Eof => {
                    return Err(XesError::Structure(format!(
                        "unclosed <{skip_tag}> element"
                    )))
                }
                _ => {}
            }
            continue;
        }
        match tok {
            Token::StartTag {
                name,
                attrs,
                self_closing,
            } => match name.as_str() {
                "log" if !in_log && !root_closed => {
                    in_log = true;
                    if self_closing {
                        in_log = false;
                        root_closed = true;
                    }
                }
                "log" => return Err(XesError::Structure("<log> cannot nest".into())),
                "trace" if in_log && !in_trace => {
                    if self_closing {
                        builder.begin_trace();
                        builder.end_trace();
                    } else {
                        in_trace = true;
                        builder.begin_trace();
                    }
                }
                "trace" => {
                    return Err(XesError::Structure(
                        "<trace> must be directly inside <log>".into(),
                    ))
                }
                "event" if in_trace && !in_event => {
                    if self_closing {
                        builder.event("<unnamed>");
                    } else {
                        in_event = true;
                        event_name = None;
                    }
                }
                "event" => {
                    return Err(XesError::Structure(
                        "<event> must be directly inside a <trace>".into(),
                    ))
                }
                "string" | "date" | "int" | "float" | "boolean" | "id" => {
                    // Only top-level concept:name attributes matter: the
                    // event's (its activity) and the log's (its name).
                    if attr_depth == 0 {
                        let mut key = None;
                        let mut value = None;
                        for a in &attrs {
                            match a.name.as_str() {
                                "key" => key = Some(a.value.as_str()),
                                "value" => value = Some(a.value.as_str()),
                                _ => {}
                            }
                        }
                        if key.is_none() {
                            return Err(XesError::Structure(format!(
                                "<{name}> missing `key` at byte {offset}"
                            )));
                        }
                        if key == Some("concept:name") {
                            if in_event {
                                if let Some(v) = value {
                                    event_name = Some(v.to_owned());
                                }
                            } else if in_log && !in_trace {
                                if let Some(v) = value {
                                    log_name = Some(v.to_owned());
                                }
                            }
                        }
                    }
                    if !self_closing {
                        attr_depth += 1;
                        // Nested children are attribute elements too; track by
                        // counting any of the six tags uniformly via skip of
                        // depth — handled by attr_depth on matching EndTag.
                    }
                }
                other => {
                    if !self_closing {
                        skip_tag = other.to_owned();
                        skip_depth = 1;
                    }
                }
            },
            Token::EndTag { name } => match name.as_str() {
                "log" if in_log && !in_trace => {
                    in_log = false;
                    root_closed = true;
                }
                "trace" if in_trace && !in_event => {
                    in_trace = false;
                    builder.end_trace();
                }
                "event" if in_event && attr_depth == 0 => {
                    in_event = false;
                    builder.event(event_name.as_deref().unwrap_or("<unnamed>"));
                }
                "string" | "date" | "int" | "float" | "boolean" | "id" if attr_depth > 0 => {
                    attr_depth -= 1;
                }
                other => {
                    return Err(XesError::TagMismatch {
                        expected: if in_event {
                            "event".into()
                        } else if in_trace {
                            "trace".into()
                        } else {
                            "log".into()
                        },
                        found: other.to_owned(),
                        offset,
                    })
                }
            },
            Token::Text(_) => {}
            Token::Eof => {
                if in_log || in_trace || in_event || attr_depth > 0 {
                    return Err(XesError::Structure("truncated document".into()));
                }
                if !root_closed {
                    return Err(XesError::Structure("empty document".into()));
                }
                break;
            }
        }
    }
    let mut log = builder.finish();
    if let Some(n) = log_name.take() {
        log.set_name(n);
    }
    Ok(log)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_str, to_event_log};

    const SAMPLE: &str = r#"<?xml version="1.0"?>
<log xes.version="2.0">
  <extension name="Concept" prefix="concept" uri="u"/>
  <string key="concept:name" value="orders"/>
  <trace>
    <string key="concept:name" value="case-1"/>
    <event>
      <string key="concept:name" value="pay"/>
      <date key="time:timestamp" value="2014-01-01"/>
    </event>
    <event>
      <string key="outer" value="o">
        <string key="concept:name" value="NOT-THE-EVENT-NAME"/>
      </string>
      <string key="concept:name" value="ship"/>
    </event>
    <event/>
  </trace>
  <trace/>
</log>"#;

    #[test]
    fn streaming_matches_tree_based_conversion() {
        let streamed = parse_event_log(SAMPLE).unwrap();
        let tree = to_event_log(&parse_str(SAMPLE).unwrap());
        assert_eq!(streamed.num_traces(), tree.num_traces());
        assert_eq!(streamed.alphabet_size(), tree.alphabet_size());
        for (a, b) in streamed.traces().iter().zip(tree.traces()) {
            let na: Vec<&str> = a.events().iter().map(|&e| streamed.name_of(e)).collect();
            let nb: Vec<&str> = b.events().iter().map(|&e| tree.name_of(e)).collect();
            assert_eq!(na, nb);
        }
    }

    #[test]
    fn nested_concept_name_does_not_leak() {
        let log = parse_event_log(SAMPLE).unwrap();
        assert!(log.id_of("NOT-THE-EVENT-NAME").is_none());
        assert!(log.id_of("ship").is_some());
    }

    #[test]
    fn trace_level_concept_name_is_not_an_event() {
        let log = parse_event_log(SAMPLE).unwrap();
        assert!(log.id_of("case-1").is_none());
        // Events: pay, ship, <unnamed>.
        assert_eq!(log.alphabet_size(), 3);
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse_event_log("").is_err());
        assert!(parse_event_log("<log><trace>").is_err());
        assert!(parse_event_log("<log><event/></log>").is_err());
        assert!(parse_event_log("<log><trace><trace/></trace></log>").is_err());
        assert!(parse_event_log("<trace/>").is_err());
        assert!(parse_event_log("<log></trace></log>").is_err());
        assert!(parse_event_log("<log><unknown></log>").is_err());
    }

    #[test]
    fn large_log_streams_equivalently() {
        let mut doc = String::from("<log>");
        for t in 0..100 {
            doc.push_str("<trace>");
            for e in 0..10 {
                doc.push_str(&format!(
                    "<event><string key=\"concept:name\" value=\"a{}\"/></event>",
                    (t * e) % 5
                ));
            }
            doc.push_str("</trace>");
        }
        doc.push_str("</log>");
        let streamed = parse_event_log(&doc).unwrap();
        let tree = to_event_log(&parse_str(&doc).unwrap());
        assert_eq!(streamed.num_events(), tree.num_events());
        assert_eq!(streamed.alphabet_size(), tree.alphabet_size());
    }
}
