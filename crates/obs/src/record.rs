//! The recorder: a thread-safe, deterministic append-log of observations.
//!
//! All instrumentation funnels into one `Mutex<Vec<Record>>`. The pipeline
//! records from a single logical thread at a time (the engine's parallel
//! workers never touch the recorder; telemetry is computed after each
//! Jacobi sweep on the coordinating thread), so record *order* is a pure
//! function of the work performed — the mutex exists so sharing an
//! `Arc<Recorder>` across components is safe, not to serialize racing
//! writers.
//!
//! Wall-clock only enters through [`Recorder::span`]'s RAII guard; every
//! other constructor takes caller-supplied values. Components that already
//! measure their own phases (the engine's `PhaseTimes`) report them via
//! [`Recorder::span_closed`] so no new clock reads are added to
//! result-producing crates.

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Instant;

/// Label set attached to counters and gauges, e.g. `[("side", "log1")]`.
pub type Labels = Vec<(String, String)>;

/// One observation. The only non-deterministic field across identical runs
/// is `Span::dur_us`; everything else — including the order records appear
/// in — depends only on the work performed.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// A named timed region. `attrs` are deterministic; `dur_us` is the
    /// measured wall-clock duration in microseconds (the single
    /// non-deterministic field in the model).
    Span {
        name: String,
        attrs: Labels,
        dur_us: u64,
    },
    /// Monotonic count contribution; the exporter sums same-name+labels.
    Counter {
        name: String,
        labels: Labels,
        value: u64,
    },
    /// Point-in-time value; the exporter keeps the last write.
    Gauge {
        name: String,
        labels: Labels,
        value: f64,
    },
    /// A discrete occurrence (budget exhaustion, abort, degradation).
    Event { name: String, attrs: Labels },
    /// Per-iteration convergence telemetry from a fixpoint engine.
    Iteration(IterationRecord),
    /// A log2-bucketed value distribution (see [`HistogramRecord`]).
    Histogram(HistogramRecord),
}

/// Convergence telemetry for one Jacobi iteration of one engine.
///
/// All values are bit-identical across the reference kernel, the serial
/// worklist kernel, and the parallel kernel at any thread count: deltas
/// are reduced with exact `f64::max` / Neumaier summation in ascending
/// pair order, and the pair values themselves depend only on the previous
/// iterate.
#[derive(Debug, Clone, PartialEq)]
pub struct IterationRecord {
    /// Engine direction: `"forward"` or `"backward"`.
    pub engine: String,
    /// 1-based iteration number.
    pub iteration: usize,
    /// Maximum absolute change over active pairs this iteration.
    pub max_delta: f64,
    /// Mean absolute change over active pairs (Neumaier-summed in
    /// ascending pair order).
    pub mean_delta: f64,
    /// Pairs still on the worklist after this iteration's retirement.
    pub active_pairs: usize,
    /// Cumulative pairs retired from the worklist so far.
    pub retired_pairs: u64,
    /// Pairs frozen by Proposition 4 before the run (constant per run).
    pub frozen_pairs: u64,
    /// Cumulative formula evaluations so far.
    pub formula_evals: u64,
}

/// A finished log2-bucketed distribution.
///
/// Buckets are `(index, count)` pairs sorted by index with zero-count
/// buckets omitted; index `b` holds values `v` with [`log2_bucket`]`(v) ==
/// b`, i.e. `v == 0` lands in bucket 0 and `2^(b-1) <= v < 2^b` lands in
/// bucket `b`. Fractional quantities are quantized through [`q32`] before
/// observation so the stored values are exact integers.
///
/// `deterministic` classifies the redaction behavior, mirroring how
/// `Span::dur_us` is the only non-deterministic span field: a
/// deterministic histogram's contents are a pure function of the work
/// performed (identical across kernels and thread counts) and survive
/// redacted export; a `deterministic == false` histogram carries
/// execution-specific tallies (wall-clock latencies, per-shard work as
/// actually scheduled) and redacts to an empty distribution, keeping
/// redacted exports byte-identical.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramRecord {
    /// Metric name, e.g. `engine.iteration_delta`.
    pub name: String,
    /// Label set, e.g. `[("engine", "forward")]`.
    pub labels: Labels,
    /// Unit of the observed values (`"pairs"`, `"us"`, `"bytes"`, `"q32"`).
    pub unit: String,
    /// Whether the contents are deterministic (see type docs).
    pub deterministic: bool,
    /// Number of observations.
    pub count: u64,
    /// Saturating sum of observed values.
    pub sum: u64,
    /// `(log2 bucket index, count)` pairs, ascending, zero counts omitted.
    pub buckets: Vec<(u32, u64)>,
}

/// Log2 bucket index of a value: 0 for 0, otherwise `⌊log2 v⌋ + 1`.
pub fn log2_bucket(v: u64) -> u32 {
    64 - v.leading_zeros()
}

/// Quantizes a non-negative fraction to 32-bit fixed point (×2³²), the
/// deterministic encoding used to put `f64` quantities (deltas, occupancy)
/// into integer histogram buckets. Negative and non-finite inputs map to 0.
pub fn q32(v: f64) -> u64 {
    if !v.is_finite() || v <= 0.0 {
        return 0;
    }
    let scaled = v * 4_294_967_296.0;
    if scaled >= u64::MAX as f64 {
        u64::MAX
    } else {
        // Round-to-nearest keeps tiny deltas distinguishable from zero.
        (scaled + 0.5) as u64
    }
}

/// Accumulating builder for a [`HistogramRecord`].
///
/// Observations go into log2 buckets ([`log2_bucket`]); call
/// [`Histogram::into_record`] (or [`Recorder::histogram`] via
/// [`Histogram::record_into`]) once the distribution is complete — a
/// histogram is a single record summarizing a run, not a stream.
#[derive(Debug, Clone)]
pub struct Histogram {
    name: String,
    labels: Labels,
    unit: String,
    deterministic: bool,
    count: u64,
    sum: u64,
    buckets: BTreeMap<u32, u64>,
}

impl Histogram {
    /// New deterministic histogram (contents survive redacted export).
    pub fn new(name: &str, labels: Labels, unit: &str) -> Self {
        Histogram {
            name: name.to_string(),
            labels,
            unit: unit.to_string(),
            deterministic: true,
            count: 0,
            sum: 0,
            buckets: BTreeMap::new(),
        }
    }

    /// New execution-class histogram: contents depend on scheduling or
    /// wall-clock and are zeroed by redacted export.
    pub fn nondeterministic(name: &str, labels: Labels, unit: &str) -> Self {
        Histogram {
            deterministic: false,
            ..Histogram::new(name, labels, unit)
        }
    }

    /// Observes one integer value.
    pub fn observe(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        *self.buckets.entry(log2_bucket(v)).or_insert(0) += 1;
    }

    /// Observes a fraction through the [`q32`] quantizer.
    pub fn observe_f64(&mut self, v: f64) {
        self.observe(q32(v));
    }

    /// Whether nothing has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Finishes the distribution into an immutable record.
    pub fn into_record(self) -> HistogramRecord {
        HistogramRecord {
            name: self.name,
            labels: self.labels,
            unit: self.unit,
            deterministic: self.deterministic,
            count: self.count,
            sum: self.sum,
            buckets: self.buckets.into_iter().collect(),
        }
    }

    /// Finishes the distribution and appends it to `rec`.
    pub fn record_into(self, rec: &Recorder) {
        rec.histogram(self.into_record());
    }
}

/// Thread-safe append-log of [`Record`]s.
///
/// Cheap to share as `Arc<Recorder>`; all methods take `&self`. A poisoned
/// mutex (a panicking instrumented thread) degrades to using the inner
/// data — observability must never take the pipeline down.
#[derive(Debug, Default)]
pub struct Recorder {
    records: Mutex<Vec<Record>>,
}

impl Recorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&self, r: Record) {
        let mut guard = match self.records.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.push(r);
    }

    /// Adds `value` to the counter `name` with `labels`.
    pub fn counter_add(&self, name: &str, labels: Labels, value: u64) {
        self.push(Record::Counter {
            name: name.to_string(),
            labels,
            value,
        });
    }

    /// Sets the gauge `name` with `labels` to `value`.
    pub fn gauge_set(&self, name: &str, labels: Labels, value: f64) {
        self.push(Record::Gauge {
            name: name.to_string(),
            labels,
            value,
        });
    }

    /// Records a discrete event.
    pub fn event(&self, name: &str, attrs: Labels) {
        self.push(Record::Event {
            name: name.to_string(),
            attrs,
        });
    }

    /// Records per-iteration convergence telemetry.
    pub fn iteration(&self, rec: IterationRecord) {
        self.push(Record::Iteration(rec));
    }

    /// Records a finished histogram distribution.
    pub fn histogram(&self, rec: HistogramRecord) {
        self.push(Record::Histogram(rec));
    }

    /// Starts a timed span; the duration is recorded when the returned
    /// guard is dropped (or [`Span::finish`] is called).
    pub fn span<'a>(&'a self, name: &str, attrs: Labels) -> Span<'a> {
        Span {
            recorder: self,
            name: name.to_string(),
            attrs,
            // ems-lint: allow(wall-clock-randomness, span timing is observability-only; the duration lands in the isolated dur_us field and never feeds similarity values)
            started: Instant::now(),
            finished: false,
        }
    }

    /// Records a span whose duration was measured by the caller — used by
    /// components (like the engine) that already track phase times, so no
    /// additional clock reads are introduced there.
    pub fn span_closed(&self, name: &str, attrs: Labels, dur: std::time::Duration) {
        self.push(Record::Span {
            name: name.to_string(),
            attrs,
            dur_us: duration_us(dur),
        });
    }

    /// Returns a borrow-style counter handle bound to this recorder.
    pub fn counter<'a>(&'a self, name: &str, labels: Labels) -> Counter<'a> {
        Counter {
            recorder: self,
            name: name.to_string(),
            labels,
        }
    }

    /// Returns a borrow-style gauge handle bound to this recorder.
    pub fn gauge<'a>(&'a self, name: &str, labels: Labels) -> Gauge<'a> {
        Gauge {
            recorder: self,
            name: name.to_string(),
            labels,
        }
    }

    /// Snapshot of all records in append order.
    pub fn records(&self) -> Vec<Record> {
        let guard = match self.records.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.clone()
    }

    /// Number of records captured so far.
    pub fn len(&self) -> usize {
        let guard = match self.records.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.len()
    }

    /// Whether no records have been captured.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Saturating `Duration` → whole microseconds.
pub fn duration_us(d: std::time::Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// RAII guard for a timed region; records a [`Record::Span`] on drop.
#[derive(Debug)]
pub struct Span<'a> {
    recorder: &'a Recorder,
    name: String,
    attrs: Labels,
    started: Instant,
    finished: bool,
}

impl Span<'_> {
    /// Ends the span now and records it.
    pub fn finish(mut self) {
        self.close();
    }

    fn close(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        // Timing is observability-only: the elapsed duration lands in the
        // isolated `dur_us` field and never feeds similarity values.
        let dur = self.started.elapsed();
        self.recorder.push(Record::Span {
            name: std::mem::take(&mut self.name),
            attrs: std::mem::take(&mut self.attrs),
            dur_us: duration_us(dur),
        });
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.close();
    }
}

/// Borrow-style handle adding to one named counter.
#[derive(Debug)]
pub struct Counter<'a> {
    recorder: &'a Recorder,
    name: String,
    labels: Labels,
}

impl Counter<'_> {
    /// Adds `value` to the counter.
    pub fn add(&self, value: u64) {
        self.recorder
            .counter_add(&self.name, self.labels.clone(), value);
    }

    /// Adds 1 to the counter.
    pub fn inc(&self) {
        self.add(1);
    }
}

/// Borrow-style handle setting one named gauge.
#[derive(Debug)]
pub struct Gauge<'a> {
    recorder: &'a Recorder,
    name: String,
    labels: Labels,
}

impl Gauge<'_> {
    /// Sets the gauge to `value`.
    pub fn set(&self, value: f64) {
        self.recorder
            .gauge_set(&self.name, self.labels.clone(), value);
    }
}

/// Convenience constructor for a label set.
pub fn labels(pairs: &[(&str, &str)]) -> Labels {
    pairs
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_preserve_append_order() {
        let r = Recorder::new();
        r.counter_add("a", vec![], 1);
        r.event("b", vec![]);
        r.gauge_set("c", vec![], 2.0);
        let recs = r.records();
        assert_eq!(recs.len(), 3);
        assert!(matches!(recs[0], Record::Counter { .. }));
        assert!(matches!(recs[1], Record::Event { .. }));
        assert!(matches!(recs[2], Record::Gauge { .. }));
    }

    #[test]
    fn span_guard_records_on_drop() {
        let r = Recorder::new();
        {
            let _s = r.span("phase.test", labels(&[("engine", "forward")]));
        }
        let recs = r.records();
        assert_eq!(recs.len(), 1);
        match &recs[0] {
            Record::Span { name, attrs, .. } => {
                assert_eq!(name, "phase.test");
                assert_eq!(attrs[0].0, "engine");
            }
            other => panic!("expected span, got {other:?}"),
        }
    }

    #[test]
    fn span_finish_records_once() {
        let r = Recorder::new();
        let s = r.span("once", vec![]);
        s.finish();
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn span_closed_uses_caller_duration() {
        let r = Recorder::new();
        r.span_closed("phase.setup", vec![], std::time::Duration::from_micros(42));
        match &r.records()[0] {
            Record::Span { dur_us, .. } => assert_eq!(*dur_us, 42),
            other => panic!("expected span, got {other:?}"),
        }
    }

    #[test]
    fn handles_share_recorder() {
        let r = Recorder::new();
        let c = r.counter("evals", labels(&[("engine", "forward")]));
        c.inc();
        c.add(5);
        let g = r.gauge("active", vec![]);
        g.set(7.0);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn log2_buckets_partition_the_axis() {
        assert_eq!(log2_bucket(0), 0);
        assert_eq!(log2_bucket(1), 1);
        assert_eq!(log2_bucket(2), 2);
        assert_eq!(log2_bucket(3), 2);
        assert_eq!(log2_bucket(4), 3);
        assert_eq!(log2_bucket(u64::MAX), 64);
    }

    #[test]
    fn q32_quantizer_is_monotone_and_clamped() {
        assert_eq!(q32(0.0), 0);
        assert_eq!(q32(-1.0), 0);
        assert_eq!(q32(f64::NAN), 0);
        assert_eq!(q32(1.0), 1 << 32);
        assert!(q32(0.5) < q32(0.75));
        assert_eq!(q32(f64::INFINITY), 0);
        assert_eq!(q32(1e30), u64::MAX);
    }

    #[test]
    fn histogram_accumulates_buckets() {
        let mut h = Histogram::new("engine.test", labels(&[("engine", "forward")]), "pairs");
        for v in [0, 1, 2, 3, 1000] {
            h.observe(v);
        }
        let rec = h.into_record();
        assert!(rec.deterministic);
        assert_eq!(rec.count, 5);
        assert_eq!(rec.sum, 1006);
        assert_eq!(rec.buckets, vec![(0, 1), (1, 1), (2, 2), (10, 1)]);
    }

    #[test]
    fn histogram_records_into_recorder() {
        let r = Recorder::new();
        let mut h = Histogram::nondeterministic("store.fetch_us", vec![], "us");
        h.observe(17);
        h.record_into(&r);
        match &r.records()[0] {
            Record::Histogram(hr) => {
                assert_eq!(hr.name, "store.fetch_us");
                assert!(!hr.deterministic);
                assert_eq!(hr.count, 1);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn shared_across_threads() {
        use std::sync::Arc;
        let r = Arc::new(Recorder::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let rc = Arc::clone(&r);
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    rc.counter_add("n", vec![], 1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(r.len(), 400);
    }
}
