//! Human-readable run report (`ems report TRACE`).
//!
//! Renders a recorded trace into sections: ingestion warnings, graph
//! shape, phase breakdown, per-engine convergence (table plus an ASCII
//! curve of `max_delta`), notable events, and remaining counters. Pure
//! function of the records, so it works equally on a live recorder
//! snapshot or a parsed `--trace` file.

use std::collections::BTreeMap;

use crate::record::{IterationRecord, Labels, Record};

fn fmt_labels(labels: &Labels) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let parts: Vec<String> = labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
    format!("{{{}}}", parts.join(", "))
}

fn fmt_us(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.3}s", us as f64 / 1e6)
    } else if us >= 1_000 {
        format!("{:.3}ms", us as f64 / 1e3)
    } else {
        format!("{us}µs")
    }
}

fn fmt_delta(d: f64) -> String {
    if d.is_nan() {
        "-".to_string()
    } else if d == 0.0 {
        "0".to_string()
    } else {
        format!("{d:.3e}")
    }
}

/// Renders the full report.
pub fn render(records: &[Record]) -> String {
    let mut out = String::new();
    out.push_str("event-matching run report\n");
    out.push_str("=========================\n");

    render_ingestion(&mut out, records);
    render_graphs(&mut out, records);
    render_phases(&mut out, records);
    render_convergence(&mut out, records);
    render_histograms(&mut out, records);
    render_store(&mut out, records);
    render_events(&mut out, records);
    render_counters(&mut out, records);
    out
}

/// Counter tallies whose names start with `prefix`, aggregated by
/// (name, labels) in sorted order.
fn counter_tallies(records: &[Record], pred: impl Fn(&str) -> bool) -> Vec<(String, u64)> {
    let mut tallies: BTreeMap<String, u64> = BTreeMap::new();
    for rec in records {
        if let Record::Counter {
            name,
            labels,
            value,
        } = rec
        {
            if pred(name) {
                *tallies
                    .entry(format!("{name}{}", fmt_labels(labels)))
                    .or_insert(0) += value;
            }
        }
    }
    tallies.into_iter().collect()
}

fn render_ingestion(out: &mut String, records: &[Record]) {
    let warnings = counter_tallies(records, |n| n.starts_with("xes_warnings"));
    out.push_str("\nIngestion\n---------\n");
    if warnings.is_empty() {
        out.push_str("  no parse warnings recorded\n");
        return;
    }
    let total: u64 = warnings.iter().map(|(_, v)| v).sum();
    out.push_str(&format!("  {total} parse warning(s) recovered:\n"));
    for (key, count) in warnings {
        out.push_str(&format!("    {key:<48} {count}\n"));
    }
}

fn render_graphs(out: &mut String, records: &[Record]) {
    // last-wins gauges for graph_* metrics, grouped by side label
    let mut gauges: BTreeMap<String, f64> = BTreeMap::new();
    for rec in records {
        if let Record::Gauge {
            name,
            labels,
            value,
        } = rec
        {
            if name.starts_with("graph_") {
                gauges.insert(format!("{name}{}", fmt_labels(labels)), *value);
            }
        }
    }
    if gauges.is_empty() {
        return;
    }
    out.push_str("\nDependency graphs\n-----------------\n");
    for (key, value) in gauges {
        if value == value.trunc() {
            out.push_str(&format!("  {key:<48} {}\n", value as i64));
        } else {
            out.push_str(&format!("  {key:<48} {value:.3}\n"));
        }
    }
}

fn render_phases(out: &mut String, records: &[Record]) {
    let mut spans: Vec<(String, u64)> = Vec::new();
    for rec in records {
        if let Record::Span {
            name,
            attrs,
            dur_us,
        } = rec
        {
            spans.push((format!("{name}{}", fmt_labels(attrs)), *dur_us));
        }
    }
    if spans.is_empty() {
        return;
    }
    let total: u64 = spans.iter().map(|(_, d)| d).sum();
    out.push_str("\nPhase breakdown\n---------------\n");
    for (key, dur) in &spans {
        let pct = if total > 0 {
            *dur as f64 * 100.0 / total as f64
        } else {
            0.0
        };
        out.push_str(&format!("  {key:<48} {:>10}  {pct:5.1}%\n", fmt_us(*dur)));
    }
    out.push_str(&format!("  {:<48} {:>10}\n", "total", fmt_us(total)));
}

fn render_convergence(out: &mut String, records: &[Record]) {
    let mut by_engine: BTreeMap<String, Vec<&IterationRecord>> = BTreeMap::new();
    for rec in records {
        if let Record::Iteration(it) = rec {
            by_engine.entry(it.engine.clone()).or_default().push(it);
        }
    }
    if by_engine.is_empty() {
        return;
    }
    out.push_str("\nConvergence\n-----------\n");
    for (engine, iters) in by_engine {
        out.push_str(&format!("  engine: {engine}\n"));
        out.push_str("    iter   max_delta    mean_delta   active   retired   frozen   evals\n");
        for it in &iters {
            out.push_str(&format!(
                "    {:>4}   {:>9}    {:>9}   {:>6}   {:>7}   {:>6}   {}\n",
                it.iteration,
                fmt_delta(it.max_delta),
                fmt_delta(it.mean_delta),
                it.active_pairs,
                it.retired_pairs,
                it.frozen_pairs,
                it.formula_evals,
            ));
        }
        render_curve(out, &iters);
    }
}

/// ASCII bar chart of max_delta on a log-ish scale: each bar is scaled to
/// the engine's first-iteration delta.
fn render_curve(out: &mut String, iters: &[&IterationRecord]) {
    const WIDTH: usize = 40;
    let base = iters
        .iter()
        .map(|it| it.max_delta)
        .find(|d| d.is_finite() && *d > 0.0);
    let base = match base {
        Some(b) => b,
        None => return,
    };
    out.push_str("    max_delta curve (relative to iteration 1):\n");
    for it in iters {
        let frac = if it.max_delta.is_finite() && it.max_delta > 0.0 {
            (it.max_delta / base).clamp(0.0, 1.0)
        } else {
            0.0
        };
        let bars = ((frac * WIDTH as f64).ceil() as usize).min(WIDTH);
        out.push_str(&format!(
            "    {:>4} |{:<width$}| {}\n",
            it.iteration,
            "#".repeat(bars),
            fmt_delta(it.max_delta),
            width = WIDTH
        ));
    }
}

/// Hot-path distributions: one block per histogram record, with a bar per
/// occupied log2 bucket. Redacted (zeroed) execution-class histograms are
/// listed by name only, so a redacted trace still shows what was profiled.
fn render_histograms(out: &mut String, records: &[Record]) {
    let hists: Vec<&crate::record::HistogramRecord> = records
        .iter()
        .filter_map(|r| match r {
            Record::Histogram(h) => Some(h),
            _ => None,
        })
        .collect();
    if hists.is_empty() {
        return;
    }
    out.push_str("\nHistograms\n----------\n");
    for h in hists {
        let class = if h.deterministic { "det" } else { "exec" };
        out.push_str(&format!(
            "  {}{} [{}] ({class})\n",
            h.name,
            fmt_labels(&h.labels),
            h.unit
        ));
        if h.count == 0 {
            out.push_str("    (no observations)\n");
            continue;
        }
        let mean = h.sum as f64 / h.count as f64;
        out.push_str(&format!(
            "    count {}  sum {}  mean {mean:.1}\n",
            h.count, h.sum
        ));
        let max_count = h.buckets.iter().map(|&(_, c)| c).max().unwrap_or(1).max(1);
        for &(bucket, count) in &h.buckets {
            const WIDTH: usize = 30;
            let bars =
                ((count as f64 / max_count as f64 * WIDTH as f64).ceil() as usize).clamp(1, WIDTH);
            let lo = if bucket == 0 { 0 } else { 1u64 << (bucket - 1) };
            out.push_str(&format!(
                "    2^{bucket:<2} ({lo:>12}..) |{:<width$}| {count}\n",
                "#".repeat(bars),
                width = WIDTH
            ));
        }
    }
}

/// Durable-store behavior: cache hits/misses, quarantines, retries and
/// failures recorded by the catalog store (`store.*` counters).
fn render_store(out: &mut String, records: &[Record]) {
    let tallies = counter_tallies(records, |n| n.starts_with("store."));
    if tallies.is_empty() {
        return;
    }
    out.push_str("\nDurable store\n-------------\n");
    for (key, count) in tallies {
        out.push_str(&format!("  {key:<48} {count}\n"));
    }
}

fn render_events(out: &mut String, records: &[Record]) {
    let events: Vec<&Record> = records
        .iter()
        .filter(|r| matches!(r, Record::Event { .. }))
        .collect();
    if events.is_empty() {
        return;
    }
    out.push_str("\nEvents\n------\n");
    for rec in events {
        if let Record::Event { name, attrs } = rec {
            out.push_str(&format!("  {name}{}\n", fmt_labels(attrs)));
        }
    }
}

fn render_counters(out: &mut String, records: &[Record]) {
    // `xes_warnings` and `store.*` already have their own sections.
    let rest = counter_tallies(records, |n| {
        !n.starts_with("xes_warnings") && !n.starts_with("store.")
    });
    if rest.is_empty() {
        return;
    }
    out.push_str("\nCounters\n--------\n");
    for (key, count) in rest {
        out.push_str(&format!("  {key:<48} {count}\n"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::labels;

    #[test]
    fn report_sections_appear() {
        let records = vec![
            Record::Counter {
                name: "xes_warnings".into(),
                labels: labels(&[("kind", "syntax"), ("log", "log1")]),
                value: 2,
            },
            Record::Gauge {
                name: "graph_vertices".into(),
                labels: labels(&[("side", "log1")]),
                value: 12.0,
            },
            Record::Span {
                name: "phase.setup".into(),
                attrs: labels(&[("engine", "forward")]),
                dur_us: 500,
            },
            Record::Iteration(IterationRecord {
                engine: "forward".into(),
                iteration: 1,
                max_delta: 0.5,
                mean_delta: 0.1,
                active_pairs: 9,
                retired_pairs: 0,
                frozen_pairs: 1,
                formula_evals: 9,
            }),
            Record::Iteration(IterationRecord {
                engine: "forward".into(),
                iteration: 2,
                max_delta: 0.25,
                mean_delta: 0.05,
                active_pairs: 7,
                retired_pairs: 2,
                frozen_pairs: 1,
                formula_evals: 18,
            }),
            Record::Event {
                name: "budget.exhausted".into(),
                attrs: labels(&[("reason", "max_iterations")]),
            },
            Record::Counter {
                name: "composite_rounds".into(),
                labels: vec![],
                value: 3,
            },
        ];
        let text = render(&records);
        assert!(text.contains("Ingestion"), "{text}");
        assert!(text.contains("2 parse warning(s)"), "{text}");
        assert!(text.contains("Dependency graphs"), "{text}");
        assert!(text.contains("graph_vertices{side=log1}"), "{text}");
        assert!(text.contains("Phase breakdown"), "{text}");
        assert!(text.contains("Convergence"), "{text}");
        assert!(text.contains("engine: forward"), "{text}");
        assert!(text.contains("max_delta curve"), "{text}");
        assert!(text.contains("budget.exhausted"), "{text}");
        assert!(text.contains("composite_rounds"), "{text}");
    }

    #[test]
    fn histogram_section_renders_buckets_and_redacted_stubs() {
        use crate::record::HistogramRecord;
        let records = vec![
            Record::Histogram(HistogramRecord {
                name: "engine.iteration_delta".into(),
                labels: labels(&[("engine", "forward")]),
                unit: "q32".into(),
                deterministic: true,
                count: 3,
                sum: 30,
                buckets: vec![(2, 1), (4, 2)],
            }),
            Record::Histogram(HistogramRecord {
                name: "store.fetch_us".into(),
                labels: vec![],
                unit: "us".into(),
                deterministic: false,
                count: 0,
                sum: 0,
                buckets: vec![],
            }),
        ];
        let text = render(&records);
        assert!(text.contains("Histograms"), "{text}");
        assert!(
            text.contains("engine.iteration_delta{engine=forward} [q32] (det)"),
            "{text}"
        );
        assert!(text.contains("count 3  sum 30  mean 10.0"), "{text}");
        assert!(text.contains("2^2"), "{text}");
        assert!(text.contains("store.fetch_us [us] (exec)"), "{text}");
        assert!(text.contains("(no observations)"), "{text}");
    }

    #[test]
    fn empty_records_render() {
        let text = render(&[]);
        assert!(text.contains("no parse warnings"), "{text}");
    }

    #[test]
    fn curve_scales_to_first_delta() {
        let mk = |i: usize, d: f64| IterationRecord {
            engine: "f".into(),
            iteration: i,
            max_delta: d,
            mean_delta: 0.0,
            active_pairs: 1,
            retired_pairs: 0,
            frozen_pairs: 0,
            formula_evals: 0,
        };
        let iters = [mk(1, 0.8), mk(2, 0.4), mk(3, 0.0)];
        let refs: Vec<&IterationRecord> = iters.iter().collect();
        let mut out = String::new();
        render_curve(&mut out, &refs);
        let lines: Vec<&str> = out.lines().collect();
        // first bar full width, second half, third empty
        assert!(lines[1].contains(&"#".repeat(40)), "{out}");
        assert!(lines[3].contains("| 0"), "{out}");
    }
}
