//! Validates an `ems-trace/1` JSONL trace file.
//!
//! Usage: `trace_check TRACE.jsonl [--check-convergence]`
//!
//! Exit codes: 0 valid, 1 invalid trace or failed convergence check,
//! 2 usage error. Used by CI's observability job to gate the smoke trace.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path: Option<&str> = None;
    let mut check_convergence = false;
    for arg in &args {
        match arg.as_str() {
            "--check-convergence" => check_convergence = true,
            "--help" | "-h" => {
                println!("usage: trace_check TRACE.jsonl [--check-convergence]");
                return ExitCode::SUCCESS;
            }
            other if !other.starts_with('-') && path.is_none() => path = Some(other),
            other => {
                eprintln!("trace_check: unexpected argument '{other}'");
                return ExitCode::from(2);
            }
        }
    }
    let Some(path) = path else {
        eprintln!("usage: trace_check TRACE.jsonl [--check-convergence]");
        return ExitCode::from(2);
    };
    let input = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("trace_check: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let records = match ems_obs::jsonl::parse_records(&input) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("trace_check: INVALID: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "trace_check: {path}: {} record(s), schema ok",
        records.len()
    );
    if check_convergence {
        match ems_obs::jsonl::check_convergence(&records) {
            Ok(counts) => {
                if counts.is_empty() {
                    eprintln!("trace_check: INVALID: no iteration records to check");
                    return ExitCode::FAILURE;
                }
                for (engine, n) in counts {
                    println!(
                        "trace_check: engine {engine}: {n} iteration(s), max_delta non-increasing"
                    );
                }
            }
            Err(e) => {
                eprintln!("trace_check: INVALID: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
