#![forbid(unsafe_code)]
//! `ems-obs` — structured observability for the event-matching pipeline.
//!
//! The engine's [`RunStats`](../ems_core/struct.RunStats.html) answers *how
//! much* work a run performed; this crate answers *why*: which iteration the
//! fixpoint converged at, how fast the residual shrank, when the worklist
//! retired pairs, where wall-clock went, and what the ingestion layer had to
//! repair. It provides:
//!
//! * a thread-safe [`Recorder`] collecting [`Record`]s — spans, counters,
//!   gauges, events and per-iteration [`IterationRecord`]s — in a single
//!   deterministic sequence;
//! * a JSON-lines trace exporter ([`jsonl`]) and a Prometheus-style text
//!   metrics exporter ([`prom`]);
//! * a human-readable run report renderer ([`report`]).
//!
//! # Determinism contract
//!
//! Everything the recorder captures is deterministic — record order,
//! counts, names, labels and convergence values — **except** span
//! durations, which are wall-clock measurements and are confined to the
//! single `dur_us` field of [`Record::Span`]. Exporters expose a redacting
//! mode ([`jsonl::write_redacted`], [`prom::write_deterministic`]) that
//! zeroes/omits the timing fields; two runs of the same work produce
//! byte-identical redacted exports regardless of thread count or host
//! speed. This mirrors how `RunStats` isolates its `phase_times` from the
//! work counters, and is what lets ems-lint's wall-clock rule stay honest:
//! the only clock reads live in [`record`]'s span implementation, under
//! audited suppressions.

#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

pub mod json;
pub mod jsonl;
pub mod prom;
pub mod record;
pub mod report;
pub mod trajectory;

pub use record::{
    labels, log2_bucket, q32, Counter, Gauge, Histogram, HistogramRecord, IterationRecord, Labels,
    Record, Recorder, Span,
};
