//! JSON-lines trace format (`--trace PATH`).
//!
//! Line 0 is a meta record; every subsequent line is one [`Record`] with a
//! strictly increasing `seq`. Field order within a line is fixed by the
//! writer, so identical runs produce byte-identical traces once the
//! timing field is redacted ([`write_redacted`] zeroes `dur_us`).
//!
//! Schema (`"schema": "ems-trace/1"`):
//!
//! ```text
//! {"schema":"ems-trace/1","type":"meta","seq":0}
//! {"type":"span","seq":N,"name":S,"attrs":{..},"dur_us":U}
//! {"type":"counter","seq":N,"name":S,"labels":{..},"value":U}
//! {"type":"gauge","seq":N,"name":S,"labels":{..},"value":F|null}
//! {"type":"event","seq":N,"name":S,"attrs":{..}}
//! {"type":"iteration","seq":N,"engine":S,"iteration":U,"max_delta":F,
//!  "mean_delta":F,"active_pairs":U,"retired_pairs":U,"frozen_pairs":U,
//!  "formula_evals":U}
//! {"type":"histogram","seq":N,"name":S,"labels":{..},"unit":S,"det":B,
//!  "count":U,"sum":U,"buckets":[[B,C],...]}
//! ```
//!
//! The histogram record is additive to `ems-trace/1`: readers written
//! against the original five types rejected unknown types, so traces that
//! carry histograms require this reader — but every pre-histogram trace
//! still parses unchanged. Redaction zeroes `count`/`sum`/`buckets` of
//! histograms whose `det` flag is false (execution-specific tallies), the
//! same discipline as span `dur_us`.

use crate::json::{self, Value};
use crate::record::{HistogramRecord, IterationRecord, Labels, Record};

/// Schema identifier written into the meta line.
pub const SCHEMA: &str = "ems-trace/1";

/// Renders a full trace: meta line then one line per record.
pub fn write(records: &[Record]) -> String {
    render(records, false)
}

/// Renders a trace with `dur_us` fields forced to 0 — byte-identical
/// across runs that performed the same work.
pub fn write_redacted(records: &[Record]) -> String {
    render(records, true)
}

fn render(records: &[Record], redact: bool) -> String {
    let mut out = String::new();
    out.push_str("{\"schema\":\"");
    out.push_str(SCHEMA);
    out.push_str("\",\"type\":\"meta\",\"seq\":0}\n");
    for (i, rec) in records.iter().enumerate() {
        write_record(&mut out, rec, i + 1, redact);
        out.push('\n');
    }
    out
}

fn write_labels(out: &mut String, labels: &Labels) {
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json::write_escaped(out, k);
        out.push(':');
        json::write_escaped(out, v);
    }
    out.push('}');
}

fn write_record(out: &mut String, rec: &Record, seq: usize, redact: bool) {
    match rec {
        Record::Span {
            name,
            attrs,
            dur_us,
        } => {
            out.push_str("{\"type\":\"span\",\"seq\":");
            out.push_str(&seq.to_string());
            out.push_str(",\"name\":");
            json::write_escaped(out, name);
            out.push_str(",\"attrs\":");
            write_labels(out, attrs);
            out.push_str(",\"dur_us\":");
            out.push_str(&if redact { 0 } else { *dur_us }.to_string());
            out.push('}');
        }
        Record::Counter {
            name,
            labels,
            value,
        } => {
            out.push_str("{\"type\":\"counter\",\"seq\":");
            out.push_str(&seq.to_string());
            out.push_str(",\"name\":");
            json::write_escaped(out, name);
            out.push_str(",\"labels\":");
            write_labels(out, labels);
            out.push_str(",\"value\":");
            out.push_str(&value.to_string());
            out.push('}');
        }
        Record::Gauge {
            name,
            labels,
            value,
        } => {
            out.push_str("{\"type\":\"gauge\",\"seq\":");
            out.push_str(&seq.to_string());
            out.push_str(",\"name\":");
            json::write_escaped(out, name);
            out.push_str(",\"labels\":");
            write_labels(out, labels);
            out.push_str(",\"value\":");
            json::write_f64(out, *value);
            out.push('}');
        }
        Record::Event { name, attrs } => {
            out.push_str("{\"type\":\"event\",\"seq\":");
            out.push_str(&seq.to_string());
            out.push_str(",\"name\":");
            json::write_escaped(out, name);
            out.push_str(",\"attrs\":");
            write_labels(out, attrs);
            out.push('}');
        }
        Record::Iteration(it) => {
            out.push_str("{\"type\":\"iteration\",\"seq\":");
            out.push_str(&seq.to_string());
            out.push_str(",\"engine\":");
            json::write_escaped(out, &it.engine);
            out.push_str(",\"iteration\":");
            out.push_str(&it.iteration.to_string());
            out.push_str(",\"max_delta\":");
            json::write_f64(out, it.max_delta);
            out.push_str(",\"mean_delta\":");
            json::write_f64(out, it.mean_delta);
            out.push_str(",\"active_pairs\":");
            out.push_str(&it.active_pairs.to_string());
            out.push_str(",\"retired_pairs\":");
            out.push_str(&it.retired_pairs.to_string());
            out.push_str(",\"frozen_pairs\":");
            out.push_str(&it.frozen_pairs.to_string());
            out.push_str(",\"formula_evals\":");
            out.push_str(&it.formula_evals.to_string());
            out.push('}');
        }
        Record::Histogram(h) => {
            // A redacted non-deterministic histogram keeps its identity
            // fields (name/labels/unit/det) so the record sequence stays
            // comparable, but its contents are zeroed.
            let zeroed = redact && !h.deterministic;
            out.push_str("{\"type\":\"histogram\",\"seq\":");
            out.push_str(&seq.to_string());
            out.push_str(",\"name\":");
            json::write_escaped(out, &h.name);
            out.push_str(",\"labels\":");
            write_labels(out, &h.labels);
            out.push_str(",\"unit\":");
            json::write_escaped(out, &h.unit);
            out.push_str(",\"det\":");
            out.push_str(if h.deterministic { "true" } else { "false" });
            out.push_str(",\"count\":");
            out.push_str(&if zeroed { 0 } else { h.count }.to_string());
            out.push_str(",\"sum\":");
            out.push_str(&if zeroed { 0 } else { h.sum }.to_string());
            out.push_str(",\"buckets\":[");
            if !zeroed {
                for (i, (b, c)) in h.buckets.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('[');
                    out.push_str(&b.to_string());
                    out.push(',');
                    out.push_str(&c.to_string());
                    out.push(']');
                }
            }
            out.push_str("]}");
        }
    }
}

/// A problem found while validating a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceError {
    /// 1-based line number.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TraceError {}

fn terr(line: usize, message: impl Into<String>) -> TraceError {
    TraceError {
        line,
        message: message.into(),
    }
}

fn labels_from(v: &Value, line: usize, field: &str) -> Result<Labels, TraceError> {
    let obj = v
        .as_object()
        .ok_or_else(|| terr(line, format!("'{field}' must be an object")))?;
    let mut out = Vec::new();
    for (k, val) in obj {
        let s = val
            .as_str()
            .ok_or_else(|| terr(line, format!("'{field}' values must be strings")))?;
        out.push((k.clone(), s.to_string()));
    }
    Ok(out)
}

fn req_str(v: &Value, key: &str, line: usize) -> Result<String, TraceError> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| terr(line, format!("missing string field '{key}'")))
}

fn req_u64(v: &Value, key: &str, line: usize) -> Result<u64, TraceError> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| terr(line, format!("missing integer field '{key}'")))
}

fn req_f64(v: &Value, key: &str, line: usize) -> Result<f64, TraceError> {
    match v.get(key) {
        Some(Value::Number(n)) => Ok(*n),
        Some(Value::Null) => Ok(f64::NAN),
        _ => Err(terr(line, format!("missing number field '{key}'"))),
    }
}

fn req_bool(v: &Value, key: &str, line: usize) -> Result<bool, TraceError> {
    match v.get(key) {
        Some(Value::Bool(b)) => Ok(*b),
        _ => Err(terr(line, format!("missing boolean field '{key}'"))),
    }
}

/// Parses the `[[bucket, count], ...]` array of a histogram line,
/// enforcing ascending bucket order so the writer's canonical form is the
/// only accepted one.
fn buckets_from(v: &Value, line: usize) -> Result<Vec<(u32, u64)>, TraceError> {
    let arr = v
        .get("buckets")
        .and_then(Value::as_array)
        .ok_or_else(|| terr(line, "missing array field 'buckets'"))?;
    let mut out = Vec::with_capacity(arr.len());
    let mut last: Option<u32> = None;
    for entry in arr {
        let pair = entry
            .as_array()
            .filter(|p| p.len() == 2)
            .ok_or_else(|| terr(line, "histogram bucket must be a [index, count] pair"))?;
        let idx = pair[0]
            .as_u64()
            .filter(|&b| b <= 64)
            .ok_or_else(|| terr(line, "histogram bucket index must be an integer in 0..=64"))?
            as u32;
        if last.is_some_and(|l| idx <= l) {
            return Err(terr(line, "histogram buckets must be strictly ascending"));
        }
        last = Some(idx);
        let count = pair[1]
            .as_u64()
            .ok_or_else(|| terr(line, "histogram bucket count must be an integer"))?;
        out.push((idx, count));
    }
    Ok(out)
}

/// Parses and validates a trace document: meta line first, known types
/// only, required fields present, `seq` strictly increasing from 1.
/// Returns the records (timing preserved).
pub fn parse_records(input: &str) -> Result<Vec<Record>, TraceError> {
    let mut lines = input.lines().enumerate();
    let (idx, first) = lines
        .next()
        .ok_or_else(|| terr(1, "empty trace: missing meta line"))?;
    let meta = json::parse(first).map_err(|e| terr(idx + 1, format!("invalid json: {e}")))?;
    if meta.get("type").and_then(Value::as_str) != Some("meta") {
        return Err(terr(idx + 1, "first line must have type 'meta'"));
    }
    match meta.get("schema").and_then(Value::as_str) {
        Some(s) if s == SCHEMA => {}
        Some(s) => return Err(terr(idx + 1, format!("unsupported schema '{s}'"))),
        None => return Err(terr(idx + 1, "meta line missing 'schema'")),
    }
    if meta.get("seq").and_then(Value::as_u64) != Some(0) {
        return Err(terr(idx + 1, "meta line must have seq 0"));
    }

    let mut records = Vec::new();
    let mut expected_seq = 1u64;
    for (idx, raw) in lines {
        let line = idx + 1;
        if raw.trim().is_empty() {
            continue;
        }
        let v = json::parse(raw).map_err(|e| terr(line, format!("invalid json: {e}")))?;
        let seq = req_u64(&v, "seq", line)?;
        if seq != expected_seq {
            return Err(terr(
                line,
                format!("seq {seq} out of order (expected {expected_seq})"),
            ));
        }
        expected_seq += 1;
        let ty = req_str(&v, "type", line)?;
        let rec = match ty.as_str() {
            "span" => Record::Span {
                name: req_str(&v, "name", line)?,
                attrs: labels_from(v.get("attrs").unwrap_or(&Value::Null), line, "attrs")?,
                dur_us: req_u64(&v, "dur_us", line)?,
            },
            "counter" => Record::Counter {
                name: req_str(&v, "name", line)?,
                labels: labels_from(v.get("labels").unwrap_or(&Value::Null), line, "labels")?,
                value: req_u64(&v, "value", line)?,
            },
            "gauge" => Record::Gauge {
                name: req_str(&v, "name", line)?,
                labels: labels_from(v.get("labels").unwrap_or(&Value::Null), line, "labels")?,
                value: req_f64(&v, "value", line)?,
            },
            "event" => Record::Event {
                name: req_str(&v, "name", line)?,
                attrs: labels_from(v.get("attrs").unwrap_or(&Value::Null), line, "attrs")?,
            },
            "iteration" => Record::Iteration(IterationRecord {
                engine: req_str(&v, "engine", line)?,
                iteration: req_u64(&v, "iteration", line)? as usize,
                max_delta: req_f64(&v, "max_delta", line)?,
                mean_delta: req_f64(&v, "mean_delta", line)?,
                active_pairs: req_u64(&v, "active_pairs", line)? as usize,
                retired_pairs: req_u64(&v, "retired_pairs", line)?,
                frozen_pairs: req_u64(&v, "frozen_pairs", line)?,
                formula_evals: req_u64(&v, "formula_evals", line)?,
            }),
            "histogram" => Record::Histogram(HistogramRecord {
                name: req_str(&v, "name", line)?,
                labels: labels_from(v.get("labels").unwrap_or(&Value::Null), line, "labels")?,
                unit: req_str(&v, "unit", line)?,
                deterministic: req_bool(&v, "det", line)?,
                count: req_u64(&v, "count", line)?,
                sum: req_u64(&v, "sum", line)?,
                buckets: buckets_from(&v, line)?,
            }),
            other => return Err(terr(line, format!("unknown record type '{other}'"))),
        };
        records.push(rec);
    }
    Ok(records)
}

/// Validates trace structure without materializing records.
pub fn validate_trace(input: &str) -> Result<usize, TraceError> {
    parse_records(input).map(|r| r.len())
}

/// Checks the acceptance-criterion convergence shape: for each engine,
/// `max_delta` must be non-increasing from the second iteration record on
/// (the first iteration's delta starts from the seed values and may be
/// anything). Returns the per-engine iteration counts.
pub fn check_convergence(records: &[Record]) -> Result<Vec<(String, usize)>, String> {
    use std::collections::BTreeMap;
    let mut last: BTreeMap<String, (usize, f64)> = BTreeMap::new();
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    for rec in records {
        if let Record::Iteration(it) = rec {
            *counts.entry(it.engine.clone()).or_insert(0) += 1;
            if let Some((prev_iter, prev_delta)) = last.get(&it.engine) {
                if it.iteration != prev_iter + 1 {
                    return Err(format!(
                        "engine {}: iteration {} follows {} (not consecutive)",
                        it.engine, it.iteration, prev_iter
                    ));
                }
                if *prev_iter >= 2 && it.max_delta > *prev_delta {
                    return Err(format!(
                        "engine {}: max_delta increased at iteration {} ({} > {})",
                        it.engine, it.iteration, it.max_delta, prev_delta
                    ));
                }
            } else if it.iteration != 1 {
                return Err(format!(
                    "engine {}: first iteration record is {} (expected 1)",
                    it.engine, it.iteration
                ));
            }
            last.insert(it.engine.clone(), (it.iteration, it.max_delta));
        }
    }
    Ok(counts.into_iter().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::labels;

    fn sample() -> Vec<Record> {
        vec![
            Record::Counter {
                name: "xes_warnings".into(),
                labels: labels(&[("kind", "syntax"), ("log", "log1")]),
                value: 3,
            },
            Record::Span {
                name: "phase.setup".into(),
                attrs: labels(&[("engine", "forward")]),
                dur_us: 1234,
            },
            Record::Iteration(IterationRecord {
                engine: "forward".into(),
                iteration: 1,
                max_delta: 0.5,
                mean_delta: 0.125,
                active_pairs: 10,
                retired_pairs: 0,
                frozen_pairs: 2,
                formula_evals: 10,
            }),
            Record::Event {
                name: "budget.exhausted".into(),
                attrs: labels(&[("reason", "max_iterations")]),
            },
            Record::Gauge {
                name: "graph_vertices".into(),
                labels: labels(&[("side", "log1")]),
                value: 42.0,
            },
            Record::Histogram(HistogramRecord {
                name: "engine.iteration_delta".into(),
                labels: labels(&[("engine", "forward")]),
                unit: "q32".into(),
                deterministic: true,
                count: 3,
                sum: 96,
                buckets: vec![(5, 2), (6, 1)],
            }),
            Record::Histogram(HistogramRecord {
                name: "store.fetch_us".into(),
                labels: vec![],
                unit: "us".into(),
                deterministic: false,
                count: 2,
                sum: 777,
                buckets: vec![(9, 1), (10, 1)],
            }),
        ]
    }

    #[test]
    fn roundtrip() {
        let recs = sample();
        let text = write(&recs);
        let parsed = parse_records(&text).unwrap();
        assert_eq!(parsed, recs);
    }

    #[test]
    fn redaction_zeroes_dur_only() {
        let recs = sample();
        let redacted = write_redacted(&recs);
        assert!(redacted.contains("\"dur_us\":0"));
        assert!(!redacted.contains("1234"));
        let parsed = parse_records(&redacted).unwrap();
        match &parsed[1] {
            Record::Span { dur_us, name, .. } => {
                assert_eq!(*dur_us, 0);
                assert_eq!(name, "phase.setup");
            }
            other => panic!("expected span, got {other:?}"),
        }
    }

    #[test]
    fn redaction_zeroes_nondeterministic_histograms_only() {
        let redacted = write_redacted(&sample());
        let parsed = parse_records(&redacted).unwrap();
        match &parsed[5] {
            Record::Histogram(h) => {
                assert!(h.deterministic);
                assert_eq!(h.count, 3, "deterministic contents must survive");
                assert_eq!(h.buckets, vec![(5, 2), (6, 1)]);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
        match &parsed[6] {
            Record::Histogram(h) => {
                assert!(!h.deterministic);
                assert_eq!((h.count, h.sum), (0, 0));
                assert!(h.buckets.is_empty());
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_histogram_buckets() {
        let mut bad_order = write(&[]);
        bad_order.push_str(
            "{\"type\":\"histogram\",\"seq\":1,\"name\":\"h\",\"labels\":{},\"unit\":\"us\",\
             \"det\":true,\"count\":2,\"sum\":3,\"buckets\":[[6,1],[5,1]]}\n",
        );
        let err = parse_records(&bad_order).unwrap_err();
        assert!(err.message.contains("ascending"), "{err}");

        let mut bad_pair = write(&[]);
        bad_pair.push_str(
            "{\"type\":\"histogram\",\"seq\":1,\"name\":\"h\",\"labels\":{},\"unit\":\"us\",\
             \"det\":true,\"count\":1,\"sum\":1,\"buckets\":[[1]]}\n",
        );
        let err = parse_records(&bad_pair).unwrap_err();
        assert!(err.message.contains("pair"), "{err}");

        let mut bad_det = write(&[]);
        bad_det.push_str(
            "{\"type\":\"histogram\",\"seq\":1,\"name\":\"h\",\"labels\":{},\"unit\":\"us\",\
             \"det\":1,\"count\":1,\"sum\":1,\"buckets\":[]}\n",
        );
        let err = parse_records(&bad_det).unwrap_err();
        assert!(err.message.contains("boolean"), "{err}");
    }

    #[test]
    fn rejects_bad_meta() {
        assert!(parse_records("").is_err());
        assert!(parse_records("{\"type\":\"span\",\"seq\":0}\n").is_err());
        assert!(
            parse_records("{\"schema\":\"ems-trace/2\",\"type\":\"meta\",\"seq\":0}\n").is_err()
        );
    }

    #[test]
    fn rejects_seq_gap() {
        let mut text = write(&sample());
        text.push_str("{\"type\":\"event\",\"seq\":99,\"name\":\"x\",\"attrs\":{}}\n");
        let err = parse_records(&text).unwrap_err();
        assert!(err.message.contains("out of order"), "{err}");
    }

    #[test]
    fn convergence_check_accepts_decreasing() {
        let recs: Vec<Record> = (1..=4)
            .map(|i| {
                Record::Iteration(IterationRecord {
                    engine: "forward".into(),
                    iteration: i,
                    max_delta: 1.0 / i as f64,
                    mean_delta: 0.0,
                    active_pairs: 5,
                    retired_pairs: 0,
                    frozen_pairs: 0,
                    formula_evals: 5 * i as u64,
                })
            })
            .collect();
        let counts = check_convergence(&recs).unwrap();
        assert_eq!(counts, vec![("forward".to_string(), 4)]);
    }

    #[test]
    fn convergence_check_rejects_increase() {
        let mk = |i: usize, d: f64| {
            Record::Iteration(IterationRecord {
                engine: "forward".into(),
                iteration: i,
                max_delta: d,
                mean_delta: 0.0,
                active_pairs: 5,
                retired_pairs: 0,
                frozen_pairs: 0,
                formula_evals: 0,
            })
        };
        // Rise from iter 2 to 3 must be rejected; iter 1 -> 2 may rise.
        let ok = vec![mk(1, 0.1), mk(2, 0.5), mk(3, 0.4)];
        assert!(check_convergence(&ok).is_ok());
        let bad = vec![mk(1, 0.5), mk(2, 0.3), mk(3, 0.4)];
        assert!(check_convergence(&bad).is_err());
    }
}
