//! Minimal std-only JSON support: escaping for the writers and a small
//! recursive-descent parser for the readers (`trace_check`, `cli report`).
//!
//! The parser accepts the subset this crate's own writer emits (plus
//! ordinary whitespace); it is not a general-purpose validator, but it
//! rejects malformed input with positioned errors rather than panicking.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value. Objects use `BTreeMap` so iteration order is
/// deterministic regardless of input key order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Borrow as object, if this is one.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Borrow as string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Borrow as number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Number as u64 when it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// Borrow as array, if this is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

/// A parse failure with a byte offset into the input.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Byte offset where the error was detected.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document; trailing whitespace is allowed,
/// trailing content is an error.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let bytes = input.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(p.err("trailing content after value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, val: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(val)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid utf-8 in number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("invalid number"))
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: writer never emits them, but
                            // accept well-formed pairs for robustness.
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined =
                                        0x10000 + ((cp - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            match ch {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8 in string"))?;
                    match rest.chars().next() {
                        Some(c) => {
                            out.push(c);
                            self.pos += c.len_utf8();
                        }
                        None => return Err(self.err("unterminated string")),
                    }
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut cp = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => u32::from(c - b'0'),
                Some(c @ b'a'..=b'f') => u32::from(c - b'a') + 10,
                Some(c @ b'A'..=b'F') => u32::from(c - b'A') + 10,
                _ => return Err(self.err("invalid hex digit")),
            };
            cp = cp * 16 + d;
            self.pos += 1;
        }
        Ok(cp)
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect_byte(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Appends `s` to `out` as a JSON string literal (with quotes).
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Formats an `f64` for JSON: non-finite values become `null`, integers
/// keep a trailing `.0` so the field type is stable across lines.
pub fn write_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 1e15 {
        out.push_str(&format!("{v:.1}"));
    } else {
        out.push_str(&format!("{v}"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_object() {
        let v = parse(r#"{"a": 1, "b": [true, null, "x\n"], "c": {"d": -2.5e1}}"#).unwrap();
        assert_eq!(v.get("a").and_then(Value::as_u64), Some(1));
        let arr = v.get("b").and_then(Value::as_array).unwrap();
        assert_eq!(arr[0], Value::Bool(true));
        assert_eq!(arr[1], Value::Null);
        assert_eq!(arr[2].as_str(), Some("x\n"));
        assert_eq!(
            v.get("c").and_then(|c| c.get("d")).and_then(Value::as_f64),
            Some(-25.0)
        );
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} x").is_err());
        assert!(parse("").is_err());
        assert!(parse("{\"a\":}").is_err());
    }

    #[test]
    fn unicode_escapes() {
        let v = parse(r#""Aé""#).unwrap();
        assert_eq!(v.as_str(), Some("Aé"));
        let v = parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));
    }

    #[test]
    fn escaping_writer() {
        let mut out = String::new();
        write_escaped(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn f64_formatting() {
        let mut out = String::new();
        write_f64(&mut out, 1.0);
        assert_eq!(out, "1.0");
        out.clear();
        write_f64(&mut out, 0.125);
        assert_eq!(out, "0.125");
        out.clear();
        write_f64(&mut out, f64::NAN);
        assert_eq!(out, "null");
        out.clear();
        write_f64(&mut out, f64::INFINITY);
        assert_eq!(out, "null");
    }

    #[test]
    fn escaped_string_reparses() {
        let original = "quote\" slash\\ nl\n tab\t ctrl\u{2} é";
        let mut out = String::new();
        write_escaped(&mut out, original);
        let v = parse(&out).unwrap();
        assert_eq!(v.as_str(), Some(original));
    }
}
