//! Bench-trajectory file (`BENCH_TRAJECTORY.jsonl`, schema `ems-bench/1`).
//!
//! Every perf-focused PR so far left its evidence in a disconnected
//! `BENCH_pr*.json` snapshot; this module gives the numbers a single
//! append-only history that tooling can diff and gate on. Each line is a
//! self-contained run row (no meta line — the file must stay cheap to
//! append to and to merge):
//!
//! ```text
//! {"schema":"ems-bench/1","run_id":S,"git_rev":S,"host":S,"source":S,
//!  "metrics":{"n800.serial_wall_ms":12.3,...}}
//! ```
//!
//! Metric keys are flat dotted names (`n<size>.<measurement>`, thread-sweep
//! points as `n<size>.t<threads>.<measurement>`) sorted alphabetically in
//! the output, so two rows of the same run are byte-identical. Metric
//! *semantics* are carried by the name suffix: `*_per_sec` (pair
//! throughput, serve queries per second, ...) is higher-is-better,
//! `*_ms` is lower-is-better, anything else is informational and never
//! gated.
//!
//! The module is deliberately clock- and environment-free: run ids, git
//! revisions and host fingerprints are supplied by the callers (the bench
//! binaries), keeping `ems-obs` inside the workspace's determinism lint
//! scope.

use std::collections::BTreeMap;
use std::fmt;

use crate::json::{self, Value};

/// Schema identifier carried by every row.
pub const SCHEMA: &str = "ems-bench/1";

/// One benchmark run: identity fields plus a flat metric map.
#[derive(Debug, Clone, PartialEq)]
pub struct TrajectoryRow {
    /// Stable run identifier (`pr7`, `ci-<rev>`, ...).
    pub run_id: String,
    /// Git revision the run measured (`unknown` for migrated history).
    pub git_rev: String,
    /// Host fingerprint (`os/arch/cores`); rows are only gated against
    /// rows from the same host.
    pub host: String,
    /// Producing tool or legacy file (`perf_smoke`, `pr7_kernel_scaling`).
    pub source: String,
    /// Flat metric map; keys sorted on write.
    pub metrics: BTreeMap<String, f64>,
}

/// A problem found while parsing a trajectory file.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchError {
    /// 1-based line number.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for BenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trajectory line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for BenchError {}

fn berr(line: usize, message: impl Into<String>) -> BenchError {
    BenchError {
        line,
        message: message.into(),
    }
}

/// Which way a metric improves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricDirection {
    /// Throughput-style: a drop is a regression.
    HigherIsBetter,
    /// Latency-style: a rise is a regression.
    LowerIsBetter,
}

/// Infers a metric's direction from its name suffix; `None` means the
/// metric is informational and never gated.
pub fn direction_of(name: &str) -> Option<MetricDirection> {
    if name.ends_with("_per_sec") {
        Some(MetricDirection::HigherIsBetter)
    } else if name.ends_with("_ms") || name.ends_with("_us") {
        Some(MetricDirection::LowerIsBetter)
    } else {
        None
    }
}

/// Per-metric regression threshold (fraction of the best recorded value).
/// Throughput metrics gate at 15%; wall-clock metrics are inherently
/// noisier on shared CI runners and gate at 25%.
pub fn threshold_for(name: &str) -> f64 {
    if name.ends_with("_per_sec") {
        0.15
    } else {
        0.25
    }
}

/// Renders one row as a single JSONL line (no trailing newline).
pub fn write_row(row: &TrajectoryRow) -> String {
    let mut out = String::new();
    out.push_str("{\"schema\":\"");
    out.push_str(SCHEMA);
    out.push_str("\",\"run_id\":");
    json::write_escaped(&mut out, &row.run_id);
    out.push_str(",\"git_rev\":");
    json::write_escaped(&mut out, &row.git_rev);
    out.push_str(",\"host\":");
    json::write_escaped(&mut out, &row.host);
    out.push_str(",\"source\":");
    json::write_escaped(&mut out, &row.source);
    out.push_str(",\"metrics\":{");
    let mut first = true;
    for (k, v) in &row.metrics {
        if !v.is_finite() {
            continue; // a non-finite measurement carries no information
        }
        if !first {
            out.push(',');
        }
        first = false;
        json::write_escaped(&mut out, k);
        out.push(':');
        json::write_f64(&mut out, *v);
    }
    out.push_str("}}");
    out
}

/// Renders a whole trajectory document (one line per row).
pub fn write_rows(rows: &[TrajectoryRow]) -> String {
    let mut out = String::new();
    for row in rows {
        out.push_str(&write_row(row));
        out.push('\n');
    }
    out
}

fn row_str(v: &Value, key: &str, line: usize) -> Result<String, BenchError> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| berr(line, format!("missing string field '{key}'")))
}

/// Parses a trajectory document. Blank lines are allowed; every other
/// line must be a complete `ems-bench/1` row.
pub fn parse(input: &str) -> Result<Vec<TrajectoryRow>, BenchError> {
    let mut rows = Vec::new();
    for (idx, raw) in input.lines().enumerate() {
        let line = idx + 1;
        if raw.trim().is_empty() {
            continue;
        }
        let v = json::parse(raw).map_err(|e| berr(line, format!("invalid json: {e}")))?;
        match v.get("schema").and_then(Value::as_str) {
            Some(s) if s == SCHEMA => {}
            Some(s) => return Err(berr(line, format!("unsupported schema '{s}'"))),
            None => return Err(berr(line, "row missing 'schema'")),
        }
        let metrics_obj = v
            .get("metrics")
            .and_then(Value::as_object)
            .ok_or_else(|| berr(line, "missing object field 'metrics'"))?;
        let mut metrics = BTreeMap::new();
        for (k, mv) in metrics_obj {
            let num = mv
                .as_f64()
                .ok_or_else(|| berr(line, format!("metric '{k}' must be a number")))?;
            metrics.insert(k.clone(), num);
        }
        rows.push(TrajectoryRow {
            run_id: row_str(&v, "run_id", line)?,
            git_rev: row_str(&v, "git_rev", line)?,
            host: row_str(&v, "host", line)?,
            source: row_str(&v, "source", line)?,
            metrics,
        });
    }
    Ok(rows)
}

/// Folds a legacy `BENCH_pr*.json` snapshot into one trajectory row.
///
/// Handles every shape the repo has shipped (`pr2_fixpoint_kernel`,
/// `pr5_session_pipeline`, `pr6_session_store`, `pr7_kernel_scaling`):
/// top-level numbers and per-size numbers are flattened to dotted metric
/// names; `thread_sweep` points become `n<size>.t<threads>.*`; the nested
/// `sparse` block becomes `n<size>.sparse.*`; the `convergence` curve is
/// summarized as `n<size>.convergence_iterations`. Migrated rows carry
/// `git_rev`/`host` of `"unknown"` — they predate the fingerprinting, and
/// the gate only ever compares same-host rows.
pub fn migrate_legacy(text: &str) -> Result<TrajectoryRow, String> {
    let v = json::parse(text).map_err(|e| format!("not a bench report: {e}"))?;
    let bench = v
        .get("bench")
        .and_then(Value::as_str)
        .ok_or("missing 'bench' name")?
        .to_string();
    let run_id = bench.split('_').next().unwrap_or("legacy").to_string();
    let mut metrics = BTreeMap::new();
    if let Some(top) = v.as_object() {
        for (k, val) in top {
            if let Some(num) = val.as_f64() {
                metrics.insert(k.clone(), num);
            }
        }
    }
    let sizes = v
        .get("sizes")
        .and_then(Value::as_array)
        .ok_or("missing 'sizes' array")?;
    for entry in sizes {
        let n = entry
            .get("n")
            .and_then(Value::as_u64)
            .ok_or("size entry missing 'n'")?;
        let prefix = format!("n{n}");
        for (k, val) in entry.as_object().into_iter().flatten() {
            match (k.as_str(), val) {
                ("n", _) => {}
                ("thread_sweep", Value::Array(points)) => {
                    for p in points {
                        let t = p
                            .get("threads")
                            .and_then(Value::as_u64)
                            .ok_or("thread_sweep point missing 'threads'")?;
                        for (pk, pv) in p.as_object().into_iter().flatten() {
                            if pk == "threads" {
                                continue;
                            }
                            if let Some(num) = pv.as_f64() {
                                metrics.insert(format!("{prefix}.t{t}.{pk}"), num);
                            }
                        }
                    }
                }
                ("sparse", Value::Object(fields)) => {
                    for (sk, sv) in fields {
                        if let Some(num) = sv.as_f64() {
                            metrics.insert(format!("{prefix}.sparse.{sk}"), num);
                        }
                    }
                }
                ("convergence", Value::Array(curve)) => {
                    metrics.insert(
                        format!("{prefix}.convergence_iterations"),
                        curve.len() as f64,
                    );
                }
                (_, val) => {
                    if let Some(num) = val.as_f64() {
                        metrics.insert(format!("{prefix}.{k}"), num);
                    }
                }
            }
        }
    }
    Ok(TrajectoryRow {
        run_id,
        git_rev: "unknown".to_string(),
        host: "unknown".to_string(),
        source: bench,
        metrics,
    })
}

/// Relative change of `new` vs `old` in the regression direction: positive
/// means `new` is worse. `None` when the metric has no direction or the
/// baseline is degenerate.
fn regression_fraction(name: &str, old: f64, new: f64) -> Option<f64> {
    if old <= 0.0 || !old.is_finite() || !new.is_finite() {
        return None;
    }
    match direction_of(name)? {
        MetricDirection::HigherIsBetter => Some((old - new) / old),
        MetricDirection::LowerIsBetter => Some((new - old) / old),
    }
}

/// Renders a side-by-side diff of two rows over their shared metrics,
/// flagging per-metric regressions beyond [`threshold_for`].
pub fn render_compare(a: &TrajectoryRow, b: &TrajectoryRow) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "bench compare: {} ({}) -> {} ({})\n",
        a.run_id, a.source, b.run_id, b.source
    ));
    out.push_str(&format!(
        "  {:<40} {:>14} {:>14} {:>9}\n",
        "metric", a.run_id, b.run_id, "change"
    ));
    let mut shared = 0usize;
    let mut regressions = 0usize;
    for (name, old) in &a.metrics {
        let Some(new) = b.metrics.get(name) else {
            continue;
        };
        shared += 1;
        let verdict = match regression_fraction(name, *old, *new) {
            Some(frac) if frac > threshold_for(name) => {
                regressions += 1;
                "  REGRESSION"
            }
            Some(frac) if frac < -threshold_for(name) => "  improved",
            _ => "",
        };
        let change = if *old > 0.0 && old.is_finite() {
            format!("{:+.1}%", (new - old) / old * 100.0)
        } else {
            "-".to_string()
        };
        out.push_str(&format!(
            "  {name:<40} {old:>14.3} {new:>14.3} {change:>9}{verdict}\n"
        ));
    }
    if shared == 0 {
        out.push_str("  (no shared metrics)\n");
    } else {
        out.push_str(&format!(
            "  {shared} shared metric(s), {regressions} regression(s) beyond threshold\n"
        ));
    }
    out
}

/// Renders the metric history across all rows: a run index followed by one
/// block per metric that appears in more than one row, annotated with the
/// change vs the previous occurrence.
pub fn render_trajectory(rows: &[TrajectoryRow]) -> String {
    let mut out = String::new();
    out.push_str("bench trajectory\n================\n");
    if rows.is_empty() {
        out.push_str("  (no rows)\n");
        return out;
    }
    out.push_str("\nRuns\n----\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str(&format!(
            "  [{i}] {:<8} source={} host={} git={} metrics={}\n",
            row.run_id,
            row.source,
            row.host,
            row.git_rev,
            row.metrics.len()
        ));
    }
    // Metric -> [(row index, value)] for metrics with history.
    let mut history: BTreeMap<&str, Vec<(usize, f64)>> = BTreeMap::new();
    for (i, row) in rows.iter().enumerate() {
        for (name, value) in &row.metrics {
            history.entry(name).or_default().push((i, *value));
        }
    }
    history.retain(|_, points| points.len() > 1);
    if history.is_empty() {
        out.push_str("\n  (no metric appears in more than one run)\n");
        return out;
    }
    out.push_str("\nMetric history\n--------------\n");
    for (name, points) in &history {
        out.push_str(&format!("  {name}\n"));
        let mut prev: Option<f64> = None;
        for &(i, value) in points {
            let note = match prev.and_then(|p| regression_fraction(name, p, value)) {
                Some(frac) if frac > threshold_for(name) => "  <- REGRESSION",
                Some(frac) if frac < -threshold_for(name) => "  <- improved",
                _ => "",
            };
            out.push_str(&format!(
                "    [{i}] {:<8} {value:>14.3}{note}\n",
                rows[i].run_id
            ));
            prev = Some(value);
        }
    }
    out
}

/// Outcome of the regression gate.
#[derive(Debug, Clone, PartialEq)]
pub struct GateOutcome {
    /// Gated metrics actually compared against same-host history.
    pub checked: usize,
    /// Human-readable failures (empty means the gate passes).
    pub failures: Vec<String>,
    /// Why nothing was checked, when `checked == 0`.
    pub note: Option<String>,
}

impl GateOutcome {
    /// Whether the gate passes.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Gates the latest row against the best same-host history per metric.
///
/// For every gated metric of the newest row, the best value among *prior*
/// rows with the same host fingerprint is the baseline; a regression
/// beyond the metric's threshold (or `override_threshold`, when given) is
/// a failure. A first run on a host has no history and passes with a
/// note — migrated rows carry host `"unknown"`, so CI's first gated run
/// establishes the baseline rather than comparing against foreign
/// hardware.
pub fn gate(rows: &[TrajectoryRow], override_threshold: Option<f64>) -> GateOutcome {
    let Some((latest, prior)) = rows.split_last() else {
        return GateOutcome {
            checked: 0,
            failures: Vec::new(),
            note: Some("trajectory is empty".to_string()),
        };
    };
    let peers: Vec<&TrajectoryRow> = prior.iter().filter(|r| r.host == latest.host).collect();
    if peers.is_empty() {
        return GateOutcome {
            checked: 0,
            failures: Vec::new(),
            note: Some(format!(
                "no prior rows for host '{}' — baseline established",
                latest.host
            )),
        };
    }
    let mut checked = 0usize;
    let mut failures = Vec::new();
    for (name, current) in &latest.metrics {
        let Some(direction) = direction_of(name) else {
            continue;
        };
        let values = peers.iter().filter_map(|r| r.metrics.get(name).copied());
        let best = match direction {
            MetricDirection::HigherIsBetter => values.fold(None, |acc: Option<f64>, v| {
                Some(acc.map_or(v, |a| a.max(v)))
            }),
            MetricDirection::LowerIsBetter => values.fold(None, |acc: Option<f64>, v| {
                Some(acc.map_or(v, |a| a.min(v)))
            }),
        };
        let Some(best) = best else {
            continue;
        };
        checked += 1;
        let threshold = override_threshold.unwrap_or_else(|| threshold_for(name));
        if let Some(frac) = regression_fraction(name, best, *current) {
            if frac > threshold {
                failures.push(format!(
                    "{name}: {current:.3} regressed {:.1}% vs best recorded {best:.3} \
                     (threshold {:.0}%)",
                    frac * 100.0,
                    threshold * 100.0
                ));
            }
        }
    }
    GateOutcome {
        checked,
        failures,
        note: (checked == 0).then(|| "no gated metrics shared with history".to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(run_id: &str, host: &str, metrics: &[(&str, f64)]) -> TrajectoryRow {
        TrajectoryRow {
            run_id: run_id.to_string(),
            git_rev: "abc1234".to_string(),
            host: host.to_string(),
            source: "test".to_string(),
            metrics: metrics.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        }
    }

    #[test]
    fn roundtrip() {
        let rows = vec![
            row("pr6", "linux/x86_64/8", &[("n800.serial_wall_ms", 120.5)]),
            row(
                "pr7",
                "linux/x86_64/8",
                &[
                    ("n800.serial_wall_ms", 60.25),
                    ("n800.serial_pairs_per_sec", 125000.0),
                ],
            ),
        ];
        let text = write_rows(&rows);
        assert_eq!(parse(&text).unwrap(), rows);
    }

    #[test]
    fn rejects_malformed_rows() {
        assert!(parse("{\"schema\":\"ems-bench/2\",\"run_id\":\"x\"}").is_err());
        assert!(parse("not json").is_err());
        let no_metrics = "{\"schema\":\"ems-bench/1\",\"run_id\":\"x\",\"git_rev\":\"g\",\
             \"host\":\"h\",\"source\":\"s\"}";
        let err = parse(no_metrics).unwrap_err();
        assert!(err.message.contains("metrics"), "{err}");
        let bad_metric = "{\"schema\":\"ems-bench/1\",\"run_id\":\"x\",\"git_rev\":\"g\",\
             \"host\":\"h\",\"source\":\"s\",\"metrics\":{\"a\":\"str\"}}";
        assert!(parse(bad_metric).is_err());
    }

    #[test]
    fn directions_and_thresholds() {
        assert_eq!(
            direction_of("n800.serial_pairs_per_sec"),
            Some(MetricDirection::HigherIsBetter)
        );
        assert_eq!(
            direction_of("n800.serial_wall_ms"),
            Some(MetricDirection::LowerIsBetter)
        );
        assert_eq!(
            direction_of("serve.queries_per_sec"),
            Some(MetricDirection::HigherIsBetter)
        );
        assert_eq!(direction_of("n800.pool_shards"), None);
        assert_eq!(direction_of("serve.pruned_fraction"), None);
        assert!(threshold_for("x_pairs_per_sec") < threshold_for("x_wall_ms"));
        assert!(threshold_for("serve.queries_per_sec") < threshold_for("x_wall_ms"));
    }

    #[test]
    fn gate_passes_within_threshold_and_fails_beyond() {
        let hist = row("pr7", "h", &[("n800.serial_pairs_per_sec", 100000.0)]);
        let ok = row("ci-1", "h", &[("n800.serial_pairs_per_sec", 90000.0)]);
        let outcome = gate(&[hist.clone(), ok], None);
        assert!(outcome.passed());
        assert_eq!(outcome.checked, 1);

        let bad = row("ci-2", "h", &[("n800.serial_pairs_per_sec", 80000.0)]);
        let outcome = gate(&[hist, bad], None);
        assert!(!outcome.passed());
        assert!(outcome.failures[0].contains("regressed"), "{outcome:?}");
    }

    #[test]
    fn gate_compares_same_host_only() {
        let foreign = row("pr7", "unknown", &[("n800.serial_pairs_per_sec", 1e9)]);
        let local = row("ci-1", "h", &[("n800.serial_pairs_per_sec", 1.0)]);
        let outcome = gate(&[foreign, local], None);
        assert!(outcome.passed());
        assert_eq!(outcome.checked, 0);
        assert!(outcome.note.as_deref().unwrap_or("").contains("baseline"));
    }

    #[test]
    fn gate_uses_best_prior_row() {
        let slow = row("a", "h", &[("n800.serial_wall_ms", 200.0)]);
        let fast = row("b", "h", &[("n800.serial_wall_ms", 100.0)]);
        // 140 ms is within 25% of nothing: vs best (100) it is +40%.
        let cur = row("c", "h", &[("n800.serial_wall_ms", 140.0)]);
        let outcome = gate(&[slow, fast, cur], None);
        assert!(!outcome.passed(), "{outcome:?}");
    }

    #[test]
    fn compare_surfaces_speedup() {
        let pr6 = row("pr6", "h", &[("n800.parallel_wall_ms", 100.0)]);
        let pr7 = row("pr7", "h", &[("n800.parallel_wall_ms", 40.0)]);
        let text = render_compare(&pr6, &pr7);
        assert!(text.contains("improved"), "{text}");
        assert!(text.contains("-60.0%"), "{text}");
    }

    #[test]
    fn trajectory_renders_history() {
        let rows = vec![
            row("pr6", "h", &[("n800.serial_wall_ms", 100.0)]),
            row("pr7", "h", &[("n800.serial_wall_ms", 45.0)]),
        ];
        let text = render_trajectory(&rows);
        assert!(text.contains("[0] pr6"), "{text}");
        assert!(text.contains("n800.serial_wall_ms"), "{text}");
        assert!(text.contains("improved"), "{text}");
    }

    #[test]
    fn migrates_pr7_shape() {
        let legacy = r#"{
  "bench": "pr7_kernel_scaling",
  "host_parallelism": 8,
  "sizes": [
    {
      "n": 800,
      "mode": "dense",
      "pairs": 640000,
      "serial_wall_ms": 120.5,
      "serial_pairs_per_sec": 31000,
      "thread_sweep": [
        {"threads": 1, "wall_ms": 120.5, "pairs_per_sec": 31000, "speedup_vs_serial": 1.0, "pool_shards": 1},
        {"threads": 4, "wall_ms": 40.1, "pairs_per_sec": 93000, "speedup_vs_serial": 3.0, "pool_shards": 4}
      ],
      "sparse": {"delta": 0.01, "exact_wall_ms": 130.0},
      "session_cold_wall_ms": 200.0,
      "convergence": [
        {"iteration": 1, "max_delta": 0.5},
        {"iteration": 2, "max_delta": 0.2}
      ]
    }
  ]
}"#;
        let row = migrate_legacy(legacy).unwrap();
        assert_eq!(row.run_id, "pr7");
        assert_eq!(row.source, "pr7_kernel_scaling");
        assert_eq!(row.host, "unknown");
        let m = &row.metrics;
        assert_eq!(m.get("host_parallelism"), Some(&8.0));
        assert_eq!(m.get("n800.serial_wall_ms"), Some(&120.5));
        assert_eq!(m.get("n800.t4.wall_ms"), Some(&40.1));
        assert_eq!(m.get("n800.sparse.exact_wall_ms"), Some(&130.0));
        assert_eq!(m.get("n800.session_cold_wall_ms"), Some(&200.0));
        assert_eq!(m.get("n800.convergence_iterations"), Some(&2.0));
        assert!(!m.contains_key("n800.mode"));
    }

    #[test]
    fn writer_skips_non_finite_metrics() {
        let mut r = row("x", "h", &[("a_ms", 1.0)]);
        r.metrics.insert("bad".to_string(), f64::NAN);
        let text = write_row(&r);
        assert!(!text.contains("bad"), "{text}");
        assert_eq!(parse(&text).unwrap()[0].metrics.len(), 1);
    }
}
