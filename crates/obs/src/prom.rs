//! Prometheus-style text metrics (`--metrics PATH`).
//!
//! Aggregation happens at export time: counter records with the same name
//! and label set are summed, gauges keep the last write, and span
//! durations are summed into `<name>_microseconds` counters. Output is
//! fully sorted (`BTreeMap` keys), so it is deterministic; the timing
//! metrics are the only values that vary between identical runs and
//! [`write_deterministic`] omits them.
//!
//! Metric names are sanitized to `[a-zA-Z0-9_:]` and prefixed `ems_`;
//! label values escape `\`, `"` and newline per the Prometheus exposition
//! format.

use std::collections::BTreeMap;

use crate::json;
use crate::record::{Labels, Record};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MetricKind {
    Counter,
    Gauge,
}

/// Renders all metrics, including wall-clock span durations.
pub fn write(records: &[Record]) -> String {
    render(records, true)
}

/// Renders only the deterministic metrics (no span durations) — identical
/// across runs performing the same work.
pub fn write_deterministic(records: &[Record]) -> String {
    render(records, false)
}

fn render(records: &[Record], include_timing: bool) -> String {
    // name -> (kind, series: labels-key -> value)
    let mut metrics: BTreeMap<String, (MetricKind, BTreeMap<String, f64>)> = BTreeMap::new();
    let mut add = |name: String, kind: MetricKind, labels: &Labels, value: f64| {
        let series = &mut metrics
            .entry(name)
            .or_insert_with(|| (kind, BTreeMap::new()))
            .1;
        let key = label_key(labels);
        match kind {
            MetricKind::Counter => *series.entry(key).or_insert(0.0) += value,
            MetricKind::Gauge => {
                series.insert(key, value);
            }
        }
    };

    for rec in records {
        match rec {
            Record::Counter {
                name,
                labels,
                value,
            } => add(
                metric_name(name, ""),
                MetricKind::Counter,
                labels,
                *value as f64,
            ),
            Record::Gauge {
                name,
                labels,
                value,
            } => add(metric_name(name, ""), MetricKind::Gauge, labels, *value),
            Record::Span {
                name,
                attrs,
                dur_us,
            } if include_timing => add(
                metric_name(name, "_microseconds"),
                MetricKind::Counter,
                attrs,
                *dur_us as f64,
            ),
            Record::Span { .. } => {}
            Record::Event { name, attrs } => add(
                metric_name(name, "_events"),
                MetricKind::Counter,
                attrs,
                1.0,
            ),
            Record::Histogram(h) => {
                // Execution-class histograms (latencies, as-scheduled shard
                // work) are omitted from the deterministic export, the same
                // way span durations are.
                if !h.deterministic && !include_timing {
                    continue;
                }
                add(
                    metric_name(&h.name, "_count"),
                    MetricKind::Counter,
                    &h.labels,
                    h.count as f64,
                );
                add(
                    metric_name(&h.name, "_sum"),
                    MetricKind::Counter,
                    &h.labels,
                    h.sum as f64,
                );
                for &(bucket, count) in &h.buckets {
                    let mut labels = h.labels.clone();
                    labels.push(("bucket".to_string(), format!("{bucket:02}")));
                    add(
                        metric_name(&h.name, "_bucket"),
                        MetricKind::Counter,
                        &labels,
                        count as f64,
                    );
                }
            }
            Record::Iteration(it) => {
                let l = vec![("engine".to_string(), it.engine.clone())];
                add(
                    "ems_engine_iterations".to_string(),
                    MetricKind::Gauge,
                    &l,
                    it.iteration as f64,
                );
                add(
                    "ems_engine_last_max_delta".to_string(),
                    MetricKind::Gauge,
                    &l,
                    it.max_delta,
                );
                add(
                    "ems_engine_active_pairs".to_string(),
                    MetricKind::Gauge,
                    &l,
                    it.active_pairs as f64,
                );
                add(
                    "ems_engine_retired_pairs".to_string(),
                    MetricKind::Gauge,
                    &l,
                    it.retired_pairs as f64,
                );
                add(
                    "ems_engine_frozen_pairs".to_string(),
                    MetricKind::Gauge,
                    &l,
                    it.frozen_pairs as f64,
                );
                add(
                    "ems_engine_formula_evals".to_string(),
                    MetricKind::Gauge,
                    &l,
                    it.formula_evals as f64,
                );
            }
        }
    }

    let mut out = String::new();
    for (name, (kind, series)) in &metrics {
        out.push_str("# TYPE ");
        out.push_str(name);
        out.push(' ');
        out.push_str(match kind {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
        });
        out.push('\n');
        for (labels_key, value) in series {
            out.push_str(name);
            out.push_str(labels_key);
            out.push(' ');
            format_value(&mut out, *value);
            out.push('\n');
        }
    }
    out
}

/// Sanitizes a record name into a Prometheus metric name with the `ems_`
/// namespace prefix and an optional unit suffix.
fn metric_name(raw: &str, suffix: &str) -> String {
    let mut out = String::with_capacity(raw.len() + suffix.len() + 4);
    if !raw.starts_with("ems_") {
        out.push_str("ems_");
    }
    for c in raw.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out.push_str(suffix);
    out
}

/// Renders the `{k="v",...}` label block (empty string when no labels).
/// Labels are sorted by key so the series key is canonical.
fn label_key(labels: &Labels) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut sorted: Vec<&(String, String)> = labels.iter().collect();
    sorted.sort();
    let mut out = String::from("{");
    for (i, (k, v)) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        for c in k.chars() {
            if c.is_ascii_alphanumeric() || c == '_' {
                out.push(c);
            } else {
                out.push('_');
            }
        }
        out.push_str("=\"");
        for c in v.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out.push('}');
    out
}

fn format_value(out: &mut String, v: f64) {
    if v.is_nan() {
        out.push_str("NaN");
    } else if v.is_infinite() {
        out.push_str(if v > 0.0 { "+Inf" } else { "-Inf" });
    } else if v == v.trunc() && v.abs() < 1e15 {
        out.push_str(&format!("{}", v as i64));
    } else {
        let mut s = String::new();
        json::write_f64(&mut s, v);
        out.push_str(&s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{labels, IterationRecord};

    #[test]
    fn counters_sum_gauges_last_win() {
        let recs = vec![
            Record::Counter {
                name: "warnings".into(),
                labels: labels(&[("kind", "syntax")]),
                value: 2,
            },
            Record::Counter {
                name: "warnings".into(),
                labels: labels(&[("kind", "syntax")]),
                value: 3,
            },
            Record::Gauge {
                name: "active".into(),
                labels: vec![],
                value: 10.0,
            },
            Record::Gauge {
                name: "active".into(),
                labels: vec![],
                value: 4.0,
            },
        ];
        let text = write(&recs);
        assert!(text.contains("ems_warnings{kind=\"syntax\"} 5"), "{text}");
        assert!(text.contains("\nems_active 4\n"), "{text}");
    }

    #[test]
    fn deterministic_omits_spans() {
        let recs = vec![Record::Span {
            name: "phase.setup".into(),
            attrs: vec![],
            dur_us: 99,
        }];
        let full = write(&recs);
        assert!(full.contains("ems_phase_setup_microseconds 99"), "{full}");
        let det = write_deterministic(&recs);
        assert!(!det.contains("microseconds"), "{det}");
    }

    #[test]
    fn label_escaping() {
        let recs = vec![Record::Counter {
            name: "odd".into(),
            labels: labels(&[("file", "a\"b\\c\nd")]),
            value: 1,
        }];
        let text = write(&recs);
        assert!(text.contains(r#"{file="a\"b\\c\nd"} 1"#), "{text}");
    }

    #[test]
    fn output_sorted_by_metric_then_labels() {
        let recs = vec![
            Record::Counter {
                name: "zzz".into(),
                labels: vec![],
                value: 1,
            },
            Record::Counter {
                name: "aaa".into(),
                labels: labels(&[("side", "log2")]),
                value: 1,
            },
            Record::Counter {
                name: "aaa".into(),
                labels: labels(&[("side", "log1")]),
                value: 1,
            },
        ];
        let text = write(&recs);
        let a = text.find("ems_aaa{side=\"log1\"}").unwrap();
        let b = text.find("ems_aaa{side=\"log2\"}").unwrap();
        let z = text.find("ems_zzz").unwrap();
        assert!(a < b && b < z, "{text}");
    }

    #[test]
    fn histogram_export_respects_determinism_class() {
        use crate::record::HistogramRecord;
        let recs = vec![
            Record::Histogram(HistogramRecord {
                name: "engine.active_pairs".into(),
                labels: labels(&[("engine", "forward")]),
                unit: "pairs".into(),
                deterministic: true,
                count: 4,
                sum: 30,
                buckets: vec![(3, 3), (4, 1)],
            }),
            Record::Histogram(HistogramRecord {
                name: "store.fetch_us".into(),
                labels: vec![],
                unit: "us".into(),
                deterministic: false,
                count: 1,
                sum: 900,
                buckets: vec![(10, 1)],
            }),
        ];
        let full = write(&recs);
        assert!(
            full.contains("ems_engine_active_pairs_count{engine=\"forward\"} 4"),
            "{full}"
        );
        assert!(
            full.contains("ems_engine_active_pairs_bucket{bucket=\"03\",engine=\"forward\"} 3"),
            "{full}"
        );
        assert!(full.contains("ems_store_fetch_us_sum 900"), "{full}");
        let det = write_deterministic(&recs);
        assert!(det.contains("ems_engine_active_pairs_sum"), "{det}");
        assert!(!det.contains("store_fetch_us"), "{det}");
    }

    #[test]
    fn iteration_exports_last_values() {
        let mk = |i: usize, d: f64| {
            Record::Iteration(IterationRecord {
                engine: "forward".into(),
                iteration: i,
                max_delta: d,
                mean_delta: d / 2.0,
                active_pairs: 10 - i,
                retired_pairs: i as u64,
                frozen_pairs: 1,
                formula_evals: (10 * i) as u64,
            })
        };
        let text = write(&[mk(1, 0.5), mk(2, 0.25)]);
        assert!(
            text.contains("ems_engine_iterations{engine=\"forward\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("ems_engine_last_max_delta{engine=\"forward\"} 0.25"),
            "{text}"
        );
    }
}
