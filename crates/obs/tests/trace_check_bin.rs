//! End-to-end coverage of the `trace_check` binary over golden traces,
//! including the histogram and profiler records introduced with the
//! deterministic performance profiler: every golden trace (full and
//! redacted) must validate, and targeted single-line mutations must each
//! be rejected with exit 1 — never accepted, never a crash.

use ems_obs::record::{labels, IterationRecord, Record};
use ems_obs::{jsonl, Histogram};
use std::path::PathBuf;
use std::process::Command;

fn trace_check() -> Command {
    Command::new(env!("CARGO_BIN_EXE_trace_check"))
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ems-tc-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn check(dir: &std::path::Path, name: &str, text: &str) -> i32 {
    let path = dir.join(name);
    std::fs::write(&path, text).unwrap();
    let out = trace_check().arg(path.to_str().unwrap()).output().unwrap();
    out.status.code().unwrap_or(-1)
}

/// A golden record stream exercising every record type, profiler-shaped
/// spans/counters, and both histogram determinism classes.
fn profile_fixture() -> Vec<Record> {
    let mut delta = Histogram::new(
        "engine.iteration_delta",
        labels(&[("engine", "forward")]),
        "q32",
    );
    delta.observe_f64(0.5);
    delta.observe_f64(0.125);
    let mut fetch = Histogram::nondeterministic("session.store_fetch_us", labels(&[]), "us");
    fetch.observe(850);
    vec![
        Record::Span {
            name: "prof.engine.run".into(),
            attrs: labels(&[("path", "engine.run"), ("depth", "0")]),
            dur_us: 977,
        },
        Record::Counter {
            name: "prof.formula_evals".into(),
            labels: labels(&[("path", "engine.run")]),
            value: 4096,
        },
        Record::Iteration(IterationRecord {
            engine: "forward".into(),
            iteration: 1,
            max_delta: 0.5,
            mean_delta: 0.25,
            active_pairs: 64,
            retired_pairs: 0,
            frozen_pairs: 0,
            formula_evals: 4096,
        }),
        Record::Histogram(delta.into_record()),
        Record::Histogram(fetch.into_record()),
        Record::Event {
            name: "run.converged".into(),
            attrs: labels(&[]),
        },
    ]
}

#[test]
fn accepts_golden_traces_full_and_redacted() {
    let dir = tmpdir("accept");
    let recs = profile_fixture();
    assert_eq!(check(&dir, "full.jsonl", &jsonl::write(&recs)), 0);
    assert_eq!(
        check(&dir, "redacted.jsonl", &jsonl::write_redacted(&recs)),
        0
    );
    // The redacted form still parses to the same number of records: the
    // exec-class histogram is zeroed, not dropped.
    let parsed = jsonl::parse_records(&jsonl::write_redacted(&recs)).unwrap();
    assert_eq!(parsed.len(), recs.len());
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn rejects_mutated_traces_line_by_line() {
    let dir = tmpdir("reject");
    let golden = jsonl::write(&profile_fixture());

    // Dropping the meta line invalidates the trace.
    let without_meta: String = golden.lines().skip(1).map(|l| format!("{l}\n")).collect();
    assert_eq!(check(&dir, "no-meta.jsonl", &without_meta), 1);

    // Truncating the final line mid-record invalidates it.
    let truncated = &golden[..golden.len() - 10];
    assert_eq!(check(&dir, "truncated.jsonl", truncated), 1);

    // Targeted field mutations, one per line class.
    let mutations: &[(&str, &str, &str)] = &[
        ("schema", "ems-trace/1", "ems-trace/9"),
        ("span type", "\"type\":\"span\"", "\"type\":\"spam\""),
        ("histogram det flag", "\"det\":true", "\"det\":1"),
        ("bucket order", "\"buckets\":[[", "\"buckets\":[[64,1],["),
        ("counter value", "\"value\":4096", "\"value\":-1"),
        (
            "iteration delta",
            "\"max_delta\":0.5",
            "\"max_delta\":\"big\"",
        ),
    ];
    for (what, from, to) in mutations {
        assert!(golden.contains(from), "{what}: fixture lacks {from}");
        let mutated = golden.replacen(from, to, 1);
        let code = check(&dir, "mutated.jsonl", &mutated);
        assert_eq!(code, 1, "{what}: mutation must be rejected");
    }
    let _ = std::fs::remove_dir_all(dir);
}
