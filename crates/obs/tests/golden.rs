//! Golden tests pinning the exact bytes of the JSONL trace schema and the
//! Prometheus text format. These strings are the wire contract consumed
//! by `trace_check`, CI, and any downstream tooling — change them only
//! with a schema version bump.

use ems_obs::record::{labels, IterationRecord, Record, Recorder};
use ems_obs::{jsonl, prom};

/// A fixed record sequence exercising every record type, label escaping,
/// and non-finite floats.
fn fixture() -> Vec<Record> {
    vec![
        Record::Counter {
            name: "xes_warnings".into(),
            labels: labels(&[("kind", "tag-mismatch"), ("log", "log1")]),
            value: 2,
        },
        Record::Gauge {
            name: "graph_vertices".into(),
            labels: labels(&[("side", "log1")]),
            value: 42.0,
        },
        Record::Span {
            name: "phase.setup".into(),
            attrs: labels(&[("engine", "forward")]),
            dur_us: 1234,
        },
        Record::Iteration(IterationRecord {
            engine: "forward".into(),
            iteration: 1,
            max_delta: 0.5,
            mean_delta: 0.0625,
            active_pairs: 12,
            retired_pairs: 3,
            frozen_pairs: 1,
            formula_evals: 12,
        }),
        Record::Event {
            name: "budget.exhausted".into(),
            attrs: labels(&[("reason", "max_iterations")]),
        },
        Record::Gauge {
            name: "weird \"value\"".into(),
            labels: labels(&[("path", "a\\b\nc")]),
            value: f64::NAN,
        },
    ]
}

#[test]
fn jsonl_golden() {
    let got = jsonl::write(&fixture());
    let want = concat!(
        "{\"schema\":\"ems-trace/1\",\"type\":\"meta\",\"seq\":0}\n",
        "{\"type\":\"counter\",\"seq\":1,\"name\":\"xes_warnings\",\"labels\":{\"kind\":\"tag-mismatch\",\"log\":\"log1\"},\"value\":2}\n",
        "{\"type\":\"gauge\",\"seq\":2,\"name\":\"graph_vertices\",\"labels\":{\"side\":\"log1\"},\"value\":42.0}\n",
        "{\"type\":\"span\",\"seq\":3,\"name\":\"phase.setup\",\"attrs\":{\"engine\":\"forward\"},\"dur_us\":1234}\n",
        "{\"type\":\"iteration\",\"seq\":4,\"engine\":\"forward\",\"iteration\":1,\"max_delta\":0.5,\"mean_delta\":0.0625,\"active_pairs\":12,\"retired_pairs\":3,\"frozen_pairs\":1,\"formula_evals\":12}\n",
        "{\"type\":\"event\",\"seq\":5,\"name\":\"budget.exhausted\",\"attrs\":{\"reason\":\"max_iterations\"}}\n",
        "{\"type\":\"gauge\",\"seq\":6,\"name\":\"weird \\\"value\\\"\",\"labels\":{\"path\":\"a\\\\b\\nc\"},\"value\":null}\n",
    );
    assert_eq!(got, want);
}

#[test]
fn jsonl_redacted_golden() {
    let got = jsonl::write_redacted(&fixture());
    assert!(got.contains("\"dur_us\":0"));
    assert!(!got.contains("1234"));
    // Redaction touches only the span line.
    let full = jsonl::write(&fixture());
    let full_lines: Vec<&str> = full.lines().collect();
    let red_lines: Vec<&str> = got.lines().collect();
    assert_eq!(full_lines.len(), red_lines.len());
    for (f, r) in full_lines.iter().zip(&red_lines) {
        if f.contains("\"type\":\"span\"") {
            assert_ne!(f, r);
        } else {
            assert_eq!(f, r);
        }
    }
}

/// Exact wire bytes of the histogram record, both determinism classes.
/// Like the other goldens these are the contract `trace_check` and the
/// profile-diff tooling parse — change only with a schema bump.
#[test]
fn jsonl_histogram_golden() {
    use ems_obs::record::HistogramRecord;
    let recs = vec![
        Record::Histogram(HistogramRecord {
            name: "engine.iteration_delta".into(),
            labels: labels(&[("engine", "forward")]),
            unit: "q32".into(),
            deterministic: true,
            count: 2,
            sum: 3,
            buckets: vec![(30, 1), (31, 1)],
        }),
        Record::Histogram(HistogramRecord {
            name: "session.store_fetch_us".into(),
            labels: vec![],
            unit: "us".into(),
            deterministic: false,
            count: 1,
            sum: 850,
            buckets: vec![(10, 1)],
        }),
    ];
    let want = concat!(
        "{\"schema\":\"ems-trace/1\",\"type\":\"meta\",\"seq\":0}\n",
        "{\"type\":\"histogram\",\"seq\":1,\"name\":\"engine.iteration_delta\",\"labels\":{\"engine\":\"forward\"},\"unit\":\"q32\",\"det\":true,\"count\":2,\"sum\":3,\"buckets\":[[30,1],[31,1]]}\n",
        "{\"type\":\"histogram\",\"seq\":2,\"name\":\"session.store_fetch_us\",\"labels\":{},\"unit\":\"us\",\"det\":false,\"count\":1,\"sum\":850,\"buckets\":[[10,1]]}\n",
    );
    assert_eq!(jsonl::write(&recs), want);
    // Redaction zeroes the execution-class line only; the deterministic
    // histogram's bytes survive untouched.
    let redacted = jsonl::write_redacted(&recs);
    let want_redacted = concat!(
        "{\"schema\":\"ems-trace/1\",\"type\":\"meta\",\"seq\":0}\n",
        "{\"type\":\"histogram\",\"seq\":1,\"name\":\"engine.iteration_delta\",\"labels\":{\"engine\":\"forward\"},\"unit\":\"q32\",\"det\":true,\"count\":2,\"sum\":3,\"buckets\":[[30,1],[31,1]]}\n",
        "{\"type\":\"histogram\",\"seq\":2,\"name\":\"session.store_fetch_us\",\"labels\":{},\"unit\":\"us\",\"det\":false,\"count\":0,\"sum\":0,\"buckets\":[]}\n",
    );
    assert_eq!(redacted, want_redacted);
    // Both forms roundtrip through the parser.
    assert_eq!(jsonl::parse_records(want).unwrap().len(), 2);
    assert_eq!(jsonl::parse_records(&redacted).unwrap().len(), 2);
}

#[test]
fn jsonl_roundtrips_through_parser() {
    let recs = fixture();
    let parsed = jsonl::parse_records(&jsonl::write(&recs)).unwrap();
    assert_eq!(parsed.len(), recs.len());
    // NaN gauge breaks PartialEq on the full vec; compare the rest.
    assert_eq!(parsed[..5], recs[..5]);
    match &parsed[5] {
        Record::Gauge { value, .. } => assert!(value.is_nan()),
        other => panic!("expected gauge, got {other:?}"),
    }
}

#[test]
fn prom_golden() {
    let got = prom::write(&fixture());
    let want = concat!(
        "# TYPE ems_budget_exhausted_events counter\n",
        "ems_budget_exhausted_events{reason=\"max_iterations\"} 1\n",
        "# TYPE ems_engine_active_pairs gauge\n",
        "ems_engine_active_pairs{engine=\"forward\"} 12\n",
        "# TYPE ems_engine_formula_evals gauge\n",
        "ems_engine_formula_evals{engine=\"forward\"} 12\n",
        "# TYPE ems_engine_frozen_pairs gauge\n",
        "ems_engine_frozen_pairs{engine=\"forward\"} 1\n",
        "# TYPE ems_engine_iterations gauge\n",
        "ems_engine_iterations{engine=\"forward\"} 1\n",
        "# TYPE ems_engine_last_max_delta gauge\n",
        "ems_engine_last_max_delta{engine=\"forward\"} 0.5\n",
        "# TYPE ems_engine_retired_pairs gauge\n",
        "ems_engine_retired_pairs{engine=\"forward\"} 3\n",
        "# TYPE ems_graph_vertices gauge\n",
        "ems_graph_vertices{side=\"log1\"} 42\n",
        "# TYPE ems_phase_setup_microseconds counter\n",
        "ems_phase_setup_microseconds{engine=\"forward\"} 1234\n",
        "# TYPE ems_weird__value_ gauge\n",
        "ems_weird__value_{path=\"a\\\\b\\nc\"} NaN\n",
        "# TYPE ems_xes_warnings counter\n",
        "ems_xes_warnings{kind=\"tag-mismatch\",log=\"log1\"} 2\n",
    );
    assert_eq!(got, want);
}

#[test]
fn prom_deterministic_drops_only_timing() {
    let full = prom::write(&fixture());
    let det = prom::write_deterministic(&fixture());
    assert!(full.contains("microseconds"));
    assert!(!det.contains("microseconds"));
    let det_expected: String = full
        .lines()
        .filter(|l| !l.contains("microseconds"))
        .map(|l| format!("{l}\n"))
        .collect();
    assert_eq!(det, det_expected);
}

#[test]
fn identical_work_yields_identical_redacted_exports() {
    let run = || {
        let r = Recorder::new();
        {
            let _s = r.span("phase.setup", labels(&[("engine", "forward")]));
            r.counter_add("formula_evals", labels(&[("engine", "forward")]), 100);
        }
        r.gauge_set("graph_vertices", labels(&[("side", "log1")]), 7.0);
        r.iteration(IterationRecord {
            engine: "forward".into(),
            iteration: 1,
            max_delta: 0.25,
            mean_delta: 0.125,
            active_pairs: 4,
            retired_pairs: 0,
            frozen_pairs: 0,
            formula_evals: 100,
        });
        r.records()
    };
    let (a, b) = (run(), run());
    assert_eq!(jsonl::write_redacted(&a), jsonl::write_redacted(&b));
    assert_eq!(prom::write_deterministic(&a), prom::write_deterministic(&b));
    // The unredacted traces differ at most in dur_us.
    let ja = jsonl::write(&a);
    let jb = jsonl::write(&b);
    for (la, lb) in ja.lines().zip(jb.lines()) {
        if !la.contains("dur_us") {
            assert_eq!(la, lb);
        }
    }
}
