//! Golden test pinning the exact bytes the durable-store counters produce
//! in the Prometheus export and the run report. The record sequence mirrors
//! what `ems-store` emits during a match that hits, misses, retries,
//! quarantines and fails — downstream dashboards key on these exact names,
//! so they change only with a deliberate schema bump.

use ems_obs::record::{labels, Record};
use ems_obs::{prom, report};

/// One record per store counter class, in store emission order.
fn store_fixture() -> Vec<Record> {
    vec![
        Record::Counter {
            name: "store.write".into(),
            labels: labels(&[("kind", "graph")]),
            value: 2,
        },
        Record::Counter {
            name: "store.write".into(),
            labels: labels(&[("kind", "substrate")]),
            value: 2,
        },
        Record::Counter {
            name: "store.cache".into(),
            labels: labels(&[("result", "miss"), ("kind", "labels")]),
            value: 1,
        },
        Record::Counter {
            name: "store.cache".into(),
            labels: labels(&[("result", "hit"), ("kind", "graph")]),
            value: 2,
        },
        Record::Counter {
            name: "store.retry".into(),
            labels: vec![],
            value: 1,
        },
        Record::Counter {
            name: "store.read_failure".into(),
            labels: labels(&[("kind", "labels")]),
            value: 1,
        },
        Record::Counter {
            name: "store.quarantine".into(),
            labels: labels(&[("kind", "substrate")]),
            value: 1,
        },
        Record::Counter {
            name: "store.write_failure".into(),
            labels: labels(&[("kind", "labels")]),
            value: 1,
        },
        Record::Event {
            name: "store.quarantine".into(),
            attrs: labels(&[
                ("entry", "substrate-00deadbeef015bad.snap"),
                ("reason", "checksum mismatch"),
            ]),
        },
    ]
}

#[test]
fn prom_export_is_byte_exact() {
    let got = prom::write_deterministic(&store_fixture());
    let want = concat!(
        "# TYPE ems_store_cache counter\n",
        "ems_store_cache{kind=\"graph\",result=\"hit\"} 2\n",
        "ems_store_cache{kind=\"labels\",result=\"miss\"} 1\n",
        "# TYPE ems_store_quarantine counter\n",
        "ems_store_quarantine{kind=\"substrate\"} 1\n",
        "# TYPE ems_store_quarantine_events counter\n",
        "ems_store_quarantine_events{entry=\"substrate-00deadbeef015bad.snap\",reason=\"checksum mismatch\"} 1\n",
        "# TYPE ems_store_read_failure counter\n",
        "ems_store_read_failure{kind=\"labels\"} 1\n",
        "# TYPE ems_store_retry counter\n",
        "ems_store_retry 1\n",
        "# TYPE ems_store_write counter\n",
        "ems_store_write{kind=\"graph\"} 2\n",
        "ems_store_write{kind=\"substrate\"} 2\n",
        "# TYPE ems_store_write_failure counter\n",
        "ems_store_write_failure{kind=\"labels\"} 1\n",
    );
    assert_eq!(got, want);
}

#[test]
fn report_renders_a_durable_store_section() {
    let text = report::render(&store_fixture());
    // The store counters get their own section…
    let section = text
        .split("Durable store\n-------------\n")
        .nth(1)
        .expect("report has a Durable store section");
    let section: Vec<&str> = section
        .lines()
        .take_while(|l| l.starts_with("  "))
        .collect();
    assert_eq!(
        section,
        vec![
            "  store.cache{result=hit, kind=graph}              2",
            "  store.cache{result=miss, kind=labels}            1",
            "  store.quarantine{kind=substrate}                 1",
            "  store.read_failure{kind=labels}                  1",
            "  store.retry                                      1",
            "  store.write_failure{kind=labels}                 1",
            "  store.write{kind=graph}                          2",
            "  store.write{kind=substrate}                      2",
        ],
    );
    // …and are excluded from the catch-all Counters section.
    assert!(!text.contains("\nCounters\n"), "{text}");
    // The quarantine event still shows in the Events section.
    assert!(
        text.contains(
            "store.quarantine{entry=substrate-00deadbeef015bad.snap, reason=checksum mismatch}"
        ),
        "{text}"
    );
}
