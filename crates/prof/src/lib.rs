#![forbid(unsafe_code)]
//! `ems-prof` — deterministic scoped profiling on top of the `ems-obs`
//! recorder.
//!
//! A [`Profiler`] wraps an `Arc<Recorder>` and hands out RAII
//! [`ProfScope`] guards. Scopes nest: each guard pushes its name onto a
//! shared path stack, so a scope opened inside another emits the dotted
//! path `prof.<outer>.<inner>`. On drop a scope emits
//!
//! * one span `prof.<path>` whose attrs carry the deterministic identity
//!   (`path`, `depth`) and whose `dur_us` is the measured wall time — the
//!   single non-deterministic field, redacted by every deterministic
//!   export exactly like the engine's phase spans;
//! * one counter `prof.<key>` with label `path=<path>` per counter
//!   registered via [`ProfScope::count`] — counter values must be pure
//!   functions of the work performed (formula evaluations, pairs touched,
//!   logical bytes), never of scheduling, so redacted profile exports stay
//!   byte-identical across kernels and thread counts.
//!
//! # Determinism discipline
//!
//! The one wall-clock read lives in [`Profiler::scope`] under an audited
//! `ems-lint` suppression; `ems-prof` is scoped in the lint's
//! `CLOCK_CRATES`/`NONDET_CRATES` tables so any further clock or
//! randomness use fails CI.
//!
//! # Allocation accounting
//!
//! The workspace forbids `unsafe`, so a `GlobalAlloc` wrapper is off the
//! table — and would be wrong anyway: real allocator traffic varies with
//! thread interleaving and allocator internals, which would break the
//! byte-identical redacted export contract. [`CountingAlloc`] instead
//! counts *logical* allocations: callers route buffer creation through it
//! (or charge capacities explicitly via [`AllocTally`]), producing
//! deterministic allocation/byte tallies that are identical across thread
//! counts because they describe what the algorithm requested, not what
//! the allocator did.

#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

use std::sync::{Arc, Mutex};
use std::time::Instant;

use ems_obs::{labels, Recorder};

/// Deterministic logical allocation tally: how many buffers the profiled
/// code requested and how many bytes of capacity they carried.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct AllocTally {
    /// Number of logical allocations charged.
    pub allocations: u64,
    /// Total bytes of requested capacity.
    pub bytes: u64,
}

impl AllocTally {
    /// Charges one allocation of `bytes` bytes.
    pub fn charge(&mut self, bytes: usize) {
        self.allocations += 1;
        self.bytes = self.bytes.saturating_add(bytes as u64);
    }

    /// Charges the capacity a slice of `len` elements of `T` occupies.
    pub fn charge_elems<T>(&mut self, len: usize) {
        self.charge(len.saturating_mul(std::mem::size_of::<T>()));
    }

    /// Folds another tally into this one.
    pub fn merge(&mut self, other: AllocTally) {
        self.allocations += other.allocations;
        self.bytes = self.bytes.saturating_add(other.bytes);
    }
}

/// Counting allocator wrapper: a shareable charge sheet that hands out
/// buffers while tallying their logical capacity (see the module docs for
/// why this is deliberately not a `GlobalAlloc`).
#[derive(Debug, Default)]
pub struct CountingAlloc {
    tally: Mutex<AllocTally>,
}

impl CountingAlloc {
    /// New empty charge sheet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a `Vec` with the requested capacity and charges it.
    pub fn vec_with_capacity<T>(&self, cap: usize) -> Vec<T> {
        self.charge_elems::<T>(cap);
        Vec::with_capacity(cap)
    }

    /// Charges `bytes` bytes without handing out a buffer (for buffers
    /// created elsewhere, e.g. resized in place).
    pub fn charge_bytes(&self, bytes: usize) {
        self.lock().charge(bytes);
    }

    /// Charges the capacity of `len` elements of `T`.
    pub fn charge_elems<T>(&self, len: usize) {
        self.lock().charge_elems::<T>(len);
    }

    /// Snapshot of the tally so far.
    pub fn tally(&self) -> AllocTally {
        *self.lock()
    }

    /// Takes the tally, resetting the sheet to zero.
    pub fn take(&self) -> AllocTally {
        std::mem::take(&mut *self.lock())
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, AllocTally> {
        match self.tally.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

/// Scoped phase profiler bound to a recorder.
///
/// Cheap to construct per run; share one across components that should
/// nest their scopes into a single tree.
#[derive(Debug)]
pub struct Profiler {
    recorder: Arc<Recorder>,
    /// Dotted-path stack of open scopes. The pipeline profiles from one
    /// logical thread at a time (same contract as the recorder itself);
    /// the mutex makes sharing safe, not concurrent nesting meaningful.
    stack: Mutex<Vec<String>>,
}

impl Profiler {
    /// New profiler emitting into `recorder`.
    pub fn new(recorder: Arc<Recorder>) -> Self {
        Profiler {
            recorder,
            stack: Mutex::new(Vec::new()),
        }
    }

    /// The recorder this profiler emits into.
    pub fn recorder(&self) -> &Arc<Recorder> {
        &self.recorder
    }

    fn lock_stack(&self) -> std::sync::MutexGuard<'_, Vec<String>> {
        match self.stack.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Opens a scope named `name`; the returned guard records on drop.
    /// Scope names should be short dotted identifiers (`engine.exact`).
    pub fn scope(&self, name: &str) -> ProfScope<'_> {
        let mut stack = self.lock_stack();
        let path = if stack.is_empty() {
            name.to_string()
        } else {
            format!("{}.{name}", stack.join("."))
        };
        let depth = stack.len();
        stack.push(name.to_string());
        drop(stack);
        ProfScope {
            prof: self,
            path,
            depth,
            // ems-lint: allow(wall-clock-randomness, scope timing is observability-only; the duration lands in the span dur_us field, which every deterministic export redacts)
            started: Instant::now(),
            counters: Vec::new(),
            finished: false,
        }
    }
}

/// RAII guard for one profiled scope; see the module docs for what it
/// emits on drop.
#[derive(Debug)]
pub struct ProfScope<'a> {
    prof: &'a Profiler,
    path: String,
    depth: usize,
    started: Instant,
    /// `(key, value)` counters accumulated during the scope, emitted in
    /// registration order.
    counters: Vec<(String, u64)>,
    finished: bool,
}

impl ProfScope<'_> {
    /// The full dotted path of this scope (without the `prof.` prefix).
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Adds `value` to the scope counter `key`. Values must be
    /// deterministic functions of the work performed.
    pub fn count(&mut self, key: &str, value: u64) {
        if let Some(entry) = self.counters.iter_mut().find(|(k, _)| k == key) {
            entry.1 += value;
        } else {
            self.counters.push((key.to_string(), value));
        }
    }

    /// Charges an allocation tally as `alloc` / `alloc_bytes` counters.
    pub fn alloc(&mut self, tally: AllocTally) {
        self.count("alloc", tally.allocations);
        self.count("alloc_bytes", tally.bytes);
    }

    /// Ends the scope now and records it.
    pub fn finish(mut self) {
        self.close();
    }

    fn close(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        let mut stack = self.prof.lock_stack();
        stack.pop();
        drop(stack);
        let rec = &self.prof.recorder;
        // Timing is observability-only: the elapsed duration lands in the
        // isolated span dur_us field and never feeds similarity values.
        let dur = self.started.elapsed();
        rec.span_closed(
            &format!("prof.{}", self.path),
            labels(&[("path", &self.path), ("depth", &self.depth.to_string())]),
            dur,
        );
        for (key, value) in self.counters.drain(..) {
            rec.counter_add(
                &format!("prof.{key}"),
                labels(&[("path", &self.path)]),
                value,
            );
        }
    }
}

impl Drop for ProfScope<'_> {
    fn drop(&mut self) {
        self.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ems_obs::Record;

    #[test]
    fn scopes_nest_into_dotted_paths() {
        let rec = Arc::new(Recorder::new());
        let prof = Profiler::new(Arc::clone(&rec));
        {
            let _outer = prof.scope("session");
            {
                let mut inner = prof.scope("model");
                inner.count("rebuilds", 2);
            }
        }
        let records = rec.records();
        // inner closes first: span + counter, then the outer span.
        match &records[0] {
            Record::Span { name, attrs, .. } => {
                assert_eq!(name, "prof.session.model");
                assert!(attrs.contains(&("path".to_string(), "session.model".to_string())));
                assert!(attrs.contains(&("depth".to_string(), "1".to_string())));
            }
            other => panic!("expected span, got {other:?}"),
        }
        match &records[1] {
            Record::Counter {
                name,
                labels,
                value,
            } => {
                assert_eq!(name, "prof.rebuilds");
                assert_eq!(*value, 2);
                assert_eq!(labels[0].1, "session.model");
            }
            other => panic!("expected counter, got {other:?}"),
        }
        match &records[2] {
            Record::Span { name, .. } => assert_eq!(name, "prof.session"),
            other => panic!("expected span, got {other:?}"),
        }
    }

    #[test]
    fn counters_accumulate_per_key() {
        let rec = Arc::new(Recorder::new());
        let prof = Profiler::new(Arc::clone(&rec));
        {
            let mut s = prof.scope("work");
            s.count("evals", 3);
            s.count("evals", 4);
            s.count("pairs", 1);
        }
        let counters: Vec<(String, u64)> = rec
            .records()
            .into_iter()
            .filter_map(|r| match r {
                Record::Counter { name, value, .. } => Some((name, value)),
                _ => None,
            })
            .collect();
        assert_eq!(
            counters,
            vec![("prof.evals".to_string(), 7), ("prof.pairs".to_string(), 1)]
        );
    }

    #[test]
    fn redacted_export_is_identical_across_reruns() {
        let run = || {
            let rec = Arc::new(Recorder::new());
            let prof = Profiler::new(Arc::clone(&rec));
            {
                let mut s = prof.scope("engine.run");
                s.count("formula_evals", 1234);
                let inner = prof.scope("sparse_drop");
                inner.finish();
            }
            ems_obs::jsonl::write_redacted(&rec.records())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn counting_alloc_tallies_logical_capacity() {
        let alloc = CountingAlloc::new();
        let v: Vec<f64> = alloc.vec_with_capacity(100);
        assert_eq!(v.capacity(), 100);
        alloc.charge_bytes(64);
        alloc.charge_elems::<u32>(10);
        let t = alloc.tally();
        assert_eq!(t.allocations, 3);
        assert_eq!(t.bytes, 800 + 64 + 40);
        assert_eq!(alloc.take(), t);
        assert_eq!(alloc.tally(), AllocTally::default());
    }

    #[test]
    fn alloc_tally_feeds_scope_counters() {
        let rec = Arc::new(Recorder::new());
        let prof = Profiler::new(Arc::clone(&rec));
        let mut t = AllocTally::default();
        t.charge_elems::<f64>(8);
        t.charge(16);
        {
            let mut s = prof.scope("setup");
            s.alloc(t);
        }
        let text = ems_obs::jsonl::write(&rec.records());
        assert!(text.contains("prof.alloc_bytes"), "{text}");
        assert!(text.contains("\"value\":80"), "{text}");
    }
}
