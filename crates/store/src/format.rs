//! The on-disk snapshot format: one self-validating binary envelope per
//! catalog entry.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//!      0     8  magic "EMSSNAP1"
//!      8     4  format_version (this module's FORMAT_VERSION)
//!     12     1  kind tag (SnapshotKind)
//!     13     4  payload_version (the payload codec's version)
//!     17     8  key (the entry's store key)
//!     25     8  payload_len
//!     33     8  checksum: FNV-1a 64 over bytes 8..33 and the payload
//!     41     …  payload
//! ```
//!
//! Every field after the magic participates in the checksum, so a flipped
//! kind tag, a truncation, or a stray byte in the payload all surface as
//! [`SnapshotError::ChecksumMismatch`] (or an earlier structural error).
//! The key is embedded so a snapshot renamed over another entry's path is
//! detected even though both files are individually well-formed.

use std::fmt;

/// File magic: identifies an ems-store snapshot, version-agnostic.
pub const MAGIC: &[u8; 8] = b"EMSSNAP1";

/// Version of this envelope layout.
pub const FORMAT_VERSION: u32 = 1;

/// Envelope header length in bytes (magic through checksum).
pub const HEADER_LEN: usize = 41;

/// What a snapshot holds. The tag byte is part of the envelope, so a
/// payload can never be decoded as the wrong kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SnapshotKind {
    /// An ingested event log (full alphabet + traces).
    Log,
    /// A dependency graph (names, frequencies, real edges).
    Graph,
    /// An engine substrate (distances + CSR neighbor structures).
    Substrate,
    /// A label similarity matrix.
    Labels,
    /// A graph sketch (frequency classes, vertex profiles, minhash).
    Sketch,
}

impl SnapshotKind {
    /// Every kind, in tag order.
    pub const ALL: [SnapshotKind; 5] = [
        SnapshotKind::Log,
        SnapshotKind::Graph,
        SnapshotKind::Substrate,
        SnapshotKind::Labels,
        SnapshotKind::Sketch,
    ];

    /// The envelope tag byte.
    pub fn tag(self) -> u8 {
        match self {
            SnapshotKind::Log => 1,
            SnapshotKind::Graph => 2,
            SnapshotKind::Substrate => 3,
            SnapshotKind::Labels => 4,
            SnapshotKind::Sketch => 5,
        }
    }

    /// Parses a tag byte.
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            1 => Some(SnapshotKind::Log),
            2 => Some(SnapshotKind::Graph),
            3 => Some(SnapshotKind::Substrate),
            4 => Some(SnapshotKind::Labels),
            5 => Some(SnapshotKind::Sketch),
            _ => None,
        }
    }

    /// Stable lowercase name (file-name prefix, telemetry label).
    pub fn name(self) -> &'static str {
        match self {
            SnapshotKind::Log => "log",
            SnapshotKind::Graph => "graph",
            SnapshotKind::Substrate => "substrate",
            SnapshotKind::Labels => "labels",
            SnapshotKind::Sketch => "sketch",
        }
    }

    /// Parses a file-name prefix.
    pub fn from_name(name: &str) -> Option<Self> {
        SnapshotKind::ALL.into_iter().find(|k| k.name() == name)
    }
}

/// The decoded envelope header of one snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotHeader {
    /// What the payload holds.
    pub kind: SnapshotKind,
    /// The entry's store key.
    pub key: u64,
    /// Payload codec version.
    pub payload_version: u32,
    /// Payload length in bytes.
    pub payload_len: u64,
}

/// Why a snapshot failed to decode. Every variant means the entry is
/// corrupt and must be quarantined; none is retryable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// Shorter than a full header, or shorter than the declared payload.
    Truncated {
        /// Bytes present.
        len: usize,
        /// Bytes required.
        need: usize,
    },
    /// The magic bytes are wrong — not an ems-store snapshot at all.
    BadMagic,
    /// Unknown envelope format version.
    BadFormatVersion(u32),
    /// Unknown kind tag byte.
    BadKind(u8),
    /// Trailing bytes after the declared payload.
    TrailingBytes(usize),
    /// The checksum over header + payload does not match.
    ChecksumMismatch {
        /// Checksum stored in the envelope.
        stored: u64,
        /// Checksum computed from the bytes present.
        computed: u64,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated { len, need } => {
                write!(f, "truncated snapshot: {len} bytes, need {need}")
            }
            SnapshotError::BadMagic => write!(f, "bad magic: not an ems-store snapshot"),
            SnapshotError::BadFormatVersion(v) => write!(f, "unknown snapshot format version {v}"),
            SnapshotError::BadKind(t) => write!(f, "unknown snapshot kind tag {t}"),
            SnapshotError::TrailingBytes(n) => {
                write!(f, "{n} trailing bytes after declared payload")
            }
            SnapshotError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// FNV-1a 64 — same constants as `ems_events::Fnv1a`, reimplemented here
/// so the store stays payload-agnostic (it never depends on data crates).
fn fnv1a(chunks: &[&[u8]]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x1000_0000_01b3;
    let mut h = OFFSET;
    for chunk in chunks {
        for &b in *chunk {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    }
    h
}

/// Encodes `payload` into a full snapshot file image.
pub fn encode_snapshot(
    kind: SnapshotKind,
    key: u64,
    payload_version: u32,
    payload: &[u8],
) -> Vec<u8> {
    let mut head = Vec::with_capacity(HEADER_LEN + payload.len());
    head.extend_from_slice(MAGIC);
    head.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    head.push(kind.tag());
    head.extend_from_slice(&payload_version.to_le_bytes());
    head.extend_from_slice(&key.to_le_bytes());
    head.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    let checksum = fnv1a(&[&head[8..], payload]);
    head.extend_from_slice(&checksum.to_le_bytes());
    head.extend_from_slice(payload);
    head
}

fn le_u32(b: &[u8], at: usize) -> u32 {
    let mut buf = [0u8; 4];
    buf.copy_from_slice(&b[at..at + 4]);
    u32::from_le_bytes(buf)
}

fn le_u64(b: &[u8], at: usize) -> u64 {
    let mut buf = [0u8; 8];
    buf.copy_from_slice(&b[at..at + 8]);
    u64::from_le_bytes(buf)
}

/// Decodes and fully validates a snapshot file image, returning the
/// header and a view of the payload.
pub fn decode_snapshot(bytes: &[u8]) -> Result<(SnapshotHeader, &[u8]), SnapshotError> {
    if bytes.len() < HEADER_LEN {
        return Err(SnapshotError::Truncated {
            len: bytes.len(),
            need: HEADER_LEN,
        });
    }
    if &bytes[..8] != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let format_version = le_u32(bytes, 8);
    if format_version != FORMAT_VERSION {
        return Err(SnapshotError::BadFormatVersion(format_version));
    }
    let kind = SnapshotKind::from_tag(bytes[12]).ok_or(SnapshotError::BadKind(bytes[12]))?;
    let payload_version = le_u32(bytes, 13);
    let key = le_u64(bytes, 17);
    let payload_len = le_u64(bytes, 25);
    let stored = le_u64(bytes, 33);
    let need = HEADER_LEN.saturating_add(usize::try_from(payload_len).unwrap_or(usize::MAX));
    if bytes.len() < need {
        return Err(SnapshotError::Truncated {
            len: bytes.len(),
            need,
        });
    }
    if bytes.len() > need {
        return Err(SnapshotError::TrailingBytes(bytes.len() - need));
    }
    let payload = &bytes[HEADER_LEN..];
    let computed = fnv1a(&[&bytes[8..33], payload]);
    if computed != stored {
        return Err(SnapshotError::ChecksumMismatch { stored, computed });
    }
    Ok((
        SnapshotHeader {
            kind,
            key,
            payload_version,
            payload_len,
        },
        payload,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let payload = b"hello snapshot";
        let bytes = encode_snapshot(SnapshotKind::Graph, 0xDEAD_BEEF, 3, payload);
        let (head, body) = decode_snapshot(&bytes).unwrap();
        assert_eq!(head.kind, SnapshotKind::Graph);
        assert_eq!(head.key, 0xDEAD_BEEF);
        assert_eq!(head.payload_version, 3);
        assert_eq!(head.payload_len, payload.len() as u64);
        assert_eq!(body, payload);
    }

    #[test]
    fn empty_payload_round_trips() {
        let bytes = encode_snapshot(SnapshotKind::Labels, 1, 1, &[]);
        let (head, body) = decode_snapshot(&bytes).unwrap();
        assert_eq!(head.payload_len, 0);
        assert!(body.is_empty());
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let bytes = encode_snapshot(SnapshotKind::Log, 42, 1, b"payload bytes here");
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x01;
            assert!(
                decode_snapshot(&bad).is_err(),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let bytes = encode_snapshot(SnapshotKind::Substrate, 7, 2, b"0123456789");
        for n in 0..bytes.len() {
            assert!(
                decode_snapshot(&bytes[..n]).is_err(),
                "truncation to {n} bytes went undetected"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_detected() {
        let mut bytes = encode_snapshot(SnapshotKind::Log, 7, 1, b"x");
        bytes.push(0);
        assert_eq!(
            decode_snapshot(&bytes),
            Err(SnapshotError::TrailingBytes(1))
        );
    }

    #[test]
    fn kind_tags_round_trip() {
        for kind in SnapshotKind::ALL {
            assert_eq!(SnapshotKind::from_tag(kind.tag()), Some(kind));
            assert_eq!(SnapshotKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(SnapshotKind::from_tag(0), None);
        assert_eq!(SnapshotKind::from_tag(99), None);
        assert_eq!(SnapshotKind::from_name("bogus"), None);
    }

    #[test]
    fn errors_render_one_line() {
        let errs = [
            SnapshotError::Truncated { len: 1, need: 41 },
            SnapshotError::BadMagic,
            SnapshotError::BadFormatVersion(9),
            SnapshotError::BadKind(9),
            SnapshotError::TrailingBytes(3),
            SnapshotError::ChecksumMismatch {
                stored: 1,
                computed: 2,
            },
        ];
        for e in errs {
            assert!(!e.to_string().contains('\n'));
        }
    }
}
