#![forbid(unsafe_code)]
//! Durable, crash-safe catalog store for the matching pipeline.
//!
//! A [`CatalogStore`] persists pipeline artifacts — ingested logs,
//! dependency graphs, engine substrates, label matrices — as checksummed,
//! versioned snapshot files keyed by the fingerprints the session layer
//! already computes. The write protocol is the classic atomic triple:
//!
//! 1. write the full snapshot image to a hidden temp file in the same
//!    directory,
//! 2. `fsync` the temp file,
//! 3. `rename` it over the final path (the commit point), then
//!    best-effort `fsync` the directory.
//!
//! A crash at any point leaves either the old snapshot or the new one,
//! never a torn file at the final path; torn temp residue is ignored by
//! readers and reclaimed by [`CatalogStore::gc`]. Every read re-validates
//! the envelope checksum ([`format::decode_snapshot`]) plus the expected
//! kind, key, and payload version; any mismatch quarantines the entry
//! (moved to `quarantine/`, never deleted) and surfaces as a typed
//! [`EmsError::StoreCorrupt`], after which the caller rebuilds from
//! source and re-puts — corruption degrades to a cache miss, never to a
//! wrong answer.
//!
//! All I/O paths are instrumented with [`ems_faults`] hooks so chaos
//! tests can inject torn writes, short reads, `ENOSPC`, and transient
//! errors on a reproducible schedule; transients are retried with
//! seeded virtual backoff via [`ems_faults::run_with_retry`].

#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

pub mod format;

use ems_error::{EmsError, EmsResult};
use ems_faults::{run_with_retry, FaultInjector, FaultKind, FaultSite, RetryPolicy};
use ems_obs::Recorder;
use std::fs::{self, File};
use std::io::{ErrorKind, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

pub use format::{SnapshotError, SnapshotHeader, SnapshotKind};

/// Store layout marker written to `<root>/STORE`; rejected roots are
/// surfaced as corruption rather than silently reformatted.
const MARKER: &str = "ems-store/1\n";

/// Counters describing one store's lifetime of traffic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Reads that returned a valid snapshot.
    pub hits: u64,
    /// Reads of entries not present on disk.
    pub misses: u64,
    /// Snapshots committed.
    pub writes: u64,
    /// Puts that failed terminally (after retries).
    pub write_failures: u64,
    /// Gets that failed terminally with an I/O error (after retries).
    pub read_failures: u64,
    /// Entries moved to quarantine after failing validation.
    pub quarantined: u64,
    /// Transient-fault retries performed across all operations.
    pub retries: u64,
    /// Total virtual backoff accumulated by those retries (µs).
    pub backoff_us: u64,
}

/// Validation status of one on-disk entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EntryStatus {
    /// Envelope decoded, checksum matched, name agreed with header.
    Ok,
    /// Entry failed validation for the given reason.
    Corrupt(String),
}

/// One catalog entry as seen by [`CatalogStore::list`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntryInfo {
    /// File name inside `objects/`.
    pub file: String,
    /// Kind parsed from the header (or file name if the header is bad).
    pub kind: Option<SnapshotKind>,
    /// Store key, when decodable.
    pub key: Option<u64>,
    /// Payload codec version, when decodable.
    pub payload_version: Option<u32>,
    /// File size in bytes.
    pub bytes: u64,
    /// Validation outcome.
    pub status: EntryStatus,
}

/// Outcome of [`CatalogStore::verify`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VerifyReport {
    /// Entries that validated.
    pub ok: usize,
    /// `(file name, reason)` for every entry that failed.
    pub corrupt: Vec<(String, String)>,
}

/// Outcome of [`CatalogStore::gc`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Abandoned temp files removed from `objects/`.
    pub removed_tmp: usize,
    /// Quarantined files removed from `quarantine/`.
    pub removed_quarantined: usize,
}

/// Per-attempt failure inside an instrumented store operation. Injected
/// transients are the only retryable class; real I/O errors are treated
/// as terminal so behavior stays deterministic under chaos sweeps.
#[derive(Debug)]
enum OpError {
    Injected { site: FaultSite, kind: FaultKind },
    Real(std::io::Error),
}

impl OpError {
    fn is_transient(&self) -> bool {
        matches!(self, OpError::Injected { kind, .. } if kind.is_transient())
    }

    fn describe(&self) -> String {
        match self {
            OpError::Injected { site, kind } => {
                format!("injected {} fault at {}", kind.name(), site.name())
            }
            OpError::Real(e) => e.to_string(),
        }
    }
}

/// Recovers the stats even if a panicking thread poisoned the lock —
/// bookkeeping must never compound a failure.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// A durable catalog of pipeline snapshots rooted at one directory.
///
/// Thread-safe: all methods take `&self`, so one store can be shared via
/// `Arc` between a session's stages.
#[derive(Debug)]
pub struct CatalogStore {
    root: PathBuf,
    injector: Arc<FaultInjector>,
    recorder: Option<Arc<Recorder>>,
    retry: RetryPolicy,
    stats: Mutex<StoreStats>,
}

impl CatalogStore {
    /// Opens (creating if necessary) a store rooted at `root`. A root
    /// whose `STORE` marker holds unexpected content is rejected as
    /// [`EmsError::StoreCorrupt`] — it is some other tool's directory.
    pub fn open(root: impl Into<PathBuf>) -> EmsResult<Self> {
        let root = root.into();
        let objects = root.join("objects");
        let quarantine = root.join("quarantine");
        fs::create_dir_all(&objects).map_err(|e| io_err(&objects, &e))?;
        fs::create_dir_all(&quarantine).map_err(|e| io_err(&quarantine, &e))?;
        let marker = root.join("STORE");
        match fs::read_to_string(&marker) {
            Ok(content) if content == MARKER => {}
            Ok(content) => {
                return Err(EmsError::store_corrupt(
                    marker.display().to_string(),
                    format!("unexpected store marker {content:?}, want {MARKER:?}"),
                ));
            }
            Err(e) if e.kind() == ErrorKind::NotFound => {
                fs::write(&marker, MARKER).map_err(|e| io_err(&marker, &e))?;
            }
            Err(e) => return Err(io_err(&marker, &e)),
        }
        Ok(CatalogStore {
            root,
            injector: Arc::new(FaultInjector::inert()),
            recorder: None,
            retry: RetryPolicy::default(),
            stats: Mutex::new(StoreStats::default()),
        })
    }

    /// Arms a fault injector on every subsequent I/O operation.
    pub fn with_injector(mut self, injector: Arc<FaultInjector>) -> Self {
        self.injector = injector;
        self
    }

    /// Attaches a telemetry recorder for store counters.
    pub fn with_recorder(mut self, recorder: Arc<Recorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Overrides the transient-fault retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// A snapshot of the store's traffic counters.
    pub fn stats(&self) -> StoreStats {
        lock(&self.stats).clone()
    }

    fn objects_dir(&self) -> PathBuf {
        self.root.join("objects")
    }

    fn quarantine_dir(&self) -> PathBuf {
        self.root.join("quarantine")
    }

    fn file_name(kind: SnapshotKind, key: u64) -> String {
        format!("{}-{key:016x}.snap", kind.name())
    }

    fn object_path(&self, kind: SnapshotKind, key: u64) -> PathBuf {
        self.objects_dir().join(Self::file_name(kind, key))
    }

    fn counter(&self, name: &str, pairs: &[(&str, &str)], value: u64) {
        if let Some(rec) = &self.recorder {
            rec.counter_add(name, ems_obs::labels(pairs), value);
        }
    }

    fn note_retries(&self, attempts: u32, backoff_us: u64) {
        let retries = u64::from(attempts.saturating_sub(1));
        if retries > 0 {
            let mut stats = lock(&self.stats);
            stats.retries += retries;
            stats.backoff_us += backoff_us;
            drop(stats);
            self.counter("store.retry", &[], retries);
        }
    }

    /// Persists one snapshot atomically; the entry becomes visible to
    /// readers only after the rename commit. Transient injected faults
    /// are retried; terminal failures return [`EmsError::StoreIo`] and
    /// leave any previously committed snapshot untouched.
    pub fn put(
        &self,
        kind: SnapshotKind,
        key: u64,
        payload_version: u32,
        payload: &[u8],
    ) -> EmsResult<()> {
        let bytes = format::encode_snapshot(kind, key, payload_version, payload);
        let outcome = run_with_retry(&self.retry, OpError::is_transient, |attempt| {
            self.write_once(kind, key, &bytes, attempt)
        });
        self.note_retries(outcome.attempts, outcome.backoff_us);
        match outcome.result {
            Ok(()) => {
                lock(&self.stats).writes += 1;
                self.counter("store.write", &[("kind", kind.name())], 1);
                Ok(())
            }
            Err(e) => {
                lock(&self.stats).write_failures += 1;
                self.counter("store.write_failure", &[("kind", kind.name())], 1);
                Err(EmsError::store_io(
                    self.object_path(kind, key).display().to_string(),
                    e.describe(),
                ))
            }
        }
    }

    /// One write attempt: temp file → fsync → rename → dir fsync, with
    /// injector hooks at each step. A failed attempt may leave temp
    /// residue (that is the point of torn-write injection); the final
    /// path is only ever touched by the rename.
    fn write_once(
        &self,
        kind: SnapshotKind,
        key: u64,
        bytes: &[u8],
        attempt: u32,
    ) -> Result<(), OpError> {
        let objects = self.objects_dir();
        let tmp = objects.join(format!(".tmp-{}-{key:016x}-{attempt}", kind.name()));
        let mut file = File::create(&tmp).map_err(OpError::Real)?;
        match self.injector.next_op(FaultSite::StoreWrite) {
            Some(kind @ FaultKind::TornWrite { keep_permille }) => {
                let keep = bytes.len() * usize::from(keep_permille) / 1000;
                file.write_all(&bytes[..keep]).map_err(OpError::Real)?;
                let _ = file.sync_all();
                return Err(OpError::Injected {
                    site: FaultSite::StoreWrite,
                    kind,
                });
            }
            Some(kind) => {
                return Err(OpError::Injected {
                    site: FaultSite::StoreWrite,
                    kind,
                })
            }
            None => file.write_all(bytes).map_err(OpError::Real)?,
        }
        match self.injector.next_op(FaultSite::StoreFsync) {
            Some(kind) => {
                return Err(OpError::Injected {
                    site: FaultSite::StoreFsync,
                    kind,
                })
            }
            None => file.sync_all().map_err(OpError::Real)?,
        }
        drop(file);
        match self.injector.next_op(FaultSite::StoreRename) {
            Some(kind) => {
                return Err(OpError::Injected {
                    site: FaultSite::StoreRename,
                    kind,
                })
            }
            None => {
                fs::rename(&tmp, self.object_path(kind, key)).map_err(OpError::Real)?;
            }
        }
        // Directory fsync is best-effort: its absence can delay
        // visibility after a crash but can never produce a torn entry.
        let _ = File::open(&objects).and_then(|d| d.sync_all());
        Ok(())
    }

    /// Fetches a snapshot's payload. Returns `Ok(None)` on a miss;
    /// validation failures quarantine the entry and return
    /// [`EmsError::StoreCorrupt`] so the caller rebuilds from source.
    pub fn get(
        &self,
        kind: SnapshotKind,
        key: u64,
        expected_version: u32,
    ) -> EmsResult<Option<Vec<u8>>> {
        let path = self.object_path(kind, key);
        let outcome = run_with_retry(&self.retry, OpError::is_transient, |_| {
            self.read_once(&path)
        });
        self.note_retries(outcome.attempts, outcome.backoff_us);
        let bytes = match outcome.result {
            Ok(Some(bytes)) => bytes,
            Ok(None) => {
                lock(&self.stats).misses += 1;
                self.counter(
                    "store.cache",
                    &[("result", "miss"), ("kind", kind.name())],
                    1,
                );
                return Ok(None);
            }
            Err(e) => {
                lock(&self.stats).read_failures += 1;
                self.counter("store.read_failure", &[("kind", kind.name())], 1);
                return Err(EmsError::store_io(path.display().to_string(), e.describe()));
            }
        };
        let reason = match format::decode_snapshot(&bytes) {
            Ok((header, payload)) => {
                if header.kind != kind {
                    format!("kind mismatch: header says {}", header.kind.name())
                } else if header.key != key {
                    format!("key mismatch: header says {:016x}", header.key)
                } else if header.payload_version != expected_version {
                    format!(
                        "payload version mismatch: have {}, want {expected_version}",
                        header.payload_version
                    )
                } else {
                    lock(&self.stats).hits += 1;
                    self.counter(
                        "store.cache",
                        &[("result", "hit"), ("kind", kind.name())],
                        1,
                    );
                    return Ok(Some(payload.to_vec()));
                }
            }
            Err(e) => e.to_string(),
        };
        self.quarantine_entry(kind, key, &reason);
        Err(EmsError::store_corrupt(path.display().to_string(), reason))
    }

    /// One read attempt with injector hooks. `Ok(None)` means the entry
    /// does not exist (a genuine miss, not a fault).
    fn read_once(&self, path: &Path) -> Result<Option<Vec<u8>>, OpError> {
        match self.injector.next_op(FaultSite::StoreRead) {
            Some(FaultKind::ShortRead { keep_permille }) => {
                // A short read delivers a truncated image: the decode
                // below fails its checksum and the entry degrades to a
                // rebuild, exactly like real corruption would.
                match fs::read(path) {
                    Ok(mut bytes) => {
                        bytes.truncate(bytes.len() * usize::from(keep_permille) / 1000);
                        Ok(Some(bytes))
                    }
                    Err(e) if e.kind() == ErrorKind::NotFound => Ok(None),
                    Err(e) => Err(OpError::Real(e)),
                }
            }
            Some(kind) => Err(OpError::Injected {
                site: FaultSite::StoreRead,
                kind,
            }),
            None => match fs::read(path) {
                Ok(bytes) => Ok(Some(bytes)),
                Err(e) if e.kind() == ErrorKind::NotFound => Ok(None),
                Err(e) => Err(OpError::Real(e)),
            },
        }
    }

    /// Moves an entry into `quarantine/` (best-effort) and records it.
    /// Public so callers that detect payload-level corruption after a
    /// successful envelope read can route the entry the same way.
    pub fn quarantine_entry(&self, kind: SnapshotKind, key: u64, reason: &str) {
        let name = Self::file_name(kind, key);
        let from = self.objects_dir().join(&name);
        let to = self.quarantine_dir().join(&name);
        let _ = fs::rename(&from, &to);
        lock(&self.stats).quarantined += 1;
        self.counter("store.quarantine", &[("kind", kind.name())], 1);
        if let Some(rec) = &self.recorder {
            rec.event(
                "store.quarantine",
                ems_obs::labels(&[("entry", name.as_str()), ("reason", reason)]),
            );
        }
    }

    /// Lists every committed entry with its validation status, sorted by
    /// file name. Administrative: runs fault-free and touches no counters.
    pub fn list(&self) -> EmsResult<Vec<EntryInfo>> {
        let mut out = Vec::new();
        for (name, path) in self.snap_files()? {
            let bytes = fs::read(&path).map_err(|e| io_err(&path, &e))?;
            let info = match format::decode_snapshot(&bytes) {
                Ok((header, _)) => {
                    let status = match Self::check_name(&name, header) {
                        Some(reason) => EntryStatus::Corrupt(reason),
                        None => EntryStatus::Ok,
                    };
                    EntryInfo {
                        file: name,
                        kind: Some(header.kind),
                        key: Some(header.key),
                        payload_version: Some(header.payload_version),
                        bytes: bytes.len() as u64,
                        status,
                    }
                }
                Err(e) => EntryInfo {
                    file: name.clone(),
                    kind: Self::parse_name(&name).map(|(k, _)| k),
                    key: Self::parse_name(&name).map(|(_, key)| key),
                    payload_version: None,
                    bytes: bytes.len() as u64,
                    status: EntryStatus::Corrupt(e.to_string()),
                },
            };
            out.push(info);
        }
        Ok(out)
    }

    /// Validates every committed entry without modifying anything —
    /// quarantine is left to readers so `verify` stays a pure report.
    pub fn verify(&self) -> EmsResult<VerifyReport> {
        let mut report = VerifyReport::default();
        for entry in self.list()? {
            match entry.status {
                EntryStatus::Ok => report.ok += 1,
                EntryStatus::Corrupt(reason) => report.corrupt.push((entry.file, reason)),
            }
        }
        Ok(report)
    }

    /// Removes abandoned temp files and quarantined entries.
    pub fn gc(&self) -> EmsResult<GcReport> {
        let mut report = GcReport::default();
        let objects = self.objects_dir();
        for entry in fs::read_dir(&objects).map_err(|e| io_err(&objects, &e))? {
            let entry = entry.map_err(|e| io_err(&objects, &e))?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.starts_with(".tmp-") {
                fs::remove_file(entry.path()).map_err(|e| io_err(&entry.path(), &e))?;
                report.removed_tmp += 1;
            }
        }
        let quarantine = self.quarantine_dir();
        for entry in fs::read_dir(&quarantine).map_err(|e| io_err(&quarantine, &e))? {
            let entry = entry.map_err(|e| io_err(&quarantine, &e))?;
            fs::remove_file(entry.path()).map_err(|e| io_err(&entry.path(), &e))?;
            report.removed_quarantined += 1;
        }
        Ok(report)
    }

    /// `.snap` files in `objects/`, sorted by name for determinism.
    fn snap_files(&self) -> EmsResult<Vec<(String, PathBuf)>> {
        let objects = self.objects_dir();
        let mut files = Vec::new();
        for entry in fs::read_dir(&objects).map_err(|e| io_err(&objects, &e))? {
            let entry = entry.map_err(|e| io_err(&objects, &e))?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.ends_with(".snap") {
                files.push((name, entry.path()));
            }
        }
        files.sort();
        Ok(files)
    }

    /// Parses `<kind>-<key:016x>.snap`.
    fn parse_name(name: &str) -> Option<(SnapshotKind, u64)> {
        let stem = name.strip_suffix(".snap")?;
        let (kind, hex) = stem.split_once('-')?;
        Some((
            SnapshotKind::from_name(kind)?,
            u64::from_str_radix(hex, 16).ok()?,
        ))
    }

    /// Cross-checks a decoded header against the file's name; a mismatch
    /// means a snapshot was renamed over another entry's path.
    fn check_name(name: &str, header: SnapshotHeader) -> Option<String> {
        match Self::parse_name(name) {
            Some((kind, key)) if kind == header.kind && key == header.key => None,
            Some((kind, key)) => Some(format!(
                "file name says {}-{key:016x} but header says {}-{:016x}",
                kind.name(),
                header.kind.name(),
                header.key
            )),
            None => Some("unparseable snapshot file name".to_string()),
        }
    }
}

fn io_err(path: &Path, e: &std::io::Error) -> EmsError {
    EmsError::store_io(path.display().to_string(), e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ems_faults::{FaultPlan, PlannedFault};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmp_root(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("ems-store-test-{}-{tag}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn injector_with(faults: Vec<PlannedFault>) -> Arc<FaultInjector> {
        Arc::new(FaultInjector::new(FaultPlan { seed: 0, faults }))
    }

    #[test]
    fn put_get_round_trips() {
        let store = CatalogStore::open(tmp_root("roundtrip")).unwrap();
        store.put(SnapshotKind::Graph, 7, 1, b"abc").unwrap();
        assert_eq!(
            store.get(SnapshotKind::Graph, 7, 1).unwrap(),
            Some(b"abc".to_vec())
        );
        let stats = store.stats();
        assert_eq!(stats.writes, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 0);
    }

    #[test]
    fn missing_entry_is_a_miss() {
        let store = CatalogStore::open(tmp_root("miss")).unwrap();
        assert_eq!(store.get(SnapshotKind::Log, 1, 1).unwrap(), None);
        assert_eq!(store.stats().misses, 1);
    }

    #[test]
    fn put_overwrites_atomically() {
        let store = CatalogStore::open(tmp_root("overwrite")).unwrap();
        store.put(SnapshotKind::Labels, 3, 1, b"old").unwrap();
        store.put(SnapshotKind::Labels, 3, 1, b"new").unwrap();
        assert_eq!(
            store.get(SnapshotKind::Labels, 3, 1).unwrap(),
            Some(b"new".to_vec())
        );
    }

    #[test]
    fn version_mismatch_quarantines() {
        let root = tmp_root("version");
        let store = CatalogStore::open(&root).unwrap();
        store.put(SnapshotKind::Graph, 9, 1, b"abc").unwrap();
        let err = store.get(SnapshotKind::Graph, 9, 2).unwrap_err();
        assert!(matches!(err, EmsError::StoreCorrupt { .. }), "{err}");
        assert_eq!(err.exit_code(), 10);
        assert_eq!(store.stats().quarantined, 1);
        // The entry is gone from objects/ and parked in quarantine/.
        assert_eq!(store.get(SnapshotKind::Graph, 9, 2).unwrap(), None);
        let q = root.join("quarantine").join("graph-0000000000000009.snap");
        assert!(q.exists());
    }

    #[test]
    fn flipped_byte_quarantines_and_rebuild_recovers() {
        let root = tmp_root("flip");
        let store = CatalogStore::open(&root).unwrap();
        store
            .put(SnapshotKind::Substrate, 5, 1, b"payload")
            .unwrap();
        let path = root.join("objects").join("substrate-0000000000000005.snap");
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();

        let err = store.get(SnapshotKind::Substrate, 5, 1).unwrap_err();
        assert!(matches!(err, EmsError::StoreCorrupt { .. }), "{err}");
        // Rebuild-and-re-put restores service.
        store
            .put(SnapshotKind::Substrate, 5, 1, b"payload")
            .unwrap();
        assert_eq!(
            store.get(SnapshotKind::Substrate, 5, 1).unwrap(),
            Some(b"payload".to_vec())
        );
    }

    #[test]
    fn truncation_quarantines() {
        let root = tmp_root("trunc");
        let store = CatalogStore::open(&root).unwrap();
        store.put(SnapshotKind::Log, 11, 1, b"0123456789").unwrap();
        let path = root.join("objects").join("log-000000000000000b.snap");
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        let err = store.get(SnapshotKind::Log, 11, 1).unwrap_err();
        assert!(matches!(err, EmsError::StoreCorrupt { .. }), "{err}");
    }

    #[test]
    fn renamed_entry_is_detected_by_key_mismatch() {
        let root = tmp_root("rename");
        let store = CatalogStore::open(&root).unwrap();
        store.put(SnapshotKind::Graph, 1, 1, b"one").unwrap();
        let objects = root.join("objects");
        fs::rename(
            objects.join("graph-0000000000000001.snap"),
            objects.join("graph-0000000000000002.snap"),
        )
        .unwrap();
        let err = store.get(SnapshotKind::Graph, 2, 1).unwrap_err();
        assert!(err.to_string().contains("key mismatch"), "{err}");
    }

    #[test]
    fn torn_write_leaves_old_snapshot_intact() {
        let root = tmp_root("torn");
        let inj = injector_with(vec![PlannedFault {
            site: FaultSite::StoreWrite,
            // op 1: the second write attempt (the overwrite) tears.
            op: 1,
            kind: FaultKind::TornWrite { keep_permille: 400 },
        }]);
        let store = CatalogStore::open(&root).unwrap().with_injector(inj);
        store.put(SnapshotKind::Graph, 4, 1, b"committed").unwrap();
        let err = store.put(SnapshotKind::Graph, 4, 1, b"torn!").unwrap_err();
        assert!(matches!(err, EmsError::StoreIo { .. }), "{err}");
        assert_eq!(err.exit_code(), 11);
        // The committed snapshot still reads back clean.
        assert_eq!(
            store.get(SnapshotKind::Graph, 4, 1).unwrap(),
            Some(b"committed".to_vec())
        );
        // The torn temp residue exists until gc reclaims it.
        let gc = store.gc().unwrap();
        assert_eq!(gc.removed_tmp, 1);
    }

    #[test]
    fn transient_write_fault_is_retried_to_success() {
        let inj = injector_with(vec![PlannedFault {
            site: FaultSite::StoreWrite,
            op: 0,
            kind: FaultKind::TransientIo,
        }]);
        let store = CatalogStore::open(tmp_root("transient-w"))
            .unwrap()
            .with_injector(inj);
        store.put(SnapshotKind::Labels, 8, 1, b"ok").unwrap();
        let stats = store.stats();
        assert_eq!(stats.writes, 1);
        assert_eq!(stats.write_failures, 0);
        assert_eq!(stats.retries, 1);
        assert!(stats.backoff_us > 0);
    }

    #[test]
    fn transient_read_fault_is_retried_to_success() {
        let inj = injector_with(vec![PlannedFault {
            site: FaultSite::StoreRead,
            op: 0,
            kind: FaultKind::TransientIo,
        }]);
        let store = CatalogStore::open(tmp_root("transient-r"))
            .unwrap()
            .with_injector(inj);
        store.put(SnapshotKind::Log, 2, 1, b"data").unwrap();
        assert_eq!(
            store.get(SnapshotKind::Log, 2, 1).unwrap(),
            Some(b"data".to_vec())
        );
        assert_eq!(store.stats().retries, 1);
    }

    #[test]
    fn no_space_write_fails_terminally() {
        let inj = injector_with(vec![PlannedFault {
            site: FaultSite::StoreFsync,
            op: 0,
            kind: FaultKind::NoSpace,
        }]);
        let store = CatalogStore::open(tmp_root("nospace"))
            .unwrap()
            .with_injector(inj);
        let err = store.put(SnapshotKind::Graph, 1, 1, b"x").unwrap_err();
        assert!(matches!(err, EmsError::StoreIo { .. }), "{err}");
        let stats = store.stats();
        assert_eq!(stats.write_failures, 1);
        assert_eq!(stats.retries, 0, "NoSpace must not be retried");
    }

    #[test]
    fn short_read_degrades_to_quarantine_and_rebuild() {
        let inj = injector_with(vec![PlannedFault {
            site: FaultSite::StoreRead,
            op: 0,
            kind: FaultKind::ShortRead { keep_permille: 500 },
        }]);
        let store = CatalogStore::open(tmp_root("shortread"))
            .unwrap()
            .with_injector(inj);
        store
            .put(SnapshotKind::Substrate, 6, 1, b"0123456789")
            .unwrap();
        let err = store.get(SnapshotKind::Substrate, 6, 1).unwrap_err();
        assert!(matches!(err, EmsError::StoreCorrupt { .. }), "{err}");
        // Rebuild path: re-put then read clean (the fault was one-shot).
        store
            .put(SnapshotKind::Substrate, 6, 1, b"0123456789")
            .unwrap();
        assert_eq!(
            store.get(SnapshotKind::Substrate, 6, 1).unwrap(),
            Some(b"0123456789".to_vec())
        );
    }

    #[test]
    fn list_and_verify_report_statuses() {
        let root = tmp_root("verify");
        let store = CatalogStore::open(&root).unwrap();
        store.put(SnapshotKind::Graph, 1, 1, b"fine").unwrap();
        store.put(SnapshotKind::Log, 2, 1, b"also fine").unwrap();
        // Corrupt the log entry in place.
        let path = root.join("objects").join("log-0000000000000002.snap");
        let mut bytes = fs::read(&path).unwrap();
        bytes[0] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();

        let entries = store.list().unwrap();
        assert_eq!(entries.len(), 2);
        let report = store.verify().unwrap();
        assert_eq!(report.ok, 1);
        assert_eq!(report.corrupt.len(), 1);
        assert_eq!(report.corrupt[0].0, "log-0000000000000002.snap");
        // verify is read-only: the corrupt entry is still in objects/.
        assert!(path.exists());
    }

    #[test]
    fn gc_reclaims_quarantine() {
        let root = tmp_root("gc");
        let store = CatalogStore::open(&root).unwrap();
        store.put(SnapshotKind::Graph, 1, 1, b"x").unwrap();
        let err = store.get(SnapshotKind::Graph, 1, 9).unwrap_err();
        assert!(matches!(err, EmsError::StoreCorrupt { .. }));
        let gc = store.gc().unwrap();
        assert_eq!(gc.removed_quarantined, 1);
        assert_eq!(store.gc().unwrap(), GcReport::default());
    }

    #[test]
    fn reopen_preserves_entries() {
        let root = tmp_root("reopen");
        {
            let store = CatalogStore::open(&root).unwrap();
            store.put(SnapshotKind::Graph, 1, 1, b"persisted").unwrap();
        }
        let store = CatalogStore::open(&root).unwrap();
        assert_eq!(
            store.get(SnapshotKind::Graph, 1, 1).unwrap(),
            Some(b"persisted".to_vec())
        );
    }

    #[test]
    fn foreign_marker_is_rejected() {
        let root = tmp_root("marker");
        fs::create_dir_all(&root).unwrap();
        fs::write(root.join("STORE"), "someone-else/9\n").unwrap();
        let err = CatalogStore::open(&root).unwrap_err();
        assert!(matches!(err, EmsError::StoreCorrupt { .. }), "{err}");
    }

    #[test]
    fn recorder_counts_store_traffic() {
        let rec = Arc::new(Recorder::new());
        let store = CatalogStore::open(tmp_root("recorder"))
            .unwrap()
            .with_recorder(Arc::clone(&rec));
        store.put(SnapshotKind::Graph, 1, 1, b"x").unwrap();
        let _ = store.get(SnapshotKind::Graph, 1, 1).unwrap();
        let _ = store.get(SnapshotKind::Graph, 2, 1).unwrap();
        let records = rec.records();
        let names: Vec<&str> = records
            .iter()
            .filter_map(|r| match r {
                ems_obs::Record::Counter { name, .. } => Some(name.as_str()),
                _ => None,
            })
            .collect();
        assert!(names.contains(&"store.write"));
        assert!(names.iter().filter(|n| **n == "store.cache").count() >= 2);
    }
}
