//! Hand-rolled argument parsing for the `ems` binary.

use ems_core::Budget;

/// Usage text printed on parse errors and `--help`.
pub const USAGE: &str = "\
ems — match heterogeneous event logs (SIGMOD'14 EMS reproduction)

USAGE:
  ems match   <log1.xes> <log2.xes> [OPTIONS]  compute correspondences
  ems compare <log1.xes> <log2.xes> [OPTIONS]  run all matchers side by side
  ems stats   <log.xes> [--recover]            print log statistics
  ems dot     <log.xes> [--recover]            dependency graph as Graphviz DOT
  ems synth   [OPTIONS]                        generate a synthetic log pair
  ems convert <in.(xes|mxml)> <out.(xes|mxml)> [--recover]
                                               convert between formats
  ems report  <trace.jsonl>                    render a recorded run trace as a
                                               human-readable report
  ems report  <bench.jsonl> --trajectory       render an ems-bench/1 trajectory
                                               (runs, metric history, regressions)
  ems report  <bench.jsonl> --compare <A> <B>  compare two trajectory runs by
                                               run id, flagging per-metric
                                               regressions past the threshold
  ems catalog <add|list|verify|gc> --store <DIR> [ARGS]
                                               manage a durable snapshot catalog
  ems serve   --store <DIR> [OPTIONS]          serve top-k catalog queries:
                                               JSONL requests on stdin
                                               ({\"log\": PATH, \"k\": N}), one
                                               ranked JSONL response per line
  ems help                                     this text

MATCH OPTIONS:
  --alpha <A>       structural weight in [0,1]; 1 = structure only (default 1)
  --exact-labels    label similarity = strict name equality instead of q-gram
                    cosine (only meaningful with --alpha below 1)
  --c <C>           similarity decay in (0,1) (default 0.8)
  --estimate <I>    estimate after I exact iterations (EMS+es)
  --min-freq <F>    drop dependency edges with frequency < F (default 0)
  --min-score <S>   drop correspondences scoring below S (default 0.05)
  --composites      enable greedy composite-event matching (Algorithm 2)
  --delta <D>       min avg-similarity improvement per merge (default 0.005)
  --csv <FILE>      also write the correspondences as CSV
  --recover         skip malformed log regions instead of aborting;
                    each skipped region is reported as a warning on stderr
  --budget <SPEC>   resource budget per similarity run; on exhaustion the
                    run degrades gracefully to closed-form estimation.
                    SPEC is comma-separated limits: iters=<N>, evals=<N>,
                    ms=<N> (e.g. --budget iters=5,ms=2000)
  --threads <N>     worker threads for the fixpoint iteration; 0 = all
                    available cores (default), 1 = serial. Results are
                    bit-identical for every value
  --sparse-delta <D> δ-thresholded sparse similarity: after the warm-up the
                    kernel walks a CSR of the previous iterate. D=0 is exact
                    (bit-identical, lower memory); D>0 drops pairs provably
                    below D, with error bounded by D/(1-alpha*c)
  --sparse-warmup <N> exact iterations before sparsification engages
                    (default 2; only meaningful with --sparse-delta)
  --trace <FILE>    write a JSONL run trace (per-iteration convergence,
                    phases, events; schema ems-trace/1) — render it with
                    `ems report`
  --metrics <FILE>  write Prometheus-style text metrics
  --store <DIR>     durable snapshot catalog: serve graphs/substrates/labels
                    from checksummed on-disk snapshots when present, persist
                    what gets rebuilt. Corrupt snapshots are quarantined and
                    rebuilt from source — never fatal
  --quiet           print only the correspondence lines

COMPARE OPTIONS:
  --alpha <A>       structural weight (default 1)
  --opq-budget <N>  OPQ search budget in nodes (default 1000000)
  --recover         skip malformed log regions instead of aborting

SYNTH OPTIONS:
  --activities <N>  process size (default 20)      --traces <N>   (default 100)
  --seed <N>        RNG seed (default 42)           --opaque <F>   (default 1.0)
  --dislocate-front <M> / --dislocate-back <M>      --composites <N>
  --out1 <FILE> --out2 <FILE> (default pair1.xes/pair2.xes)
  --truth <FILE>    also write the ground truth as CSV

CATALOG ACTIONS (all take --store <DIR>):
  add <log.xes>     snapshot the log and its dependency graph into the store
                    ([--recover] [--min-freq <F>] as for match); a log whose
                    identical-fingerprint snapshots already exist is skipped
                    (dedup hit, nothing re-encoded)
  list              print every snapshot with its integrity status
  verify            check every snapshot's checksum; exit 10 if any is corrupt
  gc                remove quarantined snapshots and torn temp files

SERVE OPTIONS:
  --k <N>           result count when a query omits \"k\" (default 3)
  --workers <N>     concurrent query workers sharing one session (default 1;
                    rankings are identical at any width)
  --alpha <A> / --c <C> / --min-freq <F> / --exact-labels   as for match
                    (--exact-labels also arms the sketch planner's
                    label-overlap pruning cap)
  --byte-budget <B> pin at most B bytes of reference graphs; least-recently
                    used references spill to the store and reload on demand
  --no-prune        disable sketch pruning: every query runs all exact
                    fixpoints (recall audits; rankings are identical)
  --recover         skip malformed regions when loading query logs
  --metrics <FILE>  write Prometheus-style text metrics at end of input

EXIT CODES:
  0 success          2 usage            3 I/O              4 malformed log
  5 invalid input    6 bad parameters   7 graph error      8 assignment
  9 internal         10 store corruption (quarantined snapshot, failed verify)
  11 store I/O failure (catalog unreadable/unwritable); exit 1 is never used";

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Match two logs.
    Match(MatchArgs),
    /// Run every matcher on two logs.
    Compare(crate::extra::CompareArgs),
    /// Print statistics of one log.
    Stats { path: String, recover: bool },
    /// Print a log's dependency graph as DOT.
    Dot { path: String, recover: bool },
    /// Generate a synthetic heterogeneous log pair.
    Synth(crate::extra::SynthArgs),
    /// Convert between XES and MXML.
    Convert {
        input: String,
        output: String,
        recover: bool,
    },
    /// Render a recorded JSONL trace (or bench trajectory) as a
    /// human-readable report.
    Report(ReportArgs),
    /// Manage a durable snapshot catalog.
    Catalog(CatalogArgs),
    /// Serve top-k catalog queries over stdin/stdout JSONL.
    Serve(ServeArgs),
    /// Print usage.
    Help,
}

/// Options of `ems serve`.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeArgs {
    /// The catalog root directory holding the reference log snapshots.
    pub store: String,
    /// Result count when a query omits `"k"`.
    pub k: usize,
    /// Concurrent query workers sharing one session.
    pub workers: usize,
    pub alpha: f64,
    /// Exact-equality label measure instead of q-gram cosine (only
    /// meaningful with `--alpha` below 1). Also what arms the sketch
    /// planner's label-overlap pruning cap.
    pub exact_labels: bool,
    pub c: f64,
    pub min_freq: f64,
    /// Pin at most this many logical bytes of reference graphs.
    pub byte_budget: Option<u64>,
    /// Sketch pruning (default on; `--no-prune` turns it off).
    pub prune: bool,
    /// Recovery-mode parsing of query logs.
    pub recover: bool,
    /// Prometheus-text metrics written at end of input.
    pub metrics: Option<String>,
}

/// Options of `ems report`.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportArgs {
    /// The JSONL file to render: an `ems-trace/1` run trace, or an
    /// `ems-bench/1` trajectory for `--trajectory`/`--compare`.
    pub path: String,
    pub mode: ReportMode,
}

/// What `ems report` renders.
#[derive(Debug, Clone, PartialEq)]
pub enum ReportMode {
    /// Human-readable run report from an `ems-trace/1` trace.
    Trace,
    /// Bench-trajectory history from an `ems-bench/1` file.
    Trajectory,
    /// Side-by-side comparison of two trajectory runs by run id.
    Compare { a: String, b: String },
}

/// Options of `ems catalog`.
#[derive(Debug, Clone, PartialEq)]
pub struct CatalogArgs {
    /// The catalog root directory (`--store`).
    pub store: String,
    pub action: CatalogAction,
}

/// The `ems catalog` action verbs.
#[derive(Debug, Clone, PartialEq)]
pub enum CatalogAction {
    /// Snapshot a log and its dependency graph into the store.
    Add {
        path: String,
        recover: bool,
        min_freq: f64,
    },
    /// Print every snapshot with its integrity status.
    List,
    /// Check every snapshot's checksum.
    Verify,
    /// Remove quarantined snapshots and torn temp files.
    Gc,
}

/// Options of `ems match`.
#[derive(Debug, Clone, PartialEq)]
pub struct MatchArgs {
    pub log1: String,
    pub log2: String,
    pub alpha: f64,
    /// Exact-equality label measure instead of q-gram cosine (only
    /// meaningful with `--alpha` below 1).
    pub exact_labels: bool,
    pub c: f64,
    pub estimate: Option<usize>,
    pub min_freq: f64,
    pub min_score: f64,
    pub composites: bool,
    pub delta: f64,
    pub csv: Option<String>,
    pub recover: bool,
    pub budget: Option<Budget>,
    pub threads: usize,
    pub sparse_delta: Option<f64>,
    pub sparse_warmup: usize,
    pub trace: Option<String>,
    pub metrics: Option<String>,
    pub store: Option<String>,
    pub quiet: bool,
}

/// Parses `argv` (without the program name).
pub fn parse(argv: &[String]) -> Result<Command, String> {
    let mut it = argv.iter();
    let sub = it.next().map(String::as_str).unwrap_or("help");
    match sub {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "stats" => {
            let path = it.next().ok_or("`ems stats` needs a log path")?.to_owned();
            let recover = recover_flag(it)?;
            Ok(Command::Stats { path, recover })
        }
        "dot" => {
            let path = it.next().ok_or("`ems dot` needs a log path")?.to_owned();
            let recover = recover_flag(it)?;
            Ok(Command::Dot { path, recover })
        }
        "report" => {
            let path = it
                .next()
                .ok_or("`ems report` needs a trace path")?
                .to_owned();
            let rest: Vec<&String> = it.collect();
            let mode = match rest.first().map(|s| s.as_str()) {
                None => ReportMode::Trace,
                Some("--trajectory") => {
                    if let Some(extra) = rest.get(1) {
                        return Err(format!("unexpected argument `{extra}`"));
                    }
                    ReportMode::Trajectory
                }
                Some("--compare") => {
                    let a = rest
                        .get(1)
                        .ok_or("--compare needs two run ids: --compare <A> <B>")?;
                    let b = rest
                        .get(2)
                        .ok_or("--compare needs two run ids: --compare <A> <B>")?;
                    if let Some(extra) = rest.get(3) {
                        return Err(format!("unexpected argument `{extra}`"));
                    }
                    ReportMode::Compare {
                        a: (*a).to_owned(),
                        b: (*b).to_owned(),
                    }
                }
                Some(extra) => return Err(format!("unexpected argument `{extra}`")),
            };
            Ok(Command::Report(ReportArgs { path, mode }))
        }
        "convert" => {
            let input = it
                .next()
                .ok_or("`ems convert` needs input and output")?
                .to_owned();
            let output = it
                .next()
                .ok_or("`ems convert` needs input and output")?
                .to_owned();
            let recover = recover_flag(it)?;
            Ok(Command::Convert {
                input,
                output,
                recover,
            })
        }
        "compare" => {
            let log1 = it
                .next()
                .ok_or("`ems compare` needs two log paths")?
                .to_owned();
            let log2 = it
                .next()
                .ok_or("`ems compare` needs two log paths")?
                .to_owned();
            let mut args = crate::extra::CompareArgs {
                log1,
                log2,
                alpha: 1.0,
                opq_budget: 1_000_000,
                recover: false,
            };
            let rest: Vec<&String> = it.collect();
            let mut i = 0;
            while i < rest.len() {
                let flag = rest[i].as_str();
                let mut value = |name: &str| -> Result<&String, String> {
                    i += 1;
                    rest.get(i)
                        .copied()
                        .ok_or_else(|| format!("{name} needs a value"))
                };
                match flag {
                    "--alpha" => args.alpha = parse_f64(value("--alpha")?, 0.0, 1.0)?,
                    "--opq-budget" => {
                        args.opq_budget = value("--opq-budget")?
                            .parse()
                            .map_err(|_| "--opq-budget needs an integer".to_owned())?
                    }
                    "--recover" => args.recover = true,
                    other => return Err(format!("unknown option `{other}`")),
                }
                i += 1;
            }
            Ok(Command::Compare(args))
        }
        "synth" => {
            let mut args = crate::extra::SynthArgs {
                activities: 20,
                traces: 100,
                seed: 42,
                dislocate_front: 0,
                dislocate_back: 0,
                opaque: 1.0,
                composites: 0,
                out1: "pair1.xes".into(),
                out2: "pair2.xes".into(),
                truth_csv: None,
            };
            let rest: Vec<&String> = it.collect();
            let mut i = 0;
            while i < rest.len() {
                let flag = rest[i].as_str();
                let mut value = |name: &str| -> Result<&String, String> {
                    i += 1;
                    rest.get(i)
                        .copied()
                        .ok_or_else(|| format!("{name} needs a value"))
                };
                let parse_usize = |s: &str, name: &str| -> Result<usize, String> {
                    s.parse().map_err(|_| format!("{name} needs an integer"))
                };
                match flag {
                    "--activities" => {
                        args.activities = parse_usize(value("--activities")?, "--activities")?
                    }
                    "--traces" => args.traces = parse_usize(value("--traces")?, "--traces")?,
                    "--seed" => {
                        args.seed = value("--seed")?
                            .parse()
                            .map_err(|_| "--seed needs an integer".to_owned())?
                    }
                    "--dislocate-front" => {
                        args.dislocate_front =
                            parse_usize(value("--dislocate-front")?, "--dislocate-front")?
                    }
                    "--dislocate-back" => {
                        args.dislocate_back =
                            parse_usize(value("--dislocate-back")?, "--dislocate-back")?
                    }
                    "--opaque" => args.opaque = parse_f64(value("--opaque")?, 0.0, 1.0)?,
                    "--composites" => {
                        args.composites = parse_usize(value("--composites")?, "--composites")?
                    }
                    "--out1" => args.out1 = value("--out1")?.to_owned(),
                    "--out2" => args.out2 = value("--out2")?.to_owned(),
                    "--truth" => args.truth_csv = Some(value("--truth")?.to_owned()),
                    other => return Err(format!("unknown option `{other}`")),
                }
                i += 1;
            }
            if args.activities == 0 {
                return Err("--activities must be at least 1".into());
            }
            Ok(Command::Synth(args))
        }
        "match" => {
            let log1 = it
                .next()
                .ok_or("`ems match` needs two log paths")?
                .to_owned();
            let log2 = it
                .next()
                .ok_or("`ems match` needs two log paths")?
                .to_owned();
            let mut args = MatchArgs {
                log1,
                log2,
                alpha: 1.0,
                exact_labels: false,
                c: 0.8,
                estimate: None,
                min_freq: 0.0,
                min_score: 0.05,
                composites: false,
                delta: 0.005,
                csv: None,
                recover: false,
                budget: None,
                threads: 0,
                sparse_delta: None,
                sparse_warmup: 2,
                trace: None,
                metrics: None,
                store: None,
                quiet: false,
            };
            let rest: Vec<&String> = it.collect();
            let mut i = 0;
            while i < rest.len() {
                let flag = rest[i].as_str();
                let mut value = |name: &str| -> Result<&String, String> {
                    i += 1;
                    rest.get(i)
                        .copied()
                        .ok_or_else(|| format!("{name} needs a value"))
                };
                match flag {
                    "--alpha" => args.alpha = parse_f64(value("--alpha")?, 0.0, 1.0)?,
                    "--exact-labels" => args.exact_labels = true,
                    "--c" => args.c = parse_f64(value("--c")?, 0.0, 1.0)?,
                    "--estimate" => {
                        args.estimate = Some(
                            value("--estimate")?
                                .parse()
                                .map_err(|_| "--estimate needs an integer".to_owned())?,
                        )
                    }
                    "--min-freq" => args.min_freq = parse_f64(value("--min-freq")?, 0.0, 1.0)?,
                    "--min-score" => args.min_score = parse_f64(value("--min-score")?, 0.0, 1.0)?,
                    "--delta" => args.delta = parse_f64(value("--delta")?, 0.0, 1.0)?,
                    "--csv" => args.csv = Some(value("--csv")?.to_owned()),
                    "--composites" => args.composites = true,
                    "--recover" => args.recover = true,
                    "--budget" => args.budget = Some(parse_budget(value("--budget")?)?),
                    "--threads" => {
                        args.threads = value("--threads")?
                            .parse()
                            .map_err(|_| "--threads needs a non-negative integer".to_owned())?
                    }
                    "--sparse-delta" => {
                        let raw = value("--sparse-delta")?;
                        let d: f64 = raw
                            .parse()
                            .map_err(|_| format!("`{raw}` is not a number"))?;
                        if !(d.is_finite() && (0.0..1.0).contains(&d)) {
                            return Err(format!("--sparse-delta must be in [0,1), got `{raw}`"));
                        }
                        args.sparse_delta = Some(d);
                    }
                    "--sparse-warmup" => {
                        args.sparse_warmup = value("--sparse-warmup")?.parse().map_err(|_| {
                            "--sparse-warmup needs a non-negative integer".to_owned()
                        })?
                    }
                    "--trace" => args.trace = Some(value("--trace")?.to_owned()),
                    "--metrics" => args.metrics = Some(value("--metrics")?.to_owned()),
                    "--store" => args.store = Some(value("--store")?.to_owned()),
                    "--quiet" => args.quiet = true,
                    other => return Err(format!("unknown option `{other}`")),
                }
                i += 1;
            }
            Ok(Command::Match(args))
        }
        "catalog" => {
            // The action verb is the first positional, but flags may come
            // anywhere: `catalog --store c list` == `catalog list --store c`.
            let rest: Vec<&String> = it.collect();
            let mut store: Option<String> = None;
            let mut verb: Option<String> = None;
            let mut path: Option<String> = None;
            let mut recover = false;
            let mut min_freq = 0.0;
            let mut i = 0;
            while i < rest.len() {
                let arg = rest[i].as_str();
                let mut value = |name: &str| -> Result<&String, String> {
                    i += 1;
                    rest.get(i)
                        .copied()
                        .ok_or_else(|| format!("{name} needs a value"))
                };
                match arg {
                    "--store" => store = Some(value("--store")?.to_owned()),
                    "--recover" => recover = true,
                    "--min-freq" => min_freq = parse_f64(value("--min-freq")?, 0.0, 1.0)?,
                    flag if flag.starts_with("--") => {
                        return Err(format!("unknown option `{flag}`"))
                    }
                    positional => {
                        if verb.is_none() {
                            verb = Some(positional.to_owned());
                        } else if path.replace(positional.to_owned()).is_some() {
                            return Err(format!("unexpected argument `{positional}`"));
                        }
                    }
                }
                i += 1;
            }
            let verb = verb.ok_or("`ems catalog` needs an action (add, list, verify or gc)")?;
            let store = store.ok_or("`ems catalog` needs --store <DIR>")?;
            let action = match verb.as_str() {
                "add" => CatalogAction::Add {
                    path: path.ok_or("`ems catalog add` needs a log path")?,
                    recover,
                    min_freq,
                },
                "list" | "verify" | "gc" => {
                    if path.is_some() {
                        return Err(format!("`ems catalog {verb}` takes no log path"));
                    }
                    if recover || min_freq != 0.0 {
                        return Err(format!(
                            "--recover/--min-freq only apply to `ems catalog add`, not `{verb}`"
                        ));
                    }
                    match verb.as_str() {
                        "list" => CatalogAction::List,
                        "verify" => CatalogAction::Verify,
                        _ => CatalogAction::Gc,
                    }
                }
                other => {
                    return Err(format!(
                        "unknown catalog action `{other}` (expected add, list, verify or gc)"
                    ))
                }
            };
            Ok(Command::Catalog(CatalogArgs { store, action }))
        }
        "serve" => {
            let mut args = ServeArgs {
                store: String::new(),
                k: 3,
                workers: 1,
                alpha: 1.0,
                exact_labels: false,
                c: 0.8,
                min_freq: 0.0,
                byte_budget: None,
                prune: true,
                recover: false,
                metrics: None,
            };
            let mut store = None;
            let rest: Vec<&String> = it.collect();
            let mut i = 0;
            while i < rest.len() {
                let flag = rest[i].as_str();
                let mut value = |name: &str| -> Result<&String, String> {
                    i += 1;
                    rest.get(i)
                        .copied()
                        .ok_or_else(|| format!("{name} needs a value"))
                };
                match flag {
                    "--store" => store = Some(value("--store")?.to_owned()),
                    "--k" => {
                        args.k = value("--k")?
                            .parse()
                            .map_err(|_| "--k needs an integer".to_owned())?
                    }
                    "--workers" => {
                        args.workers = value("--workers")?
                            .parse()
                            .map_err(|_| "--workers needs an integer".to_owned())?
                    }
                    "--alpha" => args.alpha = parse_f64(value("--alpha")?, 0.0, 1.0)?,
                    "--exact-labels" => args.exact_labels = true,
                    "--c" => args.c = parse_f64(value("--c")?, 0.0, 1.0)?,
                    "--min-freq" => args.min_freq = parse_f64(value("--min-freq")?, 0.0, 1.0)?,
                    "--byte-budget" => {
                        args.byte_budget = Some(
                            value("--byte-budget")?
                                .parse()
                                .map_err(|_| "--byte-budget needs an integer".to_owned())?,
                        )
                    }
                    "--no-prune" => args.prune = false,
                    "--recover" => args.recover = true,
                    "--metrics" => args.metrics = Some(value("--metrics")?.to_owned()),
                    other => return Err(format!("unknown option `{other}`")),
                }
                i += 1;
            }
            args.store = store.ok_or("`ems serve` needs --store <DIR>")?;
            if args.k == 0 {
                return Err("--k must be at least 1".into());
            }
            if args.workers == 0 {
                return Err("--workers must be at least 1".into());
            }
            Ok(Command::Serve(args))
        }
        other => Err(format!("unknown subcommand `{other}`")),
    }
}

/// Parses a `--budget` spec: comma-separated `iters=<N>`, `evals=<N>` and
/// `ms=<N>` limits, each at most once. An empty spec is rejected — an
/// unlimited budget is expressed by omitting the flag.
fn parse_budget(spec: &str) -> Result<Budget, String> {
    let mut budget = Budget::default();
    if spec.trim().is_empty() {
        return Err("--budget needs at least one limit (iters=, evals= or ms=)".into());
    }
    for part in spec.split(',') {
        let (key, raw) = part
            .split_once('=')
            .ok_or_else(|| format!("budget limit `{part}` is not of the form key=value"))?;
        let n: u64 = raw
            .parse()
            .map_err(|_| format!("budget limit `{part}` needs an integer value"))?;
        match key.trim() {
            "iters" => budget.max_iterations = Some(n as usize),
            "evals" => budget.max_formula_evals = Some(n),
            "ms" => budget.wall_clock = Some(std::time::Duration::from_millis(n)),
            other => {
                return Err(format!(
                    "unknown budget limit `{other}` (expected iters, evals or ms)"
                ))
            }
        }
    }
    Ok(budget)
}

/// Consumes an optional trailing `--recover` flag, rejecting anything else.
fn recover_flag<'a>(mut it: impl Iterator<Item = &'a String>) -> Result<bool, String> {
    let mut recover = false;
    for arg in it.by_ref() {
        match arg.as_str() {
            "--recover" => recover = true,
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    Ok(recover)
}

fn parse_f64(s: &str, lo: f64, hi: f64) -> Result<f64, String> {
    let v: f64 = s.parse().map_err(|_| format!("`{s}` is not a number"))?;
    if !(lo..=hi).contains(&v) {
        return Err(format!("`{s}` must be in [{lo}, {hi}]"));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_exact_labels_flag() {
        match parse(&sv(&[
            "match",
            "a.xes",
            "b.xes",
            "--alpha",
            "0.5",
            "--exact-labels",
        ]))
        .unwrap()
        {
            Command::Match(m) => {
                assert!(m.exact_labels);
                assert_eq!(m.alpha, 0.5);
            }
            other => panic!("unexpected command {other:?}"),
        }
        match parse(&sv(&["serve", "--store", "cat", "--exact-labels"])).unwrap() {
            Command::Serve(s) => assert!(s.exact_labels),
            other => panic!("unexpected command {other:?}"),
        }
    }

    #[test]
    fn parses_match_with_options() {
        let cmd = parse(&sv(&[
            "match",
            "a.xes",
            "b.xes",
            "--alpha",
            "0.5",
            "--estimate",
            "5",
            "--composites",
            "--csv",
            "out.csv",
            "--threads",
            "4",
        ]))
        .unwrap();
        match cmd {
            Command::Match(m) => {
                assert_eq!(m.log1, "a.xes");
                assert_eq!(m.alpha, 0.5);
                assert_eq!(m.estimate, Some(5));
                assert!(m.composites);
                assert_eq!(m.csv.as_deref(), Some("out.csv"));
                assert_eq!(m.threads, 4);
            }
            c => panic!("unexpected {c:?}"),
        }
        // Default is 0 (all available cores); bad values are usage errors.
        match parse(&sv(&["match", "a.xes", "b.xes"])).unwrap() {
            Command::Match(m) => assert_eq!(m.threads, 0),
            c => panic!("unexpected {c:?}"),
        }
        assert!(parse(&sv(&["match", "a", "b", "--threads", "-1"])).is_err());
        assert!(parse(&sv(&["match", "a", "b", "--threads"])).is_err());
    }

    #[test]
    fn parses_sparse_options() {
        match parse(&sv(&[
            "match",
            "a.xes",
            "b.xes",
            "--sparse-delta",
            "0.01",
            "--sparse-warmup",
            "3",
        ]))
        .unwrap()
        {
            Command::Match(m) => {
                assert_eq!(m.sparse_delta, Some(0.01));
                assert_eq!(m.sparse_warmup, 3);
            }
            c => panic!("unexpected {c:?}"),
        }
        // δ = 0 is the exact CSR mode; the default leaves sparsity off.
        match parse(&sv(&["match", "a.xes", "b.xes", "--sparse-delta", "0"])).unwrap() {
            Command::Match(m) => {
                assert_eq!(m.sparse_delta, Some(0.0));
                assert_eq!(m.sparse_warmup, 2);
            }
            c => panic!("unexpected {c:?}"),
        }
        match parse(&sv(&["match", "a.xes", "b.xes"])).unwrap() {
            Command::Match(m) => assert_eq!(m.sparse_delta, None),
            c => panic!("unexpected {c:?}"),
        }
        // δ must be a finite number in [0,1).
        assert!(parse(&sv(&["match", "a", "b", "--sparse-delta", "1.0"])).is_err());
        assert!(parse(&sv(&["match", "a", "b", "--sparse-delta", "-0.1"])).is_err());
        assert!(parse(&sv(&["match", "a", "b", "--sparse-delta", "nope"])).is_err());
        assert!(parse(&sv(&["match", "a", "b", "--sparse-delta"])).is_err());
        assert!(parse(&sv(&["match", "a", "b", "--sparse-warmup", "-1"])).is_err());
    }

    #[test]
    fn parses_stats_and_dot_and_help() {
        assert_eq!(
            parse(&sv(&["stats", "x.xes"])).unwrap(),
            Command::Stats {
                path: "x.xes".into(),
                recover: false
            }
        );
        assert_eq!(
            parse(&sv(&["stats", "x.xes", "--recover"])).unwrap(),
            Command::Stats {
                path: "x.xes".into(),
                recover: true
            }
        );
        assert_eq!(
            parse(&sv(&["dot", "x.xes"])).unwrap(),
            Command::Dot {
                path: "x.xes".into(),
                recover: false
            }
        );
        assert_eq!(parse(&sv(&["help"])).unwrap(), Command::Help);
        assert_eq!(parse(&[]).unwrap(), Command::Help);
    }

    #[test]
    fn parses_recover_and_budget() {
        match parse(&sv(&[
            "match",
            "a.xes",
            "b.xes",
            "--recover",
            "--budget",
            "iters=5,evals=1000,ms=2000",
        ]))
        .unwrap()
        {
            Command::Match(m) => {
                assert!(m.recover);
                let b = m.budget.unwrap();
                assert_eq!(b.max_iterations, Some(5));
                assert_eq!(b.max_formula_evals, Some(1000));
                assert_eq!(b.wall_clock, Some(std::time::Duration::from_millis(2000)));
            }
            c => panic!("unexpected {c:?}"),
        }
        match parse(&sv(&["compare", "a.xes", "b.xes", "--recover"])).unwrap() {
            Command::Compare(c) => assert!(c.recover),
            c => panic!("unexpected {c:?}"),
        }
        // Bad specs are usage errors.
        assert!(parse(&sv(&["match", "a", "b", "--budget", ""])).is_err());
        assert!(parse(&sv(&["match", "a", "b", "--budget", "iters"])).is_err());
        assert!(parse(&sv(&["match", "a", "b", "--budget", "iters=x"])).is_err());
        assert!(parse(&sv(&["match", "a", "b", "--budget", "bogus=1"])).is_err());
        assert!(parse(&sv(&["stats", "a.xes", "--bogus"])).is_err());
    }

    #[test]
    fn parses_compare_synth_convert() {
        match parse(&sv(&["compare", "a.xes", "b.xes", "--opq-budget", "5000"])).unwrap() {
            Command::Compare(c) => assert_eq!(c.opq_budget, 5000),
            c => panic!("unexpected {c:?}"),
        }
        match parse(&sv(&["synth", "--activities", "12", "--truth", "t.csv"])).unwrap() {
            Command::Synth(s) => {
                assert_eq!(s.activities, 12);
                assert_eq!(s.truth_csv.as_deref(), Some("t.csv"));
            }
            c => panic!("unexpected {c:?}"),
        }
        assert_eq!(
            parse(&sv(&["convert", "a.mxml", "b.xes"])).unwrap(),
            Command::Convert {
                input: "a.mxml".into(),
                output: "b.xes".into(),
                recover: false
            }
        );
    }

    #[test]
    fn parses_trace_metrics_and_report() {
        match parse(&sv(&[
            "match",
            "a.xes",
            "b.xes",
            "--trace",
            "run.jsonl",
            "--metrics",
            "run.prom",
        ]))
        .unwrap()
        {
            Command::Match(m) => {
                assert_eq!(m.trace.as_deref(), Some("run.jsonl"));
                assert_eq!(m.metrics.as_deref(), Some("run.prom"));
            }
            c => panic!("unexpected {c:?}"),
        }
        assert_eq!(
            parse(&sv(&["report", "run.jsonl"])).unwrap(),
            Command::Report(ReportArgs {
                path: "run.jsonl".into(),
                mode: ReportMode::Trace,
            })
        );
        assert_eq!(
            parse(&sv(&["report", "bench.jsonl", "--trajectory"])).unwrap(),
            Command::Report(ReportArgs {
                path: "bench.jsonl".into(),
                mode: ReportMode::Trajectory,
            })
        );
        assert_eq!(
            parse(&sv(&["report", "bench.jsonl", "--compare", "pr6", "pr7"])).unwrap(),
            Command::Report(ReportArgs {
                path: "bench.jsonl".into(),
                mode: ReportMode::Compare {
                    a: "pr6".into(),
                    b: "pr7".into(),
                },
            })
        );
        assert!(parse(&sv(&["report", "bench.jsonl", "--compare", "pr6"])).is_err());
        assert!(parse(&sv(&["report", "bench.jsonl", "--trajectory", "x"])).is_err());
        match parse(&sv(&["match", "a.xes", "b.xes", "--store", "cat"])).unwrap() {
            Command::Match(m) => assert_eq!(m.store.as_deref(), Some("cat")),
            c => panic!("unexpected {c:?}"),
        }
        assert!(parse(&sv(&["report"])).is_err());
        assert!(parse(&sv(&["report", "a", "b"])).is_err());
        assert!(parse(&sv(&["match", "a", "b", "--trace"])).is_err());
    }

    #[test]
    fn parses_catalog_actions() {
        assert_eq!(
            parse(&sv(&[
                "catalog",
                "add",
                "a.xes",
                "--store",
                "cat",
                "--recover",
                "--min-freq",
                "0.2",
            ]))
            .unwrap(),
            Command::Catalog(CatalogArgs {
                store: "cat".into(),
                action: CatalogAction::Add {
                    path: "a.xes".into(),
                    recover: true,
                    min_freq: 0.2,
                },
            })
        );
        // Flag order does not matter.
        assert_eq!(
            parse(&sv(&["catalog", "add", "--store", "cat", "a.xes"])).unwrap(),
            Command::Catalog(CatalogArgs {
                store: "cat".into(),
                action: CatalogAction::Add {
                    path: "a.xes".into(),
                    recover: false,
                    min_freq: 0.0,
                },
            })
        );
        for (verb, action) in [
            ("list", CatalogAction::List),
            ("verify", CatalogAction::Verify),
            ("gc", CatalogAction::Gc),
        ] {
            assert_eq!(
                parse(&sv(&["catalog", verb, "--store", "cat"])).unwrap(),
                Command::Catalog(CatalogArgs {
                    store: "cat".into(),
                    action: action.clone(),
                })
            );
            // The verb may also follow the flag.
            assert_eq!(
                parse(&sv(&["catalog", "--store", "cat", verb])).unwrap(),
                Command::Catalog(CatalogArgs {
                    store: "cat".into(),
                    action,
                })
            );
        }
        // Usage errors: missing store/action/path, stray args.
        assert!(parse(&sv(&["catalog"])).is_err());
        assert!(parse(&sv(&["catalog", "add", "a.xes"])).is_err());
        assert!(parse(&sv(&["catalog", "add", "--store", "cat"])).is_err());
        assert!(parse(&sv(&["catalog", "list", "a.xes", "--store", "c"])).is_err());
        assert!(parse(&sv(&["catalog", "list", "--store", "c", "--recover"])).is_err());
        assert!(parse(&sv(&["catalog", "frob", "--store", "c"])).is_err());
        assert!(parse(&sv(&["catalog", "add", "a", "b", "--store", "c"])).is_err());
    }

    #[test]
    fn parses_serve() {
        assert_eq!(
            parse(&sv(&["serve", "--store", "cat"])).unwrap(),
            Command::Serve(ServeArgs {
                store: "cat".into(),
                k: 3,
                workers: 1,
                alpha: 1.0,
                exact_labels: false,
                c: 0.8,
                min_freq: 0.0,
                byte_budget: None,
                prune: true,
                recover: false,
                metrics: None,
            })
        );
        match parse(&sv(&[
            "serve",
            "--store",
            "cat",
            "--k",
            "5",
            "--workers",
            "4",
            "--alpha",
            "0.7",
            "--byte-budget",
            "1048576",
            "--no-prune",
            "--recover",
            "--metrics",
            "serve.prom",
        ]))
        .unwrap()
        {
            Command::Serve(s) => {
                assert_eq!(s.k, 5);
                assert_eq!(s.workers, 4);
                assert_eq!(s.alpha, 0.7);
                assert_eq!(s.byte_budget, Some(1_048_576));
                assert!(!s.prune);
                assert!(s.recover);
                assert_eq!(s.metrics.as_deref(), Some("serve.prom"));
            }
            c => panic!("unexpected {c:?}"),
        }
        // Usage errors: missing store, zero k/workers, unknown flags.
        assert!(parse(&sv(&["serve"])).is_err());
        assert!(parse(&sv(&["serve", "--store", "c", "--k", "0"])).is_err());
        assert!(parse(&sv(&["serve", "--store", "c", "--workers", "0"])).is_err());
        assert!(parse(&sv(&["serve", "--store", "c", "--bogus"])).is_err());
        assert!(parse(&sv(&["serve", "--store", "c", "--k"])).is_err());
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&sv(&["match", "only-one.xes"])).is_err());
        assert!(parse(&sv(&["match", "a", "b", "--alpha", "2"])).is_err());
        assert!(parse(&sv(&["match", "a", "b", "--bogus"])).is_err());
        assert!(parse(&sv(&["frobnicate"])).is_err());
        assert!(parse(&sv(&["stats"])).is_err());
        assert!(parse(&sv(&["stats", "a", "b"])).is_err());
        assert!(parse(&sv(&["match", "a", "b", "--estimate"])).is_err());
    }
}
