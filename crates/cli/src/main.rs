//! `ems` — match two heterogeneous XES event logs from the command line.
//!
//! ```text
//! ems match  <log1.xes> <log2.xes> [--alpha A] [--c C] [--estimate I]
//!            [--min-freq F] [--min-score S] [--composites] [--delta D]
//!            [--csv out.csv] [--quiet]
//! ems stats  <log.xes>
//! ems dot    <log.xes>
//! ```

use std::process::ExitCode;

mod args;
mod commands;
mod extra;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match args::parse(&argv) {
        Ok(cmd) => match commands::run(cmd) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Err(e) => {
            eprintln!("error: {e}\n");
            eprintln!("{}", args::USAGE);
            ExitCode::from(2)
        }
    }
}
