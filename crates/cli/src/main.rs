#![forbid(unsafe_code)]
//! `ems` — match two heterogeneous XES event logs from the command line.
//!
//! ```text
//! ems match  <log1.xes> <log2.xes> [--alpha A] [--c C] [--estimate I]
//!            [--min-freq F] [--min-score S] [--composites] [--delta D]
//!            [--csv out.csv] [--quiet]
//! ems stats  <log.xes>
//! ems dot    <log.xes>
//! ```

use ems_error::EmsError;
use std::process::ExitCode;

mod args;
mod commands;
mod extra;
mod serve;

/// Every failure path exits through here: one line on stderr, and the
/// [`EmsError`] class's stable nonzero exit code (usage errors also reprint
/// the usage text). Exit code 0 is success; 1 is deliberately unused.
fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let result = match args::parse(&argv) {
        Ok(cmd) => commands::run(cmd),
        Err(message) => Err(EmsError::usage(message)),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("ems: {e}");
            if matches!(e, EmsError::Usage { .. }) {
                eprintln!("\n{}", args::USAGE);
            }
            ExitCode::from(e.exit_code())
        }
    }
}
