//! Command implementations for the `ems` binary.

use crate::args::{CatalogAction, CatalogArgs, Command, MatchArgs, ReportArgs, ReportMode, USAGE};
use ems_assignment::max_total_assignment;
use ems_core::composite::{
    discover_candidates, CandidateConfig, CompositeConfig, CompositeMatcher,
};
use ems_core::{persist, Ems, EmsParams, LabelMeasure, MatchSession, SessionOptions};
use ems_depgraph::{filter_min_frequency, to_dot, DependencyGraph};
use ems_error::EmsError;
use ems_eval::Table;
use ems_events::{fingerprint_log, EventId, EventLog, LogStats, SymbolTable};
use ems_obs::Recorder;
use ems_store::{CatalogStore, EntryStatus, SnapshotKind};
use ems_xes::ParseMode;
use std::sync::Arc;

/// Executes a parsed command.
pub fn run(cmd: Command) -> Result<(), EmsError> {
    match cmd {
        Command::Help => {
            println!("{USAGE}");
            Ok(())
        }
        Command::Stats { path, recover } => stats(&path, recover),
        Command::Dot { path, recover } => dot(&path, recover),
        Command::Match(args) => do_match(&args),
        Command::Compare(args) => {
            let recover = args.recover;
            crate::extra::compare(&args, |p| load(p, recover))
        }
        Command::Synth(args) => crate::extra::synth(&args),
        Command::Convert {
            input,
            output,
            recover,
        } => crate::extra::convert(&input, &output, recover),
        Command::Report(args) => report(&args),
        Command::Catalog(args) => catalog(&args),
        Command::Serve(args) => crate::serve::serve(&args),
    }
}

/// Implements `ems catalog add|list|verify|gc`.
fn catalog(args: &CatalogArgs) -> Result<(), EmsError> {
    let store = CatalogStore::open(&args.store)?;
    match &args.action {
        CatalogAction::Add {
            path,
            recover,
            min_freq,
        } => {
            let recorder = Arc::new(Recorder::new());
            let store = store.with_recorder(Arc::clone(&recorder));
            catalog_add(&store, &recorder, path, *recover, *min_freq).map(|_| ())
        }
        CatalogAction::List => {
            let entries = store.list()?;
            if entries.is_empty() {
                println!("catalog {} is empty", args.store);
                return Ok(());
            }
            for e in &entries {
                let kind = e.kind.map_or("?", |k| k.name());
                let key = e.key.map_or("-".to_owned(), |k| format!("{k:016x}"));
                let status = match &e.status {
                    EntryStatus::Ok => "ok".to_owned(),
                    EntryStatus::Corrupt(reason) => format!("CORRUPT: {reason}"),
                };
                println!(
                    "{:<12} {}  {:>8} B  {}  {}",
                    kind, key, e.bytes, e.file, status
                );
            }
            Ok(())
        }
        CatalogAction::Verify => {
            let report = store.verify()?;
            println!(
                "verified {}: {} ok, {} corrupt",
                args.store,
                report.ok,
                report.corrupt.len()
            );
            for (file, reason) in &report.corrupt {
                println!("  CORRUPT {file}: {reason}");
            }
            if report.corrupt.is_empty() {
                Ok(())
            } else {
                Err(EmsError::store_corrupt(
                    &args.store,
                    format!("{} corrupt snapshot(s)", report.corrupt.len()),
                ))
            }
        }
        CatalogAction::Gc => {
            let report = store.gc()?;
            println!(
                "gc {}: removed {} torn temp file(s), {} quarantined snapshot(s)",
                args.store, report.removed_tmp, report.removed_quarantined
            );
            Ok(())
        }
    }
}

/// `ems catalog add` body: snapshots the log and its dependency graph —
/// unless both snapshots for this exact content fingerprint (and graph
/// parameterization) are already committed and whole, in which case
/// nothing is re-encoded and the `store.dedup_hit` counter fires.
/// Returns whether the add was a dedup hit. A corrupt existing snapshot
/// is not a hit: the failed probe read quarantines it and the re-put
/// repairs the store.
fn catalog_add(
    store: &CatalogStore,
    recorder: &Recorder,
    path: &str,
    recover: bool,
    min_freq: f64,
) -> Result<bool, EmsError> {
    let log = load(path, recover)?;
    let fp = fingerprint_log(&log);
    let log_key = persist::log_store_key(fp);
    let graph_key = persist::graph_store_key(fp, min_freq);
    let log_present = matches!(
        store.get(SnapshotKind::Log, log_key, persist::LOG_PAYLOAD_VERSION),
        Ok(Some(_))
    );
    let graph_present = log_present
        && matches!(
            store.get(
                SnapshotKind::Graph,
                graph_key,
                persist::GRAPH_PAYLOAD_VERSION
            ),
            Ok(Some(_))
        );
    if log_present && graph_present {
        recorder.counter_add("store.dedup_hit", ems_obs::labels(&[]), 1);
        println!(
            "dedup: {path} (log {fp:016x}) already snapshotted at min-freq \
             {min_freq} — skipped re-encode"
        );
        return Ok(true);
    }
    store.put(
        SnapshotKind::Log,
        log_key,
        persist::LOG_PAYLOAD_VERSION,
        &persist::encode_log(&log),
    )?;
    let mut table = SymbolTable::new();
    let built = DependencyGraph::from_log_in(&log, &mut table);
    let (graph, removed) = if min_freq > 0.0 {
        filter_min_frequency(&built, min_freq)
    } else {
        (built, 0)
    };
    store.put(
        SnapshotKind::Graph,
        graph_key,
        persist::GRAPH_PAYLOAD_VERSION,
        &persist::encode_graph(&graph),
    )?;
    println!(
        "added {}: log {:016x} ({} traces, {} events), graph {} nodes, \
         {} edges ({} filtered)",
        path,
        fp,
        log.num_traces(),
        log.alphabet_size(),
        graph.num_real(),
        graph.real_edges().len(),
        removed
    );
    Ok(false)
}

/// Renders `ems report`: a human-readable run report from a `--trace`
/// JSONL file, or — with `--trajectory`/`--compare` — views over an
/// `ems-bench/1` trajectory. A truncated or malformed input is a typed
/// [`EmsError::Parse`] (exit 4) carrying the offending line, never a panic
/// and never a usage error (the invocation itself was well-formed).
fn report(args: &ReportArgs) -> Result<(), EmsError> {
    let path = args.path.as_str();
    let text = std::fs::read_to_string(path).map_err(|e| EmsError::io(path, e.to_string()))?;
    match &args.mode {
        ReportMode::Trace => {
            let records = ems_obs::jsonl::parse_records(&text).map_err(|e| EmsError::Parse {
                offset: Some(e.line),
                message: format!("{path}: not a valid ems trace: {e}"),
            })?;
            print!("{}", ems_obs::report::render(&records));
        }
        ReportMode::Trajectory => {
            let rows = parse_trajectory(path, &text)?;
            print!("{}", ems_obs::trajectory::render_trajectory(&rows));
        }
        ReportMode::Compare { a, b } => {
            let rows = parse_trajectory(path, &text)?;
            let find = |id: &str| {
                rows.iter()
                    .rev()
                    .find(|r| r.run_id == id)
                    .ok_or_else(|| EmsError::usage(format!("run id `{id}` not found in {path}")))
            };
            let (row_a, row_b) = (find(a)?, find(b)?);
            // Two rows with disjoint metric sets would render an empty
            // table — make that a typed error instead of silent success,
            // so scripts gating on the comparison notice the mismatch.
            if !row_a.metrics.keys().any(|k| row_b.metrics.contains_key(k)) {
                return Err(EmsError::Parse {
                    offset: None,
                    message: format!(
                        "{path}: no comparable metrics — runs `{a}` and `{b}` \
                         share no metric names"
                    ),
                });
            }
            print!("{}", ems_obs::trajectory::render_compare(row_a, row_b));
        }
    }
    Ok(())
}

/// Parses an `ems-bench/1` trajectory file with a typed parse error.
fn parse_trajectory(
    path: &str,
    text: &str,
) -> Result<Vec<ems_obs::trajectory::TrajectoryRow>, EmsError> {
    ems_obs::trajectory::parse(text).map_err(|e| EmsError::Parse {
        offset: Some(e.line),
        message: format!("{path}: not a valid ems-bench trajectory: {e}"),
    })
}

/// Attaches the file path to errors whose context would otherwise be lost
/// (a parse error alone does not say *which* of two logs is broken).
pub(crate) fn with_path(e: EmsError, path: &str) -> EmsError {
    match e {
        EmsError::Parse { offset, message } => EmsError::Parse {
            offset,
            message: format!("{path}: {message}"),
        },
        EmsError::Io { path: p, message } if p.is_empty() => EmsError::Io {
            path: path.to_owned(),
            message,
        },
        other => other,
    }
}

/// Loads an event log, auto-detecting XES vs MXML. In recovery mode,
/// malformed regions are skipped and reported one-per-line on stderr.
pub(crate) fn load(path: &str, recover: bool) -> Result<EventLog, EmsError> {
    load_traced(path, recover, None)
}

/// Like [`load`], but additionally tallies ingestion warning counts into a
/// [`Recorder`] (as `xes_warnings{kind,log}` counters) when one is given.
fn load_traced(
    path: &str,
    recover: bool,
    trace: Option<(&Recorder, &str)>,
) -> Result<EventLog, EmsError> {
    let mode = if recover {
        ParseMode::Recovery
    } else {
        ParseMode::Strict
    };
    let text = std::fs::read_to_string(path).map_err(|e| EmsError::io(path, e.to_string()))?;
    let recovered =
        ems_xes::load_event_log_str(&text, mode).map_err(|e| with_path(e.into(), path))?;
    for w in &recovered.warnings {
        eprintln!("ems: warning: {path}: {w}");
    }
    if let Some((recorder, label)) = trace {
        ems_xes::record_ingestion(recorder, label, &recovered);
    }
    let mut log = recovered.log;
    if log.name().is_none() {
        log.set_name(path);
    }
    Ok(log)
}

fn stats(path: &str, recover: bool) -> Result<(), EmsError> {
    let log = load(path, recover)?;
    println!("{}", LogStats::of(&log));
    let g = DependencyGraph::from_log(&log);
    println!(
        "dependency graph: {} nodes, {} edges (avg degree {:.2})",
        g.num_real(),
        g.real_edges().len(),
        g.avg_degree()
    );
    let mut events: Vec<(String, f64)> = (0..log.alphabet_size())
        .map(|i| {
            let id = EventId::from_index(i);
            (log.name_of(id).to_owned(), log.event_frequency(id))
        })
        .collect();
    events.sort_by(|a, b| b.1.total_cmp(&a.1));
    for (name, f) in events {
        println!("  {f:.3}  {name}");
    }
    Ok(())
}

fn dot(path: &str, recover: bool) -> Result<(), EmsError> {
    let log = load(path, recover)?;
    let g = DependencyGraph::from_log(&log);
    print!("{}", to_dot(&g, log.name().unwrap_or("event log")));
    Ok(())
}

fn do_match(args: &MatchArgs) -> Result<(), EmsError> {
    if args.budget.is_some() && args.composites {
        return Err(EmsError::usage(
            "--budget is not supported together with --composites",
        ));
    }
    let recorder =
        (args.trace.is_some() || args.metrics.is_some()).then(|| Arc::new(Recorder::new()));
    let rec = recorder.as_deref();
    let l1 = load_traced(&args.log1, args.recover, rec.map(|r| (r, "log1")))?;
    let l2 = load_traced(&args.log2, args.recover, rec.map(|r| (r, "log2")))?;
    let mut params = EmsParams {
        alpha: args.alpha,
        label_measure: if args.exact_labels {
            LabelMeasure::ExactName
        } else {
            LabelMeasure::QgramCosine
        },
        c: args.c,
        threads: args.threads,
        sparse_delta: args.sparse_delta,
        sparse_warmup: args.sparse_warmup,
        ..EmsParams::default()
    };
    if let Some(i) = args.estimate {
        params.estimate_after = Some(i);
    }

    let (log1, log2, sim) = if args.composites {
        let ems = Ems::try_new(params)?;
        let config = CompositeConfig {
            delta: args.delta,
            ..CompositeConfig::default()
        };
        let cands1 = discover_candidates(&l1, &CandidateConfig::default());
        let cands2 = discover_candidates(&l2, &CandidateConfig::default());
        let outcome =
            CompositeMatcher::new(ems, config).match_logs_recorded(&l1, &l2, &cands1, &cands2, rec);
        if !args.quiet {
            for m in &outcome.merges {
                println!(
                    "# merged composite in log {}: {}",
                    m.side,
                    m.candidate.merged_name()
                );
            }
        }
        (outcome.log1, outcome.log2, outcome.similarity)
    } else {
        // The staged pipeline: ingest → model → substrate → solve →
        // aggregate. One recorder serves both roles here — session stage
        // telemetry (graph gauges, cache counters) and the engine trace
        // land in the same output files.
        let mut session = MatchSession::try_new(params)?.with_min_frequency(args.min_freq);
        if let Some(r) = &recorder {
            session = session.with_recorder(Arc::clone(r));
        }
        if let Some(dir) = &args.store {
            let mut store = CatalogStore::open(dir)?;
            if let Some(r) = &recorder {
                store = store.with_recorder(Arc::clone(r));
            }
            session = session.with_store(Arc::new(store));
        }
        let h1 = session.ingest(l1.clone());
        let h2 = session.ingest(l2.clone());
        let options = SessionOptions {
            budget: args.budget.clone().unwrap_or_default(),
            recorder: recorder.clone(),
            ..SessionOptions::default()
        };
        let out = session.match_pair_opts(h1, h2, &options)?;
        if let Some(c) = out.stats.thread_clamp {
            eprintln!(
                "ems: note: --threads {} exceeds the host's {} available \
                 cores; the pool ran {} wide (results are identical at any \
                 width)",
                c.requested, c.clamped_to, c.clamped_to
            );
        }
        if out.stats.degraded {
            eprintln!(
                "ems: note: budget exhausted after {} iterations; {} pairs \
                 finished by closed-form estimation (degraded result)",
                out.stats.iterations, out.stats.estimated_pairs
            );
        }
        (l1, l2, out.similarity)
    };

    let cs = max_total_assignment(sim.rows(), sim.cols(), |i, j| sim.get(i, j), args.min_score);
    let mut table = Table::new(
        format!(
            "correspondences: {} <-> {}",
            log1.name().unwrap_or("log1"),
            log2.name().unwrap_or("log2")
        ),
        vec!["event in log 1", "event in log 2", "similarity"],
    );
    for c in &cs {
        let left = log1.name_of(EventId::from_index(c.left));
        let right = log2.name_of(EventId::from_index(c.right));
        if args.quiet {
            println!("{left}\t{right}\t{:.4}", c.score);
        } else {
            table.row(vec![
                left.to_owned(),
                right.to_owned(),
                format!("{:.4}", c.score),
            ]);
        }
    }
    if !args.quiet {
        print!("{}", table.to_text());
        println!("{} correspondences", cs.len());
    }
    if let Some(csv) = &args.csv {
        table
            .write_csv(csv)
            .map_err(|e| EmsError::io(csv, e.to_string()))?;
    }
    if let Some(r) = &recorder {
        let records = r.records();
        if let Some(path) = &args.trace {
            std::fs::write(path, ems_obs::jsonl::write(&records))
                .map_err(|e| EmsError::io(path, e.to_string()))?;
        }
        if let Some(path) = &args.metrics {
            std::fs::write(path, ems_obs::prom::write(&records))
                .map_err(|e| EmsError::io(path, e.to_string()))?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ems_xes::{from_event_log, write_file};

    fn write_sample_logs(dir: &std::path::Path) -> (String, String) {
        let mut l1 = EventLog::with_name("orders-A");
        for _ in 0..2 {
            l1.push_trace(["Paid by Cash", "Check", "Validate", "Ship"]);
        }
        for _ in 0..3 {
            l1.push_trace(["Paid by Card", "Check", "Validate", "Ship"]);
        }
        let mut l2 = EventLog::with_name("orders-B");
        for _ in 0..2 {
            l2.push_trace(["Accept", "e-cash", "Check+Validate", "e-ship"]);
        }
        for _ in 0..3 {
            l2.push_trace(["Accept", "e-card", "Check+Validate", "e-ship"]);
        }
        let p1 = dir.join("l1.xes");
        let p2 = dir.join("l2.xes");
        write_file(&from_event_log(&l1), &p1).unwrap();
        write_file(&from_event_log(&l2), &p2).unwrap();
        (
            p1.to_string_lossy().into_owned(),
            p2.to_string_lossy().into_owned(),
        )
    }

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("ems-cli-test-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn match_command_runs_end_to_end() {
        let dir = tmpdir("match");
        let (p1, p2) = write_sample_logs(&dir);
        let args = MatchArgs {
            log1: p1,
            log2: p2,
            alpha: 1.0,
            exact_labels: false,
            c: 0.8,
            estimate: None,
            min_freq: 0.0,
            min_score: 0.0,
            composites: false,
            delta: 0.005,
            csv: Some(dir.join("out.csv").to_string_lossy().into_owned()),
            recover: false,
            budget: None,
            threads: 0,
            sparse_delta: None,
            sparse_warmup: 2,
            quiet: true,
            trace: None,
            metrics: None,
            store: None,
        };
        do_match(&args).unwrap();
        let csv = std::fs::read_to_string(dir.join("out.csv")).unwrap();
        assert!(csv.lines().count() >= 1);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn composite_match_runs() {
        let dir = tmpdir("composite");
        let (p1, p2) = write_sample_logs(&dir);
        let args = MatchArgs {
            log1: p1,
            log2: p2,
            alpha: 1.0,
            exact_labels: false,
            c: 0.8,
            estimate: Some(5),
            min_freq: 0.0,
            min_score: 0.0,
            composites: true,
            delta: 0.001,
            csv: None,
            recover: false,
            budget: None,
            threads: 0,
            sparse_delta: None,
            sparse_warmup: 2,
            quiet: true,
            trace: None,
            metrics: None,
            store: None,
        };
        do_match(&args).unwrap();
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn traced_match_exports_valid_trace_and_metrics() {
        let dir = tmpdir("traced");
        let (p1, p2) = write_sample_logs(&dir);
        let trace_path = dir.join("run.jsonl").to_string_lossy().into_owned();
        let metrics_path = dir.join("run.prom").to_string_lossy().into_owned();
        let args = MatchArgs {
            log1: p1,
            log2: p2,
            alpha: 1.0,
            exact_labels: false,
            c: 0.8,
            estimate: None,
            min_freq: 0.0,
            min_score: 0.0,
            composites: false,
            delta: 0.005,
            csv: None,
            recover: false,
            budget: None,
            threads: 0,
            sparse_delta: None,
            sparse_warmup: 2,
            quiet: true,
            trace: Some(trace_path.clone()),
            metrics: Some(metrics_path.clone()),
            store: None,
        };
        do_match(&args).unwrap();

        let trace = std::fs::read_to_string(&trace_path).unwrap();
        let records = ems_obs::jsonl::parse_records(&trace).unwrap();
        // Both engines must report a convergence curve with non-increasing
        // max deltas, and the graph/run instrumentation must be present.
        let curves = ems_obs::jsonl::check_convergence(&records).unwrap();
        assert_eq!(curves.len(), 2, "expected forward + backward curves");
        assert!(trace.contains("graph_vertices"));
        assert!(trace.contains("run.iterations"));

        let metrics = std::fs::read_to_string(&metrics_path).unwrap();
        assert!(metrics.contains("# TYPE ems_graph_vertices gauge"));
        assert!(metrics.contains("ems_run_iterations"));

        // The report subcommand renders the same trace.
        report(&ReportArgs {
            path: trace_path.clone(),
            mode: ReportMode::Trace,
        })
        .unwrap();
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn stats_and_dot_run() {
        let dir = tmpdir("stats");
        let (p1, _) = write_sample_logs(&dir);
        stats(&p1, false).unwrap();
        dot(&p1, false).unwrap();
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn missing_file_is_a_clean_error() {
        assert!(stats("/nonexistent/nope.xes", false).is_err());
        let err = load("/nonexistent/nope.xes", false).unwrap_err();
        assert_eq!(err.exit_code(), 3);
        assert!(err.to_string().contains("nope.xes"));
    }

    #[test]
    fn budget_with_composites_is_a_usage_error() {
        let args = MatchArgs {
            log1: "a.xes".into(),
            log2: "b.xes".into(),
            alpha: 1.0,
            exact_labels: false,
            c: 0.8,
            estimate: None,
            min_freq: 0.0,
            min_score: 0.0,
            composites: true,
            delta: 0.005,
            csv: None,
            recover: false,
            budget: Some(ems_core::Budget {
                max_iterations: Some(1),
                ..Default::default()
            }),
            threads: 0,
            sparse_delta: None,
            sparse_warmup: 2,
            quiet: true,
            trace: None,
            metrics: None,
            store: None,
        };
        let err = do_match(&args).unwrap_err();
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn help_prints() {
        run(Command::Help).unwrap();
    }

    #[test]
    fn compare_without_shared_metrics_is_a_typed_error() {
        let dir = tmpdir("compare");
        let path = dir.join("bench.jsonl");
        // Two rows with disjoint metric sets, one overlapping pair below.
        std::fs::write(
            &path,
            "{\"schema\":\"ems-bench/1\",\"run_id\":\"a\",\"git_rev\":\"g\",\
             \"host\":\"h\",\"source\":\"s\",\"metrics\":{\"n50.x_ms\":1.0}}\n\
             {\"schema\":\"ems-bench/1\",\"run_id\":\"b\",\"git_rev\":\"g\",\
             \"host\":\"h\",\"source\":\"s\",\"metrics\":{\"n800.y_ms\":2.0}}\n\
             {\"schema\":\"ems-bench/1\",\"run_id\":\"c\",\"git_rev\":\"g\",\
             \"host\":\"h\",\"source\":\"s\",\"metrics\":{\"n50.x_ms\":1.5}}\n",
        )
        .unwrap();
        let p = path.to_string_lossy().into_owned();
        let err = report(&ReportArgs {
            path: p.clone(),
            mode: ReportMode::Compare {
                a: "a".into(),
                b: "b".into(),
            },
        })
        .unwrap_err();
        assert_eq!(err.exit_code(), 4, "{err}");
        assert!(err.to_string().contains("no comparable metrics"), "{err}");
        // Runs that do share a metric still render.
        report(&ReportArgs {
            path: p,
            mode: ReportMode::Compare {
                a: "a".into(),
                b: "c".into(),
            },
        })
        .unwrap();
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn catalog_add_dedups_identical_fingerprint_snapshots() {
        let dir = tmpdir("dedup");
        let (p1, p2) = write_sample_logs(&dir);
        let store_dir = dir.join("store");
        let recorder = Arc::new(Recorder::new());
        let store = CatalogStore::open(&store_dir)
            .unwrap()
            .with_recorder(Arc::clone(&recorder));

        // First add writes both snapshots; the identical re-add writes
        // nothing and fires the dedup counter.
        assert!(!catalog_add(&store, &recorder, &p1, false, 0.0).unwrap());
        let writes_after_first = store.stats().writes;
        assert!(catalog_add(&store, &recorder, &p1, false, 0.0).unwrap());
        assert_eq!(store.stats().writes, writes_after_first);
        let trace = ems_obs::jsonl::write(&recorder.records());
        assert!(trace.contains("store.dedup_hit"), "{trace}");

        // A different parameterization of the same log is not a hit (its
        // graph snapshot does not exist yet), nor is a different log.
        assert!(!catalog_add(&store, &recorder, &p1, false, 0.5).unwrap());
        assert!(!catalog_add(&store, &recorder, &p2, false, 0.0).unwrap());

        // Corrupting the committed log snapshot breaks the dedup: the
        // probe read quarantines it and the add re-puts whole snapshots.
        let fp = fingerprint_log(&load(&p1, false).unwrap());
        let objects = store_dir.join("objects");
        let victim = objects.join(format!("log-{:016x}.snap", persist::log_store_key(fp)));
        let mut bytes = std::fs::read(&victim).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&victim, &bytes).unwrap();
        assert!(!catalog_add(&store, &recorder, &p1, false, 0.0).unwrap());
        assert!(store.verify().unwrap().corrupt.is_empty());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn catalog_workflow_and_store_backed_match() {
        let dir = tmpdir("catalog");
        let (p1, p2) = write_sample_logs(&dir);
        let store_dir = dir.join("catalog").to_string_lossy().into_owned();
        // add + list + verify + gc run clean on a fresh store.
        catalog(&CatalogArgs {
            store: store_dir.clone(),
            action: CatalogAction::Add {
                path: p1.clone(),
                recover: false,
                min_freq: 0.0,
            },
        })
        .unwrap();
        catalog(&CatalogArgs {
            store: store_dir.clone(),
            action: CatalogAction::List,
        })
        .unwrap();
        catalog(&CatalogArgs {
            store: store_dir.clone(),
            action: CatalogAction::Verify,
        })
        .unwrap();
        catalog(&CatalogArgs {
            store: store_dir.clone(),
            action: CatalogAction::Gc,
        })
        .unwrap();
        // A store-backed match persists the remaining products…
        let args = MatchArgs {
            log1: p1,
            log2: p2,
            alpha: 1.0,
            exact_labels: false,
            c: 0.8,
            estimate: None,
            min_freq: 0.0,
            min_score: 0.0,
            composites: false,
            delta: 0.005,
            csv: None,
            recover: false,
            budget: None,
            threads: 0,
            sparse_delta: None,
            sparse_warmup: 2,
            quiet: true,
            trace: None,
            metrics: None,
            store: Some(store_dir.clone()),
        };
        do_match(&args).unwrap();
        do_match(&args).unwrap(); // …and a re-run disk-warms from them.
                                  // Corrupting a snapshot makes verify fail with the store-corrupt
                                  // exit code; gc then reclaims the quarantined copy once a reader
                                  // trips over it.
        let objects = std::path::Path::new(&store_dir).join("objects");
        let snap = std::fs::read_dir(&objects)
            .unwrap()
            .filter_map(|e| Some(e.ok()?.path()))
            .find(|p| p.extension().is_some_and(|e| e == "snap"))
            .unwrap();
        let mut bytes = std::fs::read(&snap).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&snap, &bytes).unwrap();
        let err = catalog(&CatalogArgs {
            store: store_dir.clone(),
            action: CatalogAction::Verify,
        })
        .unwrap_err();
        assert_eq!(err.exit_code(), 10);
        // The match still succeeds: corrupt snapshots rebuild from source.
        do_match(&args).unwrap();
        catalog(&CatalogArgs {
            store: store_dir,
            action: CatalogAction::Gc,
        })
        .unwrap();
        let _ = std::fs::remove_dir_all(dir);
    }
}
