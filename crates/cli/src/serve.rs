//! `ems serve` — a long-lived catalog-matching service over stdin/stdout.
//!
//! Startup ingests every reference log snapshot found in the durable
//! store into an [`ems_catalog::Catalog`] (pinned graphs, sketches,
//! byte-budgeted eviction), then the loop reads one JSONL query per line
//! (`{"log": PATH, "k": N}`) and emits one JSONL response per query —
//! the sketch-pruned top-k ranking with its planner counters:
//!
//! ```text
//! {"query":PATH,"k":N,"ranked":[{"ref":NAME,"ems_score":S},...],
//!  "pruned":P,"evaluated":E}
//! ```
//!
//! Per-query failures (missing file, malformed XES, malformed request
//! line) are JSONL `{"error": ...}` responses, never a dead service.
//! With `--workers W` queries are processed W at a time through the
//! shared session — responses stay in input order, and rankings are
//! identical at any width.

use crate::args::ServeArgs;
use ems_catalog::{Catalog, QueryOutcome};
use ems_core::{persist, EmsParams, LabelMeasure, SharedSession};
use ems_error::EmsError;
use ems_obs::json::{self, Value};
use ems_obs::Recorder;
use ems_store::{CatalogStore, EntryStatus, SnapshotKind};
use std::io::{BufRead, Write};
use std::sync::Arc;

/// Runs the serve loop over real stdin/stdout.
pub fn serve(args: &ServeArgs) -> Result<(), EmsError> {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    serve_io(args, stdin.lock(), stdout.lock())
}

/// The testable core: queries in, responses out.
pub fn serve_io(
    args: &ServeArgs,
    input: impl BufRead,
    mut output: impl Write,
) -> Result<(), EmsError> {
    let recorder = Arc::new(Recorder::new());
    let store = Arc::new(CatalogStore::open(&args.store)?.with_recorder(Arc::clone(&recorder)));
    let params = EmsParams {
        alpha: args.alpha,
        label_measure: if args.exact_labels {
            LabelMeasure::ExactName
        } else {
            LabelMeasure::QgramCosine
        },
        c: args.c,
        ..EmsParams::default()
    };
    let shared = Arc::new(
        SharedSession::try_new(params)?
            .with_min_frequency(args.min_freq)
            .with_store(Arc::clone(&store))
            .with_recorder(Arc::clone(&recorder)),
    );
    let mut catalog = Catalog::new(shared)
        .with_store(Arc::clone(&store))
        .with_recorder(Arc::clone(&recorder));
    if let Some(budget) = args.byte_budget {
        catalog = catalog.with_byte_budget(budget);
    }
    let admitted = admit_references(&mut catalog, &store)?;
    eprintln!(
        "ems serve: {admitted} reference(s) from {} ({} logical bytes pinned)",
        args.store,
        catalog.pinned_bytes()
    );

    let mut queries = 0usize;
    let mut lines = input.lines();
    loop {
        // One batch of up to `workers` queries; blank lines are skipped.
        let mut batch: Vec<String> = Vec::with_capacity(args.workers);
        for line in lines.by_ref() {
            let line = line.map_err(|e| EmsError::io("<stdin>", e.to_string()))?;
            if line.trim().is_empty() {
                continue;
            }
            batch.push(line);
            if batch.len() == args.workers {
                break;
            }
        }
        if batch.is_empty() {
            break;
        }
        queries += batch.len();
        let responses: Vec<String> = if args.workers <= 1 {
            batch
                .iter()
                .map(|l| handle_query(&catalog, args, l))
                .collect()
        } else {
            let catalog_ref = &catalog;
            std::thread::scope(|scope| {
                let handles: Vec<_> = batch
                    .iter()
                    .map(|l| scope.spawn(move || handle_query(catalog_ref, args, l)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| {
                        h.join()
                            .unwrap_or_else(|_| error_response(None, "query worker panicked"))
                    })
                    .collect()
            })
        };
        for response in &responses {
            writeln!(output, "{response}").map_err(|e| EmsError::io("<stdout>", e.to_string()))?;
        }
        output
            .flush()
            .map_err(|e| EmsError::io("<stdout>", e.to_string()))?;
    }

    let stats = catalog.stats();
    eprintln!(
        "ems serve: {queries} query(ies) answered; catalog hits {}, misses {}, evictions {}",
        stats.hits, stats.misses, stats.evictions
    );
    if let Some(path) = &args.metrics {
        std::fs::write(path, ems_obs::prom::write(&recorder.records()))
            .map_err(|e| EmsError::io(path, e.to_string()))?;
    }
    Ok(())
}

/// Ingests every valid reference-log snapshot from the store, in key
/// order so admission indices are deterministic across restarts.
fn admit_references(catalog: &mut Catalog, store: &CatalogStore) -> Result<usize, EmsError> {
    let mut keys: Vec<u64> = store
        .list()?
        .into_iter()
        .filter(|e| e.kind == Some(SnapshotKind::Log) && matches!(e.status, EntryStatus::Ok))
        .filter_map(|e| e.key)
        .collect();
    keys.sort_unstable();
    keys.dedup();
    let mut admitted = 0usize;
    for key in keys {
        let bytes = match store.get(SnapshotKind::Log, key, persist::LOG_PAYLOAD_VERSION) {
            Ok(Some(bytes)) => bytes,
            Ok(None) => continue,
            Err(e) => {
                // A corrupt snapshot was quarantined by the read; the
                // reference simply is not served until re-added.
                eprintln!("ems serve: warning: skipping log {key:016x}: {e}");
                continue;
            }
        };
        let log = match persist::decode_log(&bytes) {
            Ok(log) => log,
            Err(e) => {
                eprintln!("ems serve: warning: skipping log {key:016x}: {e}");
                continue;
            }
        };
        let name = log
            .name()
            .map(str::to_owned)
            .unwrap_or_else(|| format!("log-{key:016x}"));
        catalog.add(name, log);
        admitted += 1;
    }
    Ok(admitted)
}

/// Answers one request line; every failure mode is a JSON error response.
fn handle_query(catalog: &Catalog, args: &ServeArgs, line: &str) -> String {
    let request = match json::parse(line) {
        Ok(v) => v,
        Err(e) => return error_response(None, &format!("malformed request: {e}")),
    };
    let Some(path) = request.get("log").and_then(Value::as_str) else {
        return error_response(None, "request is missing string field 'log'");
    };
    let k = match request.get("k") {
        None => args.k,
        Some(v) => match v.as_u64() {
            Some(k) if k >= 1 => k as usize,
            _ => return error_response(Some(path), "'k' must be a positive integer"),
        },
    };
    let log = match crate::commands::load(path, args.recover) {
        Ok(log) => log,
        Err(e) => return error_response(Some(path), &e.to_string()),
    };
    match catalog.query_top_k_opts(&log, k, args.prune) {
        Ok(outcome) => ranked_response(path, k, &outcome),
        Err(e) => error_response(Some(path), &e.to_string()),
    }
}

fn ranked_response(path: &str, k: usize, outcome: &QueryOutcome) -> String {
    let mut out = String::new();
    out.push_str("{\"query\":");
    json::write_escaped(&mut out, path);
    out.push_str(&format!(",\"k\":{k},\"ranked\":["));
    for (i, r) in outcome.ranked.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"ref\":");
        json::write_escaped(&mut out, &r.name);
        out.push_str(",\"ems_score\":");
        json::write_f64(&mut out, r.ems_score);
        out.push('}');
    }
    out.push_str(&format!(
        "],\"pruned\":{},\"evaluated\":{}}}",
        outcome.pruned, outcome.evaluated
    ));
    out
}

fn error_response(path: Option<&str>, message: &str) -> String {
    let mut out = String::new();
    out.push('{');
    if let Some(path) = path {
        out.push_str("\"query\":");
        json::write_escaped(&mut out, path);
        out.push(',');
    }
    out.push_str("\"error\":");
    json::write_escaped(&mut out, message);
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ems_events::{fingerprint_log, EventLog};
    use ems_xes::{from_event_log, write_file};

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("ems-serve-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// Three distinguishable reference processes plus a query log that is
    /// a near-copy of the first.
    fn reference_logs() -> Vec<EventLog> {
        let mut a = EventLog::with_name("orders");
        for _ in 0..4 {
            a.push_trace(["receive", "check", "pack", "ship"]);
        }
        a.push_trace(["receive", "check", "reject"]);
        let mut b = EventLog::with_name("claims");
        for _ in 0..4 {
            b.push_trace(["file", "triage", "assess", "payout", "close"]);
        }
        b.push_trace(["file", "triage", "deny", "close"]);
        let mut c = EventLog::with_name("tickets");
        for _ in 0..3 {
            c.push_trace(["open", "assign", "resolve"]);
        }
        c.push_trace(["open", "escalate", "assign", "resolve"]);
        vec![a, b, c]
    }

    fn query_like_orders() -> EventLog {
        let mut q = EventLog::with_name("orders-query");
        for _ in 0..4 {
            q.push_trace(["intake", "verify", "box", "dispatch"]);
        }
        q.push_trace(["intake", "verify", "refuse"]);
        q
    }

    fn populate_store(dir: &std::path::Path) -> String {
        let root = dir.join("store").to_string_lossy().into_owned();
        let store = CatalogStore::open(&root).unwrap();
        for log in reference_logs() {
            let fp = fingerprint_log(&log);
            store
                .put(
                    SnapshotKind::Log,
                    persist::log_store_key(fp),
                    persist::LOG_PAYLOAD_VERSION,
                    &persist::encode_log(&log),
                )
                .unwrap();
        }
        root
    }

    fn serve_args(store: String) -> ServeArgs {
        ServeArgs {
            store,
            k: 2,
            workers: 1,
            alpha: 1.0,
            exact_labels: false,
            c: 0.8,
            min_freq: 0.0,
            byte_budget: None,
            prune: true,
            recover: false,
            metrics: None,
        }
    }

    fn run_serve(args: &ServeArgs, input: &str) -> Vec<String> {
        let mut out: Vec<u8> = Vec::new();
        serve_io(args, std::io::Cursor::new(input.to_owned()), &mut out).unwrap();
        String::from_utf8(out)
            .unwrap()
            .lines()
            .map(str::to_owned)
            .collect()
    }

    #[test]
    fn serves_ranked_responses_and_survives_bad_queries() {
        let dir = tmpdir("loop");
        let store = populate_store(&dir);
        let qpath = dir.join("query.xes");
        write_file(&from_event_log(&query_like_orders()), &qpath).unwrap();
        let q = qpath.to_string_lossy().into_owned();

        let input = format!(
            "{{\"log\": \"{q}\", \"k\": 1}}\nnot json\n\
             {{\"log\": \"/nonexistent/nope.xes\"}}\n{{\"log\": \"{q}\"}}\n",
        );
        let args = serve_args(store);
        let lines = run_serve(&args, &input);
        assert_eq!(lines.len(), 4, "{lines:?}");

        // First response: k=1, the structurally closest reference wins.
        let first = json::parse(&lines[0]).unwrap();
        let ranked = first.get("ranked").and_then(Value::as_array).unwrap();
        assert_eq!(ranked.len(), 1);
        assert_eq!(
            ranked[0].get("ref").and_then(Value::as_str),
            Some("orders"),
            "{lines:?}"
        );
        let evaluated = first.get("evaluated").and_then(Value::as_u64).unwrap();
        let pruned = first.get("pruned").and_then(Value::as_u64).unwrap();
        assert_eq!(evaluated + pruned, 3);

        // Malformed request and missing file are error responses, and the
        // loop keeps serving afterwards.
        assert!(json::parse(&lines[1]).unwrap().get("error").is_some());
        assert!(json::parse(&lines[2]).unwrap().get("error").is_some());
        let last = json::parse(&lines[3]).unwrap();
        // The default k (2) applies when the request omits it.
        assert_eq!(last.get("k").and_then(Value::as_u64), Some(2));
        assert_eq!(
            last.get("ranked")
                .and_then(Value::as_array)
                .map(<[Value]>::len),
            Some(2)
        );
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn worker_pool_and_no_prune_rankings_are_identical() {
        let dir = tmpdir("workers");
        let store = populate_store(&dir);
        let qpath = dir.join("query.xes");
        write_file(&from_event_log(&query_like_orders()), &qpath).unwrap();
        let q = qpath.to_string_lossy().into_owned();
        let input = format!("{{\"log\": \"{q}\"}}\n").repeat(4);

        let serial = serve_args(store.clone());
        let serial_lines = run_serve(&serial, &input);

        let mut pooled = serve_args(store.clone());
        pooled.workers = 4;
        let pooled_lines = run_serve(&pooled, &input);
        assert_eq!(serial_lines, pooled_lines);

        // --no-prune evaluates everything but ranks identically.
        let mut noprune = serve_args(store);
        noprune.prune = false;
        let noprune_lines = run_serve(&noprune, &input);
        assert_eq!(noprune_lines.len(), serial_lines.len());
        for (pruned_line, full_line) in serial_lines.iter().zip(&noprune_lines) {
            let p = json::parse(pruned_line).unwrap();
            let f = json::parse(full_line).unwrap();
            assert_eq!(p.get("ranked"), f.get("ranked"));
            assert_eq!(f.get("pruned").and_then(Value::as_u64), Some(0));
            assert_eq!(f.get("evaluated").and_then(Value::as_u64), Some(3));
        }
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn byte_budget_eviction_does_not_change_rankings() {
        let dir = tmpdir("budget");
        let store = populate_store(&dir);
        let qpath = dir.join("query.xes");
        write_file(&from_event_log(&query_like_orders()), &qpath).unwrap();
        let q = qpath.to_string_lossy().into_owned();
        let input = format!("{{\"log\": \"{q}\"}}\n").repeat(3);

        let unlimited = serve_args(store.clone());
        let want = run_serve(&unlimited, &input);

        // A 1-byte budget evicts every pinned graph immediately: each
        // query reloads references through the store, ranking unchanged.
        let mut thrashing = serve_args(store);
        thrashing.byte_budget = Some(1);
        let got = run_serve(&thrashing, &input);
        assert_eq!(want, got);
        let _ = std::fs::remove_dir_all(dir);
    }
}
