//! The `compare`, `synth` and `convert` subcommands.

use ems_assignment::max_total_assignment;
use ems_baselines::bhv::trace_start_anchors;
use ems_baselines::{Bhv, BhvParams, Ged, Opq, OpqParams, SimilarityFlooding};
use ems_core::{Ems, EmsParams};
use ems_depgraph::DependencyGraph;
use ems_error::EmsError;
use ems_eval::{Stopwatch, Table};
use ems_events::EventLog;
use ems_labels::LabelMatrix;
use ems_synth::{Dislocation, PairConfig, PairGenerator, TreeConfig};

/// Options of `ems compare`.
#[derive(Debug, Clone, PartialEq)]
pub struct CompareArgs {
    pub log1: String,
    pub log2: String,
    pub alpha: f64,
    /// OPQ branch-and-bound node budget (it is the slow one).
    pub opq_budget: u64,
    /// Skip malformed log regions instead of aborting.
    pub recover: bool,
}

/// Options of `ems synth`.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthArgs {
    pub activities: usize,
    pub traces: usize,
    pub seed: u64,
    pub dislocate_front: usize,
    pub dislocate_back: usize,
    pub opaque: f64,
    pub composites: usize,
    pub out1: String,
    pub out2: String,
    pub truth_csv: Option<String>,
}

/// Runs every matcher on the same pair of logs and prints a comparison.
pub fn compare(
    args: &CompareArgs,
    load: impl Fn(&str) -> Result<EventLog, EmsError>,
) -> Result<(), EmsError> {
    let l1 = load(&args.log1)?;
    let l2 = load(&args.log2)?;
    let g1 = DependencyGraph::from_log(&l1);
    let g2 = DependencyGraph::from_log(&l2);
    // ems-lint: allow(float-ordering, IEEE min deliberately sanitizes a NaN alpha from the CLI down to 0.999 before it reaches the engine)
    let labels = Ems::new(EmsParams::with_labels(args.alpha.min(0.999))).label_matrix(&l1, &l2);
    let zero_labels = LabelMatrix::zeros(g1.num_real(), g2.num_real());
    let labels_ref = if args.alpha < 1.0 {
        &labels
    } else {
        &zero_labels
    };

    let mut table = Table::new(
        format!("method comparison: {} <-> {}", args.log1, args.log2),
        vec!["method", "pairs", "avg sim", "time (ms)", "note"],
    );
    let mut add = |name: &str, count: usize, avg: f64, secs: f64, note: &str| {
        table.row(vec![
            name.to_owned(),
            count.to_string(),
            format!("{avg:.3}"),
            format!("{:.1}", secs * 1e3),
            note.to_owned(),
        ]);
    };

    // EMS exact + estimated.
    for (name, params) in [
        ("EMS", ems_params(args.alpha)),
        ("EMS+es(I=5)", ems_params(args.alpha).estimated(5)),
    ] {
        let ems = Ems::new(params);
        let (out, t) = Stopwatch::time(|| ems.match_graphs(&g1, &g2, labels_ref));
        let sim = out.similarity;
        let cs = max_total_assignment(sim.rows(), sim.cols(), |i, j| sim.get(i, j), 0.05);
        add(name, cs.len(), sim.average(), t.as_secs_f64(), "");
    }
    // BHV.
    {
        let bhv = Bhv::new(BhvParams {
            alpha: args.alpha,
            ..BhvParams::default()
        });
        let (sim, t) = Stopwatch::time(|| {
            bhv.similarity_with_anchors(
                &g1,
                &g2,
                labels_ref,
                &trace_start_anchors(&l1),
                &trace_start_anchors(&l2),
            )
        });
        let cs = max_total_assignment(sim.rows(), sim.cols(), |i, j| sim.get(i, j), 0.05);
        add("BHV", cs.len(), sim.average(), t.as_secs_f64(), "");
    }
    // Similarity Flooding.
    {
        let (sim, t) =
            Stopwatch::time(|| SimilarityFlooding::default().similarity(&g1, &g2, labels_ref));
        let cs = max_total_assignment(sim.rows(), sim.cols(), |i, j| sim.get(i, j), 0.05);
        add("SF", cs.len(), sim.average(), t.as_secs_f64(), "");
    }
    // GED.
    {
        let (r, t) = Stopwatch::time(|| Ged::default().match_graphs(&g1, &g2, labels_ref));
        add(
            "GED",
            r.mapping.len(),
            1.0 - r.distance,
            t.as_secs_f64(),
            "avg sim = 1 - distance",
        );
    }
    // OPQ with a budget.
    {
        let opq = Opq::new(OpqParams {
            node_budget: args.opq_budget,
        });
        let (r, t) = Stopwatch::time(|| opq.match_graphs(&g1, &g2));
        add(
            "OPQ",
            r.mapping.len(),
            -r.distance,
            t.as_secs_f64(),
            if r.finished {
                "optimal"
            } else {
                "budget exhausted"
            },
        );
    }
    print!("{}", table.to_text());
    Ok(())
}

fn ems_params(alpha: f64) -> EmsParams {
    if alpha < 1.0 {
        EmsParams::with_labels(alpha)
    } else {
        EmsParams::structural()
    }
}

/// Generates a heterogeneous log pair, writes both logs as XES and
/// optionally the ground truth as CSV.
pub fn synth(args: &SynthArgs) -> Result<(), EmsError> {
    let dislocation = match (args.dislocate_front, args.dislocate_back) {
        (0, 0) => Dislocation::None,
        (f, 0) => Dislocation::Front(f),
        (0, b) => Dislocation::Back(b),
        (f, b) => Dislocation::Both(f.max(b)),
    };
    let pair = PairGenerator::new(PairConfig {
        tree: TreeConfig {
            num_activities: args.activities,
            seed: args.seed,
            max_branch: (args.activities / 4).max(4),
            ..TreeConfig::default()
        },
        traces_per_log: args.traces,
        seed: args.seed.wrapping_add(1000),
        dislocation,
        opaque_fraction: args.opaque,
        num_composites: args.composites,
        xor_jitter: 0.25,
        ..PairConfig::default()
    })
    .generate();
    let write = |log: &EventLog, path: &str| -> Result<(), EmsError> {
        ems_xes::write_file(&ems_xes::from_event_log(log), path)
            .map_err(|e| EmsError::io(path, e.to_string()))
    };
    write(&pair.log1, &args.out1)?;
    write(&pair.log2, &args.out2)?;
    println!(
        "wrote {} ({} traces, {} events) and {} ({} traces, {} events)",
        args.out1,
        pair.log1.num_traces(),
        pair.log1.alphabet_size(),
        args.out2,
        pair.log2.num_traces(),
        pair.log2.alphabet_size()
    );
    if let Some(path) = &args.truth_csv {
        let mut t = Table::new("truth", vec!["log1", "log2"]);
        for (l, r) in pair.truth.iter() {
            t.row(vec![l.to_owned(), r.to_owned()]);
        }
        t.write_csv(path)
            .map_err(|e| EmsError::io(path, e.to_string()))?;
        println!("wrote {} truth pairs to {path}", pair.truth.len());
    }
    Ok(())
}

/// Converts between XES and MXML, detecting the input format from its root
/// element. With `recover`, malformed input regions are skipped (and
/// reported on stderr) instead of aborting the conversion.
pub fn convert(input: &str, output: &str, recover: bool) -> Result<(), EmsError> {
    let log = crate::commands::load(input, recover)?;
    let out_text = if output.ends_with(".mxml") {
        ems_xes::mxml::write_mxml(&ems_xes::mxml::from_event_log(&log))
    } else {
        ems_xes::write_string(&ems_xes::from_event_log(&log))
    };
    std::fs::write(output, out_text).map_err(|e| EmsError::io(output, e.to_string()))?;
    println!(
        "converted {} traces / {} events: {input} -> {output}",
        log.num_traces(),
        log.alphabet_size()
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("ems-extra-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn synth_writes_logs_and_truth() {
        let dir = tmp("synth");
        let args = SynthArgs {
            activities: 12,
            traces: 40,
            seed: 5,
            dislocate_front: 1,
            dislocate_back: 0,
            opaque: 1.0,
            composites: 1,
            out1: dir.join("a.xes").to_string_lossy().into_owned(),
            out2: dir.join("b.xes").to_string_lossy().into_owned(),
            truth_csv: Some(dir.join("truth.csv").to_string_lossy().into_owned()),
        };
        synth(&args).unwrap();
        let truth = std::fs::read_to_string(dir.join("truth.csv")).unwrap();
        assert!(truth.lines().count() > 2);
        // Both logs parse back.
        assert!(ems_xes::parse_file(dir.join("a.xes")).is_ok());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn compare_runs_on_synthesized_logs() {
        let dir = tmp("compare");
        let args = SynthArgs {
            activities: 8,
            traces: 30,
            seed: 9,
            dislocate_front: 0,
            dislocate_back: 0,
            opaque: 1.0,
            composites: 0,
            out1: dir.join("a.xes").to_string_lossy().into_owned(),
            out2: dir.join("b.xes").to_string_lossy().into_owned(),
            truth_csv: None,
        };
        synth(&args).unwrap();
        let cargs = CompareArgs {
            log1: args.out1.clone(),
            log2: args.out2.clone(),
            alpha: 1.0,
            opq_budget: 10_000,
            recover: false,
        };
        compare(&cargs, |p| {
            let xes = ems_xes::parse_file(p).map_err(EmsError::from)?;
            Ok(ems_xes::to_event_log(&xes))
        })
        .unwrap();
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn convert_xes_to_mxml_and_back() {
        let dir = tmp("convert");
        let mut log = EventLog::with_name("demo");
        log.push_trace(["a", "b"]);
        let xes = dir.join("in.xes").to_string_lossy().into_owned();
        let mxml = dir.join("mid.mxml").to_string_lossy().into_owned();
        let back = dir.join("out.xes").to_string_lossy().into_owned();
        ems_xes::write_file(&ems_xes::from_event_log(&log), &xes).unwrap();
        convert(&xes, &mxml, false).unwrap();
        convert(&mxml, &back, false).unwrap();
        let final_log = ems_xes::to_event_log(&ems_xes::parse_file(&back).unwrap());
        assert_eq!(final_log.num_traces(), 1);
        assert_eq!(final_log.alphabet_size(), 2);
        let _ = std::fs::remove_dir_all(dir);
    }
}
