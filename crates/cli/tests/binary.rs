//! Smoke tests driving the actual `ems` binary end-to-end.

use std::path::PathBuf;
use std::process::Command;

fn ems() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ems"))
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ems-bin-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn help_exits_zero_and_prints_usage() {
    let out = ems().arg("help").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("ems match"));
    assert!(text.contains("ems synth"));
}

#[test]
fn bad_arguments_exit_nonzero_with_usage() {
    let out = ems().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown subcommand"));
    assert!(err.contains("USAGE"));
}

#[test]
fn missing_file_exits_with_io_code() {
    let out = ems().args(["stats", "/no/such/file.xes"]).output().unwrap();
    assert!(!out.status.success());
    assert_eq!(out.status.code(), Some(3), "Io errors exit with code 3");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("file.xes"), "stderr: {err}");
    assert_eq!(err.trim().lines().count(), 1, "one-line stderr: {err:?}");
}

#[test]
fn malformed_log_exits_with_parse_code_and_recover_salvages_it() {
    let dir = tmpdir("malformed");
    let path = dir.join("broken.xes");
    // One good trace, then a garbled region, then another good trace with
    // its closing tags truncated away.
    std::fs::write(
        &path,
        r#"<log>
  <trace><event><string key="concept:name" value="a"/></event></trace>
  <trace><event><string key="concept:name" <<<garbage>></event></trace>
  <trace><event><string key="concept:name" value="b"/></event>"#,
    )
    .unwrap();
    let out = ems()
        .args(["stats", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(4), "Parse errors exit with code 4");
    let err = String::from_utf8_lossy(&out.stderr);
    assert_eq!(err.trim().lines().count(), 1, "one-line stderr: {err:?}");
    assert!(err.contains("broken.xes"), "stderr names the file: {err}");

    let out = ems()
        .args(["stats", path.to_str().unwrap(), "--recover"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "recovery succeeds");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("warning"), "warnings on stderr: {err}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("dependency graph"));
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn budget_flag_degrades_gracefully() {
    let dir = tmpdir("budget");
    let a = dir.join("a.xes");
    let b = dir.join("b.xes");
    let out = ems()
        .args([
            "synth",
            "--activities",
            "10",
            "--traces",
            "30",
            "--seed",
            "7",
            "--out1",
            a.to_str().unwrap(),
            "--out2",
            b.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = ems()
        .args([
            "match",
            a.to_str().unwrap(),
            b.to_str().unwrap(),
            "--quiet",
            "--min-score",
            "0",
            "--budget",
            "iters=1",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("degraded"),
        "degradation note on stderr: {err}"
    );
    // The degraded run still yields a full correspondence listing.
    let lines = String::from_utf8_lossy(&out.stdout).lines().count();
    assert!(lines >= 5, "only {lines} correspondences");
    // Bad budget specs are usage errors (exit 2).
    let out = ems()
        .args([
            "match",
            a.to_str().unwrap(),
            b.to_str().unwrap(),
            "--budget",
            "bogus=1",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn synth_then_match_pipeline() {
    let dir = tmpdir("pipeline");
    let a = dir.join("a.xes");
    let b = dir.join("b.xes");
    let truth = dir.join("truth.csv");
    let out = ems()
        .args([
            "synth",
            "--activities",
            "10",
            "--traces",
            "40",
            "--seed",
            "3",
            "--out1",
            a.to_str().unwrap(),
            "--out2",
            b.to_str().unwrap(),
            "--truth",
            truth.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(a.exists() && b.exists() && truth.exists());

    let out = ems()
        .args([
            "match",
            a.to_str().unwrap(),
            b.to_str().unwrap(),
            "--quiet",
            "--min-score",
            "0",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    // Quiet mode: tab-separated triples.
    let lines: Vec<&str> = text.lines().filter(|l| !l.is_empty()).collect();
    assert!(lines.len() >= 5, "only {} correspondences", lines.len());
    for line in lines {
        assert_eq!(line.split('\t').count(), 3, "bad line {line:?}");
    }
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn stats_and_dot_produce_output() {
    let dir = tmpdir("statsdot");
    let a = dir.join("a.xes");
    ems()
        .args([
            "synth",
            "--activities",
            "8",
            "--traces",
            "20",
            "--seed",
            "4",
            "--out1",
            a.to_str().unwrap(),
            "--out2",
            dir.join("b.xes").to_str().unwrap(),
        ])
        .output()
        .unwrap();
    let out = ems().args(["stats", a.to_str().unwrap()]).output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("dependency graph"));
    let out = ems().args(["dot", a.to_str().unwrap()]).output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).starts_with("digraph"));
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn report_rejects_corrupted_traces_with_typed_errors() {
    let dir = tmpdir("report-corpus");
    let meta = "{\"schema\":\"ems-trace/1\",\"type\":\"meta\",\"seq\":0}\n";
    // Every corrupted trace must surface as a typed parse error (exit 4)
    // with a one-line stderr naming the file — never a panic (101) and
    // never a generic usage error (2).
    let corpus: &[(&str, String)] = &[
        (
            "truncated.jsonl",
            format!("{meta}{{\"type\":\"iteration\",\"seq\":1,\"na"),
        ),
        ("not-json.jsonl", "this is not a trace at all\n".to_string()),
        (
            "wrong-schema.jsonl",
            "{\"schema\":\"other/9\",\"type\":\"meta\",\"seq\":0}\n".to_string(),
        ),
        (
            "unknown-record.jsonl",
            format!("{meta}{{\"type\":\"mystery\",\"seq\":1}}\n"),
        ),
        (
            "bad-histogram.jsonl",
            format!(
                "{meta}{{\"type\":\"histogram\",\"seq\":1,\"name\":\"h\",\"labels\":{{}},\
                 \"unit\":\"us\",\"det\":true,\"count\":2,\"sum\":3,\
                 \"buckets\":[[6,1],[5,1]]}}\n"
            ),
        ),
        (
            "binary-garbage.jsonl",
            "\u{0}\u{1}\u{2}\u{fffd}".to_string(),
        ),
        ("empty.jsonl", String::new()),
    ];
    for (name, text) in corpus {
        let path = dir.join(name);
        std::fs::write(&path, text).unwrap();
        let out = ems()
            .args(["report", path.to_str().unwrap()])
            .output()
            .unwrap();
        assert_eq!(
            out.status.code(),
            Some(4),
            "{name}: parse errors exit 4, stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let err = String::from_utf8_lossy(&out.stderr);
        assert_eq!(
            err.trim().lines().count(),
            1,
            "{name}: one-line stderr: {err:?}"
        );
        assert!(err.contains(name), "{name}: stderr names the file: {err}");
        assert!(!err.contains("panicked"), "{name}: no panic: {err}");
    }
    // Malformed trajectory files are typed parse errors too.
    let bad_traj = dir.join("bad-traj.jsonl");
    std::fs::write(&bad_traj, "{\"schema\":\"ems-bench/9\"}\n").unwrap();
    let out = ems()
        .args(["report", bad_traj.to_str().unwrap(), "--trajectory"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(4));
    let out = ems()
        .args(["report", bad_traj.to_str().unwrap(), "--compare", "a", "b"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(4));
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn report_trajectory_and_compare_render_history() {
    let dir = tmpdir("report-traj");
    let path = dir.join("traj.jsonl");
    std::fs::write(
        &path,
        "{\"schema\":\"ems-bench/1\",\"run_id\":\"pr6\",\"git_rev\":\"unknown\",\
         \"host\":\"unknown\",\"source\":\"pr6_session_store\",\
         \"metrics\":{\"n800.parallel_wall_ms\":100.0}}\n\
         {\"schema\":\"ems-bench/1\",\"run_id\":\"pr7\",\"git_rev\":\"unknown\",\
         \"host\":\"unknown\",\"source\":\"pr7_kernel_scaling\",\
         \"metrics\":{\"n800.parallel_wall_ms\":40.0}}\n",
    )
    .unwrap();
    let out = ems()
        .args(["report", path.to_str().unwrap(), "--trajectory"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("bench trajectory"), "{text}");
    assert!(text.contains("n800.parallel_wall_ms"), "{text}");
    assert!(text.contains("improved"), "{text}");

    let out = ems()
        .args(["report", path.to_str().unwrap(), "--compare", "pr6", "pr7"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("pr6"), "{text}");
    assert!(text.contains("improved"), "{text}");

    // A run id absent from the file is a usage error, not a parse error.
    let out = ems()
        .args(["report", path.to_str().unwrap(), "--compare", "pr6", "nope"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("nope"), "stderr names the missing id: {err}");
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn report_compare_surfaces_pr7_speedups_in_committed_history() {
    // The checked-in trajectory folds BENCH_pr6.json and BENCH_pr7.json;
    // PR7's headline wins — the outcome cache collapsing cached re-match
    // wall and the warm start seeded at the pooled kernel's fixpoint —
    // must show up as flagged improvements, not vanish in the migration.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_TRAJECTORY.jsonl");
    let out = ems()
        .args(["report", path, "--compare", "pr6", "pr7"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    for metric in ["n800.session_cached_wall_ms", "n800.session_warm_wall_ms"] {
        let line = text
            .lines()
            .find(|l| l.contains(metric))
            .unwrap_or_else(|| panic!("no {metric} row in:\n{text}"));
        assert!(line.contains("improved"), "{metric} not flagged: {line}");
    }
    // PR7's pooled-kernel scaling evidence (the per-thread sweep) rides in
    // its trajectory row, ready for same-host gating by later runs.
    let rows = ems_obs::trajectory::parse(&std::fs::read_to_string(path).unwrap()).unwrap();
    let pr7 = rows.iter().find(|r| r.run_id == "pr7").unwrap();
    for t in [1, 2, 4, 8] {
        assert!(pr7.metrics.contains_key(&format!("n800.t{t}.wall_ms")));
    }
}

#[test]
fn convert_roundtrip_via_binary() {
    let dir = tmpdir("convert");
    let a = dir.join("a.xes");
    ems()
        .args([
            "synth",
            "--activities",
            "6",
            "--traces",
            "10",
            "--seed",
            "5",
            "--out1",
            a.to_str().unwrap(),
            "--out2",
            dir.join("b.xes").to_str().unwrap(),
        ])
        .output()
        .unwrap();
    let mxml = dir.join("a.mxml");
    let back = dir.join("back.xes");
    let out = ems()
        .args(["convert", a.to_str().unwrap(), mxml.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(std::fs::read_to_string(&mxml)
        .unwrap()
        .contains("<WorkflowLog>"));
    let out = ems()
        .args(["convert", mxml.to_str().unwrap(), back.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(std::fs::read_to_string(&back).unwrap().contains("<log"));
    let _ = std::fs::remove_dir_all(dir);
}
