//! Smoke tests driving the actual `ems` binary end-to-end.

use std::path::PathBuf;
use std::process::Command;

fn ems() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ems"))
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ems-bin-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn help_exits_zero_and_prints_usage() {
    let out = ems().arg("help").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("ems match"));
    assert!(text.contains("ems synth"));
}

#[test]
fn bad_arguments_exit_nonzero_with_usage() {
    let out = ems().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown subcommand"));
    assert!(err.contains("USAGE"));
}

#[test]
fn missing_file_exits_with_io_code() {
    let out = ems().args(["stats", "/no/such/file.xes"]).output().unwrap();
    assert!(!out.status.success());
    assert_eq!(out.status.code(), Some(3), "Io errors exit with code 3");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("file.xes"), "stderr: {err}");
    assert_eq!(err.trim().lines().count(), 1, "one-line stderr: {err:?}");
}

#[test]
fn malformed_log_exits_with_parse_code_and_recover_salvages_it() {
    let dir = tmpdir("malformed");
    let path = dir.join("broken.xes");
    // One good trace, then a garbled region, then another good trace with
    // its closing tags truncated away.
    std::fs::write(
        &path,
        r#"<log>
  <trace><event><string key="concept:name" value="a"/></event></trace>
  <trace><event><string key="concept:name" <<<garbage>></event></trace>
  <trace><event><string key="concept:name" value="b"/></event>"#,
    )
    .unwrap();
    let out = ems()
        .args(["stats", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(4), "Parse errors exit with code 4");
    let err = String::from_utf8_lossy(&out.stderr);
    assert_eq!(err.trim().lines().count(), 1, "one-line stderr: {err:?}");
    assert!(err.contains("broken.xes"), "stderr names the file: {err}");

    let out = ems()
        .args(["stats", path.to_str().unwrap(), "--recover"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "recovery succeeds");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("warning"), "warnings on stderr: {err}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("dependency graph"));
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn budget_flag_degrades_gracefully() {
    let dir = tmpdir("budget");
    let a = dir.join("a.xes");
    let b = dir.join("b.xes");
    let out = ems()
        .args([
            "synth",
            "--activities",
            "10",
            "--traces",
            "30",
            "--seed",
            "7",
            "--out1",
            a.to_str().unwrap(),
            "--out2",
            b.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = ems()
        .args([
            "match",
            a.to_str().unwrap(),
            b.to_str().unwrap(),
            "--quiet",
            "--min-score",
            "0",
            "--budget",
            "iters=1",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("degraded"),
        "degradation note on stderr: {err}"
    );
    // The degraded run still yields a full correspondence listing.
    let lines = String::from_utf8_lossy(&out.stdout).lines().count();
    assert!(lines >= 5, "only {lines} correspondences");
    // Bad budget specs are usage errors (exit 2).
    let out = ems()
        .args([
            "match",
            a.to_str().unwrap(),
            b.to_str().unwrap(),
            "--budget",
            "bogus=1",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn synth_then_match_pipeline() {
    let dir = tmpdir("pipeline");
    let a = dir.join("a.xes");
    let b = dir.join("b.xes");
    let truth = dir.join("truth.csv");
    let out = ems()
        .args([
            "synth",
            "--activities",
            "10",
            "--traces",
            "40",
            "--seed",
            "3",
            "--out1",
            a.to_str().unwrap(),
            "--out2",
            b.to_str().unwrap(),
            "--truth",
            truth.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(a.exists() && b.exists() && truth.exists());

    let out = ems()
        .args([
            "match",
            a.to_str().unwrap(),
            b.to_str().unwrap(),
            "--quiet",
            "--min-score",
            "0",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    // Quiet mode: tab-separated triples.
    let lines: Vec<&str> = text.lines().filter(|l| !l.is_empty()).collect();
    assert!(lines.len() >= 5, "only {} correspondences", lines.len());
    for line in lines {
        assert_eq!(line.split('\t').count(), 3, "bad line {line:?}");
    }
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn stats_and_dot_produce_output() {
    let dir = tmpdir("statsdot");
    let a = dir.join("a.xes");
    ems()
        .args([
            "synth",
            "--activities",
            "8",
            "--traces",
            "20",
            "--seed",
            "4",
            "--out1",
            a.to_str().unwrap(),
            "--out2",
            dir.join("b.xes").to_str().unwrap(),
        ])
        .output()
        .unwrap();
    let out = ems().args(["stats", a.to_str().unwrap()]).output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("dependency graph"));
    let out = ems().args(["dot", a.to_str().unwrap()]).output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).starts_with("digraph"));
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn convert_roundtrip_via_binary() {
    let dir = tmpdir("convert");
    let a = dir.join("a.xes");
    ems()
        .args([
            "synth",
            "--activities",
            "6",
            "--traces",
            "10",
            "--seed",
            "5",
            "--out1",
            a.to_str().unwrap(),
            "--out2",
            dir.join("b.xes").to_str().unwrap(),
        ])
        .output()
        .unwrap();
    let mxml = dir.join("a.mxml");
    let back = dir.join("back.xes");
    let out = ems()
        .args(["convert", a.to_str().unwrap(), mxml.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(std::fs::read_to_string(&mxml)
        .unwrap()
        .contains("<WorkflowLog>"));
    let out = ems()
        .args(["convert", mxml.to_str().unwrap(), back.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(std::fs::read_to_string(&back).unwrap().contains("<log"));
    let _ = std::fs::remove_dir_all(dir);
}
