//! Similarity Flooding (Melnik, Garcia-Molina, Rahm — ICDE'02), the classic
//! fixpoint graph matcher the paper cites as the representative 1:1
//! schema-matching approach \[14\].
//!
//! The algorithm builds the *pairwise connectivity graph* (PCG) over event
//! pairs — `(a, b) → (a', b')` whenever `a → a'` in G1 and `b → b'` in G2 —
//! and iterates
//!
//! ```text
//! σ^{i+1}(p) = σ⁰(p) + σ^i(p) + Σ_{q → p} w(q, p) · σ^i(q)
//! ```
//!
//! normalized by the maximum each round, where `w(q, ·) = 1 / outdeg(q)`
//! splits a pair's similarity evenly over its propagation edges. Like GED
//! and OPQ it has no notion of dislocation, which is exactly the gap EMS
//! targets; it is included for completeness of the baseline suite.

use ems_core::SimMatrix;
use ems_depgraph::{DependencyGraph, NodeId};
use ems_labels::LabelMatrix;

/// Similarity Flooding parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct FloodingParams {
    /// Convergence threshold on the residual (max elementwise change).
    pub epsilon: f64,
    /// Iteration cap.
    pub max_iterations: usize,
}

impl Default for FloodingParams {
    fn default() -> Self {
        FloodingParams {
            epsilon: 1e-4,
            max_iterations: 100,
        }
    }
}

/// The Similarity Flooding matcher.
#[derive(Debug, Clone, Default)]
pub struct SimilarityFlooding {
    /// Parameters.
    pub params: FloodingParams,
}

impl SimilarityFlooding {
    /// Creates a matcher with `params`.
    pub fn new(params: FloodingParams) -> Self {
        SimilarityFlooding { params }
    }

    /// Computes the flooding fixpoint over the real events of two dependency
    /// graphs. `labels` provides the initial similarities σ⁰; pass an
    /// all-zero matrix for opaque inputs (σ⁰ then falls back to uniform 1).
    pub fn similarity(
        &self,
        g1: &DependencyGraph,
        g2: &DependencyGraph,
        labels: &LabelMatrix,
    ) -> SimMatrix {
        let n1 = g1.num_real();
        let n2 = g2.num_real();
        assert_eq!(labels.rows(), n1);
        assert_eq!(labels.cols(), n2);
        if n1 == 0 || n2 == 0 {
            return SimMatrix::zeros(n1, n2);
        }
        // σ⁰: labels, or uniform when no label signal exists at all.
        let any_label = (0..n1).any(|i| (0..n2).any(|j| labels.get(i, j) > 0.0));
        let sigma0 = |i: usize, j: usize| -> f64 {
            if any_label {
                labels.get(i, j)
            } else {
                1.0
            }
        };

        // PCG edges: (a,b) -> (a2,b2) for each pair of real edges. Store as
        // flat adjacency over pair indices; weights filled after counting
        // out-degrees.
        let edges1 = g1.real_edges();
        let edges2 = g2.real_edges();
        let idx = |a: NodeId, b: NodeId| a.index() * n2 + b.index();
        let mut out_edges: Vec<Vec<usize>> = vec![Vec::new(); n1 * n2];
        for &(a, a2, _) in &edges1 {
            for &(b, b2, _) in &edges2 {
                out_edges[idx(a, b)].push(idx(a2, b2));
                // Flooding propagates against edge direction too.
                out_edges[idx(a2, b2)].push(idx(a, b));
            }
        }

        let mut sigma: Vec<f64> = (0..n1 * n2).map(|k| sigma0(k / n2, k % n2)).collect();
        let mut next = vec![0.0f64; n1 * n2];
        for _ in 0..self.params.max_iterations {
            // σ' = σ0 + σ + incoming flow.
            for (k, slot) in next.iter_mut().enumerate() {
                *slot = sigma0(k / n2, k % n2) + sigma[k];
            }
            for (q, targets) in out_edges.iter().enumerate() {
                if targets.is_empty() || sigma[q] == 0.0 {
                    continue;
                }
                let w = sigma[q] / targets.len() as f64;
                for &p in targets {
                    next[p] += w;
                }
            }
            let max = next.iter().fold(0.0f64, |m, &v| m.max(v));
            if max > 0.0 {
                for v in next.iter_mut() {
                    *v /= max;
                }
            }
            let delta = sigma
                .iter()
                .zip(&next)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            std::mem::swap(&mut sigma, &mut next);
            if delta < self.params.epsilon {
                break;
            }
        }
        SimMatrix::from_raw(n1, n2, sigma)
    }

    /// Convenience over event logs with zero labels.
    pub fn similarity_of_logs(
        &self,
        l1: &ems_events::EventLog,
        l2: &ems_events::EventLog,
    ) -> SimMatrix {
        let g1 = DependencyGraph::from_log(l1);
        let g2 = DependencyGraph::from_log(l2);
        let labels = LabelMatrix::zeros(g1.num_real(), g2.num_real());
        self.similarity(&g1, &g2, &labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ems_events::EventLog;

    fn chains() -> (EventLog, EventLog) {
        let mut l1 = EventLog::new();
        l1.push_trace(["a", "b", "c"]);
        let mut l2 = EventLog::new();
        l2.push_trace(["x", "y", "z"]);
        (l1, l2)
    }

    #[test]
    fn identical_chains_align_on_the_diagonal() {
        let (l1, l2) = chains();
        let sim = SimilarityFlooding::default().similarity_of_logs(&l1, &l2);
        // Middle pair (b,y) has the most connectivity: maximal score.
        assert!(sim.get(1, 1) >= sim.get(1, 0));
        assert!(sim.get(1, 1) >= sim.get(1, 2));
        assert!(sim.get(0, 0) > sim.get(0, 2));
        assert!(sim.get(2, 2) > sim.get(2, 0));
    }

    #[test]
    fn values_are_normalized_to_unit_interval() {
        let (l1, l2) = chains();
        let sim = SimilarityFlooding::default().similarity_of_logs(&l1, &l2);
        let mut max = 0.0f64;
        for (_, _, v) in sim.iter() {
            assert!((0.0..=1.0).contains(&v));
            max = max.max(v);
        }
        assert!(
            (max - 1.0).abs() < 1e-9,
            "max must normalize to 1, got {max}"
        );
    }

    #[test]
    fn labels_seed_the_fixpoint() {
        let (l1, l2) = chains();
        let g1 = DependencyGraph::from_log(&l1);
        let g2 = DependencyGraph::from_log(&l2);
        let mut raw = vec![0.0; 9];
        raw[2] = 1.0; // row 0, col 2: claim a ~ z typographically
        let labels = LabelMatrix::from_raw(3, 3, raw);
        let sim = SimilarityFlooding::default().similarity(&g1, &g2, &labels);
        // The seeded pair keeps an edge over its row.
        assert!(sim.get(0, 2) > sim.get(0, 1));
    }

    #[test]
    fn empty_graphs_yield_empty_matrix() {
        let sim =
            SimilarityFlooding::default().similarity_of_logs(&EventLog::new(), &EventLog::new());
        assert_eq!(sim.rows(), 0);
    }

    #[test]
    fn flooding_cannot_express_dislocation() {
        // The same scenario where EMS shines: log 2 has an extra first step.
        let mut l1 = EventLog::new();
        l1.push_trace(["p", "q"]);
        let mut l2 = EventLog::new();
        l2.push_trace(["extra", "p2", "q2"]);
        let sim = SimilarityFlooding::default().similarity_of_logs(&l1, &l2);
        // Flooding gives (p, extra) at least as much as (p, p2): position-
        // blind propagation favors the most-connected pairs instead.
        assert!(sim.get(0, 0) >= sim.get(0, 1) - 1e-9);
    }
}
