//! GED: graph edit distance for business process graphs (Dijkman et al.,
//! BPM'09), with the greedy mapping search of that paper.
//!
//! Given a (partial) mapping `M` between the nodes of two graphs, the
//! distance is the weighted average of three fractions:
//!
//! ```text
//! snv  = skipped nodes / all nodes
//! sev  = skipped edges / all edges
//! subn = 2 · Σ_{(v1,v2) ∈ M} (1 - sim(v1, v2)) / (|M1| + |M2|)
//! ```
//!
//! The greedy algorithm starts from the empty mapping and repeatedly adds
//! the node pair that decreases the distance most, stopping when no pair
//! improves it. Node substitution similarity blends edge-frequency
//! compatibility with label similarity, so GED remains a functional
//! baseline on opaque names — but, being a purely *local* measure, it is
//! misled by dislocation (Example 2).

use ems_depgraph::{DependencyGraph, NodeId};
use ems_labels::LabelMatrix;

/// GED weights and parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct GedParams {
    /// Weight of the skipped-node fraction.
    pub wskipn: f64,
    /// Weight of the skipped-edge fraction.
    pub wskipe: f64,
    /// Weight of the substitution cost.
    pub wsubn: f64,
    /// Weight of structural (frequency) similarity inside the node
    /// substitution score; `1 - alpha` weighs label similarity.
    pub alpha: f64,
}

impl Default for GedParams {
    fn default() -> Self {
        GedParams {
            wskipn: 0.3,
            wskipe: 0.3,
            wsubn: 0.4,
            alpha: 1.0,
        }
    }
}

/// Result of a GED matching run.
#[derive(Debug, Clone, PartialEq)]
pub struct GedResult {
    /// The selected 1:1 mapping as `(node of g1, node of g2)` index pairs.
    pub mapping: Vec<(usize, usize)>,
    /// The graph edit distance of that mapping (lower is better).
    pub distance: f64,
}

/// The GED matcher.
#[derive(Debug, Clone, Default)]
pub struct Ged {
    /// Parameters.
    pub params: GedParams,
}

impl Ged {
    /// Creates a matcher with `params`.
    pub fn new(params: GedParams) -> Self {
        Ged { params }
    }

    /// Node substitution similarity: frequency compatibility blended with
    /// label similarity.
    fn node_sim(
        &self,
        g1: &DependencyGraph,
        g2: &DependencyGraph,
        labels: &LabelMatrix,
        v1: usize,
        v2: usize,
    ) -> f64 {
        let f1 = g1.node_frequency(NodeId::from_index(v1));
        let f2 = g2.node_frequency(NodeId::from_index(v2));
        let freq_sim = if f1 + f2 > 0.0 {
            1.0 - (f1 - f2).abs() / (f1 + f2)
        } else {
            0.0
        };
        self.params.alpha * freq_sim + (1.0 - self.params.alpha) * labels.get(v1, v2)
    }

    /// Distance of a mapping (Dijkman et al., Definition of graph edit
    /// distance as the weighted average of snv, sev, subn).
    pub fn distance(
        &self,
        g1: &DependencyGraph,
        g2: &DependencyGraph,
        labels: &LabelMatrix,
        mapping: &[(usize, usize)],
    ) -> f64 {
        let n1 = g1.num_real();
        let n2 = g2.num_real();
        let total_nodes = (n1 + n2) as f64;
        let edges1 = g1.real_edges();
        let edges2 = g2.real_edges();
        let total_edges = (edges1.len() + edges2.len()) as f64;

        let mapped1: Vec<Option<usize>> = {
            let mut m = vec![None; n1];
            for &(a, b) in mapping {
                m[a] = Some(b);
            }
            m
        };
        let mapped2: Vec<bool> = {
            let mut m = vec![false; n2];
            for &(_, b) in mapping {
                m[b] = true;
            }
            m
        };

        let skipped_nodes = (n1 - mapping.len()) + (n2 - mapping.len());
        let snv = if total_nodes > 0.0 {
            skipped_nodes as f64 / total_nodes
        } else {
            0.0
        };

        // An edge of g1 is matched when both endpoints are mapped and the
        // mapped endpoints share an edge in g2 (and vice versa).
        let mut matched_edges = 0usize;
        for &(a, b, _) in &edges1 {
            if let (Some(ma), Some(mb)) = (mapped1[a.index()], mapped1[b.index()]) {
                if g2
                    .edge_frequency(NodeId::from_index(ma), NodeId::from_index(mb))
                    .is_some()
                {
                    matched_edges += 1;
                }
            }
        }
        let mut matched_edges2 = 0usize;
        for &(a, b, _) in &edges2 {
            if mapped2[a.index()] && mapped2[b.index()] {
                // Find the g1 endpoints mapped to a and b.
                let pa = mapped1.iter().position(|&m| m == Some(a.index()));
                let pb = mapped1.iter().position(|&m| m == Some(b.index()));
                if let (Some(pa), Some(pb)) = (pa, pb) {
                    if g1
                        .edge_frequency(NodeId::from_index(pa), NodeId::from_index(pb))
                        .is_some()
                    {
                        matched_edges2 += 1;
                    }
                }
            }
        }
        let skipped_edges = (edges1.len() - matched_edges) + (edges2.len() - matched_edges2);
        let sev = if total_edges > 0.0 {
            skipped_edges as f64 / total_edges
        } else {
            0.0
        };

        let subn = if mapping.is_empty() {
            0.0
        } else {
            2.0 * mapping
                .iter()
                .map(|&(a, b)| 1.0 - self.node_sim(g1, g2, labels, a, b))
                .sum::<f64>()
                / (2.0 * mapping.len() as f64)
        };

        let p = &self.params;
        let wsum = p.wskipn + p.wskipe + p.wsubn;
        (p.wskipn * snv + p.wskipe * sev + p.wsubn * subn) / wsum
    }

    /// Greedy mapping search: repeatedly add the pair with the largest
    /// distance decrease until no pair improves.
    ///
    /// Candidate distances are evaluated incrementally: adding `(a, b)`
    /// changes the skipped-node count by a constant, the matched-edge count
    /// only for edges incident to `a`/`b`, and the substitution average by
    /// one term — `O(deg)` per candidate instead of `O(V + E)`.
    pub fn match_graphs(
        &self,
        g1: &DependencyGraph,
        g2: &DependencyGraph,
        labels: &LabelMatrix,
    ) -> GedResult {
        let n1 = g1.num_real();
        let n2 = g2.num_real();
        let total_nodes = (n1 + n2) as f64;
        let total_edges = (g1.real_edges().len() + g2.real_edges().len()) as f64;
        let p = self.params.clone();
        let wsum = p.wskipn + p.wskipe + p.wsubn;

        let mut phi: Vec<Option<usize>> = vec![None; n1]; // g1 -> g2
        let mut free2: Vec<bool> = vec![true; n2];
        let mut mapping: Vec<(usize, usize)> = Vec::new();
        let mut matched_edge_pairs = 0usize; // edges matched in BOTH graphs
        let mut sub_cost_sum = 0.0f64; // Σ (1 - sim) over mapped pairs

        // Distance from the tracked aggregates.
        let dist = |m: usize, matched: usize, subs: f64| -> f64 {
            let snv = if total_nodes > 0.0 {
                (total_nodes - 2.0 * m as f64) / total_nodes
            } else {
                0.0
            };
            let sev = if total_edges > 0.0 {
                (total_edges - 2.0 * matched as f64) / total_edges
            } else {
                0.0
            };
            let subn = if m == 0 { 0.0 } else { subs / m as f64 };
            (p.wskipn * snv + p.wskipe * sev + p.wsubn * subn) / wsum
        };

        // New matched-edge pairs created by adding (a, b): edges between a
        // and already-mapped nodes whose images share a same-direction edge
        // with b.
        let edge_gain = |a: usize, b: usize, phi: &[Option<usize>]| -> usize {
            let mut gain = 0usize;
            let an = NodeId::from_index(a);
            let bn = NodeId::from_index(b);
            for &(u, _) in g1.post(an) {
                if g1.is_artificial(u) {
                    continue;
                }
                if let Some(mu) = phi[u.index()] {
                    if g2.edge_frequency(bn, NodeId::from_index(mu)).is_some() {
                        gain += 1;
                    }
                }
            }
            for &(u, _) in g1.pre(an) {
                if g1.is_artificial(u) {
                    continue;
                }
                if let Some(mu) = phi[u.index()] {
                    if g2.edge_frequency(NodeId::from_index(mu), bn).is_some() {
                        gain += 1;
                    }
                }
            }
            // Self-loop at a maps to self-loop at b (counted via post above
            // only if a maps to itself mid-add — handle explicitly).
            if g1.edge_frequency(an, an).is_some() && g2.edge_frequency(bn, bn).is_some() {
                gain += 1;
            }
            gain
        };

        let mut current = dist(0, 0, 0.0);
        loop {
            let mut best: Option<(usize, usize, f64, usize, f64)> = None;
            for a in 0..n1 {
                if phi[a].is_some() {
                    continue;
                }
                for (b, &free) in free2.iter().enumerate() {
                    if !free {
                        continue;
                    }
                    let gain = edge_gain(a, b, &phi);
                    let sub = 1.0 - self.node_sim(g1, g2, labels, a, b);
                    let d = dist(
                        mapping.len() + 1,
                        matched_edge_pairs + gain,
                        sub_cost_sum + sub,
                    );
                    if d < current - 1e-12 && best.as_ref().map_or(true, |x| d < x.2) {
                        best = Some((a, b, d, gain, sub));
                    }
                }
            }
            match best {
                Some((a, b, d, gain, sub)) => {
                    mapping.push((a, b));
                    phi[a] = Some(b);
                    free2[b] = false;
                    matched_edge_pairs += gain;
                    sub_cost_sum += sub;
                    current = d;
                }
                None => break,
            }
        }
        mapping.sort_unstable();
        GedResult {
            mapping,
            distance: current,
        }
    }

    /// Convenience over event logs with zero labels.
    pub fn match_logs(&self, l1: &ems_events::EventLog, l2: &ems_events::EventLog) -> GedResult {
        let g1 = DependencyGraph::from_log(l1);
        let g2 = DependencyGraph::from_log(l2);
        let labels = LabelMatrix::zeros(g1.num_real(), g2.num_real());
        self.match_graphs(&g1, &g2, &labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ems_events::EventLog;

    fn identical_pair() -> (EventLog, EventLog) {
        let mut l1 = EventLog::new();
        l1.push_trace(["a", "b", "c"]);
        l1.push_trace(["a", "b", "c"]);
        let mut l2 = EventLog::new();
        l2.push_trace(["x", "y", "z"]);
        l2.push_trace(["x", "y", "z"]);
        (l1, l2)
    }

    #[test]
    fn identical_structure_maps_fully_in_order() {
        let (l1, l2) = identical_pair();
        let r = Ged::default().match_logs(&l1, &l2);
        assert_eq!(r.mapping.len(), 3);
        // With identical frequencies every pairing has equal substitution
        // cost; the edge term forces the order-preserving mapping.
        assert!(r.mapping.contains(&(1, 1)) || r.distance < 0.4);
    }

    #[test]
    fn empty_mapping_distance_is_maximal_fraction() {
        let (l1, l2) = identical_pair();
        let g1 = DependencyGraph::from_log(&l1);
        let g2 = DependencyGraph::from_log(&l2);
        let labels = LabelMatrix::zeros(3, 3);
        let ged = Ged::default();
        let d_empty = ged.distance(&g1, &g2, &labels, &[]);
        let full = ged.match_graphs(&g1, &g2, &labels);
        assert!(full.distance < d_empty);
    }

    #[test]
    fn distance_is_in_unit_interval() {
        let (l1, l2) = identical_pair();
        let r = Ged::default().match_logs(&l1, &l2);
        assert!((0.0..=1.0).contains(&r.distance));
    }

    #[test]
    fn mapping_is_one_to_one() {
        let (l1, l2) = identical_pair();
        let r = Ged::default().match_logs(&l1, &l2);
        let mut lefts: Vec<_> = r.mapping.iter().map(|&(a, _)| a).collect();
        let mut rights: Vec<_> = r.mapping.iter().map(|&(_, b)| b).collect();
        lefts.sort();
        lefts.dedup();
        rights.sort();
        rights.dedup();
        assert_eq!(lefts.len(), r.mapping.len());
        assert_eq!(rights.len(), r.mapping.len());
    }

    #[test]
    fn labels_steer_the_mapping() {
        let mut l1 = EventLog::new();
        l1.push_trace(["pay", "ship"]);
        let mut l2 = EventLog::new();
        l2.push_trace(["ship", "pay"]); // reversed process
        let g1 = DependencyGraph::from_log(&l1);
        let g2 = DependencyGraph::from_log(&l2);
        let labels = LabelMatrix::compute(
            &["pay", "ship"],
            &["ship", "pay"],
            &ems_labels::QgramCosine::default(),
        );
        let r = Ged::new(GedParams {
            alpha: 0.0, // labels only in substitution
            ..GedParams::default()
        })
        .match_graphs(&g1, &g2, &labels);
        // pay (index 0 in l1) maps to pay (index 1 in l2).
        assert!(r.mapping.contains(&(0, 1)), "mapping {:?}", r.mapping);
    }

    #[test]
    fn incremental_distance_matches_full_recomputation() {
        let mut l1 = EventLog::new();
        l1.push_trace(["a", "b", "c", "d"]);
        l1.push_trace(["a", "c", "b"]);
        let mut l2 = EventLog::new();
        l2.push_trace(["1", "2", "3"]);
        l2.push_trace(["1", "3", "2", "4"]);
        let g1 = DependencyGraph::from_log(&l1);
        let g2 = DependencyGraph::from_log(&l2);
        let labels = LabelMatrix::zeros(4, 4);
        let ged = Ged::default();
        let r = ged.match_graphs(&g1, &g2, &labels);
        let recomputed = ged.distance(&g1, &g2, &labels, &r.mapping);
        assert!(
            (r.distance - recomputed).abs() < 1e-9,
            "incremental {} vs recomputed {}",
            r.distance,
            recomputed
        );
    }

    #[test]
    fn empty_graphs() {
        let l1 = EventLog::new();
        let l2 = EventLog::new();
        let r = Ged::default().match_logs(&l1, &l2);
        assert!(r.mapping.is_empty());
        assert_eq!(r.distance, 0.0);
    }
}
