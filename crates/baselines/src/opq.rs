//! OPQ: schema matching with opaque column names (Kang & Naughton,
//! SIGMOD'03), adapted to event dependency graphs as in the paper.
//!
//! OPQ searches for the node mapping `φ` minimizing the distance between the
//! two weighted dependency graphs:
//!
//! ```text
//! d(φ) = Σ_{u,v} |w1(u, v) - w2(φ(u), φ(v))|
//! ```
//!
//! where `w(u, u)` is the node frequency and `w(u, v)` the edge frequency.
//! The original work enumerates mappings — `O(n!)` — which is why the
//! paper's Figure 8 shows OPQ failing beyond ~30 events. This
//! implementation is a branch-and-bound over the same space with a
//! configurable **node budget**: when the budget is exhausted the matcher
//! returns its incumbent and reports `finished = false`. A hill-climbing
//! variant ([`Opq::hill_climb`]) provides a polynomial-time approximation.

use ems_depgraph::{DependencyGraph, NodeId};

/// OPQ parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct OpqParams {
    /// Maximum branch-and-bound nodes explored before giving up.
    pub node_budget: u64,
}

impl Default for OpqParams {
    fn default() -> Self {
        OpqParams {
            node_budget: 5_000_000,
        }
    }
}

/// Result of an OPQ run.
#[derive(Debug, Clone, PartialEq)]
pub struct OpqResult {
    /// Mapping: for each node of the smaller graph, its image in the other
    /// (indices refer to g1 rows / g2 columns regardless of which is
    /// smaller: `mapping[i] = j` pairs node `i` of g1 with node `j` of g2).
    pub mapping: Vec<(usize, usize)>,
    /// Total L1 distance of the mapping (lower is better).
    pub distance: f64,
    /// Whether the search ran to optimality within the budget.
    pub finished: bool,
    /// Branch-and-bound nodes explored.
    pub nodes_explored: u64,
}

/// The OPQ matcher.
#[derive(Debug, Clone, Default)]
pub struct Opq {
    /// Parameters.
    pub params: OpqParams,
}

/// Dense weight matrix of a dependency graph: node frequencies on the
/// diagonal, edge frequencies elsewhere.
fn weights(g: &DependencyGraph) -> Vec<f64> {
    let n = g.num_real();
    let mut w = vec![0.0; n * n];
    for v in 0..n {
        w[v * n + v] = g.node_frequency(NodeId::from_index(v));
    }
    for (a, b, f) in g.real_edges() {
        w[a.index() * n + b.index()] = f;
    }
    w
}

impl Opq {
    /// Creates a matcher with `params`.
    pub fn new(params: OpqParams) -> Self {
        Opq { params }
    }

    /// Branch-and-bound search for the optimal mapping.
    pub fn match_graphs(&self, g1: &DependencyGraph, g2: &DependencyGraph) -> OpqResult {
        let n1 = g1.num_real();
        let n2 = g2.num_real();
        // Assign the smaller side; remember the orientation.
        let swapped = n1 > n2;
        let (small_g, large_g) = if swapped { (g2, g1) } else { (g1, g2) };
        let ns = small_g.num_real();
        let nl = large_g.num_real();
        let ws = weights(small_g);
        let wl = weights(large_g);

        // Order the small side's nodes by decreasing total weight so heavy
        // rows are fixed early and pruning bites sooner.
        let mut order: Vec<usize> = (0..ns).collect();
        let row_mass = |v: usize| -> f64 { (0..ns).map(|u| ws[v * ns + u] + ws[u * ns + v]).sum() };
        order.sort_by(|&a, &b| row_mass(b).total_cmp(&row_mass(a)));

        let mut search = Search {
            ns,
            nl,
            ws: &ws,
            wl: &wl,
            order: &order,
            assigned: vec![usize::MAX; ns],
            used: vec![false; nl],
            best_cost: f64::INFINITY,
            best: Vec::new(),
            nodes: 0,
            budget: self.params.node_budget,
        };
        // Faithful to [11]: plain enumeration of mappings (no heuristic
        // seeding, no value ordering) with the trivial partial-cost bound.
        // This is what makes OPQ's cost explode factorially — the behaviour
        // the paper reports — while still finding the optimum on small
        // inputs.
        search.dfs(0, 0.0);
        let finished = search.nodes < search.budget;

        let mapping: Vec<(usize, usize)> = search
            .best
            .iter()
            .map(|&(s, l)| if swapped { (l, s) } else { (s, l) })
            .collect();
        let mut mapping = mapping;
        mapping.sort_unstable();
        OpqResult {
            distance: search.best_cost,
            mapping,
            finished,
            nodes_explored: search.nodes,
        }
    }

    /// Hill climbing: start from a frequency-greedy assignment, improve by
    /// 2-swaps until a local optimum. Polynomial, deterministic.
    pub fn hill_climb(&self, g1: &DependencyGraph, g2: &DependencyGraph) -> OpqResult {
        let n1 = g1.num_real();
        let n2 = g2.num_real();
        let swapped = n1 > n2;
        let (small_g, large_g) = if swapped { (g2, g1) } else { (g1, g2) };
        let ns = small_g.num_real();
        let nl = large_g.num_real();
        if ns == 0 {
            return OpqResult {
                mapping: Vec::new(),
                distance: 0.0,
                finished: true,
                nodes_explored: 0,
            };
        }
        let ws = weights(small_g);
        let wl = weights(large_g);
        // Greedy init: pair nodes by closest frequency.
        let mut phi: Vec<usize> = vec![usize::MAX; ns];
        let mut used = vec![false; nl];
        let mut small_order: Vec<usize> = (0..ns).collect();
        small_order.sort_by(|&a, &b| ws[b * ns + b].total_cmp(&ws[a * ns + a]));
        for &s in &small_order {
            let mut best = usize::MAX;
            let mut best_diff = f64::INFINITY;
            for l in 0..nl {
                if used[l] {
                    continue;
                }
                let diff = (ws[s * ns + s] - wl[l * nl + l]).abs();
                if diff < best_diff {
                    best_diff = diff;
                    best = l;
                }
            }
            phi[s] = best;
            used[best] = true;
        }
        let cost_of = |phi: &[usize]| -> f64 {
            let mut cost = 0.0;
            for u in 0..ns {
                for v in 0..ns {
                    cost += (ws[u * ns + v] - wl[phi[u] * nl + phi[v]]).abs();
                }
            }
            cost
        };
        let mut cost = cost_of(&phi);
        // 2-swap improvement (also try swapping with unused images).
        let mut improved = true;
        while improved {
            improved = false;
            for i in 0..ns {
                for j in (i + 1)..ns {
                    phi.swap(i, j);
                    let c = cost_of(&phi);
                    if c < cost - 1e-12 {
                        cost = c;
                        improved = true;
                    } else {
                        phi.swap(i, j);
                    }
                }
                // Reassign i to an unused image if that helps.
                for l in 0..nl {
                    if used[l] {
                        continue;
                    }
                    let old = phi[i];
                    phi[i] = l;
                    let c = cost_of(&phi);
                    if c < cost - 1e-12 {
                        cost = c;
                        used[l] = true;
                        used[old] = false;
                        improved = true;
                    } else {
                        phi[i] = old;
                    }
                }
            }
        }
        let mapping: Vec<(usize, usize)> = (0..ns)
            .map(|s| if swapped { (phi[s], s) } else { (s, phi[s]) })
            .collect();
        let mut mapping = mapping;
        mapping.sort_unstable();
        OpqResult {
            mapping,
            distance: cost,
            finished: true,
            nodes_explored: 0,
        }
    }

    /// Convenience over event logs.
    pub fn match_logs(&self, l1: &ems_events::EventLog, l2: &ems_events::EventLog) -> OpqResult {
        self.match_graphs(
            &DependencyGraph::from_log(l1),
            &DependencyGraph::from_log(l2),
        )
    }
}

struct Search<'a> {
    ns: usize,
    nl: usize,
    ws: &'a [f64],
    wl: &'a [f64],
    order: &'a [usize],
    assigned: Vec<usize>,
    used: Vec<bool>,
    best_cost: f64,
    best: Vec<(usize, usize)>,
    nodes: u64,
    budget: u64,
}

impl Search<'_> {
    /// Incremental cost of assigning `s -> l` given already-assigned nodes:
    /// all weight terms between `s` and fixed nodes (both directions plus
    /// the diagonal).
    fn delta(&self, s: usize, l: usize, depth: usize) -> f64 {
        let ns = self.ns;
        let nl = self.nl;
        let mut d = (self.ws[s * ns + s] - self.wl[l * nl + l]).abs();
        for &t in &self.order[..depth] {
            let m = self.assigned[t];
            d += (self.ws[s * ns + t] - self.wl[l * nl + m]).abs();
            d += (self.ws[t * ns + s] - self.wl[m * nl + l]).abs();
        }
        d
    }

    fn dfs(&mut self, depth: usize, cost: f64) {
        if self.nodes >= self.budget {
            return;
        }
        self.nodes += 1;
        if depth == self.ns {
            if cost < self.best_cost {
                self.best_cost = cost;
                self.best = self.order.iter().map(|&s| (s, self.assigned[s])).collect();
            }
            return;
        }
        let s = self.order[depth];
        for l in 0..self.nl {
            if self.used[l] {
                continue;
            }
            let next = cost + self.delta(s, l, depth);
            if next >= self.best_cost {
                // Costs only grow: every deeper completion is at least
                // `next`.
                continue;
            }
            self.assigned[s] = l;
            self.used[l] = true;
            self.dfs(depth + 1, next);
            self.used[l] = false;
            self.assigned[s] = usize::MAX;
            if self.nodes >= self.budget {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ems_events::EventLog;

    fn identical_pair(n: usize) -> (EventLog, EventLog) {
        let names: Vec<String> = (0..n).map(|i| format!("s{i}")).collect();
        let other: Vec<String> = (0..n).map(|i| format!("t{i}")).collect();
        let mut l1 = EventLog::new();
        let mut l2 = EventLog::new();
        l1.push_trace(names.iter());
        l2.push_trace(other.iter());
        (l1, l2)
    }

    #[test]
    fn identical_chain_maps_in_order_with_zero_distance() {
        let (l1, l2) = identical_pair(5);
        let r = Opq::default().match_logs(&l1, &l2);
        assert!(r.finished);
        assert!(r.distance < 1e-9, "distance {}", r.distance);
        assert_eq!(r.mapping, (0..5).map(|i| (i, i)).collect::<Vec<_>>());
    }

    #[test]
    fn frequencies_disambiguate() {
        // Two events with distinct frequencies must map to their twins.
        let mut l1 = EventLog::new();
        l1.push_trace(["hot", "cold"]);
        l1.push_trace(["hot"]);
        l1.push_trace(["hot"]);
        let mut l2 = EventLog::new();
        l2.push_trace(["x", "y"]);
        l2.push_trace(["x"]);
        l2.push_trace(["x"]);
        let r = Opq::default().match_logs(&l1, &l2);
        // hot (f=1.0) -> x (f=1.0), cold (f=1/3) -> y.
        assert!(r.mapping.contains(&(0, 0)));
        assert!(r.mapping.contains(&(1, 1)));
    }

    #[test]
    fn budget_exhaustion_reports_unfinished() {
        // Budget 1 is consumed by the root node alone, so the search can
        // never certify optimality regardless of pruning.
        let (l1, l2) = identical_pair(9);
        let r = Opq::new(OpqParams { node_budget: 1 }).match_logs(&l1, &l2);
        assert!(!r.finished);
        assert_eq!(r.nodes_explored, 1);
    }

    #[test]
    fn hill_climb_matches_optimum_on_easy_input() {
        let (l1, l2) = identical_pair(6);
        let g1 = DependencyGraph::from_log(&l1);
        let g2 = DependencyGraph::from_log(&l2);
        let hc = Opq::default().hill_climb(&g1, &g2);
        assert!(hc.distance < 1e-9, "distance {}", hc.distance);
    }

    #[test]
    fn rectangular_graphs_map_the_smaller_side() {
        let mut l1 = EventLog::new();
        l1.push_trace(["a", "b"]);
        let mut l2 = EventLog::new();
        l2.push_trace(["x", "y", "z"]);
        let r = Opq::default().match_logs(&l1, &l2);
        assert_eq!(r.mapping.len(), 2);
        // And the swapped orientation.
        let r = Opq::default().match_logs(&l2, &l1);
        assert_eq!(r.mapping.len(), 2);
        for &(a, b) in &r.mapping {
            assert!(a < 3 && b < 2);
        }
    }

    #[test]
    fn empty_graphs() {
        let r = Opq::default().match_logs(&EventLog::new(), &EventLog::new());
        assert!(r.mapping.is_empty());
        assert!(r.finished);
    }

    #[test]
    fn branch_and_bound_beats_or_ties_hill_climb() {
        let mut l1 = EventLog::new();
        l1.push_trace(["a", "b", "c", "d"]);
        l1.push_trace(["a", "c", "b", "d"]);
        let mut l2 = EventLog::new();
        l2.push_trace(["1", "2", "3", "4"]);
        l2.push_trace(["1", "3", "2", "4"]);
        let g1 = DependencyGraph::from_log(&l1);
        let g2 = DependencyGraph::from_log(&l2);
        let opq = Opq::default();
        let bb = opq.match_graphs(&g1, &g2);
        let hc = opq.hill_climb(&g1, &g2);
        assert!(bb.distance <= hc.distance + 1e-9);
    }
}
