//! BHV: SimRank-like behavioral similarity (Nejati et al., ICSE'07).
//!
//! Events are similar when their *predecessors* are similar — computed as a
//! SimRank iteration over the raw dependency graphs (no artificial event):
//!
//! ```text
//! S⁰(v1, v2)  = 1                       if •v1 = •v2 = ∅ (both sources)
//! Sⁿ(v1, v2)  = c / (|•v1||•v2|) · Σ Σ Sⁿ⁻¹(u1, u2)
//! ```
//!
//! As Example 2 of the paper shows, two source events always score 1 while a
//! source paired with a mid-trace event scores 0 — BHV structurally cannot
//! express dislocated matching, which is the gap EMS closes.

use ems_core::SimMatrix;
use ems_depgraph::{DependencyGraph, NodeId};
use ems_labels::LabelMatrix;

/// BHV parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct BhvParams {
    /// Similarity decay per step (SimRank's `C`).
    pub c: f64,
    /// Weight of the structural part; `1 - alpha` weighs label similarity.
    pub alpha: f64,
    /// Convergence threshold.
    pub epsilon: f64,
    /// Iteration cap.
    pub max_iterations: usize,
}

impl Default for BhvParams {
    fn default() -> Self {
        BhvParams {
            c: 0.8,
            alpha: 1.0,
            epsilon: 1e-4,
            max_iterations: 100,
        }
    }
}

/// The BHV matcher.
#[derive(Debug, Clone, Default)]
pub struct Bhv {
    /// Parameters.
    pub params: BhvParams,
}

impl Bhv {
    /// Creates a matcher with `params`.
    pub fn new(params: BhvParams) -> Self {
        Bhv { params }
    }

    /// Computes the BHV similarity matrix over the real events of two
    /// dependency graphs (artificial events and edges are ignored — BHV
    /// predates that construction).
    ///
    /// Source events — those with no real predecessors — anchor the
    /// propagation: every source-source pair is pinned at similarity 1,
    /// exactly the behavior Example 2 of the paper attributes to BHV.
    pub fn similarity(
        &self,
        g1: &DependencyGraph,
        g2: &DependencyGraph,
        labels: &LabelMatrix,
    ) -> SimMatrix {
        let sources = |g: &DependencyGraph| -> Vec<bool> {
            let x = g.artificial();
            (0..g.num_real())
                .map(|v| g.pre(NodeId::from_index(v)).iter().all(|&(s, _)| s == x))
                .collect()
        };
        self.similarity_with_anchors(g1, g2, labels, &sources(g1), &sources(g2))
    }

    /// As [`similarity`](Self::similarity), but with explicit anchor sets:
    /// any pair of anchor events is pinned at similarity 1. Useful when a
    /// graph has no predecessor-free event (e.g. a loop around the process
    /// start), where strict BHV would degenerate to the all-zero matrix —
    /// the trace-initial events then serve as anchors
    /// ([`similarity_of_logs`](Self::similarity_of_logs) does this).
    pub fn similarity_with_anchors(
        &self,
        g1: &DependencyGraph,
        g2: &DependencyGraph,
        labels: &LabelMatrix,
        anchors1: &[bool],
        anchors2: &[bool],
    ) -> SimMatrix {
        let n1 = g1.num_real();
        let n2 = g2.num_real();
        assert_eq!(labels.rows(), n1);
        assert_eq!(labels.cols(), n2);
        assert_eq!(anchors1.len(), n1);
        assert_eq!(anchors2.len(), n2);
        let x1 = g1.artificial();
        let x2 = g2.artificial();
        // Real pre-sets (without the artificial event).
        let pre = |g: &DependencyGraph, x: NodeId, v: usize| -> Vec<usize> {
            g.pre(NodeId::from_index(v))
                .iter()
                .filter(|&&(s, _)| s != x)
                .map(|&(s, _)| s.index())
                .collect()
        };
        let pre1: Vec<Vec<usize>> = (0..n1).map(|v| pre(g1, x1, v)).collect();
        let pre2: Vec<Vec<usize>> = (0..n2).map(|v| pre(g2, x2, v)).collect();
        let pinned = |v1: usize, v2: usize| anchors1[v1] && anchors2[v2];

        let p = &self.params;
        let mut current = SimMatrix::zeros(n1, n2);
        // Base: anchor pairs are maximally similar.
        for v1 in 0..n1 {
            for v2 in 0..n2 {
                if pinned(v1, v2) {
                    current.set(v1, v2, 1.0);
                }
            }
        }
        let mut next = current.clone();
        for _ in 0..p.max_iterations {
            let mut delta = 0.0_f64;
            for (v1, p1) in pre1.iter().enumerate().take(n1) {
                for (v2, p2) in pre2.iter().enumerate().take(n2) {
                    if pinned(v1, v2) {
                        next.set(v1, v2, 1.0);
                        continue;
                    }
                    let structural = if p1.is_empty() || p2.is_empty() {
                        0.0
                    } else {
                        let mut sum = 0.0;
                        for &u1 in p1 {
                            for &u2 in p2 {
                                sum += current.get(u1, u2);
                            }
                        }
                        p.c * sum / (pre1[v1].len() * pre2[v2].len()) as f64
                    };
                    let value = (p.alpha * structural + (1.0 - p.alpha) * labels.get(v1, v2))
                        .clamp(0.0, 1.0);
                    delta = delta.max((value - current.get(v1, v2)).abs());
                    next.set(v1, v2, value);
                }
            }
            std::mem::swap(&mut current, &mut next);
            if delta < p.epsilon {
                break;
            }
        }
        current
    }

    /// Convenience: similarity over two event logs with zero labels,
    /// anchored on trace-initial events (which subsumes predecessor-free
    /// sources and stays meaningful when loops touch the process start).
    pub fn similarity_of_logs(
        &self,
        l1: &ems_events::EventLog,
        l2: &ems_events::EventLog,
    ) -> SimMatrix {
        let g1 = DependencyGraph::from_log(l1);
        let g2 = DependencyGraph::from_log(l2);
        let labels = LabelMatrix::zeros(g1.num_real(), g2.num_real());
        self.similarity_with_anchors(
            &g1,
            &g2,
            &labels,
            &trace_start_anchors(l1),
            &trace_start_anchors(l2),
        )
    }
}

/// Marks events that begin at least one trace.
pub fn trace_start_anchors(log: &ems_events::EventLog) -> Vec<bool> {
    let mut anchors = vec![false; log.alphabet_size()];
    for t in log.traces() {
        if let Some(&first) = t.events().first() {
            anchors[first.index()] = true;
        }
    }
    anchors
}

#[cfg(test)]
mod tests {
    use super::*;
    use ems_events::EventLog;

    /// The dislocation scenario of Example 2: A starts log 1's traces; in
    /// log 2, event "1" starts every trace and "2" (the true match of A)
    /// comes second.
    fn dislocated() -> (EventLog, EventLog) {
        let mut l1 = EventLog::new();
        l1.push_trace(["A", "C"]);
        l1.push_trace(["A", "C"]);
        l1.push_trace(["B", "C"]);
        let mut l2 = EventLog::new();
        l2.push_trace(["1", "2", "4"]);
        l2.push_trace(["1", "2", "4"]);
        l2.push_trace(["1", "3", "4"]);
        (l1, l2)
    }

    #[test]
    fn sources_score_one_and_dislocated_score_zero() {
        // This is the failure mode the paper describes: "A and 1 with no
        // input neighbors have higher similarity 1 ... unable to find the
        // dislocated matching" (BHV similarity of (A, 2) is 0 structurally).
        let (l1, l2) = dislocated();
        let sim = Bhv::default().similarity_of_logs(&l1, &l2);
        let a = l1.id_of("A").unwrap().index();
        let one = l2.id_of("1").unwrap().index();
        let two = l2.id_of("2").unwrap().index();
        assert_eq!(sim.get(a, one), 1.0);
        // (A, 2): A has no predecessors but 2 does -> structural 0.
        assert_eq!(sim.get(a, two), 0.0);
    }

    #[test]
    fn aligned_logs_score_high_on_diagonal() {
        let mut l1 = EventLog::new();
        l1.push_trace(["a", "b", "c"]);
        let mut l2 = EventLog::new();
        l2.push_trace(["x", "y", "z"]);
        let sim = Bhv::default().similarity_of_logs(&l1, &l2);
        assert_eq!(sim.get(0, 0), 1.0); // both sources
        assert!(sim.get(1, 1) > sim.get(1, 2)); // b~y beats b~z
        assert!(sim.get(2, 2) > sim.get(2, 0));
    }

    #[test]
    fn values_stay_in_unit_interval() {
        let (l1, l2) = dislocated();
        let sim = Bhv::default().similarity_of_logs(&l1, &l2);
        for (_, _, v) in sim.iter() {
            assert!((0.0..=1.0).contains(&v), "value {v}");
        }
    }

    #[test]
    fn labels_blend_in() {
        let mut l1 = EventLog::new();
        l1.push_trace(["ship", "pay"]);
        let mut l2 = EventLog::new();
        l2.push_trace(["pay", "ship"]);
        let g1 = DependencyGraph::from_log(&l1);
        let g2 = DependencyGraph::from_log(&l2);
        let labels = LabelMatrix::compute(
            &["ship", "pay"],
            &["pay", "ship"],
            &ems_labels::QgramCosine::default(),
        );
        let blended = Bhv::new(BhvParams {
            alpha: 0.5,
            ..BhvParams::default()
        })
        .similarity(&g1, &g2, &labels);
        let plain = Bhv::default().similarity(&g1, &g2, &LabelMatrix::zeros(2, 2));
        // ship(l1, idx 0) vs ship(l2, idx 1): labels lift the score.
        assert!(blended.get(0, 1) > plain.get(0, 1));
    }
}
