#![forbid(unsafe_code)]
//! Baseline event matchers from the paper's evaluation (Section 5).
//!
//! EMS is compared against three prior approaches, all reimplemented here
//! from their original papers:
//!
//! * [`bhv`] — **BHV**, the SimRank-like *behavioral similarity* of Nejati
//!   et al. (ICSE'07): iterative propagation over predecessors only, no
//!   artificial event — which is exactly why it cannot handle dislocation
//!   at trace beginnings (the paper's DS-B testbed);
//! * [`ged`] — **GED**, graph edit distance for business process graphs
//!   (Dijkman et al., BPM'09): a greedy mapping search minimizing the
//!   weighted fraction of skipped nodes, skipped edges and node
//!   substitution cost — a *local* structural similarity;
//! * [`flooding`] — **Similarity Flooding** (Melnik et al., ICDE'02), the
//!   classic fixpoint graph matcher the paper cites as the representative
//!   1:1 schema matcher \[14\] (not part of the paper's measured lineup, but
//!   a natural extra comparison point);
//! * [`opq`] — **OPQ**, opaque schema matching (Kang & Naughton,
//!   SIGMOD'03): find the node mapping minimizing the distance between the
//!   two graphs' dependency statistics. The original enumerates mappings
//!   (factorial growth); this implementation is a branch-and-bound with a
//!   configurable node budget that reports "did not finish" beyond it —
//!   reproducing the paper's observation that OPQ cannot complete for more
//!   than ~30 events — plus a hill-climbing variant.
//!
//! All matchers consume the same [`DependencyGraph`](ems_depgraph::DependencyGraph)s
//! and [`LabelMatrix`](ems_labels::LabelMatrix) as EMS, so every method is
//! scored under identical conditions.

pub mod bhv;
pub mod flooding;
pub mod ged;
pub mod opq;

pub use bhv::{Bhv, BhvParams};
pub use flooding::{FloodingParams, SimilarityFlooding};
pub use ged::{Ged, GedParams, GedResult};
pub use opq::{Opq, OpqParams, OpqResult};
