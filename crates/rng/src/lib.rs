#![forbid(unsafe_code)]
//! Deterministic, dependency-free pseudo-random numbers.
//!
//! The workspace is built in offline environments, so it cannot pull the
//! `rand` crate from a registry. This crate provides the small slice of the
//! `rand` API the workspace actually uses — a seedable generator with
//! `gen`, `gen_range` and `gen_bool` — backed by xoshiro256++ with
//! SplitMix64 seed expansion. Sequences are fully determined by the seed,
//! which is exactly what the synthetic-log generators, property tests and
//! fault-injection harness need for reproducibility.
//!
//! The generator is *not* cryptographically secure and must never be used
//! for secrets; it exists to drive simulations and tests.

#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

use std::ops::{Range, RangeInclusive};

/// xoshiro256++ generator with a `rand`-compatible surface.
///
/// Named `StdRng` so existing call sites only change their import line.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

/// SplitMix64 step, used to expand a 64-bit seed into the 256-bit state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl StdRng {
    /// Creates a generator whose entire output sequence is determined by
    /// `seed`. Mirrors `rand::SeedableRng::seed_from_u64`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // All-zero state would be a fixed point; SplitMix64 cannot produce
        // four zeros from any seed, but guard anyway.
        if s == [0, 0, 0, 0] {
            s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
        }
        StdRng { s }
    }

    /// Next raw 64-bit output (xoshiro256++ scrambler).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next 32-bit output.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform sample of `T`; mirrors `rand::Rng::gen`.
    pub fn gen<T: Sample>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform sample from a range; mirrors `rand::Rng::gen_range`.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// Uniform `u64` in `[0, bound)` via Lemire's rejection method
    /// (unbiased). `bound` must be nonzero.
    fn bounded_u64(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound || low >= low.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Picks a uniformly random element of `slice`, or `None` if empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            slice.get(self.bounded_u64(slice.len() as u64) as usize)
        }
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.bounded_u64(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

/// Types that `StdRng::gen` can sample uniformly.
pub trait Sample {
    fn sample(rng: &mut StdRng) -> Self;
}

impl Sample for u64 {
    fn sample(rng: &mut StdRng) -> Self {
        rng.next_u64()
    }
}

impl Sample for u32 {
    fn sample(rng: &mut StdRng) -> Self {
        rng.next_u32()
    }
}

impl Sample for bool {
    fn sample(rng: &mut StdRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Sample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample(rng: &mut StdRng) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that `StdRng::gen_range` accepts.
pub trait SampleRange {
    type Output;
    fn sample(self, rng: &mut StdRng) -> Self::Output;
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = rng.bounded_u64(span);
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut StdRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Full-width range: every u64 is valid.
                    return rng.next_u64() as $t;
                }
                let off = rng.bounded_u64(span as u64);
                (start as i128 + off as i128) as $t
            }
        }
    )*};
}

int_range_impls!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u: f64 = rng.gen();
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    fn sample(self, rng: &mut StdRng) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range: empty range");
        let u: f64 = rng.gen();
        start + u * (end - start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_produce_distinct_streams() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let a = rng.gen_range(3..17u64);
            assert!((3..17).contains(&a));
            let b = rng.gen_range(0..=5usize);
            assert!(b <= 5);
            let c = rng.gen_range(-4..=4i64);
            assert!((-4..=4).contains(&c));
            let d = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&d));
            let e = rng.gen_range(0.5..=1.5);
            assert!((0.5..=1.5).contains(&e));
            let f = rng.gen_range(0..26u8);
            assert!(f < 26);
        }
    }

    #[test]
    fn gen_range_covers_small_domain() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(13);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut v: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_picks_existing_elements() {
        let mut rng = StdRng::seed_from_u64(19);
        let items = [10, 20, 30];
        for _ in 0..100 {
            assert!(items.contains(rng.choose(&items).unwrap()));
        }
        let empty: [i32; 0] = [];
        assert!(rng.choose(&empty).is_none());
    }
}
