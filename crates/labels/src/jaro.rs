//! Jaro and Jaro-Winkler similarities — standard alternatives for short
//! labels in schema matching.

use crate::LabelSimilarity;

/// Jaro similarity of `a` and `b` in `[0, 1]`.
pub fn jaro(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut b_taken = vec![false; b.len()];
    let mut matches_a: Vec<char> = Vec::new();
    for (i, &ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for j in lo..hi {
            if !b_taken[j] && b[j] == ca {
                b_taken[j] = true;
                matches_a.push(ca);
                break;
            }
        }
    }
    let m = matches_a.len();
    if m == 0 {
        return 0.0;
    }
    let matches_b: Vec<char> = b
        .iter()
        .zip(b_taken.iter())
        .filter(|&(_, &t)| t)
        .map(|(&c, _)| c)
        .collect();
    let transpositions = matches_a
        .iter()
        .zip(matches_b.iter())
        .filter(|(x, y)| x != y)
        .count() as f64
        / 2.0;
    let m = m as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - transpositions) / m) / 3.0
}

/// Jaro-Winkler similarity: Jaro boosted by common-prefix length (up to 4)
/// with scaling factor `p = 0.1`.
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    let j = jaro(a, b);
    let prefix = a
        .chars()
        .zip(b.chars())
        .take(4)
        .take_while(|(x, y)| x == y)
        .count() as f64;
    (j + prefix * 0.1 * (1.0 - j)).clamp(0.0, 1.0)
}

/// [`LabelSimilarity`] adapter for [`jaro_winkler`].
#[derive(Debug, Clone, Copy, Default)]
pub struct JaroWinkler;

impl LabelSimilarity for JaroWinkler {
    fn similarity(&self, a: &str, b: &str) -> f64 {
        jaro_winkler(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_and_disjoint() {
        assert_eq!(jaro("same", "same"), 1.0);
        assert_eq!(jaro("", ""), 1.0);
        assert_eq!(jaro("abc", ""), 0.0);
        assert_eq!(jaro("abc", "xyz"), 0.0);
    }

    #[test]
    fn textbook_values() {
        // Classic examples from Winkler's papers.
        let v = jaro("MARTHA", "MARHTA");
        assert!((v - 0.944444).abs() < 1e-4, "got {v}");
        let w = jaro_winkler("MARTHA", "MARHTA");
        assert!((w - 0.961111).abs() < 1e-4, "got {w}");
        let v = jaro("DWAYNE", "DUANE");
        assert!((v - 0.822222).abs() < 1e-4, "got {v}");
    }

    #[test]
    fn winkler_boosts_prefix_matches() {
        let plain = jaro("prefixed", "prefixes");
        let boosted = jaro_winkler("prefixed", "prefixes");
        assert!(boosted >= plain);
        assert!(boosted <= 1.0);
    }

    #[test]
    fn symmetry() {
        let (a, b) = ("Ship Goods", "Shipped Goods");
        assert!((jaro(a, b) - jaro(b, a)).abs() < 1e-15);
        assert!((jaro_winkler(a, b) - jaro_winkler(b, a)).abs() < 1e-15);
    }
}
