//! Typed errors for label-similarity structures.

use ems_error::EmsError;
use std::fmt;

/// Errors raised when assembling label-similarity data from untrusted parts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LabelsError {
    /// Raw matrix data does not match the declared `rows × cols` shape.
    ShapeMismatch {
        /// Declared number of rows.
        rows: usize,
        /// Declared number of columns.
        cols: usize,
        /// Actual number of data entries supplied.
        len: usize,
    },
    /// A q-gram length of zero was requested (q must be at least 1).
    ZeroQ,
}

impl fmt::Display for LabelsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LabelsError::ShapeMismatch { rows, cols, len } => {
                write!(
                    f,
                    "label matrix shape mismatch: {rows}x{cols} needs {} entries, got {len}",
                    rows * cols
                )
            }
            LabelsError::ZeroQ => write!(f, "q must be at least 1"),
        }
    }
}

impl std::error::Error for LabelsError {}

impl From<LabelsError> for EmsError {
    fn from(e: LabelsError) -> Self {
        EmsError::Params {
            message: e.to_string(),
        }
    }
}
