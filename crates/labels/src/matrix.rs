//! Dense precomputed label-similarity matrices.

use crate::LabelSimilarity;

/// A dense `|A| × |B|` matrix of label similarities between two alphabets,
/// computed once up front so the iterative engine's inner loop never touches
//  strings.
#[derive(Debug, Clone, PartialEq)]
pub struct LabelMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl LabelMatrix {
    /// Computes the matrix for `names_a` × `names_b` under `measure`.
    pub fn compute<M, SA, SB>(names_a: &[SA], names_b: &[SB], measure: &M) -> Self
    where
        M: LabelSimilarity,
        SA: AsRef<str>,
        SB: AsRef<str>,
    {
        let rows = names_a.len();
        let cols = names_b.len();
        let mut data = Vec::with_capacity(rows * cols);
        for a in names_a {
            for b in names_b {
                data.push(measure.similarity(a.as_ref(), b.as_ref()));
            }
        }
        LabelMatrix { rows, cols, data }
    }

    /// An all-zero matrix (structure-only matching).
    pub fn zeros(rows: usize, cols: usize) -> Self {
        LabelMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds a matrix from raw row-major data.
    ///
    /// # Panics
    /// If `data.len() != rows * cols`. Use
    /// [`try_from_raw`](Self::try_from_raw) for untrusted data.
    pub fn from_raw(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "label matrix shape mismatch");
        LabelMatrix { rows, cols, data }
    }

    /// Non-panicking variant of [`from_raw`](Self::from_raw): returns a typed
    /// error when the data length disagrees with the declared shape.
    pub fn try_from_raw(
        rows: usize,
        cols: usize,
        data: Vec<f64>,
    ) -> Result<Self, crate::LabelsError> {
        if data.len() != rows * cols {
            return Err(crate::LabelsError::ShapeMismatch {
                rows,
                cols,
                len: data.len(),
            });
        }
        Ok(LabelMatrix { rows, cols, data })
    }

    /// The similarity at `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Number of rows (size of alphabet A).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (size of alphabet B).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The raw row-major similarity data (serialization edge; round-trips
    /// through [`try_from_raw`](Self::try_from_raw)).
    pub fn data(&self) -> &[f64] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cosine::QgramCosine;

    #[test]
    fn matrix_matches_pairwise_calls() {
        let a = ["Paid by Cash", "Ship Goods"];
        let b = ["Paid by Cash", "Delivery"];
        let m = LabelMatrix::compute(&a, &b, &QgramCosine::default());
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
        assert_eq!(m.get(0, 0), 1.0);
        assert!(m.get(1, 1) < 0.5);
    }

    #[test]
    fn zeros_matrix() {
        let m = LabelMatrix::zeros(3, 4);
        assert_eq!(m.get(2, 3), 0.0);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn from_raw_validates_shape() {
        let _ = LabelMatrix::from_raw(2, 2, vec![0.0; 3]);
    }
}
