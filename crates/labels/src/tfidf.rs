//! Corpus-weighted token cosine (TF-IDF): tokens that appear in every
//! activity name ("create", "check", "update") carry less evidence than
//! rare ones ("turbine", "escrow"). Standard practice for multi-word labels
//! in schema matching; complements the character-level q-gram cosine.

use std::collections::BTreeMap;

/// A TF-IDF model fitted over a corpus of labels (typically the union of
/// both logs' event names).
#[derive(Debug, Clone, PartialEq)]
pub struct TfIdf {
    /// Smoothed inverse document frequency per token.
    idf: BTreeMap<String, f64>,
    /// Number of documents the model was fitted on.
    num_docs: usize,
}

fn tokens(s: &str) -> Vec<String> {
    s.split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(str::to_lowercase)
        .collect()
}

impl TfIdf {
    /// Fits the model: one document per label.
    pub fn fit<S: AsRef<str>>(corpus: &[S]) -> Self {
        let mut df: BTreeMap<String, usize> = BTreeMap::new();
        for doc in corpus {
            let mut seen: Vec<String> = tokens(doc.as_ref());
            seen.sort_unstable();
            seen.dedup();
            for t in seen {
                *df.entry(t).or_insert(0) += 1;
            }
        }
        let n = corpus.len();
        let idf = df
            .into_iter()
            .map(|(t, d)| {
                // Smoothed IDF, always positive.
                (t, ((1.0 + n as f64) / (1.0 + d as f64)).ln() + 1.0)
            })
            .collect();
        TfIdf { idf, num_docs: n }
    }

    /// Number of documents the model saw.
    pub fn num_docs(&self) -> usize {
        self.num_docs
    }

    /// The IDF weight of a token (`None` for out-of-corpus tokens, which
    /// get the maximum possible smoothed weight in [`similarity`](Self::similarity)).
    pub fn idf(&self, token: &str) -> Option<f64> {
        self.idf.get(&token.to_lowercase()).copied()
    }

    fn vector(&self, s: &str) -> BTreeMap<String, f64> {
        let toks = tokens(s);
        let mut tf: BTreeMap<String, f64> = BTreeMap::new();
        for t in &toks {
            *tf.entry(t.clone()).or_insert(0.0) += 1.0;
        }
        let oov_idf = ((1.0 + self.num_docs as f64) / 1.0).ln() + 1.0;
        for (t, v) in tf.iter_mut() {
            *v *= self.idf.get(t).copied().unwrap_or(oov_idf);
        }
        tf
    }

    /// TF-IDF-weighted cosine similarity of two labels, in `[0, 1]`.
    /// Two tokenless labels score 1 (identical emptiness); one tokenless
    /// label scores 0.
    pub fn similarity(&self, a: &str, b: &str) -> f64 {
        let va = self.vector(a);
        let vb = self.vector(b);
        if va.is_empty() && vb.is_empty() {
            return 1.0;
        }
        let dot: f64 = va
            .iter()
            .filter_map(|(t, &x)| vb.get(t).map(|&y| x * y))
            .sum();
        let na: f64 = va.values().map(|v| v * v).sum::<f64>().sqrt();
        let nb: f64 = vb.values().map(|v| v * v).sum::<f64>().sqrt();
        if na == 0.0 || nb == 0.0 {
            return 0.0;
        }
        (dot / (na * nb)).clamp(0.0, 1.0)
    }
}

impl crate::LabelSimilarity for TfIdf {
    fn similarity(&self, a: &str, b: &str) -> f64 {
        TfIdf::similarity(self, a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<&'static str> {
        vec![
            "Check Inventory",
            "Check Payment",
            "Check Address",
            "Ship Turbine",
            "Email Customer",
        ]
    }

    #[test]
    fn identical_labels_score_one() {
        let m = TfIdf::fit(&corpus());
        assert!((m.similarity("Check Inventory", "Check Inventory") - 1.0).abs() < 1e-12);
        assert_eq!(m.similarity("", ""), 1.0);
        assert_eq!(m.similarity("", "x"), 0.0);
    }

    #[test]
    fn rare_tokens_outweigh_common_ones() {
        let m = TfIdf::fit(&corpus());
        // "check" appears in 3 of 5 docs, "turbine" in 1:
        // sharing "turbine" is stronger evidence than sharing "check".
        let share_rare = m.similarity("Ship Turbine", "Turbine Report");
        let share_common = m.similarity("Check Inventory", "Check Address");
        assert!(
            share_rare > share_common,
            "rare {share_rare} <= common {share_common}"
        );
    }

    #[test]
    fn idf_ordering_matches_document_frequency() {
        let m = TfIdf::fit(&corpus());
        let check = m.idf("check").unwrap();
        let turbine = m.idf("Turbine").unwrap(); // case-insensitive
        assert!(turbine > check);
        assert!(m.idf("nonexistent").is_none());
        assert_eq!(m.num_docs(), 5);
    }

    #[test]
    fn symmetry_and_range() {
        let m = TfIdf::fit(&corpus());
        for a in corpus() {
            for b in corpus() {
                let ab = m.similarity(a, b);
                let ba = m.similarity(b, a);
                assert!((ab - ba).abs() < 1e-12);
                assert!((0.0..=1.0).contains(&ab));
            }
        }
    }

    #[test]
    fn out_of_corpus_tokens_still_compare() {
        let m = TfIdf::fit(&corpus());
        let s = m.similarity("Frobnicate Widget", "Frobnicate Widget Again");
        assert!(s > 0.5, "got {s}");
    }

    #[test]
    fn empty_corpus_degenerates_gracefully() {
        let m = TfIdf::fit::<&str>(&[]);
        assert_eq!(m.num_docs(), 0);
        assert!((m.similarity("a b", "a b") - 1.0).abs() < 1e-12);
    }
}
