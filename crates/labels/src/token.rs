//! Token-level Jaccard similarity — useful for multi-word activity labels
//! like "Inventory Checking & Validation".

use crate::LabelSimilarity;
use std::collections::HashSet;

/// Jaccard similarity of the lowercase token sets of `a` and `b`.
///
/// Tokens are maximal alphanumeric runs; punctuation (`&`, `(`, `)`)
/// separates tokens. Two empty token sets are identical (similarity 1).
pub fn token_jaccard(a: &str, b: &str) -> f64 {
    let ta = tokens(a);
    let tb = tokens(b);
    if ta.is_empty() && tb.is_empty() {
        return 1.0;
    }
    let inter = ta.intersection(&tb).count() as f64;
    let union = ta.union(&tb).count() as f64;
    inter / union
}

fn tokens(s: &str) -> HashSet<String> {
    s.split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(str::to_lowercase)
        .collect()
}

/// [`LabelSimilarity`] adapter for [`token_jaccard`].
#[derive(Debug, Clone, Copy, Default)]
pub struct TokenJaccard;

impl LabelSimilarity for TokenJaccard {
    fn similarity(&self, a: &str, b: &str) -> f64 {
        token_jaccard(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlapping_labels() {
        let s = token_jaccard("Check Inventory", "Inventory Checking & Validation");
        // shared: {inventory}; union: {check, inventory, checking, validation}
        assert!((s - 0.25).abs() < 1e-12);
    }

    #[test]
    fn case_insensitive() {
        assert_eq!(token_jaccard("Ship Goods", "ship GOODS"), 1.0);
    }

    #[test]
    fn punctuation_separates() {
        assert_eq!(token_jaccard("a&b", "a b"), 1.0);
    }

    #[test]
    fn empties() {
        assert_eq!(token_jaccard("", ""), 1.0);
        assert_eq!(token_jaccard("", "x"), 0.0);
        assert_eq!(token_jaccard("&&&", "&"), 1.0); // both tokenless
    }

    #[test]
    fn disjoint_is_zero() {
        assert_eq!(token_jaccard("alpha beta", "gamma"), 0.0);
    }
}
