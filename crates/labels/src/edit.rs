//! Levenshtein edit distance \[13\] and its normalized similarity.

use crate::LabelSimilarity;

/// Levenshtein edit distance between `a` and `b` (unit costs), computed over
/// `char`s with the classic two-row dynamic program: `O(|a|·|b|)` time,
/// `O(min)` memory.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    // Keep the shorter string as the row to halve memory.
    let (short, long) = if a.len() <= b.len() {
        (&a, &b)
    } else {
        (&b, &a)
    };
    if short.is_empty() {
        return long.len();
    }
    let mut prev: Vec<usize> = (0..=short.len()).collect();
    let mut cur = vec![0usize; short.len() + 1];
    for (i, &lc) in long.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &sc) in short.iter().enumerate() {
            let sub = prev[j] + usize::from(lc != sc);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[short.len()]
}

/// Normalized Levenshtein similarity: `1 - d / max(|a|, |b|)`, in `[0, 1]`;
/// `1.0` when both strings are empty.
pub fn levenshtein_similarity(a: &str, b: &str) -> f64 {
    let la = a.chars().count();
    let lb = b.chars().count();
    let m = la.max(lb);
    if m == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / m as f64
}

/// [`LabelSimilarity`] adapter for [`levenshtein_similarity`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Levenshtein;

impl LabelSimilarity for Levenshtein {
    fn similarity(&self, a: &str, b: &str) -> f64 {
        levenshtein_similarity(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_distances() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", "abc"), 0);
        assert_eq!(levenshtein("abc", "axc"), 1);
    }

    #[test]
    fn distance_is_symmetric() {
        assert_eq!(levenshtein("flaw", "lawn"), levenshtein("lawn", "flaw"));
    }

    #[test]
    fn similarity_normalization() {
        assert_eq!(levenshtein_similarity("", ""), 1.0);
        assert_eq!(levenshtein_similarity("ab", "ab"), 1.0);
        assert_eq!(levenshtein_similarity("ab", "cd"), 0.0);
        let s = levenshtein_similarity("Validate", "Validation");
        assert!(s > 0.6 && s < 1.0);
    }

    #[test]
    fn unicode_counts_chars_not_bytes() {
        assert_eq!(levenshtein("日本", "日木"), 1);
        assert!((levenshtein_similarity("日本", "日木") - 0.5).abs() < 1e-12);
    }

    #[test]
    fn triangle_inequality_spot_check() {
        let (a, b, c) = ("order", "older", "folder");
        assert!(levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c));
    }
}
