#![forbid(unsafe_code)]
//! Typographic (label) similarities for event names.
//!
//! The paper's similarity function (Definition 2) accepts an optional label
//! similarity `S^L(v1, v2)` weighted by `1 - α`. The evaluation uses
//! *cosine similarity with q-grams* (Gravano et al., WWW'03) as the
//! state-of-the-art string measure; this crate provides that plus the
//! classical alternatives used across the schema-matching literature:
//!
//! * [`qgram_cosine`] — cosine over q-gram multisets (the paper's choice),
//! * [`ExactName`] — strict string equality, the measure the catalog's
//!   sketch bound assumes (set-overlap caps only hold under equality),
//! * [`levenshtein`] / [`levenshtein_similarity`] — edit distance,
//! * [`jaro_winkler`] — prefix-boosted Jaro,
//! * [`token_jaccard`] — whitespace-token Jaccard,
//! * [`TfIdf`] — corpus-weighted token cosine,
//! * [`LabelMatrix`] — a precomputed dense matrix of label similarities for
//!   two alphabets, consumed by the similarity engine.
//!
//! All similarity functions return values in `[0, 1]`, are symmetric, and
//! give `1.0` exactly on equal inputs (property-tested).

#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

mod cosine;
mod edit;
mod error;
mod exact;
mod jaro;
mod matrix;
mod tfidf;
mod token;

pub use cosine::{qgram_cosine, qgram_profile, QgramCosine};
pub use edit::{levenshtein, levenshtein_similarity, Levenshtein};
pub use error::LabelsError;
pub use exact::ExactName;
pub use jaro::{jaro, jaro_winkler, JaroWinkler};
pub use matrix::LabelMatrix;
pub use tfidf::TfIdf;
pub use token::{token_jaccard, TokenJaccard};

/// A label similarity measure: maps two strings into `[0, 1]`.
pub trait LabelSimilarity {
    /// Computes the similarity of `a` and `b` in `[0, 1]`.
    fn similarity(&self, a: &str, b: &str) -> f64;
}

/// The constant-zero similarity: used when matching must rely on structure
/// only (the paper's opaque-name experiments, Figure 3).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoLabels;

impl LabelSimilarity for NoLabels {
    fn similarity(&self, _: &str, _: &str) -> f64 {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_labels_is_zero() {
        assert_eq!(NoLabels.similarity("a", "a"), 0.0);
    }
}
